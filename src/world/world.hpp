// Clip generation, dataset profiles, and assembly of the 64-clip benchmark
// world mirroring the paper's data mix (10 KITTI-like + 44 BDD100k-like +
// 10 SHD-like clips, split 9:1 seen:unseen, each seen clip split 6:2:2).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "world/frame.hpp"
#include "world/frame_generator.hpp"
#include "world/scene_style.hpp"

namespace anole::world {

/// Everything needed to generate one clip.
struct ClipSpec {
  SceneAttributes attributes;
  std::size_t length = 120;
  /// Scales the per-scene style jitter (dataset-specific rendition).
  double style_variation = 0.3;
  std::uint64_t style_seed = 0;
  std::size_t clip_id = 0;
  std::size_t dataset_id = 0;
  bool seen = true;
};

/// Generates temporally coherent clips: smooth object motion plus AR(1)
/// illumination flicker around the scene style.
class ClipGenerator {
 public:
  explicit ClipGenerator(std::size_t grid_size = kDefaultGridSize);

  Clip generate(const ClipSpec& spec, Rng& rng) const;

  const FrameGenerator& frame_generator() const { return generator_; }

 private:
  FrameGenerator generator_;
};

/// Weighted pool of scene attributes a dataset draws clips from.
struct AttributePool {
  std::vector<SceneAttributes> attributes;
  std::vector<double> weights;

  SceneAttributes sample(Rng& rng) const;
};

/// A source dataset profile (stands in for KITTI / BDD100k / SHD).
struct DatasetProfile {
  std::string name;
  std::size_t seen_clips = 0;
  /// Unseen clips with pinned attributes (the paper's Table III scenes).
  std::vector<SceneAttributes> unseen_clip_attributes;
  AttributePool pool;
  double style_variation = 0.3;
};

/// The KITTI-like profile: simple — clear/overcast daytime city driving.
DatasetProfile kitti_like_profile();
/// The BDD100k-like profile: large and diverse across all attributes.
DatasetProfile bdd_like_profile();
/// The SHD-like profile: Shanghai dashcam — highway/urban/tunnel, day+night.
DatasetProfile shd_like_profile();

struct WorldConfig {
  std::size_t grid_size = kDefaultGridSize;
  std::size_t frames_per_clip = 120;
  std::uint64_t seed = 42;
  /// Scales every dataset's clip count (1.0 = the paper's 64-clip mix);
  /// tests use smaller worlds.
  double clip_scale = 1.0;
};

/// The full generated corpus.
struct World {
  std::vector<Clip> clips;
  std::vector<std::string> dataset_names;
  WorldConfig config;

  /// All frames with the given split role, across all clips.
  std::vector<const Frame*> frames_with_role(SplitRole role) const;

  /// Frames with the given role restricted to one dataset.
  std::vector<const Frame*> frames_with_role(SplitRole role,
                                             std::size_t dataset_id) const;

  /// All clips of a dataset.
  std::vector<const Clip*> clips_of_dataset(std::size_t dataset_id) const;

  /// The unseen clips (new-scene evaluation, Table III).
  std::vector<const Clip*> unseen_clips() const;

  std::size_t total_frames() const;
};

/// Builds the benchmark world from the three dataset profiles.
World make_benchmark_world(const WorldConfig& config);

/// Builds a world from explicit profiles (tests use tiny custom mixes).
World make_world(const WorldConfig& config,
                 const std::vector<DatasetProfile>& profiles);

/// Synthesizes one fast-changing clip (paper section VI-C): picks
/// `segments` random seen clips and regenerates `segment_length` fresh
/// frames in each clip's scene, splicing them into one sequence.
Clip synthesize_fast_changing_clip(const World& world, std::size_t segments,
                                   std::size_t segment_length, Rng& rng);

}  // namespace anole::world
