#include "world/frame_generator.hpp"

#include <algorithm>
#include <cmath>

namespace anole::world {
namespace {

/// Base (daytime, clear) object signature; roughly unit norm.
constexpr std::array<double, kBlockChannels> kBaseSignature = {0.62, 0.37,
                                                               -0.25, 0.50};

/// Overlap of [a0, a1] with [b0, b1].
double overlap(double a0, double a1, double b0, double b1) {
  return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

std::array<double, kBlockChannels> object_signature(double appearance_angle) {
  // Rotate in the (0,1) and (2,3) planes of the object block: appearance
  // drift with lighting/weather, preserving signal energy.
  const double c = std::cos(appearance_angle);
  const double s = std::sin(appearance_angle);
  std::array<double, kBlockChannels> sig{};
  sig[0] = c * kBaseSignature[0] - s * kBaseSignature[1];
  sig[1] = s * kBaseSignature[0] + c * kBaseSignature[1];
  sig[2] = c * kBaseSignature[2] - s * kBaseSignature[3];
  sig[3] = s * kBaseSignature[2] + c * kBaseSignature[3];
  return sig;
}

FrameGenerator::FrameGenerator(std::size_t grid_size)
    : grid_size_(grid_size) {}

ObjectInstance FrameGenerator::sample_object(const SceneStyle& style,
                                             Rng& rng) const {
  ObjectInstance obj;
  // Log-normal-ish size around the scene's object scale.
  const double scale =
      style.object_scale * std::exp(rng.normal(0.0, 0.35));
  const double aspect = std::exp(rng.normal(0.0, 0.25));
  obj.w = std::clamp(scale * aspect, 0.04, 0.26);
  obj.h = std::clamp(scale / aspect, 0.04, 0.26);
  obj.cx = rng.uniform(obj.w / 2, 1.0 - obj.w / 2);
  // Traffic concentrates in the lower 2/3 of the frame (road region).
  obj.cy = std::clamp(0.35 + 0.6 * rng.uniform(), obj.h / 2, 1.0 - obj.h / 2);
  obj.visibility =
      style.object_visibility(obj.area()) * rng.uniform(0.8, 1.2);
  return obj;
}

Frame FrameGenerator::render(const SceneStyle& style,
                             const SceneAttributes& attrs,
                             const std::vector<ObjectInstance>& objects,
                             Rng& rng) const {
  const std::size_t g = grid_size_;
  Frame frame;
  frame.grid_size = g;
  frame.attributes = attrs;
  frame.objects = objects;
  frame.cells = Tensor::matrix(g * g, kCellChannels);

  const auto sig = object_signature(style.appearance_angle);
  const double cell_size = 1.0 / static_cast<double>(g);

  for (std::size_t y = 0; y < g; ++y) {
    // Sky-to-road vertical luminance gradient scaled by contrast.
    const double row_center = (static_cast<double>(y) + 0.5) * cell_size;
    const double gradient = style.contrast * 0.35 * (0.5 - row_center);
    for (std::size_t x = 0; x < g; ++x) {
      auto cell = frame.cells.row(y * g + x);
      // --- luminance block ---
      for (std::size_t c = 0; c < kBlockChannels; ++c) {
        const double channel_tint = 1.0 - 0.06 * static_cast<double>(c);
        cell[c] = static_cast<float>(style.brightness * channel_tint +
                                     gradient + rng.normal(0.0, style.noise));
      }
      // --- background texture block ---
      for (std::size_t c = 0; c < kBlockChannels; ++c) {
        cell[kBlockChannels + c] = static_cast<float>(
            style.texture[c] * (0.4 + 0.8 * style.brightness) +
            rng.normal(0.0, style.noise));
      }
      // --- object block background: noise + weather clutter ---
      for (std::size_t c = 0; c < kBlockChannels; ++c) {
        cell[2 * kBlockChannels + c] =
            static_cast<float>(rng.normal(0.0, style.noise));
      }
      if (style.clutter > 0.0 && rng.bernoulli(0.10 * style.clutter)) {
        // Rain streaks / snowflakes: object-block energy in a random
        // direction — the detector's main source of false positives.
        const double magnitude = rng.uniform(0.25, 0.8);
        const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979);
        const auto clutter_sig = object_signature(angle);
        for (std::size_t c = 0; c < kBlockChannels; ++c) {
          cell[2 * kBlockChannels + c] +=
              static_cast<float>(magnitude * clutter_sig[c]);
        }
      }
    }
  }

  // --- imprint objects with coverage-weighted signature ---
  for (const auto& obj : objects) {
    const double x0 = obj.cx - obj.w / 2;
    const double x1 = obj.cx + obj.w / 2;
    const double y0 = obj.cy - obj.h / 2;
    const double y1 = obj.cy + obj.h / 2;
    const auto first_x = static_cast<std::size_t>(
        std::clamp(std::floor(x0 / cell_size), 0.0,
                   static_cast<double>(g - 1)));
    const auto last_x = static_cast<std::size_t>(std::clamp(
        std::floor(x1 / cell_size), 0.0, static_cast<double>(g - 1)));
    const auto first_y = static_cast<std::size_t>(
        std::clamp(std::floor(y0 / cell_size), 0.0,
                   static_cast<double>(g - 1)));
    const auto last_y = static_cast<std::size_t>(std::clamp(
        std::floor(y1 / cell_size), 0.0, static_cast<double>(g - 1)));
    // Gaussian radial falloff from the object center gives each object a
    // well-defined peak cell, which is what the detector localizes.
    const double radius = std::max(std::max(obj.w, obj.h) / 2.0, cell_size);
    for (std::size_t y = first_y; y <= last_y; ++y) {
      const double cy0 = static_cast<double>(y) * cell_size;
      for (std::size_t x = first_x; x <= last_x; ++x) {
        const double cx0 = static_cast<double>(x) * cell_size;
        const double cover =
            overlap(x0, x1, cx0, cx0 + cell_size) *
            overlap(y0, y1, cy0, cy0 + cell_size) / (cell_size * cell_size);
        if (cover <= 0.0) continue;
        const double dx_center = cx0 + cell_size / 2 - obj.cx;
        const double dy_center = cy0 + cell_size / 2 - obj.cy;
        const double dist_sq = dx_center * dx_center + dy_center * dy_center;
        const double falloff =
            std::exp(-1.5 * dist_sq / (radius * radius));
        auto cell = frame.cells.row(y * g + x);
        const double strength =
            obj.visibility * std::min(cover, 1.0) * falloff;
        for (std::size_t c = 0; c < kBlockChannels; ++c) {
          cell[2 * kBlockChannels + c] +=
              static_cast<float>(strength * sig[c]);
        }
        // Objects also slightly darken the luminance block beneath them.
        cell[0] -= static_cast<float>(0.08 * strength);
      }
    }
  }

  // --- global photometric statistics over the luminance block ---
  double sum = 0.0;
  double sum_sq = 0.0;
  const std::size_t lum_count = g * g * kBlockChannels;
  for (std::size_t i = 0; i < g * g; ++i) {
    auto cell = frame.cells.row(i);
    for (std::size_t c = 0; c < kBlockChannels; ++c) {
      sum += cell[c];
      sum_sq += static_cast<double>(cell[c]) * cell[c];
    }
  }
  frame.brightness = sum / static_cast<double>(lum_count);
  const double var =
      sum_sq / static_cast<double>(lum_count) -
      frame.brightness * frame.brightness;
  frame.contrast = std::sqrt(std::max(var, 0.0));
  return frame;
}

ObjectDynamics::ObjectDynamics(const FrameGenerator& generator,
                               const SceneStyle& style, Rng& rng)
    : generator_(generator), style_(style) {
  reset(style, rng);
}

void ObjectDynamics::reset(const SceneStyle& style, Rng& rng) {
  style_ = style;
  objects_.clear();
  const int count = std::max(0, rng.poisson(style.object_density));
  for (int i = 0; i < count; ++i) spawn(rng);
}

void ObjectDynamics::spawn(Rng& rng) {
  MovingObject moving;
  moving.instance = generator_.sample_object(style_, rng);
  moving.vx = rng.normal(0.0, 0.008);
  moving.vy = rng.normal(0.0, 0.004);
  moving.growth = rng.normal(0.0, 0.003);
  objects_.push_back(moving);
}

std::vector<ObjectInstance> ObjectDynamics::step(Rng& rng) {
  // Birth-death keeps the population near the style's density.
  const double target = style_.object_density;
  if (rng.bernoulli(0.05) && static_cast<double>(objects_.size()) < 2 * target) {
    spawn(rng);
  }
  std::vector<ObjectInstance> snapshot;
  snapshot.reserve(objects_.size());
  for (auto it = objects_.begin(); it != objects_.end();) {
    auto& obj = it->instance;
    obj.cx += it->vx + rng.normal(0.0, 0.002);
    obj.cy += it->vy + rng.normal(0.0, 0.001);
    const double factor = 1.0 + it->growth;
    obj.w = std::clamp(obj.w * factor, 0.04, 0.26);
    obj.h = std::clamp(obj.h * factor, 0.04, 0.26);
    obj.visibility = style_.object_visibility(obj.area());
    // Despawn once the center leaves the frame: a center outside [0, 1]
    // has no grid cell and would be an unlearnable training target.
    const bool gone = obj.cx < 0.02 || obj.cx > 0.98 || obj.cy < 0.02 ||
                      obj.cy > 0.98 || rng.bernoulli(0.01);
    if (gone) {
      it = objects_.erase(it);
      // Keep the scene populated.
      if (static_cast<double>(objects_.size()) < target) spawn(rng);
      continue;
    }
    snapshot.push_back(obj);
    ++it;
  }
  return snapshot;
}

}  // namespace anole::world
