#include "world/scene_style.hpp"

#include <algorithm>
#include <cmath>

namespace anole::world {
namespace {

/// Per-location background texture signatures: distinct, roughly unit-norm
/// directions so k-means on embeddings can separate locations.
std::array<double, kBlockChannels> location_texture(Location location) {
  switch (location) {
    case Location::kHighway:
      return {0.9, 0.1, -0.3, 0.2};
    case Location::kUrban:
      return {0.2, 0.9, 0.3, -0.2};
    case Location::kResidential:
      return {-0.1, 0.5, 0.8, 0.2};
    case Location::kParkingLot:
      return {0.4, -0.3, 0.6, 0.6};
    case Location::kTunnel:
      return {-0.7, -0.2, 0.1, 0.6};
    case Location::kGasStation:
      return {0.5, 0.5, -0.6, 0.3};
    case Location::kBridge:
      return {0.7, -0.5, 0.2, -0.4};
    case Location::kTollBooth:
      return {-0.3, 0.4, -0.5, 0.7};
  }
  return {};
}

}  // namespace

SceneStyle SceneStyle::from_attributes(const SceneAttributes& attrs,
                                       std::uint64_t jitter_seed,
                                       double variation) {
  SceneStyle style;

  // --- time of day drives illumination ---
  switch (attrs.time) {
    case TimeOfDay::kDaytime:
      style.brightness = 0.70;
      style.contrast = 0.60;
      style.appearance_angle = 0.0;
      break;
    case TimeOfDay::kDawnDusk:
      style.brightness = 0.45;
      style.contrast = 0.45;
      style.appearance_angle = 1.1;
      break;
    case TimeOfDay::kNight:
      style.brightness = 0.20;
      style.contrast = 0.30;
      style.appearance_angle = 2.2;
      break;
  }

  // --- weather modulates illumination, noise, clutter, appearance ---
  switch (attrs.weather) {
    case Weather::kClear:
      style.contrast += 0.10;
      break;
    case Weather::kOvercast:
      style.brightness -= 0.10;
      style.contrast -= 0.05;
      style.appearance_angle += 0.25;
      break;
    case Weather::kRainy:
      style.brightness -= 0.12;
      style.contrast -= 0.10;
      style.noise += 0.06;
      style.clutter = 0.45;
      style.appearance_angle += 0.70;
      break;
    case Weather::kSnowy:
      style.brightness += 0.08;
      style.contrast -= 0.15;
      style.noise += 0.04;
      style.clutter = 0.55;
      style.appearance_angle += 0.80;
      break;
    case Weather::kFoggy:
      style.brightness -= 0.05;
      style.contrast -= 0.20;
      style.fog = 0.5;
      style.appearance_angle += 0.40;
      break;
  }

  // --- location drives texture, density, scale, and tunnels darkness ---
  style.texture = location_texture(attrs.location);
  switch (attrs.location) {
    case Location::kHighway:
      style.object_density = 3.0;
      style.object_scale = 0.16;
      style.appearance_angle += 0.10;
      break;
    case Location::kUrban:
      style.object_density = 6.0;
      style.object_scale = 0.10;
      break;
    case Location::kResidential:
      style.object_density = 3.5;
      style.object_scale = 0.11;
      style.appearance_angle += 0.22;
      break;
    case Location::kParkingLot:
      style.object_density = 7.0;
      style.object_scale = 0.13;
      style.appearance_angle += 0.40;
      break;
    case Location::kTunnel:
      style.object_density = 2.5;
      style.object_scale = 0.14;
      style.brightness = std::min(style.brightness, 0.28);
      style.contrast -= 0.05;
      style.appearance_angle += 0.70;
      break;
    case Location::kGasStation:
      style.object_density = 4.0;
      style.object_scale = 0.12;
      style.appearance_angle += 0.28;
      break;
    case Location::kBridge:
      style.object_density = 3.0;
      style.object_scale = 0.13;
      style.appearance_angle += 0.35;
      break;
    case Location::kTollBooth:
      style.object_density = 5.0;
      style.object_scale = 0.12;
      style.appearance_angle += 0.50;
      break;
  }

  // Weather thins out traffic slightly.
  if (attrs.weather == Weather::kSnowy || attrs.weather == Weather::kFoggy) {
    style.object_density *= 0.8;
  }

  // --- seeded jitter so datasets render the same scene slightly apart ---
  if (variation > 0.0) {
    Rng rng(jitter_seed ^ (attrs.semantic_index() * 0x9e3779b97f4a7c15ULL));
    style.brightness += variation * rng.normal(0.0, 0.04);
    style.contrast += variation * rng.normal(0.0, 0.04);
    style.noise += variation * std::abs(rng.normal(0.0, 0.01));
    style.appearance_angle += variation * rng.normal(0.0, 0.08);
    style.object_density *= 1.0 + variation * rng.normal(0.0, 0.15);
    for (auto& t : style.texture) t += variation * rng.normal(0.0, 0.05);
  }

  style.brightness = std::clamp(style.brightness, 0.05, 1.0);
  style.contrast = std::clamp(style.contrast, 0.05, 1.0);
  style.noise = std::clamp(style.noise, 0.01, 0.5);
  style.object_density = std::max(style.object_density, 0.5);
  return style;
}

double SceneStyle::object_visibility(double object_area) const {
  // Smaller objects are further away: fog and low light hurt them more.
  const double size_factor =
      std::clamp(std::sqrt(std::max(object_area, 1e-4)) / 0.15, 0.3, 1.5);
  const double light = std::clamp(0.35 + 1.1 * brightness, 0.0, 1.3);
  const double fog_penalty = 1.0 - fog * (1.0 - 0.6 * size_factor);
  return std::max(0.05, light * fog_penalty * object_gain * size_factor *
                            (0.5 + 0.8 * contrast));
}

}  // namespace anole::world
