#include "world/frame.hpp"

namespace anole::world {

double Frame::object_area_ratio() const {
  double total = 0.0;
  for (const auto& obj : objects) total += obj.area();
  return total;
}

const char* to_string(SplitRole role) {
  switch (role) {
    case SplitRole::kTrain:
      return "train";
    case SplitRole::kValidation:
      return "val";
    case SplitRole::kTest:
      return "test";
    case SplitRole::kUnseen:
      return "unseen";
  }
  return "?";
}

SplitRole Clip::split_role(std::size_t frame_index) const {
  if (!seen) return SplitRole::kUnseen;
  const std::size_t n = frames.size();
  if (n == 0) return SplitRole::kTrain;
  // Contiguous 6:2:2 blocks (temporal split avoids train/test leakage
  // between adjacent, nearly identical frames).
  const std::size_t train_end = n * 6 / 10;
  const std::size_t val_end = n * 8 / 10;
  if (frame_index < train_end) return SplitRole::kTrain;
  if (frame_index < val_end) return SplitRole::kValidation;
  return SplitRole::kTest;
}

}  // namespace anole::world
