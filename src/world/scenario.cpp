#include "world/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"
#include "util/spec.hpp"
#include "world/frame_generator.hpp"

namespace anole::world {
namespace {

constexpr std::array<const char*, kScenarioPackCount> kPackNames = {
    "drift", "degrade", "bursts", "diurnal"};

/// Frames per scenario segment: long enough for the temporal-smoothing
/// and cache dynamics to matter, short enough that a hostile mix shift
/// produces many scene transitions per stream.
constexpr std::size_t kSegmentLength = 30;

/// Frames a lighting burst lasts, and the exit-flash tail after it.
constexpr std::size_t kBurstLength = 10;
constexpr std::size_t kFlashLength = 2;

/// The hostile late-season mix the drift pack shifts toward: low-light,
/// low-visibility scenes that the seen-clip pools sample rarely (or
/// never), so the decision model's calibration degrades as they take
/// over.
constexpr std::array<SceneAttributes, 6> kLateMix = {{
    {Weather::kFoggy, Location::kTunnel, TimeOfDay::kNight},
    {Weather::kSnowy, Location::kBridge, TimeOfDay::kNight},
    {Weather::kRainy, Location::kHighway, TimeOfDay::kNight},
    {Weather::kFoggy, Location::kUrban, TimeOfDay::kDawnDusk},
    {Weather::kSnowy, Location::kHighway, TimeOfDay::kDawnDusk},
    {Weather::kRainy, Location::kUrban, TimeOfDay::kNight},
}};

std::size_t pack_index(ScenarioPack pack) {
  const auto index = static_cast<std::size_t>(pack);
  ANOLE_CHECK_RANGE(index, kScenarioPackCount, "unknown ScenarioPack");
  return index;
}

/// Time-of-day along one diurnal cycle, phase in [0, 1): midday start,
/// evening rush into dusk, a long night, dawn, back to daytime.
TimeOfDay diurnal_time(double phase) {
  if (phase < 0.25) return TimeOfDay::kDaytime;
  if (phase < 0.375) return TimeOfDay::kDawnDusk;
  if (phase < 0.75) return TimeOfDay::kNight;
  if (phase < 0.875) return TimeOfDay::kDawnDusk;
  return TimeOfDay::kDaytime;
}

/// Traffic-density multiplier of the diurnal replay: morning/evening rush
/// peaks, a night lull. `amplitude` scales the swing.
double diurnal_density_scale(double phase, double amplitude) {
  const auto peak = [phase](double center, double width) {
    const double d = (phase - center) / width;
    return std::exp(-d * d);
  };
  const double rush = peak(0.15, 0.08) + peak(0.85, 0.08);
  const double lull = diurnal_time(phase) == TimeOfDay::kNight ? 0.45 : 0.0;
  return std::clamp(1.0 + amplitude * rush - amplitude * lull, 0.2, 3.0);
}

/// Progressive sensor damage: seeded additive noise on every channel and
/// a neighbor blur on the cell grid (optics fouling / focus loss), with
/// the frame's photometric stats recomputed afterwards. `level` in
/// [0, 1] is the ramp position scaled by the pack intensity; `magnitude`
/// multiplies both effects.
void apply_sensor_degradation(Frame& frame, double level, double magnitude,
                              Rng& rng) {
  const std::size_t g = frame.grid_size;
  const std::size_t cells = g * g;
  const double sigma = 0.10 * level * magnitude;
  const double blur = std::clamp(0.45 * level * magnitude, 0.0, 0.75);

  for (std::size_t i = 0; i < cells; ++i) {
    auto cell = frame.cells.row(i);
    for (std::size_t c = 0; c < kCellChannels; ++c) {
      cell[c] += static_cast<float>(rng.normal(0.0, sigma));
    }
  }

  if (blur > 0.0) {
    // 4-neighbor box blur into a copy so the pass order cannot matter.
    std::vector<float> original(cells * kCellChannels);
    for (std::size_t i = 0; i < cells; ++i) {
      auto cell = frame.cells.row(i);
      for (std::size_t c = 0; c < kCellChannels; ++c) {
        original[i * kCellChannels + c] = cell[c];
      }
    }
    const auto at = [&original](std::size_t cell, std::size_t channel) {
      return original[cell * kCellChannels + channel];
    };
    for (std::size_t y = 0; y < g; ++y) {
      for (std::size_t x = 0; x < g; ++x) {
        const std::size_t i = y * g + x;
        auto cell = frame.cells.row(i);
        for (std::size_t c = 0; c < kCellChannels; ++c) {
          double sum = 0.0;
          std::size_t count = 0;
          if (y > 0) { sum += at(i - g, c); ++count; }
          if (y + 1 < g) { sum += at(i + g, c); ++count; }
          if (x > 0) { sum += at(i - 1, c); ++count; }
          if (x + 1 < g) { sum += at(i + 1, c); ++count; }
          const double neighbor_mean =
              count == 0 ? at(i, c) : sum / static_cast<double>(count);
          cell[c] = static_cast<float>((1.0 - blur) * at(i, c) +
                                       blur * neighbor_mean);
        }
      }
    }
  }

  // Photometric stats over the luminance block, same convention as
  // FrameGenerator::render.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < cells; ++i) {
    auto cell = frame.cells.row(i);
    for (std::size_t c = 0; c < kBlockChannels; ++c) {
      sum += cell[c];
      sum_sq += static_cast<double>(cell[c]) * cell[c];
    }
  }
  const auto lum_count = static_cast<double>(cells * kBlockChannels);
  frame.brightness = sum / lum_count;
  const double var =
      sum_sq / lum_count - frame.brightness * frame.brightness;
  frame.contrast = std::sqrt(std::max(var, 0.0));
}

}  // namespace

const char* to_string(ScenarioPack pack) {
  return kPackNames[pack_index(pack)];
}

std::optional<ScenarioPack> pack_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kScenarioPackCount; ++i) {
    if (name == kPackNames[i]) return static_cast<ScenarioPack>(i);
  }
  return std::nullopt;
}

void ScenarioConfig::arm(ScenarioPack pack, double intensity,
                         double magnitude) {
  ANOLE_CHECK(intensity >= 0.0 && intensity <= 1.0,
              "ScenarioConfig::arm: intensity must be in [0, 1], got ",
              intensity);
  ANOLE_CHECK(std::isfinite(magnitude) && magnitude > 0.0,
              "ScenarioConfig::arm: magnitude must be finite and > 0, got ",
              magnitude);
  packs[pack_index(pack)] = PackState{intensity, magnitude};
}

bool ScenarioConfig::armed() const {
  for (const PackState& state : packs) {
    if (state.intensity > 0.0) return true;
  }
  return false;
}

double ScenarioConfig::intensity(ScenarioPack pack) const {
  return packs[pack_index(pack)].intensity;
}

double ScenarioConfig::magnitude(ScenarioPack pack) const {
  return packs[pack_index(pack)].magnitude;
}

ScenarioConfig ScenarioConfig::parse(const std::string& spec) {
  ScenarioConfig config;
  for (const spec::Token& token : spec::tokenize(spec, "ANOLE_SCENARIO")) {
    if (token.key == "seed") {
      config.seed = spec::parse_u64(token.value, "ANOLE_SCENARIO", "seed");
      continue;
    }
    const auto pack = pack_from_name(token.key);
    ANOLE_CHECK(pack.has_value(), "ANOLE_SCENARIO: unknown pack '",
                token.key,
                "' (packs: drift, degrade, bursts, diurnal)");
    const spec::Rate rate =
        spec::parse_rate(token.value, "ANOLE_SCENARIO", token.key);
    config.packs[pack_index(*pack)] =
        PackState{rate.value, rate.magnitude};
  }
  return config;
}

std::optional<ScenarioConfig> ScenarioConfig::from_env() {
  const char* spec = std::getenv("ANOLE_SCENARIO");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(std::string(spec));
}

std::uint64_t ScenarioStream::trace_hash() const {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFu;
      hash *= 0x100000001B3ULL;
    }
  };
  mix(config.seed);
  for (const ScenarioConfig::PackState& state : config.packs) {
    mix(std::bit_cast<std::uint64_t>(state.intensity));
    mix(std::bit_cast<std::uint64_t>(state.magnitude));
  }
  for (const ScenarioEvent& event : events) {
    mix(static_cast<std::uint64_t>(event.pack));
    mix(event.frame);
    mix(event.detail);
  }
  return hash;
}

ScenarioStream compose_scenario(const World& world,
                                const ScenarioConfig& config,
                                std::size_t length) {
  ANOLE_CHECK_GE(length, 1u, "compose_scenario: length == 0");
  std::vector<const Clip*> seen;
  for (const auto& clip : world.clips) {
    if (clip.seen) seen.push_back(&clip);
  }
  ANOLE_CHECK(!seen.empty(), "compose_scenario: world has no seen clips");

  ScenarioStream stream;
  stream.config = config;
  Clip& clip = stream.clip;
  clip.clip_id = world.clips.size();
  clip.seen = false;
  clip.frames.reserve(length);

  // Independent seeded streams per concern (mirrors the fault injector's
  // per-site streams): arming one pack never shifts another pack's — or
  // the base world's — schedule.
  constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
  Rng scene_rng(config.seed + kGolden * 1);
  Rng drift_rng(config.seed + kGolden * 2);
  Rng burst_rng(config.seed + kGolden * 3);
  Rng degrade_rng(config.seed + kGolden * 4);
  Rng render_rng(config.seed + kGolden * 5);

  const ScenarioConfig::PackState& drift =
      config.packs[pack_index(ScenarioPack::kDrift)];
  const ScenarioConfig::PackState& degrade =
      config.packs[pack_index(ScenarioPack::kDegrade)];
  const ScenarioConfig::PackState& bursts =
      config.packs[pack_index(ScenarioPack::kBursts)];
  const ScenarioConfig::PackState& diurnal =
      config.packs[pack_index(ScenarioPack::kDiurnal)];

  FrameGenerator generator(world.config.grid_size);
  const double denom =
      length > 1 ? static_cast<double>(length - 1) : 1.0;

  std::size_t burst_remaining = 0;
  std::size_t flash_remaining = 0;

  std::size_t frame_index = 0;
  std::size_t segment = 0;
  while (frame_index < length) {
    const std::size_t segment_start = frame_index;
    const double progress = static_cast<double>(segment_start) / denom;

    // --- pick the segment's scene: base mix, or the hostile late mix ---
    const Clip& source = *seen[scene_rng.uniform_index(seen.size())];
    SceneAttributes attrs = source.attributes;
    std::size_t dataset_id = source.dataset_id;
    bool hostile = false;
    if (drift.intensity > 0.0) {
      const double late_weight = std::clamp(
          drift.intensity * progress * drift.magnitude, 0.0, 1.0);
      if (drift_rng.bernoulli(late_weight)) {
        attrs = kLateMix[drift_rng.uniform_index(kLateMix.size())];
        hostile = true;
      }
      stream.events.push_back(ScenarioEvent{
          ScenarioPack::kDrift, segment_start,
          static_cast<std::uint64_t>(attrs.semantic_index()) |
              (hostile ? (std::uint64_t{1} << 32) : 0)});
    }

    // --- diurnal overrides: time-of-day sweep + traffic density ---
    double density_scale = 1.0;
    if (diurnal.intensity > 0.0) {
      const double phase = progress - std::floor(progress);
      attrs.time = diurnal_time(phase);
      density_scale = diurnal_density_scale(
          phase, diurnal.intensity * diurnal.magnitude);
      stream.events.push_back(ScenarioEvent{
          ScenarioPack::kDiurnal, segment_start,
          (static_cast<std::uint64_t>(density_scale * 1000.0) << 2) |
              static_cast<std::uint64_t>(attrs.time)});
    }

    if (degrade.intensity > 0.0) {
      stream.events.push_back(ScenarioEvent{
          ScenarioPack::kDegrade, segment_start,
          static_cast<std::uint64_t>(1000.0 * degrade.intensity *
                                     progress)});
    }

    // A fresh per-segment rendition of the scene: the style seed folds in
    // the segment ordinal so a recurring scene is a new recording, not a
    // replay of the same clip.
    SceneStyle base_style = SceneStyle::from_attributes(
        attrs, config.seed ^ (kGolden * (segment + 1)), 0.35);
    base_style.object_density *= density_scale;
    ObjectDynamics dynamics(generator, base_style, render_rng);

    for (std::size_t i = 0; i < kSegmentLength && frame_index < length;
         ++i, ++frame_index) {
      const double ramp =
          degrade.intensity * (static_cast<double>(frame_index) / denom);
      SceneStyle style = base_style;

      // --- lighting bursts: tunnel-entry crush, exit flash ---
      if (bursts.intensity > 0.0) {
        if (burst_remaining == 0 && flash_remaining == 0 &&
            burst_rng.bernoulli(bursts.intensity)) {
          burst_remaining = kBurstLength;
          stream.events.push_back(
              ScenarioEvent{ScenarioPack::kBursts, frame_index, 1});
        }
        if (burst_remaining > 0) {
          style.brightness =
              std::clamp(style.brightness / bursts.magnitude, 0.02, 1.0);
          style.contrast *= 0.6;
          if (--burst_remaining == 0) {
            flash_remaining = kFlashLength;
            stream.events.push_back(
                ScenarioEvent{ScenarioPack::kBursts, frame_index, 0});
          }
        } else if (flash_remaining > 0) {
          style.brightness = std::min(1.0, style.brightness * 1.6);
          --flash_remaining;
        }
      }

      // --- degradation ramp: part of it is style-level (gain/contrast
      // wash-out), the rest is post-render sensor damage below ---
      if (ramp > 0.0) {
        style.noise += 0.15 * ramp * degrade.magnitude;
        style.contrast *= 1.0 - 0.35 * ramp;
        style.brightness =
            std::clamp(style.brightness * (1.0 - 0.15 * ramp), 0.05, 1.0);
      }

      Frame frame =
          generator.render(style, attrs, dynamics.step(render_rng),
                           render_rng);
      if (ramp > 0.0) {
        apply_sensor_degradation(frame, ramp, degrade.magnitude,
                                 degrade_rng);
      }
      frame.clip_id = clip.clip_id;
      frame.dataset_id = dataset_id;
      frame.frame_index = frame_index;
      clip.frames.push_back(std::move(frame));
    }
    ++segment;
  }

  clip.attributes = clip.frames.front().attributes;
  return stream;
}

}  // namespace anole::world
