// Frame and Clip data types — the synthetic stand-ins for driving video.
//
// A frame is a G x G grid of feature cells (kCellChannels channels each,
// see SceneStyle) plus the ground-truth object list. Clips add temporal
// identity: consecutive frames share a scene and smoothly moving objects.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "world/attributes.hpp"

namespace anole::world {

/// Default grid resolution (cells per side).
inline constexpr std::size_t kDefaultGridSize = 12;

/// A ground-truth object, in normalized frame coordinates.
struct ObjectInstance {
  double cx = 0.5;  ///< center x in [0, 1]
  double cy = 0.5;  ///< center y in [0, 1]
  double w = 0.1;   ///< width in [0, 1]
  double h = 0.1;   ///< height in [0, 1]
  /// How strongly the object imprints on the feature grid (0 = invisible).
  double visibility = 1.0;

  double area() const { return w * h; }
};

/// One video frame: grid features + ground truth + provenance.
struct Frame {
  /// [grid*grid, kCellChannels] cell features, row-major by (y, x).
  Tensor cells;
  std::size_t grid_size = kDefaultGridSize;

  std::vector<ObjectInstance> objects;

  SceneAttributes attributes;
  /// Index of the clip this frame belongs to within its World.
  std::size_t clip_id = 0;
  /// Frame index within the clip.
  std::size_t frame_index = 0;
  /// Which source dataset generated this frame (index into World::datasets).
  std::size_t dataset_id = 0;

  /// Global photometric statistics, regenerating the paper's Fig. 5 axes.
  double brightness = 0.0;  ///< mean of the luminance block
  double contrast = 0.0;    ///< stddev of the luminance block

  std::size_t semantic_scene_id() const { return attributes.semantic_index(); }

  /// Total ground-truth object area as a fraction of the frame.
  double object_area_ratio() const;

  std::size_t cell_count() const { return grid_size * grid_size; }
};

/// How a clip's frames are split for experiments (paper section VI-A1:
/// seen clips split 6:2:2 into train/val/test; unseen clips are held out).
enum class SplitRole { kTrain, kValidation, kTest, kUnseen };

const char* to_string(SplitRole role);

/// A contiguous sequence of frames from one recording.
struct Clip {
  std::vector<Frame> frames;
  SceneAttributes attributes;
  std::size_t clip_id = 0;
  std::size_t dataset_id = 0;
  bool seen = true;  ///< false = excluded from all training (new-scene eval)

  std::size_t size() const { return frames.size(); }

  /// Split role of frame i under the 6:2:2 contiguous-block protocol
  /// (kUnseen for every frame of an unseen clip).
  SplitRole split_role(std::size_t frame_index) const;
};

}  // namespace anole::world
