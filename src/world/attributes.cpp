#include "world/attributes.hpp"

#include <cctype>

#include "util/check.hpp"

namespace anole::world {

const char* to_string(Weather weather) {
  switch (weather) {
    case Weather::kClear:
      return "clear";
    case Weather::kOvercast:
      return "overcast";
    case Weather::kRainy:
      return "rainy";
    case Weather::kSnowy:
      return "snowy";
    case Weather::kFoggy:
      return "foggy";
  }
  return "?";
}

const char* to_string(Location location) {
  switch (location) {
    case Location::kHighway:
      return "highway";
    case Location::kUrban:
      return "urban";
    case Location::kResidential:
      return "residential";
    case Location::kParkingLot:
      return "parking_lot";
    case Location::kTunnel:
      return "tunnel";
    case Location::kGasStation:
      return "gas_station";
    case Location::kBridge:
      return "bridge";
    case Location::kTollBooth:
      return "toll_booth";
  }
  return "?";
}

const char* to_string(TimeOfDay time) {
  switch (time) {
    case TimeOfDay::kDaytime:
      return "daytime";
    case TimeOfDay::kDawnDusk:
      return "dawn_dusk";
    case TimeOfDay::kNight:
      return "night";
  }
  return "?";
}

std::size_t SceneAttributes::semantic_index() const {
  return static_cast<std::size_t>(weather) * kLocationCount * kTimeOfDayCount +
         static_cast<std::size_t>(location) * kTimeOfDayCount +
         static_cast<std::size_t>(time);
}

SceneAttributes SceneAttributes::from_semantic_index(std::size_t index) {
  ANOLE_CHECK_RANGE(index, kSemanticSceneCount,
                    "SceneAttributes::from_semantic_index");
  SceneAttributes attrs;
  attrs.time = static_cast<TimeOfDay>(index % kTimeOfDayCount);
  index /= kTimeOfDayCount;
  attrs.location = static_cast<Location>(index % kLocationCount);
  index /= kLocationCount;
  attrs.weather = static_cast<Weather>(index);
  return attrs;
}

std::string SceneAttributes::label() const {
  return std::string(to_string(weather)) + "/" + to_string(location) + "/" +
         to_string(time);
}

std::string SceneAttributes::short_label() const {
  auto abbreviate = [](const std::string& name) {
    std::string out;
    out += static_cast<char>(std::toupper(name[0]));
    if (name.size() > 1) out += name[1];
    out += '.';
    return out;
  };
  return abbreviate(to_string(location)) + ", " + abbreviate(to_string(time));
}

std::vector<SceneAttributes> all_scene_attributes() {
  std::vector<SceneAttributes> all;
  all.reserve(kSemanticSceneCount);
  for (std::size_t i = 0; i < kSemanticSceneCount; ++i) {
    all.push_back(SceneAttributes::from_semantic_index(i));
  }
  return all;
}

}  // namespace anole::world
