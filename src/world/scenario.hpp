// Deterministic hostile-world scenario packs composed on top of the world
// simulator.
//
// The benchmark worlds are stationary: every clip is drawn from a fixed
// scene mix and the runtime is never asked to survive a changing world.
// A ScenarioConfig arms up to four hostility packs and compose_scenario()
// synthesizes one long frame stream that applies them on top of the seen
// scene styles of an existing World:
//
//   drift    gradual distribution drift: the scene mix interpolates from
//            the world's seen-clip mix toward a hostile late-season mix
//            (fog / snow / night scenes the decision model saw rarely).
//   degrade  progressive sensor degradation: seeded additive noise and a
//            neighbor-blur ramp on the rendered cell features, with the
//            frame's photometric stats recomputed afterwards.
//   bursts   scene-transition bursts: seeded tunnel-style lighting flips
//            (brightness crush for a short window, exit flash after).
//   diurnal  a day-night traffic replay: time-of-day sweeps one full
//            diurnal cycle over the stream while object density follows
//            morning/evening rush peaks.
//
// Configuration mirrors ANOLE_FAULTS: the ANOLE_SCENARIO environment
// variable (grammar below) or programmatic arm(). Composition is fully
// sequential and seeded — per-pack Rng streams keep an unarmed pack from
// perturbing an armed one — so for a given (world, config, length) the
// stream and its scenario event trace are bitwise identical across runs
// and thread counts; the FNV-1a trace hash pins that in tests.
//
// Spec grammar (comma-separated tokens):
//   ANOLE_SCENARIO="seed=7,drift=1.0,degrade=0.6x2,bursts=0.03x6,diurnal=1"
//     seed=<u64>             stream seed (default 0x5CE7A)
//     <pack>=<intensity>     pack intensity in [0, 1] (0 disarms)
//     <pack>=<i>x<mag>       intensity plus a pack-specific magnitude:
//                            drift    late-mix weight multiplier
//                            degrade  noise/blur ramp multiplier
//                            bursts   brightness crush factor of a flip
//                            diurnal  rush-hour traffic amplitude
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "world/world.hpp"

namespace anole::world {

/// Named hostility packs. Each pack draws from its own Rng stream so the
/// schedule of one pack never depends on which others are armed.
enum class ScenarioPack : std::size_t {
  /// Gradual distribution drift (seasonal weather-mix shift).
  kDrift = 0,
  /// Progressive sensor degradation (noise/blur ramp).
  kDegrade,
  /// Scene-transition bursts (tunnel-style lighting flips).
  kBursts,
  /// Diurnal traffic replay (day-night cycle + rush-hour density).
  kDiurnal,
};

inline constexpr std::size_t kScenarioPackCount = 4;

const char* to_string(ScenarioPack pack);
std::optional<ScenarioPack> pack_from_name(std::string_view name);

struct ScenarioConfig {
  static constexpr std::uint64_t kDefaultSeed = 0x5CE7AULL;

  struct PackState {
    /// Pack strength in [0, 1]; 0 means the pack is disarmed.
    double intensity = 0.0;
    /// Pack-specific magnitude (see the spec grammar above); must be > 0.
    double magnitude = 1.0;
  };

  std::uint64_t seed = kDefaultSeed;
  std::array<PackState, kScenarioPackCount> packs;

  /// Arms `pack` with the given intensity (in [0, 1]) and magnitude.
  void arm(ScenarioPack pack, double intensity, double magnitude = 1.0);

  /// True when any pack has a non-zero intensity.
  bool armed() const;

  double intensity(ScenarioPack pack) const;
  double magnitude(ScenarioPack pack) const;

  /// Parses the spec grammar documented above. Throws
  /// anole::ContractViolation naming the offending token on malformed
  /// input (unknown pack, out-of-range intensity, non-finite or
  /// non-positive magnitude, trailing garbage).
  static ScenarioConfig parse(const std::string& spec);

  /// Builds a config from the ANOLE_SCENARIO environment variable.
  /// Returns nullopt when the variable is unset or empty.
  static std::optional<ScenarioConfig> from_env();
};

/// One scheduled hostility event, in stream order — the replayable trace.
struct ScenarioEvent {
  ScenarioPack pack = ScenarioPack::kDrift;
  /// Stream frame index where the event took effect.
  std::uint64_t frame = 0;
  /// Pack-specific detail:
  ///   drift    semantic scene id of the segment, bit 32 set when the
  ///            segment came from the hostile late mix
  ///   degrade  ramp level in per-mille at the segment start
  ///   bursts   1 = burst entry, 0 = burst exit
  ///   diurnal  (density per-mille << 2) | time-of-day index
  std::uint64_t detail = 0;
};

/// A composed hostile stream: the frames, the event schedule that shaped
/// them, and the config that produced it.
struct ScenarioStream {
  Clip clip;
  std::vector<ScenarioEvent> events;
  ScenarioConfig config;

  /// FNV-1a hash over the config's armed state and every event; equal
  /// hashes across two compositions mean identical hostility schedules.
  std::uint64_t trace_hash() const;
};

/// Composes `length` hostile frames on top of `world`'s seen scenes.
/// Requires at least one seen clip and length >= 1. Composition is
/// sequential and deterministic in (world, config, length).
ScenarioStream compose_scenario(const World& world,
                                const ScenarioConfig& config,
                                std::size_t length);

}  // namespace anole::world
