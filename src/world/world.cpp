#include "world/world.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace anole::world {

ClipGenerator::ClipGenerator(std::size_t grid_size)
    : generator_(grid_size) {}

Clip ClipGenerator::generate(const ClipSpec& spec, Rng& rng) const {
  Clip clip;
  clip.attributes = spec.attributes;
  clip.clip_id = spec.clip_id;
  clip.dataset_id = spec.dataset_id;
  clip.seen = spec.seen;
  clip.frames.reserve(spec.length);

  SceneStyle base_style = SceneStyle::from_attributes(
      spec.attributes, spec.style_seed, spec.style_variation);
  ObjectDynamics dynamics(generator_, base_style, rng);

  double flicker = 0.0;  // AR(1) illumination flicker
  for (std::size_t i = 0; i < spec.length; ++i) {
    flicker = 0.9 * flicker + rng.normal(0.0, 0.012);
    SceneStyle style = base_style;
    style.brightness =
        std::clamp(base_style.brightness * (1.0 + flicker), 0.05, 1.0);
    Frame frame =
        generator_.render(style, spec.attributes, dynamics.step(rng), rng);
    frame.clip_id = spec.clip_id;
    frame.dataset_id = spec.dataset_id;
    frame.frame_index = i;
    clip.frames.push_back(std::move(frame));
  }
  return clip;
}

SceneAttributes AttributePool::sample(Rng& rng) const {
  ANOLE_CHECK(!attributes.empty(), "AttributePool::sample: empty pool");
  ANOLE_CHECK_EQ(weights.size(), attributes.size(),
                 "AttributePool::sample: weight/attribute count mismatch");
  return attributes[rng.weighted_index(weights)];
}

namespace {

AttributePool make_pool(const std::vector<Weather>& weathers,
                        const std::vector<double>& weather_weights,
                        const std::vector<Location>& locations,
                        const std::vector<double>& location_weights,
                        const std::vector<TimeOfDay>& times,
                        const std::vector<double>& time_weights) {
  AttributePool pool;
  for (std::size_t w = 0; w < weathers.size(); ++w) {
    for (std::size_t l = 0; l < locations.size(); ++l) {
      for (std::size_t t = 0; t < times.size(); ++t) {
        pool.attributes.push_back(
            SceneAttributes{weathers[w], locations[l], times[t]});
        pool.weights.push_back(weather_weights[w] * location_weights[l] *
                               time_weights[t]);
      }
    }
  }
  return pool;
}

}  // namespace

DatasetProfile kitti_like_profile() {
  DatasetProfile profile;
  profile.name = "KITTI";
  profile.seen_clips = 9;
  // Table III lists one unseen KITTI clip: {Street, Day}; our grammar maps
  // "street" to the residential location.
  profile.unseen_clip_attributes = {
      {Weather::kClear, Location::kResidential, TimeOfDay::kDaytime}};
  profile.pool = make_pool(
      {Weather::kClear, Weather::kOvercast}, {0.7, 0.3},
      {Location::kUrban, Location::kResidential}, {0.5, 0.5},
      {TimeOfDay::kDaytime}, {1.0});
  profile.style_variation = 0.25;
  return profile;
}

DatasetProfile bdd_like_profile() {
  DatasetProfile profile;
  profile.name = "BDD100k";
  profile.seen_clips = 40;
  profile.unseen_clip_attributes = {
      {Weather::kClear, Location::kUrban, TimeOfDay::kNight},
      {Weather::kOvercast, Location::kUrban, TimeOfDay::kDaytime},
      {Weather::kClear, Location::kHighway, TimeOfDay::kDawnDusk},
      {Weather::kRainy, Location::kResidential, TimeOfDay::kNight}};
  profile.pool = make_pool(
      {Weather::kClear, Weather::kOvercast, Weather::kRainy, Weather::kSnowy,
       Weather::kFoggy},
      {0.26, 0.20, 0.20, 0.18, 0.16},
      {Location::kHighway, Location::kUrban, Location::kResidential,
       Location::kParkingLot, Location::kTunnel, Location::kGasStation,
       Location::kBridge, Location::kTollBooth},
      {0.20, 0.24, 0.16, 0.08, 0.09, 0.07, 0.09, 0.07},
      {TimeOfDay::kDaytime, TimeOfDay::kDawnDusk, TimeOfDay::kNight},
      {0.40, 0.25, 0.35});
  profile.style_variation = 0.5;
  return profile;
}

DatasetProfile shd_like_profile() {
  DatasetProfile profile;
  profile.name = "SHD";
  profile.seen_clips = 9;
  profile.unseen_clip_attributes = {
      {Weather::kClear, Location::kTunnel, TimeOfDay::kNight}};
  profile.pool = make_pool(
      {Weather::kClear, Weather::kRainy}, {0.7, 0.3},
      {Location::kHighway, Location::kUrban, Location::kTunnel},
      {0.4, 0.4, 0.2},
      {TimeOfDay::kDaytime, TimeOfDay::kNight}, {0.6, 0.4});
  profile.style_variation = 0.35;
  return profile;
}

std::vector<const Frame*> World::frames_with_role(SplitRole role) const {
  std::vector<const Frame*> frames;
  for (const auto& clip : clips) {
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      if (clip.split_role(i) == role) frames.push_back(&clip.frames[i]);
    }
  }
  return frames;
}

std::vector<const Frame*> World::frames_with_role(
    SplitRole role, std::size_t dataset_id) const {
  std::vector<const Frame*> frames;
  for (const auto& clip : clips) {
    if (clip.dataset_id != dataset_id) continue;
    for (std::size_t i = 0; i < clip.frames.size(); ++i) {
      if (clip.split_role(i) == role) frames.push_back(&clip.frames[i]);
    }
  }
  return frames;
}

std::vector<const Clip*> World::clips_of_dataset(
    std::size_t dataset_id) const {
  std::vector<const Clip*> result;
  for (const auto& clip : clips) {
    if (clip.dataset_id == dataset_id) result.push_back(&clip);
  }
  return result;
}

std::vector<const Clip*> World::unseen_clips() const {
  std::vector<const Clip*> result;
  for (const auto& clip : clips) {
    if (!clip.seen) result.push_back(&clip);
  }
  return result;
}

std::size_t World::total_frames() const {
  std::size_t total = 0;
  for (const auto& clip : clips) total += clip.frames.size();
  return total;
}

World make_world(const WorldConfig& config,
                 const std::vector<DatasetProfile>& profiles) {
  World world;
  world.config = config;
  ANOLE_CHECK_GE(config.grid_size, 1u, "make_world: grid_size == 0");
  ANOLE_CHECK_GE(config.frames_per_clip, 1u,
                 "make_world: frames_per_clip == 0");
  ANOLE_CHECK(config.clip_scale > 0.0,
              "make_world: clip_scale must be positive, got ",
              config.clip_scale);
  Rng rng(config.seed);
  ClipGenerator generator(config.grid_size);

  std::size_t clip_id = 0;
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const DatasetProfile& profile = profiles[d];
    world.dataset_names.push_back(profile.name);
    const auto scaled = static_cast<std::size_t>(std::max(
        1.0, std::round(static_cast<double>(profile.seen_clips) *
                        config.clip_scale)));
    for (std::size_t c = 0; c < scaled; ++c) {
      ClipSpec spec;
      spec.attributes = profile.pool.sample(rng);
      spec.length = config.frames_per_clip;
      spec.style_variation = profile.style_variation;
      spec.style_seed = config.seed ^ (0x5bd1e995ULL * (clip_id + 1));
      spec.clip_id = clip_id;
      spec.dataset_id = d;
      spec.seen = true;
      world.clips.push_back(generator.generate(spec, rng));
      ++clip_id;
    }
    for (const auto& attrs : profile.unseen_clip_attributes) {
      ClipSpec spec;
      spec.attributes = attrs;
      spec.length = config.frames_per_clip;
      spec.style_variation = profile.style_variation;
      spec.style_seed = config.seed ^ (0xc2b2ae35ULL * (clip_id + 1));
      spec.clip_id = clip_id;
      spec.dataset_id = d;
      spec.seen = false;
      world.clips.push_back(generator.generate(spec, rng));
      ++clip_id;
    }
  }
  return world;
}

World make_benchmark_world(const WorldConfig& config) {
  return make_world(config, {kitti_like_profile(), bdd_like_profile(),
                             shd_like_profile()});
}

Clip synthesize_fast_changing_clip(const World& world, std::size_t segments,
                                   std::size_t segment_length, Rng& rng) {
  ANOLE_CHECK_GE(segments, 1u, "synthesize_fast_changing_clip: segments == 0");
  ANOLE_CHECK_GE(segment_length, 1u,
                 "synthesize_fast_changing_clip: segment_length == 0");
  std::vector<const Clip*> seen;
  for (const auto& clip : world.clips) {
    if (clip.seen) seen.push_back(&clip);
  }
  ANOLE_CHECK(!seen.empty(), "synthesize_fast_changing_clip: no seen clips");
  ClipGenerator generator(world.config.grid_size);
  Clip spliced;
  spliced.seen = false;
  spliced.clip_id = world.clips.size();
  std::size_t frame_index = 0;
  for (std::size_t s = 0; s < segments; ++s) {
    const Clip& source = *seen[rng.uniform_index(seen.size())];
    ClipSpec spec;
    spec.attributes = source.attributes;
    spec.length = segment_length;
    spec.style_variation = 0.3;
    spec.style_seed = world.config.seed ^ (0x27d4eb2fULL * (source.clip_id + 1));
    spec.clip_id = spliced.clip_id;
    spec.dataset_id = source.dataset_id;
    Clip segment = generator.generate(spec, rng);
    for (auto& frame : segment.frames) {
      frame.frame_index = frame_index++;
      spliced.frames.push_back(std::move(frame));
    }
  }
  spliced.attributes = spliced.frames.empty() ? SceneAttributes{}
                                              : spliced.frames[0].attributes;
  return spliced;
}

}  // namespace anole::world
