// SceneStyle: the generative latent of a semantic scene.
//
// The paper's premise is that the *data distribution* a frame is drawn from
// is conditioned on the semantic scene (weather, location, time of day),
// and that object appearance changes with it (cars look different at night,
// rain adds clutter). SceneStyle encodes that conditioning as a small set
// of interpretable generative parameters used by FrameGenerator.
#pragma once

#include <array>

#include "util/rng.hpp"
#include "world/attributes.hpp"

namespace anole::world {

/// Number of channels in each of the three cell-feature blocks
/// (luminance, background texture, object signature).
inline constexpr std::size_t kBlockChannels = 4;

/// Total channels per grid cell.
inline constexpr std::size_t kCellChannels = 3 * kBlockChannels;

/// Generative parameters of one scene.
struct SceneStyle {
  /// Global illumination level in [0.05, 1].
  double brightness = 0.65;
  /// Luminance spread in [0.05, 1]; low contrast washes out objects.
  double contrast = 0.5;
  /// Additive sensor/weather noise sigma.
  double noise = 0.05;
  /// Fog density in [0, 1]; attenuates object visibility with distance.
  double fog = 0.0;
  /// Rain/snow clutter intensity in [0, 1]; injects false-object energy.
  double clutter = 0.0;
  /// Location texture signature written to the background block.
  std::array<double, kBlockChannels> texture{};
  /// Expected number of foreground objects per frame.
  double object_density = 4.0;
  /// Mean object size as a fraction of frame width.
  double object_scale = 0.12;
  /// Rotation (radians) of the object signature within the object block:
  /// models appearance shift across time-of-day / weather.
  double appearance_angle = 0.0;
  /// Multiplier on object signal energy.
  double object_gain = 1.0;

  /// Deterministic style for a semantic scene. `variation` in [0, 1]
  /// scales a seeded per-scene jitter so that distinct datasets can have
  /// slightly different renditions of the same semantic scene.
  static SceneStyle from_attributes(const SceneAttributes& attrs,
                                    std::uint64_t jitter_seed = 0,
                                    double variation = 0.0);

  /// Effective visibility multiplier applied to object signal energy,
  /// given an object's normalized size (proxy for distance).
  double object_visibility(double object_area) const;
};

}  // namespace anole::world
