// Global frame descriptor used as input to the scene encoder (M_scene) and
// the decision model (M_decision): per-channel means and spreads plus a
// luminance histogram. In the paper this role is played by raw pixels fed
// to a ResNet18; here the descriptor is the fixed "stem" and the learned
// encoder sits on top.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"
#include "world/frame.hpp"
#include "world/scene_style.hpp"

namespace anole::world {

class FrameFeaturizer {
 public:
  /// Number of luminance histogram bins in the descriptor.
  static constexpr std::size_t kHistogramBins = 8;

  /// Descriptor width: mean + stddev per channel, plus the histogram.
  static constexpr std::size_t feature_count() {
    return 2 * kCellChannels + kHistogramBins;
  }

  /// Descriptor of one frame as a [1, feature_count] matrix row.
  Tensor featurize(const Frame& frame) const;

  /// Descriptors of many frames stacked into [n, feature_count].
  Tensor featurize_batch(const std::vector<const Frame*>& frames) const;
};

}  // namespace anole::world
