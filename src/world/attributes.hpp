// Semantic scene attributes, mirroring the paper's scene grammar for
// driving data: {clear, overcast, rainy, snowy, foggy} weather x
// {highway, urban, residential, parking lot, tunnel, gas station, bridge,
// toll booth} location x {daytime, dawn/dusk, night} time-of-day,
// giving the paper's 120 fine-grained semantic scenes.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace anole::world {

enum class Weather : std::uint8_t {
  kClear = 0,
  kOvercast,
  kRainy,
  kSnowy,
  kFoggy,
};
inline constexpr std::size_t kWeatherCount = 5;

enum class Location : std::uint8_t {
  kHighway = 0,
  kUrban,
  kResidential,
  kParkingLot,
  kTunnel,
  kGasStation,
  kBridge,
  kTollBooth,
};
inline constexpr std::size_t kLocationCount = 8;

enum class TimeOfDay : std::uint8_t {
  kDaytime = 0,
  kDawnDusk,
  kNight,
};
inline constexpr std::size_t kTimeOfDayCount = 3;

/// Total number of fine-grained semantic scenes (5 x 8 x 3 = 120).
inline constexpr std::size_t kSemanticSceneCount =
    kWeatherCount * kLocationCount * kTimeOfDayCount;

const char* to_string(Weather weather);
const char* to_string(Location location);
const char* to_string(TimeOfDay time);

/// One point in the semantic scene grammar.
struct SceneAttributes {
  Weather weather = Weather::kClear;
  Location location = Location::kUrban;
  TimeOfDay time = TimeOfDay::kDaytime;

  bool operator==(const SceneAttributes&) const = default;

  /// Flat index in [0, kSemanticSceneCount).
  std::size_t semantic_index() const;

  /// Inverse of semantic_index().
  static SceneAttributes from_semantic_index(std::size_t index);

  /// e.g. "rainy/urban/night".
  std::string label() const;

  /// Short label like the paper's Table III headers, e.g. "Ur., Ni.".
  std::string short_label() const;
};

/// All 120 attribute combinations in semantic-index order.
std::vector<SceneAttributes> all_scene_attributes();

}  // namespace anole::world
