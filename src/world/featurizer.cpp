#include "world/featurizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/parallel.hpp"

namespace anole::world {
namespace {

void write_descriptor(const Frame& frame, std::span<float> out) {
  const std::size_t cells = frame.cell_count();
  // Per-channel mean and stddev.
  for (std::size_t c = 0; c < kCellChannels; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
      const float v = frame.cells.at(i, c);
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    const double mean = sum / static_cast<double>(cells);
    const double var =
        std::max(0.0, sum_sq / static_cast<double>(cells) - mean * mean);
    out[c] = static_cast<float>(mean);
    out[kCellChannels + c] = static_cast<float>(std::sqrt(var));
  }
  // Luminance histogram over per-cell mean of the luminance block,
  // range [-0.25, 1.25].
  constexpr double kLo = -0.25;
  constexpr double kHi = 1.25;
  const std::size_t bins = FrameFeaturizer::kHistogramBins;
  std::vector<double> counts(bins, 0.0);
  for (std::size_t i = 0; i < cells; ++i) {
    double lum = 0.0;
    for (std::size_t c = 0; c < kBlockChannels; ++c) {
      lum += frame.cells.at(i, c);
    }
    lum /= static_cast<double>(kBlockChannels);
    const double clamped = std::clamp(lum, kLo, kHi - 1e-9);
    const auto bin = static_cast<std::size_t>((clamped - kLo) / (kHi - kLo) *
                                              static_cast<double>(bins));
    counts[bin] += 1.0;
  }
  for (std::size_t b = 0; b < bins; ++b) {
    out[2 * kCellChannels + b] =
        static_cast<float>(counts[b] / static_cast<double>(cells));
  }
}

}  // namespace

Tensor FrameFeaturizer::featurize(const Frame& frame) const {
  Tensor out = Tensor::matrix(1, feature_count());
  write_descriptor(frame, out.row(0));
  return out;
}

Tensor FrameFeaturizer::featurize_batch(
    const std::vector<const Frame*>& frames) const {
  Tensor out = Tensor::uninitialized(Shape{frames.size(), feature_count()});
  if (frames.empty()) return out;
  // Disjoint output rows: safe and deterministic at any thread count.
  // The work hint (one descriptor scans every cell channel once) keeps
  // small batches inline instead of waking the pool.
  const std::size_t work_per_frame =
      frames.front()->cell_count() * kCellChannels;
  par::parallel_for(0, frames.size(), 8, work_per_frame, [&](std::size_t i) {
    write_descriptor(*frames[i], out.row(i));
  });
  return out;
}

}  // namespace anole::world
