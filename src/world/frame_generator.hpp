// Renders Frames from a SceneStyle and an object list, and evolves object
// state over time for clips.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "world/frame.hpp"
#include "world/scene_style.hpp"

namespace anole::world {

/// The canonical object signature direction in the object block; scenes
/// rotate it by SceneStyle::appearance_angle before imprinting.
std::array<double, kBlockChannels> object_signature(double appearance_angle);

/// Stateless frame renderer.
class FrameGenerator {
 public:
  explicit FrameGenerator(std::size_t grid_size = kDefaultGridSize);

  /// Renders one frame of `objects` under `style`. Fills features, stats,
  /// attributes; provenance fields (clip/dataset ids) are left default.
  Frame render(const SceneStyle& style, const SceneAttributes& attrs,
               const std::vector<ObjectInstance>& objects, Rng& rng) const;

  /// Samples a fresh object consistent with `style`.
  ObjectInstance sample_object(const SceneStyle& style, Rng& rng) const;

  std::size_t grid_size() const { return grid_size_; }

 private:
  std::size_t grid_size_;
};

/// Object motion state for temporally coherent clips.
struct MovingObject {
  ObjectInstance instance;
  double vx = 0.0;
  double vy = 0.0;
  double growth = 0.0;  ///< per-frame relative size change (approach/recede)
};

/// Birth-death object dynamics targeting the style's object density.
class ObjectDynamics {
 public:
  ObjectDynamics(const FrameGenerator& generator, const SceneStyle& style,
                 Rng& rng);

  /// Advances one frame and returns the current object list.
  std::vector<ObjectInstance> step(Rng& rng);

  /// Resets the population for a new scene (used at splice points of the
  /// synthesized fast-changing clips).
  void reset(const SceneStyle& style, Rng& rng);

 private:
  void spawn(Rng& rng);

  const FrameGenerator& generator_;
  SceneStyle style_;
  std::vector<MovingObject> objects_;
};

}  // namespace anole::world
