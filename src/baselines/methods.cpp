#include "baselines/methods.hpp"

#include "util/check.hpp"

namespace anole::baselines {
namespace {

std::unique_ptr<SingleModelMethod> train_single(
    const world::World& world, const detect::GridDetectorConfig& detector_config,
    const detect::DetectorTrainConfig& train_config, Rng& rng) {
  const auto frames = world.frames_with_role(world::SplitRole::kTrain);
  ANOLE_CHECK(!frames.empty(), "train_single: world has no train frames");
  auto detector = std::make_unique<detect::GridDetector>(
      detector_config, rng, world.config.grid_size);
  detect::train_detector(*detector, frames, train_config, rng);
  return std::make_unique<SingleModelMethod>(detector_config.name,
                                             std::move(detector));
}

}  // namespace

SingleModelMethod::SingleModelMethod(
    std::string name, std::unique_ptr<detect::GridDetector> detector)
    : name_(std::move(name)), detector_(std::move(detector)) {}

std::vector<detect::Detection> SingleModelMethod::infer(
    const world::Frame& frame) {
  return detector_->detect(frame);
}

std::uint64_t SingleModelMethod::detector_flops() const {
  return detector_->flops_per_frame();
}

std::uint64_t SingleModelMethod::weight_bytes() {
  return detector_->weight_bytes();
}

std::unique_ptr<SingleModelMethod> train_sdm(const world::World& world,
                                             const BaselineConfig& config,
                                             Rng& rng) {
  return train_single(world, config.deep_config, config.detector_train, rng);
}

std::unique_ptr<SingleModelMethod> train_ssm(const world::World& world,
                                             const BaselineConfig& config,
                                             Rng& rng) {
  return train_single(world, config.compressed_config, config.detector_train,
                      rng);
}

CdgMethod::CdgMethod(
    Tensor centroids,
    std::vector<std::unique_ptr<detect::GridDetector>> detectors)
    : centroids_(std::move(centroids)), detectors_(std::move(detectors)) {
  ANOLE_CHECK(!detectors_.empty(), "CdgMethod: no detectors");
  ANOLE_CHECK_EQ(centroids_.rows(), detectors_.size(),
                 "CdgMethod: centroid/detector count mismatch");
}

std::size_t CdgMethod::select_cluster(const world::Frame& frame) const {
  const Tensor descriptor = featurizer_.featurize(frame);
  return cluster::nearest_centroid(centroids_, descriptor.row(0));
}

std::vector<detect::Detection> CdgMethod::infer(const world::Frame& frame) {
  return detectors_[select_cluster(frame)]->detect(frame);
}

std::uint64_t CdgMethod::detector_flops() const {
  return detectors_.front()->flops_per_frame();
}

std::uint64_t CdgMethod::decision_flops() const {
  // Nearest-centroid search: one distance per cluster.
  return static_cast<std::uint64_t>(2 * centroids_.rows() *
                                    centroids_.cols());
}

std::uint64_t CdgMethod::weight_bytes() {
  std::uint64_t total = 0;
  for (auto& detector : detectors_) total += detector->weight_bytes();
  return total;
}

std::unique_ptr<CdgMethod> train_cdg(const world::World& world,
                                     const BaselineConfig& config, Rng& rng) {
  const auto frames = world.frames_with_role(world::SplitRole::kTrain);
  ANOLE_CHECK_GE(config.cdg_clusters, 1u, "train_cdg: cdg_clusters == 0");
  ANOLE_CHECK_GE(frames.size(), config.cdg_clusters,
                 "train_cdg: fewer train frames than clusters");
  const world::FrameFeaturizer featurizer;
  const Tensor descriptors = featurizer.featurize_batch(frames);
  cluster::KMeansConfig kmeans_config;
  kmeans_config.clusters = config.cdg_clusters;
  const auto clustering = cluster::kmeans(descriptors, kmeans_config, rng);

  detect::DetectorTrainConfig train_config = config.detector_train;
  if (train_config.reference_frames == 0) {
    train_config.reference_frames = frames.size();
  }

  std::vector<std::unique_ptr<detect::GridDetector>> detectors;
  for (std::size_t c = 0; c < config.cdg_clusters; ++c) {
    std::vector<const world::Frame*> members;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (clustering.assignments[i] == c) members.push_back(frames[i]);
    }
    detect::GridDetectorConfig detector_config = config.compressed_config;
    detector_config.name = "CDG-" + std::to_string(c);
    auto detector = std::make_unique<detect::GridDetector>(
        detector_config, rng, world.config.grid_size);
    if (!members.empty()) {
      detect::train_detector(*detector, members, train_config, rng);
    }
    detectors.push_back(std::move(detector));
  }
  return std::make_unique<CdgMethod>(clustering.centroids,
                                     std::move(detectors));
}

DmmMethod::DmmMethod(
    std::vector<std::unique_ptr<detect::GridDetector>> per_dataset)
    : detectors_(std::move(per_dataset)) {
  ANOLE_CHECK(!detectors_.empty(), "DmmMethod: no detectors");
}

std::vector<detect::Detection> DmmMethod::infer(const world::Frame& frame) {
  ANOLE_CHECK_RANGE(frame.dataset_id, detectors_.size(),
                    "DmmMethod::infer: unknown dataset");
  return detectors_[frame.dataset_id]->detect(frame);
}

std::uint64_t DmmMethod::detector_flops() const {
  return detectors_.front()->flops_per_frame();
}

std::uint64_t DmmMethod::weight_bytes() {
  std::uint64_t total = 0;
  for (auto& detector : detectors_) total += detector->weight_bytes();
  return total;
}

std::unique_ptr<DmmMethod> train_dmm(const world::World& world,
                                     const BaselineConfig& config, Rng& rng) {
  detect::DetectorTrainConfig train_config = config.detector_train;
  if (train_config.reference_frames == 0) {
    train_config.reference_frames =
        world.frames_with_role(world::SplitRole::kTrain).size();
  }
  std::vector<std::unique_ptr<detect::GridDetector>> detectors;
  for (std::size_t d = 0; d < world.dataset_names.size(); ++d) {
    const auto frames = world.frames_with_role(world::SplitRole::kTrain, d);
    detect::GridDetectorConfig detector_config = config.compressed_config;
    detector_config.name = "DMM-" + world.dataset_names[d];
    auto detector = std::make_unique<detect::GridDetector>(
        detector_config, rng, world.config.grid_size);
    if (!frames.empty()) {
      detect::train_detector(*detector, frames, train_config, rng);
    }
    detectors.push_back(std::move(detector));
  }
  return std::make_unique<DmmMethod>(std::move(detectors));
}

AnoleMethod::AnoleMethod(core::AnoleSystem& system,
                         const core::CacheConfig& cache)
    : system_(&system), engine_(system, cache) {}

AnoleMethod::AnoleMethod(core::AnoleSystem& system,
                         const core::EngineConfig& config, std::string name)
    : system_(&system), name_(std::move(name)), engine_(system, config) {}

std::vector<detect::Detection> AnoleMethod::infer(const world::Frame& frame) {
  return engine_.process(frame).detections;
}

std::uint64_t AnoleMethod::detector_flops() const {
  return system_->repository.empty()
             ? 0
             : system_->repository.model(0).detector->flops_per_frame();
}

std::uint64_t AnoleMethod::decision_flops() const {
  return system_->decision ? system_->decision->flops_per_sample() : 0;
}

std::uint64_t AnoleMethod::weight_bytes() {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < system_->repository.size(); ++i) {
    total += system_->repository.detector(i).weight_bytes();
  }
  return total;
}

}  // namespace anole::baselines
