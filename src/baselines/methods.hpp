// The paper's candidate methods (section VI-A3):
//   SDM — one fully-fledged deep model trained on everything;
//   SSM — one compressed model trained on everything;
//   CDG — compressed models per feature-space cluster, nearest-centroid
//         selection at test time;
//   DMM — one compressed model per source dataset, selected by the test
//         sample's dataset identity (an oracle signal);
// plus the Anole adapter so every method exposes the same interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/engine.hpp"
#include "detect/detector_trainer.hpp"
#include "detect/grid_detector.hpp"
#include "world/featurizer.hpp"
#include "world/world.hpp"

namespace anole::baselines {

/// Common interface: one frame in, detections out, plus the cost numbers
/// the device simulator needs.
class InferenceMethod {
 public:
  virtual ~InferenceMethod() = default;

  virtual std::vector<detect::Detection> infer(const world::Frame& frame) = 0;
  virtual std::string name() const = 0;

  /// Per-frame detector cost.
  virtual std::uint64_t detector_flops() const = 0;
  /// Per-frame selection cost (0 for single-model methods).
  virtual std::uint64_t decision_flops() const { return 0; }
  /// Total weights the method must keep on device.
  virtual std::uint64_t weight_bytes() = 0;
};

/// Shared training knobs for all baseline constructions.
struct BaselineConfig {
  detect::DetectorTrainConfig detector_train;
  detect::GridDetectorConfig deep_config =
      detect::GridDetectorConfig::large("SDM");
  detect::GridDetectorConfig compressed_config =
      detect::GridDetectorConfig::compressed("SSM");
  /// Number of clusters for CDG.
  std::size_t cdg_clusters = 8;
};

/// SDM / SSM: one detector trained on all seen training frames.
class SingleModelMethod : public InferenceMethod {
 public:
  SingleModelMethod(std::string name, std::unique_ptr<detect::GridDetector>
                                          detector);

  std::vector<detect::Detection> infer(const world::Frame& frame) override;
  std::string name() const override { return name_; }
  std::uint64_t detector_flops() const override;
  std::uint64_t weight_bytes() override;

  detect::GridDetector& detector() { return *detector_; }

 private:
  std::string name_;
  std::unique_ptr<detect::GridDetector> detector_;
};

std::unique_ptr<SingleModelMethod> train_sdm(const world::World& world,
                                             const BaselineConfig& config,
                                             Rng& rng);
std::unique_ptr<SingleModelMethod> train_ssm(const world::World& world,
                                             const BaselineConfig& config,
                                             Rng& rng);

/// CDG: clustering-based domain generalization.
class CdgMethod : public InferenceMethod {
 public:
  CdgMethod(Tensor centroids,
            std::vector<std::unique_ptr<detect::GridDetector>> detectors);

  std::vector<detect::Detection> infer(const world::Frame& frame) override;
  std::string name() const override { return "CDG"; }
  std::uint64_t detector_flops() const override;
  std::uint64_t decision_flops() const override;
  std::uint64_t weight_bytes() override;

  /// Cluster chosen for a frame (exposed for tests).
  std::size_t select_cluster(const world::Frame& frame) const;

 private:
  Tensor centroids_;
  std::vector<std::unique_ptr<detect::GridDetector>> detectors_;
  world::FrameFeaturizer featurizer_;
};

std::unique_ptr<CdgMethod> train_cdg(const world::World& world,
                                     const BaselineConfig& config, Rng& rng);

/// DMM: one compressed model per source dataset.
class DmmMethod : public InferenceMethod {
 public:
  explicit DmmMethod(
      std::vector<std::unique_ptr<detect::GridDetector>> per_dataset);

  std::vector<detect::Detection> infer(const world::Frame& frame) override;
  std::string name() const override { return "DMM"; }
  std::uint64_t detector_flops() const override;
  std::uint64_t weight_bytes() override;

 private:
  std::vector<std::unique_ptr<detect::GridDetector>> detectors_;
};

std::unique_ptr<DmmMethod> train_dmm(const world::World& world,
                                     const BaselineConfig& config, Rng& rng);

/// Adapter exposing an AnoleEngine through the common interface.
class AnoleMethod : public InferenceMethod {
 public:
  /// `system` must outlive this method.
  AnoleMethod(core::AnoleSystem& system, const core::CacheConfig& cache);

  /// Full-control overload (confidence fallback, suitability smoothing).
  AnoleMethod(core::AnoleSystem& system, const core::EngineConfig& config,
              std::string name = "Anole");

  std::vector<detect::Detection> infer(const world::Frame& frame) override;
  std::string name() const override { return name_; }
  std::uint64_t detector_flops() const override;
  std::uint64_t decision_flops() const override;
  std::uint64_t weight_bytes() override;

  core::AnoleEngine& engine() { return engine_; }

 private:
  core::AnoleSystem* system_;
  std::string name_ = "Anole";
  core::AnoleEngine engine_;
};

}  // namespace anole::baselines
