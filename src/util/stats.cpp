#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace anole {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - m) * (v - m);
  return sum / static_cast<double>(values.size() - 1);
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double min_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

BoxplotSummary boxplot_summary(std::span<const double> values) {
  BoxplotSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = min_value(values);
  s.q1 = percentile(values, 25.0);
  s.median = percentile(values, 50.0);
  s.q3 = percentile(values, 75.0);
  s.max = max_value(values);
  s.mean = mean(values);
  return s;
}

std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points) {
  std::vector<CdfPoint> cdf;
  if (values.empty() || max_points == 0) return cdf;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t points = std::min(max_points, n);
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    // Map output index to a sample index, inclusive of both ends.
    const std::size_t idx =
        points == 1 ? n - 1 : i * (n - 1) / (points - 1);
    cdf.push_back({sorted[idx],
                   static_cast<double>(idx + 1) / static_cast<double>(n)});
  }
  return cdf;
}

std::size_t Histogram::total() const {
  std::size_t t = 0;
  for (std::size_t c : counts) t += c;
  return t;
}

double Histogram::fraction(std::size_t i) const {
  const std::size_t t = total();
  if (t == 0 || i >= counts.size()) return 0.0;
  return static_cast<double>(counts[i]) / static_cast<double>(t);
}

Histogram make_histogram(std::span<const double> values, double lo, double hi,
                         std::size_t bins) {
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins == 0 ? 1 : bins, 0);
  if (hi <= lo) return h;
  const double width = (hi - lo) / static_cast<double>(h.counts.size());
  for (double v : values) {
    const double clamped = std::clamp(v, lo, hi);
    std::size_t idx = static_cast<std::size_t>((clamped - lo) / width);
    idx = std::min(idx, h.counts.size() - 1);
    ++h.counts[idx];
  }
  return h;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> normalize(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  std::vector<double> out(values.size(), 0.0);
  if (sum == 0.0) return out;
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = values[i] / sum;
  return out;
}

double coefficient_of_variation(std::span<const double> values) {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return stddev(values) / m;
}

}  // namespace anole
