// Shared parser for the comma-separated "key=value" spec grammars used by
// the deterministic injection layers (ANOLE_FAULTS, ANOLE_SCENARIO).
//
// Both grammars read identically: comma-separated `key=value` tokens,
// where a value is a rate (a probability/intensity, optionally followed
// by `x<magnitude>`) or, for the reserved key `seed`, an unsigned
// integer. Every malformed token — missing '=', empty key, a number with
// trailing garbage, a non-finite or out-of-range value, a negative seed —
// fails fast with a ContractViolation naming the environment variable and
// the offending token, instead of being silently ignored.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace anole::spec {

/// One `key=value` token of a spec string.
struct Token {
  std::string_view key;
  std::string_view value;
};

/// A parsed `<p>` or `<p>x<mag>` value.
struct Rate {
  double value = 0.0;
  double magnitude = 1.0;
};

/// Splits `spec` into trimmed key=value tokens (empty tokens between
/// consecutive commas are skipped). `env_name` names the variable in
/// diagnostics. Throws ContractViolation on a token without '=' or with
/// an empty key.
std::vector<Token> tokenize(std::string_view spec, std::string_view env_name);

/// Parses a finite double; `what` names the value in diagnostics.
/// Rejects empty text, trailing garbage, NaN, and infinities.
double parse_finite_double(std::string_view text, std::string_view env_name,
                           std::string_view what);

/// Parses a base-10 unsigned integer (digits only; no sign, no garbage).
std::uint64_t parse_u64(std::string_view text, std::string_view env_name,
                        std::string_view what);

/// Parses `<p>` or `<p>x<mag>`: `p` must be a finite double in
/// [0, `max_value`], `mag` (default 1) must be finite and > 0. `key`
/// names the token in diagnostics.
Rate parse_rate(std::string_view value, std::string_view env_name,
                std::string_view key, double max_value = 1.0);

}  // namespace anole::spec
