// Tiny leveled logger. Benches and examples use it for progress lines;
// tests set the level to kError to stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace anole {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets / reads the global minimum level. Both are thread-safe (the level
/// is atomic) so tasks running on the util/parallel.hpp pool can log
/// concurrently; messages are emitted whole, never interleaved.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes `message` to stderr when `level` is at or above the global level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& out, const T& first, const Rest&... rest) {
  out << first;
  append_all(out, rest...);
}
}  // namespace detail

template <typename... Args>
void log_info(const Args&... args) {
  std::ostringstream out;
  detail::append_all(out, args...);
  log_message(LogLevel::kInfo, out.str());
}

template <typename... Args>
void log_debug(const Args&... args) {
  std::ostringstream out;
  detail::append_all(out, args...);
  log_message(LogLevel::kDebug, out.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  std::ostringstream out;
  detail::append_all(out, args...);
  log_message(LogLevel::kWarn, out.str());
}

}  // namespace anole
