// Deterministic parallel execution primitives shared by every hot loop.
//
// A single lazily-initialized persistent thread pool backs `parallel_for`
// and `parallel_reduce`. The pool size comes from the ANOLE_THREADS
// environment variable (first use), `std::thread::hardware_concurrency()`
// otherwise, and can be overridden at runtime with `set_thread_count`.
//
// Determinism contract: work is split into chunks whose boundaries depend
// only on (begin, end, grain) — never on the thread count — and
// `parallel_reduce` combines per-chunk partial results in ascending chunk
// order on the calling thread. Any computation whose chunks write disjoint
// outputs (parallel_for) or that is expressed as an ordered reduction
// (parallel_reduce) therefore produces bitwise-identical results whether
// the pool has 1 thread or 64. Nested calls from inside a pool worker run
// inline (serially) with the same chunk boundaries, so nesting cannot
// change results either — it only limits extra parallelism.
//
// Serial cutoff: waking the pool costs a few microseconds of cross-thread
// signalling — more than an entire small GEMM at this codebase's layer
// shapes. Call sites that can estimate their per-index cost pass a
// `work_per_index` hint (approximate scalar operations per index); when
// (end - begin) * work_per_index falls below `serial_cutoff()`
// (ANOLE_SERIAL_CUTOFF, default 128k work units) the loop runs inline on
// the calling thread with the exact same chunk boundaries, so the cutoff
// can never change results — it only skips the pool. Overloads without a
// hint always use the pool (the caller signalled nothing about cost, and
// a coarse loop of 5 heavy items must not be serialized by an
// element-count heuristic).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace anole::par {

/// Number of threads the pool will use (>= 1). Never spawns the pool.
std::size_t thread_count();

/// Overrides the pool size; 1 means fully serial execution. Passing 0
/// restores the default (ANOLE_THREADS, else hardware concurrency).
/// Joins any existing workers; must not be called from inside a task.
void set_thread_count(std::size_t count);

/// True when the calling thread is a pool worker executing a task.
bool in_parallel_region();

/// Work units (approximate scalar ops) below which the hinted overloads
/// run inline. From ANOLE_SERIAL_CUTOFF at first use (default 1 << 17);
/// fixed for the process, so inline decisions never depend on runtime
/// state.
std::size_t serial_cutoff();

namespace detail {

/// Sentinel hint for the unhinted overloads: never below the cutoff.
inline constexpr std::size_t kNoWorkHint = ~std::size_t{0};

/// True when n indexes at `work_per_index` ops each fall below the serial
/// cutoff (exact n * work_per_index < cutoff, overflow-safe).
inline bool below_serial_cutoff(std::size_t n, std::size_t work_per_index) {
  if (n == 0) return true;
  const std::size_t cutoff = serial_cutoff();
  const std::size_t wpi = work_per_index == 0 ? 1 : work_per_index;
  if (wpi > cutoff / n) return false;
  return n * wpi < cutoff;
}

}  // namespace detail

/// Grain giving each chunk at least `serial_cutoff()` work units (never
/// below `base`). A function of the per-index cost only — independent of
/// range size and thread count — so chunk boundaries stay deterministic.
inline std::size_t work_grain(std::size_t base, std::size_t work_per_index) {
  const std::size_t wpi = work_per_index == 0 ? 1 : work_per_index;
  return std::max(base, serial_cutoff() / wpi);
}

namespace detail {

/// Runs fn(chunk) for every chunk in [0, chunks) on the pool (the caller
/// participates) and blocks until all chunks finished. Rethrows the first
/// exception thrown by a chunk. Must not be called from a pool worker.
void run_chunks(std::size_t chunks,
                const std::function<void(std::size_t)>& fn);

inline std::size_t chunk_count(std::size_t begin, std::size_t end,
                               std::size_t grain) {
  if (end <= begin) return 0;
  const std::size_t g = grain == 0 ? 1 : grain;
  return (end - begin + g - 1) / g;
}

/// Grain used by the convenience overloads. A function of the range size
/// only (never the thread count), so chunk boundaries stay deterministic.
inline std::size_t default_grain(std::size_t begin, std::size_t end) {
  const std::size_t n = end > begin ? end - begin : 0;
  return std::max<std::size_t>(1, n / 64);
}

}  // namespace detail

/// Calls fn(i) for every i in [begin, end), split into grain-sized chunks
/// executed across the pool. fn must write only per-index (disjoint)
/// state. `work_per_index` is the serial-cutoff hint (approximate scalar
/// ops per index); small totals run inline with identical chunking.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  std::size_t work_per_index, Fn&& fn) {
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = detail::chunk_count(begin, end, g);
  if (chunks == 0) return;
  if (chunks == 1 || thread_count() == 1 || in_parallel_region() ||
      (work_per_index != detail::kNoWorkHint &&
       detail::below_serial_cutoff(end - begin, work_per_index))) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * g;
    const std::size_t hi = std::min(end, lo + g);
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

/// parallel_for without a work hint: always eligible for the pool.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Fn&& fn) {
  parallel_for(begin, end, grain, detail::kNoWorkHint,
               std::forward<Fn>(fn));
}

/// parallel_for with an automatic (range-size-derived) grain.
template <typename Fn>
void parallel_for(std::size_t begin, std::size_t end, Fn&& fn) {
  parallel_for(begin, end, detail::default_grain(begin, end),
               std::forward<Fn>(fn));
}

/// Calls fn(lo, hi) once per chunk; chunk boundaries are the same as
/// parallel_for's. Useful when per-chunk setup is expensive.
/// `work_per_index` is the serial-cutoff hint.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, std::size_t work_per_index,
                         Fn&& fn) {
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = detail::chunk_count(begin, end, g);
  if (chunks == 0) return;
  if (chunks == 1 || thread_count() == 1 || in_parallel_region() ||
      (work_per_index != detail::kNoWorkHint &&
       detail::below_serial_cutoff(end - begin, work_per_index))) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * g;
      fn(lo, std::min(end, lo + g));
    }
    return;
  }
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * g;
    fn(lo, std::min(end, lo + g));
  });
}

/// parallel_for_chunks without a work hint: always eligible for the pool.
template <typename Fn>
void parallel_for_chunks(std::size_t begin, std::size_t end,
                         std::size_t grain, Fn&& fn) {
  parallel_for_chunks(begin, end, grain, detail::kNoWorkHint,
                      std::forward<Fn>(fn));
}

/// Deterministic reduction: map_chunk(lo, hi) produces one partial result
/// per chunk (in parallel); partials are combined with
/// acc = combine(acc, partial) in ascending chunk order on the calling
/// thread. Because chunk boundaries depend only on (begin, end, grain) and
/// the combine order is fixed, the result is bitwise identical at any
/// thread count — including the serial path (and the serial-cutoff path),
/// which uses the same chunking.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  std::size_t work_per_index, T identity, MapFn&& map_chunk,
                  CombineFn&& combine) {
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t chunks = detail::chunk_count(begin, end, g);
  if (chunks == 0) return identity;
  if (chunks == 1 || thread_count() == 1 || in_parallel_region() ||
      (work_per_index != detail::kNoWorkHint &&
       detail::below_serial_cutoff(end - begin, work_per_index))) {
    T acc = std::move(identity);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * g;
      acc = combine(std::move(acc), map_chunk(lo, std::min(end, lo + g)));
    }
    return acc;
  }
  std::vector<T> partials(chunks, identity);
  detail::run_chunks(chunks, [&](std::size_t c) {
    const std::size_t lo = begin + c * g;
    partials[c] = map_chunk(lo, std::min(end, lo + g));
  });
  T acc = std::move(identity);
  for (std::size_t c = 0; c < chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

/// parallel_reduce without a work hint: always eligible for the pool.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T identity, MapFn&& map_chunk, CombineFn&& combine) {
  return parallel_reduce(begin, end, grain, detail::kNoWorkHint,
                         std::move(identity),
                         std::forward<MapFn>(map_chunk),
                         std::forward<CombineFn>(combine));
}

}  // namespace anole::par
