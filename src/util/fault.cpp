#include "util/fault.hpp"

#include <atomic>
#include <cstdlib>

#include "util/check.hpp"
#include "util/spec.hpp"

namespace anole::fault {
namespace {

constexpr std::array<const char*, kSiteCount> kSiteNames = {
    "model_load", "artifact_section", "decision_output", "frame_payload",
    "load_latency_spike", "memory_pressure"};

std::size_t site_index(Site site) {
  const auto index = static_cast<std::size_t>(site);
  ANOLE_CHECK_RANGE(index, kSiteCount, "unknown fault::Site");
  return index;
}

/// Process-wide trace-context tag (see fault.hpp). Relaxed atomics: the
/// tag is set once during dispatch-level resolution, long before any
/// trace is hashed, and hashing re-reads it under the injector mutex.
std::atomic<std::uint64_t> g_trace_context{0};

}  // namespace

void set_trace_context(std::uint64_t tag) {
  g_trace_context.store(tag, std::memory_order_relaxed);
}

std::uint64_t trace_context() {
  return g_trace_context.load(std::memory_order_relaxed);
}

const char* to_string(Site site) { return kSiteNames[site_index(site)]; }

std::optional<Site> site_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {
  seed_streams();
}

FaultInjector::FaultInjector(const std::string& spec)
    : FaultInjector(kDefaultSeed) {
  bool reseed = false;
  for (const spec::Token& token : spec::tokenize(spec, "ANOLE_FAULTS")) {
    if (token.key == "seed") {
      seed_ = spec::parse_u64(token.value, "ANOLE_FAULTS", "seed");
      reseed = true;
      continue;
    }
    const auto site = site_from_name(token.key);
    ANOLE_CHECK(site.has_value(), "ANOLE_FAULTS: unknown site '", token.key,
                "' (sites: model_load, artifact_section, decision_output, "
                "frame_payload, load_latency_spike, memory_pressure)");
    const spec::Rate rate =
        spec::parse_rate(token.value, "ANOLE_FAULTS", token.key);
    sites_[site_index(*site)].probability = rate.value;
    sites_[site_index(*site)].magnitude = rate.magnitude;
  }
  if (reseed) seed_streams();
}

std::unique_ptr<FaultInjector> FaultInjector::from_env() {
  const char* spec = std::getenv("ANOLE_FAULTS");
  if (spec == nullptr || *spec == '\0') return nullptr;
  return std::make_unique<FaultInjector>(std::string(spec));
}

void FaultInjector::seed_streams() {
  // One independent stream per site, derived from the master seed so a
  // draw at one site never shifts another site's schedule.
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    sites_[i].rng = Rng(seed_ + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
}

void FaultInjector::arm(Site site, double probability, double magnitude) {
  ANOLE_CHECK(probability >= 0.0 && probability <= 1.0,
              "FaultInjector::arm: probability must be in [0, 1], got ",
              probability);
  ANOLE_CHECK_GT(magnitude, 0.0,
                 "FaultInjector::arm: magnitude must be > 0");
  const std::scoped_lock lock(mutex_);
  sites_[site_index(site)].probability = probability;
  sites_[site_index(site)].magnitude = magnitude;
}

void FaultInjector::disarm(Site site) {
  const std::scoped_lock lock(mutex_);
  sites_[site_index(site)].probability = 0.0;
}

bool FaultInjector::armed() const {
  const std::scoped_lock lock(mutex_);
  for (const SiteState& state : sites_) {
    if (state.probability > 0.0) return true;
  }
  return false;
}

double FaultInjector::probability(Site site) const {
  const std::scoped_lock lock(mutex_);
  return sites_[site_index(site)].probability;
}

double FaultInjector::magnitude(Site site) const {
  const std::scoped_lock lock(mutex_);
  return sites_[site_index(site)].magnitude;
}

bool FaultInjector::should_fail(Site site, std::uint64_t payload) {
  const std::scoped_lock lock(mutex_);
  SiteState& state = sites_[site_index(site)];
  // Unarmed sites never advance their stream, so arming one site later
  // does not depend on how often the clean path consulted it.
  if (state.probability <= 0.0) return false;
  const std::uint64_t check = state.checks++;
  if (state.rng.uniform() >= state.probability) return false;
  ++state.injected;
  trace_.push_back(FaultEvent{site, check, payload});
  return true;
}

std::size_t FaultInjector::draw_index(Site site, std::size_t n) {
  ANOLE_CHECK_GE(n, 1u, "FaultInjector::draw_index: empty range");
  const std::scoped_lock lock(mutex_);
  return sites_[site_index(site)].rng.uniform_index(n);
}

std::uint64_t FaultInjector::checks(Site site) const {
  const std::scoped_lock lock(mutex_);
  return sites_[site_index(site)].checks;
}

std::uint64_t FaultInjector::injected(Site site) const {
  const std::scoped_lock lock(mutex_);
  return sites_[site_index(site)].injected;
}

std::uint64_t FaultInjector::injected_total() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const SiteState& state : sites_) total += state.injected;
  return total;
}

std::vector<FaultEvent> FaultInjector::trace() const {
  const std::scoped_lock lock(mutex_);
  return trace_;
}

std::uint64_t FaultInjector::trace_hash() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFu;
      hash *= 0x100000001B3ULL;
    }
  };
  // The execution-context tag (active SIMD level) seeds the hash so a
  // replay on a different kernel path cannot alias a matching schedule.
  mix(trace_context());
  for (const FaultEvent& event : trace_) {
    mix(static_cast<std::uint64_t>(event.site));
    mix(event.check_index);
    mix(event.payload);
  }
  return hash;
}

void FaultInjector::reset() {
  const std::scoped_lock lock(mutex_);
  seed_streams();
  trace_.clear();
  for (SiteState& state : sites_) {
    state.checks = 0;
    state.injected = 0;
  }
}

}  // namespace anole::fault
