#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace anole {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::size_t Rng::uniform_index(std::size_t n) noexcept {
  assert(n > 0);
  // Rejection-free modulo bias is negligible for n << 2^64; use
  // multiply-shift for uniformity.
  return static_cast<std::size_t>(uniform() * static_cast<double>(n)) % n;
}

int Rng::uniform_int(int lo, int hi) noexcept {
  assert(lo <= hi);
  return lo + static_cast<int>(uniform_index(
                  static_cast<std::size_t>(hi - lo) + 1));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::gamma(double shape) noexcept {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape + 1 then scale back (Marsaglia-Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::beta(double alpha, double beta_param) noexcept {
  const double x = gamma(alpha);
  const double y = gamma(beta_param);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

int Rng::poisson(double lambda) noexcept {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    const double draw = normal(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= uniform();
  } while (p > limit);
  return k - 1;
}

std::size_t Rng::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept { return Rng((*this)()); }

std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  rng.shuffle(perm);
  return perm;
}

}  // namespace anole
