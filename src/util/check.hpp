// Contract-checking macros used at every public API boundary.
//
// Policy (see DESIGN.md "Error handling"):
//   * ANOLE_CHECK* guards preconditions callers can get wrong (shapes,
//     ranges, null handles, configuration values). Violations throw
//     ContractViolation / BoundsViolation with file:line, the failing
//     expression, and the offending values, and are always on — including
//     in Release builds.
//   * ANOLE_DCHECK* guards internal invariants on hot paths (per-element
//     indexing, loop-internal consistency). Compiled out under NDEBUG.
//   * ANOLE_UNREACHABLE marks switch defaults / logically dead branches.
//
// ContractViolation derives from std::invalid_argument and BoundsViolation
// from std::out_of_range, so callers catching the standard hierarchy keep
// working.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anole {

/// A precondition stated with ANOLE_CHECK* did not hold.
class ContractViolation : public std::invalid_argument {
 public:
  explicit ContractViolation(const std::string& message)
      : std::invalid_argument(message) {}
};

/// An index stated with ANOLE_CHECK_RANGE was outside its container.
class BoundsViolation : public std::out_of_range {
 public:
  explicit BoundsViolation(const std::string& message)
      : std::out_of_range(message) {}
};

namespace check_detail {

inline void append_parts(std::ostringstream&) {}

template <typename T, typename... Rest>
void append_parts(std::ostringstream& out, const T& first,
                  const Rest&... rest) {
  out << first;
  append_parts(out, rest...);
}

/// "file:line: KIND failed: expr[: detail...]".
template <typename... Parts>
std::string format_failure(const char* file, int line, const char* kind,
                           const char* expression, const Parts&... parts) {
  std::ostringstream out;
  out << file << ':' << line << ": " << kind << " failed: " << expression;
  if constexpr (sizeof...(parts) > 0) {
    out << ": ";
    append_parts(out, parts...);
  }
  return out.str();
}

}  // namespace check_detail
}  // namespace anole

/// Precondition: throws anole::ContractViolation when `condition` is false.
/// Extra arguments are streamed into the message.
#define ANOLE_CHECK(condition, ...)                                         \
  do {                                                                      \
    if (!(condition)) [[unlikely]] {                                        \
      throw ::anole::ContractViolation(                                     \
          ::anole::check_detail::format_failure(                            \
              __FILE__, __LINE__, "ANOLE_CHECK",                            \
              #condition __VA_OPT__(, ) __VA_ARGS__));                      \
    }                                                                       \
  } while (false)

// Shared body of the binary comparison checks; operands evaluate once and
// their values land in the diagnostic.
#define ANOLE_CHECK_OP_(kind, op, lhs, rhs, ...)                            \
  do {                                                                      \
    const auto& anole_lhs_ = (lhs);                                         \
    const auto& anole_rhs_ = (rhs);                                         \
    if (!(anole_lhs_ op anole_rhs_)) [[unlikely]] {                         \
      throw ::anole::ContractViolation(                                     \
          ::anole::check_detail::format_failure(                            \
              __FILE__, __LINE__, kind, #lhs " " #op " " #rhs, "(",         \
              anole_lhs_, " vs ", anole_rhs_, ")" __VA_OPT__(, ": ", )      \
                  __VA_ARGS__));                                            \
    }                                                                       \
  } while (false)

#define ANOLE_CHECK_EQ(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_EQ", ==, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_CHECK_NE(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_NE", !=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_CHECK_LT(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_LT", <, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_CHECK_LE(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_LE", <=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_CHECK_GT(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_GT", >, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_CHECK_GE(lhs, rhs, ...) \
  ANOLE_CHECK_OP_("ANOLE_CHECK_GE", >=, lhs, rhs __VA_OPT__(, ) __VA_ARGS__)

/// Index check: throws anole::BoundsViolation (an std::out_of_range) when
/// `index >= size`.
#define ANOLE_CHECK_RANGE(index, size, ...)                                 \
  do {                                                                      \
    const auto& anole_index_ = (index);                                     \
    const auto& anole_size_ = (size);                                       \
    if (!(anole_index_ < anole_size_)) [[unlikely]] {                       \
      throw ::anole::BoundsViolation(                                       \
          ::anole::check_detail::format_failure(                            \
              __FILE__, __LINE__, "ANOLE_CHECK_RANGE", #index " < " #size,  \
              "(index ", anole_index_, ", size ", anole_size_,              \
              ")" __VA_OPT__(, ": ", ) __VA_ARGS__));                       \
    }                                                                       \
  } while (false)

/// Null-handle check; returns nothing, use as a statement.
#define ANOLE_CHECK_NOTNULL(pointer, ...)                                   \
  ANOLE_CHECK((pointer) != nullptr __VA_OPT__(, ) __VA_ARGS__)

/// Marks code that must be unreachable; always throws.
#define ANOLE_UNREACHABLE(...)                                              \
  throw ::anole::ContractViolation(::anole::check_detail::format_failure(   \
      __FILE__, __LINE__, "ANOLE_UNREACHABLE",                              \
      "reached" __VA_OPT__(, ) __VA_ARGS__))

// Debug-only variants: full checks without NDEBUG, compiled out (but still
// parsed, so operands stay name-checked) in Release.
#ifdef NDEBUG
#define ANOLE_DCHECK(condition, ...) \
  do {                               \
    (void)sizeof(!(condition));      \
  } while (false)
#define ANOLE_DCHECK_RANGE(index, size, ...)    \
  do {                                          \
    (void)sizeof(!((index) < (size)));          \
  } while (false)
#else
#define ANOLE_DCHECK(condition, ...) \
  ANOLE_CHECK(condition __VA_OPT__(, ) __VA_ARGS__)
#define ANOLE_DCHECK_RANGE(index, size, ...) \
  ANOLE_CHECK_RANGE(index, size __VA_OPT__(, ) __VA_ARGS__)
#endif
