#include "util/table.hpp"

#include <algorithm>
#include <sstream>

namespace anole {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < header_.size()) {
        out << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TablePrinter::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << quote(row[c]);
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace anole
