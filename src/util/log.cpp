#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace anole {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

/// Serializes sink writes so concurrent pool tasks never interleave
/// characters of two messages.
std::mutex& sink_mutex() {
  static std::mutex mutex;
  return mutex;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::cerr << "[" << level_name(level) << "] " << message << '\n';
}

}  // namespace anole
