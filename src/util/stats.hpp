// Descriptive statistics used throughout evaluation: means, percentiles,
// CDF series (for the paper's CDF figures), boxplot summaries (Fig. 7a),
// and histograms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace anole {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> values);

/// Unbiased sample variance; 0 for ranges with fewer than 2 elements.
double variance(std::span<const double> values);

/// Sample standard deviation.
double stddev(std::span<const double> values);

/// Smallest / largest element; 0 for empty ranges.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linear-interpolated percentile, q in [0, 100]. 0 for empty ranges.
double percentile(std::span<const double> values, double q);

/// Median (50th percentile).
double median(std::span<const double> values);

/// Five-number summary plus mean, as needed for boxplots (Fig. 7a).
struct BoxplotSummary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  std::size_t count = 0;
};

BoxplotSummary boxplot_summary(std::span<const double> values);

/// One point of an empirical CDF: P(X <= value) = cumulative_probability.
struct CdfPoint {
  double value = 0.0;
  double cumulative_probability = 0.0;
};

/// Empirical CDF down-sampled to at most `max_points` points
/// (always keeps the first and last sample).
std::vector<CdfPoint> empirical_cdf(std::span<const double> values,
                                    std::size_t max_points = 64);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the boundary buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  std::size_t total() const;
  /// Fraction of mass in bucket i.
  double fraction(std::size_t i) const;
};

Histogram make_histogram(std::span<const double> values, double lo, double hi,
                         std::size_t bins);

/// Pearson correlation coefficient; 0 when undefined.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// Normalizes values to sum to 1; returns all-zero when the sum is 0.
std::vector<double> normalize(std::span<const double> values);

/// Coefficient of variation (stddev / mean); used as a balance metric for
/// the sampling experiments (Fig. 3). Returns 0 when the mean is 0.
double coefficient_of_variation(std::span<const double> values);

}  // namespace anole
