#include "util/spec.hpp"

#include <charconv>
#include <cmath>
#include <string>

#include "util/check.hpp"

namespace anole::spec {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && text.front() == ' ') text.remove_prefix(1);
  while (!text.empty() && text.back() == ' ') text.remove_suffix(1);
  return text;
}

}  // namespace

std::vector<Token> tokenize(std::string_view spec,
                            std::string_view env_name) {
  std::vector<Token> tokens;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view raw = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::string_view token = trim(raw);
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    ANOLE_CHECK(eq != std::string_view::npos && eq > 0, env_name,
                ": token '", token, "' is not key=value");
    tokens.push_back(Token{trim(token.substr(0, eq)),
                           trim(token.substr(eq + 1))});
  }
  return tokens;
}

double parse_finite_double(std::string_view text, std::string_view env_name,
                           std::string_view what) {
  ANOLE_CHECK(!text.empty(), env_name, ": empty value for ", what);
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  ANOLE_CHECK(ec == std::errc{} && end == text.data() + text.size(),
              env_name, ": bad number '", text, "' for ", what);
  ANOLE_CHECK(std::isfinite(value), env_name, ": non-finite value '", text,
              "' for ", what);
  return value;
}

std::uint64_t parse_u64(std::string_view text, std::string_view env_name,
                        std::string_view what) {
  ANOLE_CHECK(!text.empty(), env_name, ": empty value for ", what);
  // from_chars on unsigned rejects '-' but a leading '+' must not sneak
  // through either: digits only.
  ANOLE_CHECK(text.find_first_not_of("0123456789") == std::string_view::npos,
              env_name, ": bad unsigned integer '", text, "' for ", what);
  std::uint64_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  ANOLE_CHECK(ec == std::errc{} && end == text.data() + text.size(),
              env_name, ": bad unsigned integer '", text, "' for ", what);
  return value;
}

Rate parse_rate(std::string_view value, std::string_view env_name,
                std::string_view key, double max_value) {
  Rate rate;
  std::string_view head = value;
  const std::size_t x = value.find('x');
  if (x != std::string_view::npos) {
    head = value.substr(0, x);
    rate.magnitude = parse_finite_double(value.substr(x + 1), env_name,
                                         "magnitude");
    ANOLE_CHECK(rate.magnitude > 0.0, env_name, ": magnitude for ", key,
                " must be > 0, got ", rate.magnitude);
  }
  rate.value = parse_finite_double(head, env_name, key);
  ANOLE_CHECK(rate.value >= 0.0 && rate.value <= max_value, env_name,
              ": value for ", key, " must be in [0, ", max_value,
              "], got ", rate.value);
  return rate;
}

}  // namespace anole::spec
