// Minimal ASCII table / CSV rendering used by the benchmark harness to
// print paper-style rows (tables and figure series).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace anole {

/// Column-aligned ASCII table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; padded or truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats every cell with fixed precision.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int precision = 3);

  /// Renders the full table.
  std::string to_string() const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  std::string to_csv() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string format_double(double value, int precision = 3);

/// Formats a ratio as a percentage string, e.g. 0.451 -> "45.1%".
std::string format_percent(double ratio, int precision = 1);

}  // namespace anole
