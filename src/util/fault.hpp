// Deterministic fault injection for the online (OMI) path.
//
// A FaultInjector owns one seeded Rng stream per named injection site
// (model loads, artifact sections, decision outputs, frame payloads, load
// latency spikes, memory pressure). Every component that can fail consults its injector at
// a fixed point in the *sequential* part of its pipeline, so for a given
// (seed, site probabilities) configuration the full fault schedule — which
// events fail, in which order — is replayable bit-for-bit across runs and
// across thread counts. The injector records every fired event in a trace
// whose hash tests compare to pin that guarantee.
//
// Configuration comes from the ANOLE_FAULTS environment variable (see
// parse grammar below) or programmatically via arm()/disarm(). With no
// injector attached (the default), every faultable path is a branch on a
// null pointer — the clean path is unchanged.
//
// Spec grammar (comma-separated tokens):
//   ANOLE_FAULTS="seed=42,model_load=0.01,load_latency_spike=0.02x25"
//     seed=<u64>            stream seed (default 0xFA017)
//     <site>=<probability>  per-check failure probability in [0, 1]
//     <site>=<p>x<mag>      probability plus a site-specific magnitude
//                           (e.g. the latency multiplier of a load spike)
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace anole::fault {

/// Named injection sites. Each site has its own Rng stream so arming or
/// firing one site never perturbs another site's schedule.
enum class Site : std::size_t {
  /// A compressed-model load into the cache fails (storage/driver error).
  kModelLoad = 0,
  /// An artifact section arrives corrupted (one bit flipped before the
  /// CRC check at load time).
  kArtifactSection,
  /// The decision model emits a non-finite suitability entry.
  kDecisionOutput,
  /// A frame arrives with a corrupt payload (sensor/transport error).
  kFramePayload,
  /// A model load stalls (I/O contention); latency multiplied by the
  /// site's magnitude.
  kLoadLatencySpike,
  /// The OS reclaims device memory: the cache's byte budget shrinks by
  /// the site's magnitude (divisor) for a pressure window of admissions.
  kMemoryPressure,
};

inline constexpr std::size_t kSiteCount = 6;

const char* to_string(Site site);
std::optional<Site> site_from_name(std::string_view name);

/// Process-wide execution-context tag mixed into every trace_hash().
/// The SIMD dispatch layer publishes its active level here (encoded as
/// level + 1, so 0 means "not yet resolved"), which makes a replay run
/// under a different ANOLE_SIMD show up as a trace-hash mismatch instead
/// of silently comparing schedules from different kernel paths. Layering
/// keeps util below tensor, so the setter is a plain tag: callers above
/// decide what it encodes.
void set_trace_context(std::uint64_t tag);
std::uint64_t trace_context();

/// One fired injection, in firing order.
struct FaultEvent {
  Site site = Site::kModelLoad;
  /// Index of the check (per site) that fired.
  std::uint64_t check_index = 0;
  /// Site-specific detail: model id, section index, frame ordinal...
  std::uint64_t payload = 0;
};

class FaultInjector {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0xFA017ULL;

  explicit FaultInjector(std::uint64_t seed = kDefaultSeed);

  /// Parses the spec grammar documented above. Throws
  /// anole::ContractViolation on malformed input.
  explicit FaultInjector(const std::string& spec);

  /// Builds an injector from the ANOLE_FAULTS environment variable.
  /// Returns nullptr when the variable is unset or empty.
  static std::unique_ptr<FaultInjector> from_env();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Enables `site` with the given per-check failure probability (in
  /// [0, 1]) and magnitude. Does not reset streams or the trace.
  void arm(Site site, double probability, double magnitude = 1.0);

  /// Sets `site`'s probability to zero (its stream keeps its position).
  void disarm(Site site);

  /// True when any site has a non-zero probability.
  bool armed() const;

  double probability(Site site) const;
  double magnitude(Site site) const;

  /// One deterministic draw on `site`'s stream; true = inject the fault.
  /// `payload` is recorded in the trace when the check fires. Unarmed
  /// sites return false without advancing their stream.
  bool should_fail(Site site, std::uint64_t payload = 0);

  /// Extra deterministic draw on `site`'s stream (e.g. which entry to
  /// corrupt). Requires n > 0.
  std::size_t draw_index(Site site, std::size_t n);

  /// Checks made / faults injected at `site` since the last reset.
  std::uint64_t checks(Site site) const;
  std::uint64_t injected(Site site) const;
  std::uint64_t injected_total() const;

  /// Every fired event in firing order.
  std::vector<FaultEvent> trace() const;

  /// FNV-1a hash of the trace; equal hashes across two runs mean the two
  /// fault schedules were identical.
  std::uint64_t trace_hash() const;

  /// Re-seeds every stream from the configured seed and clears the trace
  /// and counters; site configurations are kept.
  void reset();

  std::uint64_t seed() const { return seed_; }

 private:
  struct SiteState {
    double probability = 0.0;
    double magnitude = 1.0;
    std::uint64_t checks = 0;
    std::uint64_t injected = 0;
    Rng rng;
  };

  void seed_streams();

  mutable std::mutex mutex_;
  std::uint64_t seed_ = kDefaultSeed;
  std::array<SiteState, kSiteCount> sites_;
  std::vector<FaultEvent> trace_;
};

}  // namespace anole::fault
