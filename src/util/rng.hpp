// Deterministic, seedable random number generation for the whole project.
//
// Every stochastic component in the library (world generation, NN
// initialization, k-means seeding, Thompson sampling) takes an explicit
// Rng so experiments are reproducible end-to-end from a single seed.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace anole {

/// xoshiro256** PRNG seeded via splitmix64.
///
/// Small, fast, and high-quality; satisfies UniformRandomBitGenerator so it
/// can also drive <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) noexcept;

  /// Standard normal via Box-Muller (cached pair).
  double normal() noexcept;

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept;

  /// Beta(alpha, beta) via two gamma draws; alpha, beta > 0.
  double beta(double alpha, double beta) noexcept;

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Poisson draw with rate lambda >= 0 (Knuth for small lambda,
  /// normal approximation above 30).
  int poisson(double lambda) noexcept;

  /// Index drawn proportionally to non-negative weights. Requires at least
  /// one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    if (items.empty()) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// A new Rng seeded from this one's stream (for independent substreams).
  Rng split() noexcept;

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Returns a shuffled permutation of [0, n).
std::vector<std::size_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace anole
