#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace anole::par {
namespace {

/// True while this thread is executing a task chunk (worker or caller).
/// Nested parallel_* calls observe it and run inline.
thread_local bool t_in_task = false;

std::size_t env_or_hardware_threads() {
  if (const char* env = std::getenv("ANOLE_THREADS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) {
      return static_cast<std::size_t>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// Default serial cutoff: ~128k scalar ops. Pool wake/steal costs a few
/// microseconds; a loop this size finishes in roughly that time on one
/// core, so below it the pool can only lose.
constexpr std::size_t kDefaultSerialCutoff = std::size_t{1} << 17;

std::size_t env_serial_cutoff() {
  if (const char* env = std::getenv("ANOLE_SERIAL_CUTOFF")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0') {
      return static_cast<std::size_t>(value);
    }
  }
  return kDefaultSerialCutoff;
}

/// State of one run_chunks invocation. Heap-allocated and shared with the
/// workers so a worker that wakes late (after the job completed and a new
/// one started) still drains its own, exhausted, counter instead of the
/// next job's. `fn` borrows the caller's function: the caller only returns
/// once done == chunks, and no chunk can start after that point because
/// `next` is monotonically increasing.
struct JobState {
  JobState(const std::function<void(std::size_t)>* chunk_fn,
           std::size_t chunk_total)
      : fn(chunk_fn), chunks(chunk_total) {}

  const std::function<void(std::size_t)>* fn;
  std::size_t chunks;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by the pool mutex
};

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  Pool() : target_threads_(env_or_hardware_threads()) {}

  ~Pool() {
    std::unique_lock<std::mutex> lock(mutex_);
    join_workers(lock);
  }

  std::size_t thread_count() const {
    return target_threads_.load(std::memory_order_relaxed);
  }

  void set_thread_count(std::size_t count) {
    ANOLE_CHECK(!t_in_task,
                "set_thread_count: must not be called from a parallel task");
    const std::size_t target = count == 0 ? env_or_hardware_threads() : count;
    std::unique_lock<std::mutex> lock(mutex_);
    if (target == target_threads_.load(std::memory_order_relaxed)) return;
    join_workers(lock);
    target_threads_.store(target, std::memory_order_relaxed);
  }

  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
    // One job at a time; concurrent top-level callers queue here.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    auto job = std::make_shared<JobState>(&fn, chunks);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      spawn_workers_locked();
      current_job_ = job;
      ++generation_;
      // The caller drains too, so at most chunks - 1 workers can find a
      // chunk; waking the rest of a large pool for a small job is pure
      // scheduler churn.
      const std::size_t useful = std::min(chunks - 1, workers_.size());
      if (useful == workers_.size()) {
        work_cv_.notify_all();
      } else {
        for (std::size_t w = 0; w < useful; ++w) work_cv_.notify_one();
      }
    }

    // The caller participates in draining the chunk counter.
    t_in_task = true;
    drain(*job);
    t_in_task = false;

    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.wait(lock, [&] {
        return job->done.load(std::memory_order_acquire) >= job->chunks;
      });
      current_job_.reset();
      error = job->error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  void spawn_workers_locked() {
    const std::size_t target =
        target_threads_.load(std::memory_order_relaxed);
    // The caller is one lane, so the pool keeps target - 1 workers.
    while (workers_.size() + 1 < target) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  void join_workers(std::unique_lock<std::mutex>& lock) {
    ANOLE_CHECK(current_job_ == nullptr,
                "parallel pool: resizing while a job is in flight");
    stop_ = true;
    work_cv_.notify_all();
    std::vector<std::thread> workers = std::move(workers_);
    workers_.clear();
    lock.unlock();
    for (std::thread& worker : workers) worker.join();
    lock.lock();
    stop_ = false;
  }

  void worker_loop() {
    t_in_task = true;
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      work_cv_.wait(lock, [&] {
        return stop_ || (current_job_ != nullptr &&
                         generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      std::shared_ptr<JobState> job = current_job_;
      lock.unlock();
      drain(*job);
      lock.lock();
    }
  }

  void drain(JobState& job) {
    for (;;) {
      const std::size_t chunk =
          job.next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= job.chunks) return;
      if (!job.failed.load(std::memory_order_relaxed)) {
        try {
          (*job.fn)(chunk);
        } catch (...) {
          job.failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mutex_);
          if (!job.error) job.error = std::current_exception();
        }
      }
      const std::size_t finished =
          job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (finished == job.chunks) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex run_mutex_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<JobState> current_job_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> target_threads_;
};

}  // namespace

std::size_t thread_count() { return Pool::instance().thread_count(); }

void set_thread_count(std::size_t count) {
  Pool::instance().set_thread_count(count);
}

bool in_parallel_region() { return t_in_task; }

std::size_t serial_cutoff() {
  static const std::size_t cutoff = env_serial_cutoff();
  return cutoff;
}

namespace detail {

void run_chunks(std::size_t chunks,
                const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  Pool::instance().run(chunks, fn);
}

}  // namespace detail

}  // namespace anole::par
