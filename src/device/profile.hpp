// Mobile-device simulator profiles (paper Table I devices: Jetson Nano,
// Jetson TX2 NX, laptop).
//
// Latency follows the affine model  latency = overhead + compute_time,
// where compute_time is proportional to model FLOPs. The per-device
// coefficients are fitted to the paper's Table IV pair (YOLOv3-tiny,
// YOLOv3) so the *shape* — fixed dispatch overhead plus a ~12x compute
// spread — matches the measured hardware. FLOPs are expressed in "tiny
// units": one unit is the compressed detector of this repo, which plays
// the role YOLOv3-tiny plays in the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anole::device {

/// One power configuration of a device (paper Fig. 11's TX2 NX modes).
struct PowerMode {
  std::string name;
  double budget_watts = 20.0;
  /// Relative compute throughput vs the device's max mode.
  double throughput_scale = 1.0;
  int cores = 6;
};

struct DeviceProfile {
  std::string name;

  /// FLOPs of one "tiny unit" (the compressed detector); set by the
  /// factory functions from the actual model.
  std::uint64_t reference_flops = 1;

  /// Fixed per-inference dispatch overhead (ms).
  double inference_overhead_ms = 10.0;
  /// Compute time (ms) for one tiny unit of FLOPs at full throughput.
  double ms_per_tiny_unit = 25.0;

  /// Weight streaming bandwidth for model loads (paper-equivalent bytes).
  double load_ms_per_mb = 20.0;
  /// One-time deep-learning-framework initialization on first load.
  double framework_init_ms = 1500.0;

  double gpu_memory_mb = 4096.0;

  /// Idle draw plus dynamic energy per tiny unit of compute.
  double idle_watts = 2.0;
  double joules_per_tiny_unit = 0.13;

  std::vector<PowerMode> power_modes;

  /// --- derived quantities ---

  /// End-to-end inference latency for a model of `flops`.
  double inference_latency_ms(std::uint64_t flops,
                              double throughput_scale = 1.0) const;

  /// Latency of loading `weight_mb` (paper-equivalent megabytes);
  /// `first_load` adds framework initialization.
  double load_latency_ms(double weight_mb, bool first_load) const;

  /// Sustained power at `fps` frames/s of `flops_per_frame` compute,
  /// clamped to the mode's budget.
  double power_watts(std::uint64_t flops_per_frame, double fps,
                     const PowerMode& mode) const;

  /// Max achievable frame rate in a mode for a per-frame cost.
  double max_fps(std::uint64_t flops_per_frame,
                 const PowerMode& mode) const;

  /// Calibrated Table-I devices. `reference_flops` is the FLOPs of the
  /// compressed detector (one tiny unit).
  static DeviceProfile jetson_nano(std::uint64_t reference_flops);
  static DeviceProfile jetson_tx2_nx(std::uint64_t reference_flops);
  static DeviceProfile laptop(std::uint64_t reference_flops);
  static std::vector<DeviceProfile> all_devices(
      std::uint64_t reference_flops);
};

/// Paper-equivalent memory accounting: maps this repo's (small) serialized
/// model sizes onto the paper's Table IV scale, where the compressed
/// detector weighs ~40 MB loaded and executing a detector costs ~1 GB of
/// runtime + activations.
class MemoryModel {
 public:
  /// `reference_bytes` = serialized size of the compressed detector.
  explicit MemoryModel(std::uint64_t reference_bytes);

  /// Loaded-weights footprint in paper-equivalent MB.
  double load_mb(std::uint64_t bytes) const;

  /// Execution footprint (weights + runtime + activations), batch size 1.
  /// Detectors and classifier heads have different runtime constants.
  double execution_mb(std::uint64_t bytes, bool is_detector) const;

 private:
  double mb_per_byte_;
};

}  // namespace anole::device
