#include "device/profile.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anole::device {

double DeviceProfile::inference_latency_ms(std::uint64_t flops,
                                           double throughput_scale) const {
  ANOLE_CHECK(throughput_scale > 0.0,
              "inference_latency_ms: throughput_scale must be positive, "
              "got ",
              throughput_scale);
  ANOLE_CHECK_GE(reference_flops, 1u,
                 "inference_latency_ms: reference_flops == 0");
  const double units = static_cast<double>(flops) /
                       static_cast<double>(reference_flops);
  return inference_overhead_ms +
         units * ms_per_tiny_unit / throughput_scale;
}

double DeviceProfile::load_latency_ms(double weight_mb,
                                      bool first_load) const {
  return weight_mb * load_ms_per_mb + (first_load ? framework_init_ms : 0.0);
}

double DeviceProfile::power_watts(std::uint64_t flops_per_frame, double fps,
                                  const PowerMode& mode) const {
  const double units = static_cast<double>(flops_per_frame) /
                       static_cast<double>(reference_flops);
  const double dynamic = units * joules_per_tiny_unit * fps;
  return std::min(idle_watts + dynamic, mode.budget_watts);
}

double DeviceProfile::max_fps(std::uint64_t flops_per_frame,
                              const PowerMode& mode) const {
  const double latency =
      inference_latency_ms(flops_per_frame, mode.throughput_scale);
  return latency > 0.0 ? 1000.0 / latency : 0.0;
}

namespace {

std::vector<PowerMode> tx2_power_modes() {
  return {
      {"7.5W 2-core", 7.5, 0.45, 2},
      {"10W 4-core", 10.0, 0.65, 4},
      {"15W 4-core", 15.0, 0.85, 4},
      {"20W 6-core", 20.0, 1.00, 6},
  };
}

}  // namespace

// Coefficients below are fitted to the paper's Table IV latencies
// (tiny, deep) = Nano (37.8, 313.8), TX2 NX (10.8, 42.9), laptop
// (32.2, 62.2) assuming the paper's 11.8x FLOPs spread between YOLOv3 and
// YOLOv3-tiny:  latency = overhead + units * ms_per_tiny_unit.

DeviceProfile DeviceProfile::jetson_nano(std::uint64_t reference_flops) {
  DeviceProfile profile;
  profile.name = "Jetson Nano";
  profile.reference_flops = reference_flops;
  profile.inference_overhead_ms = 12.2;
  profile.ms_per_tiny_unit = 25.6;
  profile.load_ms_per_mb = 22.0;
  profile.framework_init_ms = 2600.0;
  profile.gpu_memory_mb = 2048.0;
  profile.idle_watts = 1.5;
  profile.joules_per_tiny_unit = 0.16;
  profile.power_modes = {{"5W 2-core", 5.0, 0.55, 2},
                         {"10W 4-core", 10.0, 1.0, 4}};
  return profile;
}

DeviceProfile DeviceProfile::jetson_tx2_nx(std::uint64_t reference_flops) {
  DeviceProfile profile;
  profile.name = "Jetson TX2 NX";
  profile.reference_flops = reference_flops;
  profile.inference_overhead_ms = 7.8;
  profile.ms_per_tiny_unit = 3.0;
  profile.load_ms_per_mb = 14.0;
  profile.framework_init_ms = 1800.0;
  profile.gpu_memory_mb = 4096.0;
  profile.idle_watts = 2.0;
  // Calibrated so a compressed detector + decision model at a 30 FPS
  // camera draws ~11 W (the paper's Fig. 11: 45.1% below SDM's 20 W cap).
  profile.joules_per_tiny_unit = 0.28;
  profile.power_modes = tx2_power_modes();
  return profile;
}

DeviceProfile DeviceProfile::laptop(std::uint64_t reference_flops) {
  DeviceProfile profile;
  profile.name = "Laptop";
  profile.reference_flops = reference_flops;
  profile.inference_overhead_ms = 29.4;
  profile.ms_per_tiny_unit = 2.8;
  profile.load_ms_per_mb = 8.0;
  profile.framework_init_ms = 1200.0;
  profile.gpu_memory_mb = 8192.0;
  profile.idle_watts = 15.0;
  profile.joules_per_tiny_unit = 0.35;
  profile.power_modes = {{"115W", 115.0, 1.0, 12}};
  return profile;
}

std::vector<DeviceProfile> DeviceProfile::all_devices(
    std::uint64_t reference_flops) {
  return {jetson_nano(reference_flops), jetson_tx2_nx(reference_flops),
          laptop(reference_flops)};
}

MemoryModel::MemoryModel(std::uint64_t reference_bytes) {
  ANOLE_CHECK_GE(reference_bytes, 1u,
                 "MemoryModel: reference_bytes must be > 0");
  // The compressed detector maps to the paper's 40 MB loaded footprint.
  mb_per_byte_ = 40.0 / static_cast<double>(reference_bytes);
}

double MemoryModel::load_mb(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * mb_per_byte_;
}

double MemoryModel::execution_mb(std::uint64_t bytes,
                                 bool is_detector) const {
  const double weights = load_mb(bytes);
  // Fitted to Table IV: detector execution ~= 1000 MB runtime + 2.9x
  // weights (tiny 1120, deep 1730); classifier ~= 500 MB + 2x weights
  // (M_scene + M_decision: 584).
  return is_detector ? 1000.0 + 2.9 * weights : 500.0 + 2.0 * weights;
}

}  // namespace anole::device
