// DeviceSession: a simulated on-device inference timeline.
//
// Replays a frame stream against a device profile, charging framework
// initialization on the first load, weight-streaming time on every model
// load (cache misses), decision-model time per frame, and detector time
// per frame — producing the per-frame latency series of Fig. 4(a) and the
// end-to-end latency numbers of Table IV / Fig. 10.
//
// Fault-aware accounting (DESIGN.md §9): failed load attempts re-stream
// weights (`FrameCost::retried_weight_mb`), an injected I/O latency spike
// (site `load_latency_spike`) multiplies a frame's load time by the
// armed magnitude, and frames may carry a deadline whose overruns the
// session counts.
#pragma once

#include <cstdint>
#include <vector>

#include "core/drift.hpp"
#include "core/governor.hpp"
#include "device/profile.hpp"
#include "util/fault.hpp"

namespace anole::device {

struct FrameCost {
  /// Decision/selection compute for this frame (0 for single-model runs).
  std::uint64_t decision_flops = 0;
  /// Detector compute for this frame.
  std::uint64_t detector_flops = 0;
  /// Paper-equivalent MB of weights loaded synchronously this frame
  /// (0 when the cache hit).
  double loaded_weight_mb = 0.0;
  /// Paper-equivalent MB re-streamed by failed load attempts this frame
  /// (retry cost of the degradation ladder; 0 on a clean load).
  double retried_weight_mb = 0.0;
  /// Latency budget for this frame in ms; 0 disables the deadline check.
  double deadline_ms = 0.0;
  /// True when the weights streamed this frame were int8-quantized
  /// (artifact v3 sections); purely an accounting tag — the MB fields
  /// above already reflect the smaller payload.
  bool quantized = false;
};

class DeviceSession {
 public:
  /// `faults` (optional, site `load_latency_spike`) injects I/O latency
  /// spikes into frames that stream weights; it must outlive the session.
  /// `governor` (optional) receives one observe() per processed frame so
  /// it can react to overload; it must outlive the session. The pointer
  /// is ignored when `core::governor_enabled_from_env()` is false, so
  /// ANOLE_GOVERNOR=0 reproduces the ungoverned timeline exactly.
  /// `drift` (optional) receives one observe_latency() per processed
  /// frame (latency-regime change detection, DESIGN.md §14); it must
  /// outlive the session and is likewise ignored when
  /// `core::drift_enabled_from_env()` is false (ANOLE_DRIFT=0).
  DeviceSession(const DeviceProfile& profile, double throughput_scale = 1.0,
                fault::FaultInjector* faults = nullptr,
                core::RuntimeGovernor* governor = nullptr,
                core::DriftDetector* drift = nullptr);

  /// Charges one frame and returns its end-to-end latency in ms.
  double process(const FrameCost& cost);

  const std::vector<double>& frame_latencies_ms() const {
    return latencies_;
  }

  double total_ms() const { return total_ms_; }
  std::size_t frames() const { return latencies_.size(); }
  double mean_latency_ms() const;

  /// 95th-percentile frame latency (nearest-rank); 0 for empty sessions.
  double p95_latency_ms() const;

  /// Mean latency over the most recent min(n, frames()) frames; 0 for
  /// empty sessions. Requires n >= 1.
  double recent_mean_latency_ms(std::size_t n) const;

  /// Fraction of the most recent min(n, frames()) frames that overran
  /// their deadline; 0 for empty sessions. Requires n >= 1.
  double recent_overrun_rate(std::size_t n) const;

  /// Frames whose latency exceeded their (non-zero) deadline_ms.
  std::size_t deadline_overruns() const { return deadline_overruns_; }
  /// Frames whose load latency was hit by an injected I/O spike.
  std::size_t latency_spikes() const { return latency_spikes_; }
  /// Weight-streaming frames that loaded quantized (int8) sections.
  std::size_t quantized_loads() const { return quantized_loads_; }

  /// Average throughput over the session. Convention: an empty session
  /// reports 0; a non-empty session whose total time is <= 0 ms (all
  /// frames free under the cost model) reports +infinity — "instant", not
  /// "stalled".
  double fps() const;

 private:
  const DeviceProfile profile_;
  double throughput_scale_;
  fault::FaultInjector* faults_;
  core::RuntimeGovernor* governor_;
  core::DriftDetector* drift_;
  bool framework_initialized_ = false;
  std::vector<double> latencies_;
  /// Per-frame deadline-overrun flags, parallel to latencies_.
  std::vector<std::uint8_t> overrun_flags_;
  double total_ms_ = 0.0;
  std::size_t deadline_overruns_ = 0;
  std::size_t latency_spikes_ = 0;
  std::size_t quantized_loads_ = 0;
};

}  // namespace anole::device
