// DeviceSession: a simulated on-device inference timeline.
//
// Replays a frame stream against a device profile, charging framework
// initialization on the first load, weight-streaming time on every model
// load (cache misses), decision-model time per frame, and detector time
// per frame — producing the per-frame latency series of Fig. 4(a) and the
// end-to-end latency numbers of Table IV / Fig. 10.
#pragma once

#include <cstdint>
#include <vector>

#include "device/profile.hpp"

namespace anole::device {

struct FrameCost {
  /// Decision/selection compute for this frame (0 for single-model runs).
  std::uint64_t decision_flops = 0;
  /// Detector compute for this frame.
  std::uint64_t detector_flops = 0;
  /// Paper-equivalent MB of weights loaded synchronously this frame
  /// (0 when the cache hit).
  double loaded_weight_mb = 0.0;
};

class DeviceSession {
 public:
  DeviceSession(const DeviceProfile& profile, double throughput_scale = 1.0);

  /// Charges one frame and returns its end-to-end latency in ms.
  double process(const FrameCost& cost);

  const std::vector<double>& frame_latencies_ms() const {
    return latencies_;
  }

  double total_ms() const { return total_ms_; }
  std::size_t frames() const { return latencies_.size(); }
  double mean_latency_ms() const;

  /// Average throughput over the session.
  double fps() const;

 private:
  const DeviceProfile profile_;
  double throughput_scale_;
  bool framework_initialized_ = false;
  std::vector<double> latencies_;
  double total_ms_ = 0.0;
};

}  // namespace anole::device
