#include "device/session.hpp"

#include <algorithm>
#include <limits>

namespace anole::device {

DeviceSession::DeviceSession(const DeviceProfile& profile,
                             double throughput_scale,
                             fault::FaultInjector* faults)
    : profile_(profile), throughput_scale_(throughput_scale),
      faults_(faults) {}

double DeviceSession::process(const FrameCost& cost) {
  double latency = 0.0;
  const double streamed_mb = cost.loaded_weight_mb + cost.retried_weight_mb;
  if (streamed_mb > 0.0) {
    double load_ms =
        profile_.load_latency_ms(streamed_mb,
                                 /*first_load=*/!framework_initialized_);
    framework_initialized_ = true;
    // Injected I/O stall: the whole load (including retries) slows down
    // by the armed magnitude — a contended flash/NVMe read, not a crash.
    if (faults_ != nullptr &&
        faults_->should_fail(fault::Site::kLoadLatencySpike,
                             latencies_.size())) {
      load_ms *= faults_->magnitude(fault::Site::kLoadLatencySpike);
      ++latency_spikes_;
    }
    latency += load_ms;
    if (cost.quantized) ++quantized_loads_;
  }
  if (cost.decision_flops > 0) {
    latency += profile_.inference_latency_ms(cost.decision_flops,
                                             throughput_scale_);
  }
  latency +=
      profile_.inference_latency_ms(cost.detector_flops, throughput_scale_);
  if (cost.deadline_ms > 0.0 && latency > cost.deadline_ms) {
    ++deadline_overruns_;
  }
  latencies_.push_back(latency);
  total_ms_ += latency;
  return latency;
}

double DeviceSession::mean_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  return total_ms_ / static_cast<double>(latencies_.size());
}

double DeviceSession::p95_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  // Nearest-rank percentile: ceil(0.95 * n)-th smallest value.
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t rank = (n * 95 + 99) / 100;  // ceil(n * 0.95)
  return sorted[rank - 1];
}

double DeviceSession::fps() const {
  if (latencies_.empty()) return 0.0;
  if (total_ms_ <= 0.0) return std::numeric_limits<double>::infinity();
  return 1000.0 * static_cast<double>(latencies_.size()) / total_ms_;
}

}  // namespace anole::device
