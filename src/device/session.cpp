#include "device/session.hpp"

namespace anole::device {

DeviceSession::DeviceSession(const DeviceProfile& profile,
                             double throughput_scale)
    : profile_(profile), throughput_scale_(throughput_scale) {}

double DeviceSession::process(const FrameCost& cost) {
  double latency = 0.0;
  if (cost.loaded_weight_mb > 0.0) {
    latency +=
        profile_.load_latency_ms(cost.loaded_weight_mb,
                                 /*first_load=*/!framework_initialized_);
    framework_initialized_ = true;
  }
  if (cost.decision_flops > 0) {
    latency += profile_.inference_latency_ms(cost.decision_flops,
                                             throughput_scale_);
  }
  latency +=
      profile_.inference_latency_ms(cost.detector_flops, throughput_scale_);
  latencies_.push_back(latency);
  total_ms_ += latency;
  return latency;
}

double DeviceSession::mean_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  return total_ms_ / static_cast<double>(latencies_.size());
}

double DeviceSession::fps() const {
  return total_ms_ > 0.0
             ? 1000.0 * static_cast<double>(latencies_.size()) / total_ms_
             : 0.0;
}

}  // namespace anole::device
