#include "device/session.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace anole::device {

DeviceSession::DeviceSession(const DeviceProfile& profile,
                             double throughput_scale,
                             fault::FaultInjector* faults,
                             core::RuntimeGovernor* governor,
                             core::DriftDetector* drift)
    : profile_(profile), throughput_scale_(throughput_scale),
      faults_(faults),
      governor_(core::governor_enabled_from_env() ? governor : nullptr),
      drift_(core::drift_enabled_from_env() ? drift : nullptr) {}

double DeviceSession::process(const FrameCost& cost) {
  double latency = 0.0;
  const double streamed_mb = cost.loaded_weight_mb + cost.retried_weight_mb;
  if (streamed_mb > 0.0) {
    double load_ms =
        profile_.load_latency_ms(streamed_mb,
                                 /*first_load=*/!framework_initialized_);
    framework_initialized_ = true;
    // Injected I/O stall: the whole load (including retries) slows down
    // by the armed magnitude — a contended flash/NVMe read, not a crash.
    if (faults_ != nullptr &&
        faults_->should_fail(fault::Site::kLoadLatencySpike,
                             latencies_.size())) {
      load_ms *= faults_->magnitude(fault::Site::kLoadLatencySpike);
      ++latency_spikes_;
    }
    latency += load_ms;
    if (cost.quantized) ++quantized_loads_;
  }
  if (cost.decision_flops > 0) {
    latency += profile_.inference_latency_ms(cost.decision_flops,
                                             throughput_scale_);
  }
  latency +=
      profile_.inference_latency_ms(cost.detector_flops, throughput_scale_);
  const bool overrun = cost.deadline_ms > 0.0 && latency > cost.deadline_ms;
  if (overrun) ++deadline_overruns_;
  latencies_.push_back(latency);
  overrun_flags_.push_back(overrun ? 1 : 0);
  total_ms_ += latency;
  if (governor_ != nullptr) governor_->observe(latency, overrun);
  if (drift_ != nullptr) drift_->observe_latency(latency, overrun);
  return latency;
}

double DeviceSession::mean_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  return total_ms_ / static_cast<double>(latencies_.size());
}

double DeviceSession::p95_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  // Nearest-rank percentile: ceil(0.95 * n)-th smallest value. The rank
  // is clamped into [1, n] so single-frame sessions (ceil(0.95) = 1) and
  // any future percentile tweak stay in bounds.
  std::vector<double> sorted = latencies_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const std::size_t rank = std::clamp<std::size_t>((n * 95 + 99) / 100, 1, n);
  return sorted[rank - 1];
}

double DeviceSession::recent_mean_latency_ms(std::size_t n) const {
  ANOLE_CHECK_GE(n, 1u, "recent_mean_latency_ms: window must be >= 1");
  if (latencies_.empty()) return 0.0;
  const std::size_t take = std::min(n, latencies_.size());
  double sum = 0.0;
  for (std::size_t i = latencies_.size() - take; i < latencies_.size(); ++i) {
    sum += latencies_[i];
  }
  return sum / static_cast<double>(take);
}

double DeviceSession::recent_overrun_rate(std::size_t n) const {
  ANOLE_CHECK_GE(n, 1u, "recent_overrun_rate: window must be >= 1");
  if (overrun_flags_.empty()) return 0.0;
  const std::size_t take = std::min(n, overrun_flags_.size());
  std::size_t overruns = 0;
  for (std::size_t i = overrun_flags_.size() - take; i < overrun_flags_.size();
       ++i) {
    overruns += overrun_flags_[i];
  }
  return static_cast<double>(overruns) / static_cast<double>(take);
}

double DeviceSession::fps() const {
  if (latencies_.empty()) return 0.0;
  if (total_ms_ <= 0.0) return std::numeric_limits<double>::infinity();
  return 1000.0 * static_cast<double>(latencies_.size()) / total_ms_;
}

}  // namespace anole::device
