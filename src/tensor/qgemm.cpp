#include "tensor/qgemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "tensor/simd.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace anole {
namespace {

/// Rows of the output per parallel chunk (floor; matches the fp32
/// kernels, and the work-derived grain can only coarsen it).
constexpr std::size_t kRowGrain = 16;
/// int32 accumulation of depth * 127 * 127 must not overflow; every
/// network in this codebase has depth < 100, so this is pure headroom.
constexpr std::size_t kMaxDepth = std::size_t{1} << 17;

float snap_to_half(float value) { return half_to_float(float_to_half(value)); }

std::size_t pad_depth(std::size_t depth) {
  return (depth + simd::kQgemmDepthMultiple - 1) / simd::kQgemmDepthMultiple *
         simd::kQgemmDepthMultiple;
}

/// Symmetric int8 code for `value / scale`: round-to-nearest-even (the
/// default FP environment, matching what cvtps2dq does in the vector
/// path), clamped to [-127, 127]. Shared by the weight path, the public
/// int8 row helper, and the scalar tail of the int16 activation path, so
/// every quantizer in this file produces identical codes.
std::int32_t quantize_value(float value, float inv_scale) {
  const float rounded = std::nearbyint(value * inv_scale);
  return static_cast<std::int32_t>(std::clamp(rounded, -127.0f, 127.0f));
}

/// Symmetric scale for a row with the given absolute maximum.
float row_scale(float abs_max) {
  float scale = abs_max > 0.0f ? abs_max / 127.0f : 1.0f;
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  return scale;
}

}  // namespace

void QuantizedMatrix::prepare() {
  padded_depth = pad_depth(depth);
  exec.assign(channels * padded_depth, 0);
  for (std::size_t c = 0; c < channels; ++c) {
    const std::int8_t* src = data.data() + c * depth;
    std::int16_t* dst = exec.data() + c * padded_depth;
    for (std::size_t d = 0; d < depth; ++d) dst[d] = src[d];
  }
}

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFFu) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u |
                                      (mantissa ? 0x200u : 0u));
  }
  // Re-bias from 127 to 15.
  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (half_exponent <= 0) {  // denormal or underflow to zero
    if (half_exponent < -10) return static_cast<std::uint16_t>(sign);
    // Add the implicit leading 1, then shift into the denormal position
    // with round-to-nearest-even. A carry out of the 10-bit mantissa
    // lands exactly on the smallest normal encoding, which is correct.
    mantissa |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - half_exponent);
    std::uint32_t half_mantissa = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = (1u << shift) >> 1;
    if (remainder > halfway ||
        (remainder == halfway && (half_mantissa & 1u))) {
      ++half_mantissa;
    }
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  // Normal case: round 23-bit mantissa to 10 bits, nearest-even.
  std::uint32_t half_mantissa = mantissa >> 13;
  const std::uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half_mantissa & 1u))) {
    ++half_mantissa;
    if (half_mantissa == 0x400u) {  // mantissa carry bumps the exponent
      half_mantissa = 0;
      if (half_exponent + 1 >= 0x1F) {
        return static_cast<std::uint16_t>(sign | 0x7C00u);
      }
      return static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(half_exponent + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(half_exponent) << 10) |
      half_mantissa);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;
  std::uint32_t bits;
  if (exponent == 0x1Fu) {  // inf / NaN
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {  // signed zero
      bits = sign;
    } else {  // denormal: normalize
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      bits = sign |
             (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (mantissa << 13);
    }
  } else {
    bits = sign | ((exponent + 127 - 15) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

QuantizedMatrix quantize_weights(const Tensor& weights) {
  ANOLE_CHECK_EQ(weights.rank(), 2u, "quantize_weights: rank != 2");
  const std::size_t depth = weights.rows();
  const std::size_t channels = weights.cols();
  ANOLE_CHECK_LT(depth, kMaxDepth, "quantize_weights: depth too large for "
                 "int32 accumulation");
  QuantizedMatrix q;
  q.channels = channels;
  q.depth = depth;
  q.data.resize(channels * depth);
  q.scales.resize(channels);
  const float* src = weights.data().data();
  for (std::size_t c = 0; c < channels; ++c) {
    float abs_max = 0.0f;
    for (std::size_t d = 0; d < depth; ++d) {
      abs_max = std::max(abs_max, std::abs(src[d * channels + c]));
    }
    // Snap the scale to fp16 *before* quantizing so the int8 codes are
    // computed against exactly the scale the artifact wire format stores.
    float scale = abs_max > 0.0f ? snap_to_half(abs_max / 127.0f) : 1.0f;
    if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
    q.scales[c] = scale;
    const float inv_scale = 1.0f / scale;
    std::int8_t* dst = q.data.data() + c * depth;
    for (std::size_t d = 0; d < depth; ++d) {
      dst[d] = static_cast<std::int8_t>(
          quantize_value(src[d * channels + c], inv_scale));
    }
  }
  q.prepare();
  return q;
}

Tensor dequantize_weights(const QuantizedMatrix& quantized) {
  ANOLE_CHECK_EQ(quantized.data.size(),
                 quantized.channels * quantized.depth,
                 "dequantize_weights: data size mismatch");
  ANOLE_CHECK_EQ(quantized.scales.size(), quantized.channels,
                 "dequantize_weights: scales size mismatch");
  Tensor out = Tensor::uninitialized(
      Shape{quantized.depth, quantized.channels});
  float* dst = out.data().data();
  for (std::size_t c = 0; c < quantized.channels; ++c) {
    const float scale = quantized.scales[c];
    const std::int8_t* src = quantized.data.data() + c * quantized.depth;
    for (std::size_t d = 0; d < quantized.depth; ++d) {
      dst[d * quantized.channels + c] =
          static_cast<float>(src[d]) * scale;
    }
  }
  return out;
}

float quantize_row_int8(std::span<const float> src,
                        std::span<std::int8_t> dst) {
  ANOLE_CHECK_EQ(src.size(), dst.size(), "quantize_row_int8: size mismatch");
  float abs_max = 0.0f;
  for (const float v : src) abs_max = std::max(abs_max, std::abs(v));
  const float scale = row_scale(abs_max);
  const float inv_scale = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<std::int8_t>(quantize_value(src[i], inv_scale));
  }
  return scale;
}

Tensor qgemm(const Tensor& x, const QuantizedMatrix& weights,
             std::span<const float> bias) {
  ANOLE_CHECK_EQ(x.rank(), 2u, "qgemm: input rank != 2");
  ANOLE_CHECK_EQ(x.cols(), weights.depth, "qgemm: inner dimension mismatch ",
                 shape_to_string(x.shape()), " vs depth ", weights.depth);
  ANOLE_CHECK(bias.empty() || bias.size() == weights.channels,
              "qgemm: bias size mismatch");
  ANOLE_CHECK_LT(weights.depth, kMaxDepth,
                 "qgemm: depth too large for int32 accumulation");
  ANOLE_CHECK_EQ(weights.exec.size(),
                 weights.channels * weights.padded_depth,
                 "qgemm: QuantizedMatrix::prepare() not called");
  const std::size_t m = x.rows();
  const std::size_t kp = weights.padded_depth;
  const std::size_t n = weights.channels;
  Tensor y = Tensor::uninitialized(Shape{m, n});
  if (m == 0 || n == 0) return y;

  // One parallel pass: each chunk quantizes its own activation rows into
  // the padded int16 layout (rows are disjoint, so any thread
  // decomposition yields identical codes), then runs the dispatched
  // blocked dot kernel (tensor/simd.cpp) with fused dequant (+ bias) over
  // them while they are still L1-hot. The int32 accumulation is exact, so
  // the result is independent of blocking, unrolling, thread count, and
  // dispatch level by construction.
  // for_overwrite: every slot (including depth padding) is written by
  // simd::quantize_row_int16 before the kernel reads it, so value-
  // initializing ~m*kp*2 bytes here would be pure memset overhead.
  const auto xq = std::make_unique_for_overwrite<std::int16_t[]>(m * kp);
  const auto xscale = std::make_unique_for_overwrite<float[]>(m);
  const simd::Level level = simd::active_level();
  const std::size_t work_per_row = kp * n;
  par::parallel_for_chunks(
      0, m, par::work_grain(kRowGrain, work_per_row), work_per_row,
      [&](std::size_t ilo, std::size_t ihi) {
        std::int16_t* const qbase = xq.get();
        float* const sbase = xscale.get();
        for (std::size_t i = ilo; i < ihi; ++i) {
          sbase[i] =
              simd::quantize_row_int16(level, x.row(i), qbase + i * kp, kp);
        }
        simd::qgemm_rows(level, ilo, ihi, n, kp, qbase, sbase,
                         weights.exec.data(), weights.scales.data(),
                         bias.empty() ? nullptr : bias.data(),
                         y.data().data());
      });
  return y;
}

}  // namespace anole
