#include "tensor/qgemm.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <memory>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/check.hpp"
#include "util/parallel.hpp"

namespace anole {
namespace {

/// Rows of the output per parallel chunk (matches the fp32 kernels).
constexpr std::size_t kRowGrain = 16;
/// Output channels per cache block: a 64-row panel of int16 weights (a
/// few KiB at this codebase's layer depths) plus the matching output
/// segment stays L1-resident while a chunk's rows stream through it.
constexpr std::size_t kChannelBlock = 64;
/// The int16 execution copy pads the depth to a multiple of this so the
/// vectorized dot product has no scalar tail.
constexpr std::size_t kDepthPad = 8;
/// int32 accumulation of depth * 127 * 127 must not overflow; every
/// network in this codebase has depth < 100, so this is pure headroom.
constexpr std::size_t kMaxDepth = std::size_t{1} << 17;

float snap_to_half(float value) { return half_to_float(float_to_half(value)); }

std::size_t pad_depth(std::size_t depth) {
  return (depth + kDepthPad - 1) / kDepthPad * kDepthPad;
}

/// Symmetric int8 code for `value / scale`: round-to-nearest-even (the
/// default FP environment, matching what cvtps2dq does in the vector
/// path), clamped to [-127, 127]. Shared by the weight path, the public
/// int8 row helper, and the scalar tail of the int16 activation path, so
/// every quantizer in this file produces identical codes.
std::int32_t quantize_value(float value, float inv_scale) {
  const float rounded = std::nearbyint(value * inv_scale);
  return static_cast<std::int32_t>(std::clamp(rounded, -127.0f, 127.0f));
}

/// Symmetric scale for a row with the given absolute maximum.
float row_scale(float abs_max) {
  float scale = abs_max > 0.0f ? abs_max / 127.0f : 1.0f;
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  return scale;
}

/// Quantizes one fp32 row into the padded int16 execution layout (same
/// codes as quantize_row_int8; the wider type feeds the pmaddwd idiom).
/// This is the per-call hot path — it runs on every activation row of
/// every quantized layer — so x86 gets explicit SSE2 (always present on
/// x86-64; the compiler leaves both the float abs-max reduction and the
/// float->int16 narrowing conversion scalar at baseline -O3).
float quantize_row_int16(std::span<const float> src, std::int16_t* dst,
                         std::size_t padded) {
  const std::size_t n = src.size();
#if defined(__SSE2__)
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 vmax = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vmax = _mm_max_ps(vmax, _mm_and_ps(_mm_loadu_ps(src.data() + i),
                                       abs_mask));
  }
  __m128 fold = _mm_max_ps(vmax, _mm_shuffle_ps(vmax, vmax, 0x4E));
  fold = _mm_max_ps(fold, _mm_shuffle_ps(fold, fold, 0xB1));
  float abs_max = _mm_cvtss_f32(fold);
  for (; i < n; ++i) abs_max = std::max(abs_max, std::fabs(src[i]));
  const float scale = row_scale(abs_max);
  const float inv_scale = 1.0f / scale;
  const __m128 vinv = _mm_set1_ps(inv_scale);
  const __m128 vlo = _mm_set1_ps(-127.0f);
  const __m128 vhi = _mm_set1_ps(127.0f);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a = _mm_min_ps(
        _mm_max_ps(_mm_mul_ps(_mm_loadu_ps(src.data() + i), vinv), vlo),
        vhi);
    const __m128 b = _mm_min_ps(
        _mm_max_ps(_mm_mul_ps(_mm_loadu_ps(src.data() + i + 4), vinv), vlo),
        vhi);
    // cvtps2dq rounds to nearest-even (default MXCSR), matching
    // quantize_value; the saturating pack cannot clip after the clamp.
    const __m128i packed =
        _mm_packs_epi32(_mm_cvtps_epi32(a), _mm_cvtps_epi32(b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::int16_t>(quantize_value(src[i], inv_scale));
  }
#else
  // Portable fallback: bit-pattern abs-max (integer max-reductions
  // vectorize where float ones do not; for finite floats the order is
  // identical), then the shared scalar quantizer.
  std::int32_t max_bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_bits = std::max(
        max_bits, std::bit_cast<std::int32_t>(src[i]) & 0x7FFFFFFF);
  }
  const float scale = row_scale(std::bit_cast<float>(max_bits));
  const float inv_scale = 1.0f / scale;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::int16_t>(quantize_value(src[i], inv_scale));
  }
#endif
  std::fill(dst + n, dst + padded, std::int16_t{0});
  return scale;
}

}  // namespace

void QuantizedMatrix::prepare() {
  padded_depth = pad_depth(depth);
  exec.assign(channels * padded_depth, 0);
  for (std::size_t c = 0; c < channels; ++c) {
    const std::int8_t* src = data.data() + c * depth;
    std::int16_t* dst = exec.data() + c * padded_depth;
    for (std::size_t d = 0; d < depth; ++d) dst[d] = src[d];
  }
}

std::uint16_t float_to_half(float value) {
  std::uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t exponent = (bits >> 23) & 0xFFu;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (exponent == 0xFFu) {  // inf / NaN
    return static_cast<std::uint16_t>(sign | 0x7C00u |
                                      (mantissa ? 0x200u : 0u));
  }
  // Re-bias from 127 to 15.
  const int half_exponent = static_cast<int>(exponent) - 127 + 15;
  if (half_exponent >= 0x1F) {  // overflow -> inf
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (half_exponent <= 0) {  // denormal or underflow to zero
    if (half_exponent < -10) return static_cast<std::uint16_t>(sign);
    // Add the implicit leading 1, then shift into the denormal position
    // with round-to-nearest-even. A carry out of the 10-bit mantissa
    // lands exactly on the smallest normal encoding, which is correct.
    mantissa |= 0x800000u;
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - half_exponent);
    std::uint32_t half_mantissa = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1u);
    const std::uint32_t halfway = (1u << shift) >> 1;
    if (remainder > halfway ||
        (remainder == halfway && (half_mantissa & 1u))) {
      ++half_mantissa;
    }
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  // Normal case: round 23-bit mantissa to 10 bits, nearest-even.
  std::uint32_t half_mantissa = mantissa >> 13;
  const std::uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half_mantissa & 1u))) {
    ++half_mantissa;
    if (half_mantissa == 0x400u) {  // mantissa carry bumps the exponent
      half_mantissa = 0;
      if (half_exponent + 1 >= 0x1F) {
        return static_cast<std::uint16_t>(sign | 0x7C00u);
      }
      return static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(half_exponent + 1) << 10));
    }
  }
  return static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(half_exponent) << 10) |
      half_mantissa);
}

float half_to_float(std::uint16_t half) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(half) & 0x8000u)
                             << 16;
  const std::uint32_t exponent = (half >> 10) & 0x1Fu;
  std::uint32_t mantissa = half & 0x3FFu;
  std::uint32_t bits;
  if (exponent == 0x1Fu) {  // inf / NaN
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {  // signed zero
      bits = sign;
    } else {  // denormal: normalize
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      bits = sign |
             (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
             (mantissa << 13);
    }
  } else {
    bits = sign | ((exponent + 127 - 15) << 23) | (mantissa << 13);
  }
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

QuantizedMatrix quantize_weights(const Tensor& weights) {
  ANOLE_CHECK_EQ(weights.rank(), 2u, "quantize_weights: rank != 2");
  const std::size_t depth = weights.rows();
  const std::size_t channels = weights.cols();
  ANOLE_CHECK_LT(depth, kMaxDepth, "quantize_weights: depth too large for "
                 "int32 accumulation");
  QuantizedMatrix q;
  q.channels = channels;
  q.depth = depth;
  q.data.resize(channels * depth);
  q.scales.resize(channels);
  const float* src = weights.data().data();
  for (std::size_t c = 0; c < channels; ++c) {
    float abs_max = 0.0f;
    for (std::size_t d = 0; d < depth; ++d) {
      abs_max = std::max(abs_max, std::abs(src[d * channels + c]));
    }
    // Snap the scale to fp16 *before* quantizing so the int8 codes are
    // computed against exactly the scale the artifact wire format stores.
    float scale = abs_max > 0.0f ? snap_to_half(abs_max / 127.0f) : 1.0f;
    if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
    q.scales[c] = scale;
    const float inv_scale = 1.0f / scale;
    std::int8_t* dst = q.data.data() + c * depth;
    for (std::size_t d = 0; d < depth; ++d) {
      dst[d] = static_cast<std::int8_t>(
          quantize_value(src[d * channels + c], inv_scale));
    }
  }
  q.prepare();
  return q;
}

Tensor dequantize_weights(const QuantizedMatrix& quantized) {
  ANOLE_CHECK_EQ(quantized.data.size(),
                 quantized.channels * quantized.depth,
                 "dequantize_weights: data size mismatch");
  ANOLE_CHECK_EQ(quantized.scales.size(), quantized.channels,
                 "dequantize_weights: scales size mismatch");
  Tensor out = Tensor::uninitialized(
      Shape{quantized.depth, quantized.channels});
  float* dst = out.data().data();
  for (std::size_t c = 0; c < quantized.channels; ++c) {
    const float scale = quantized.scales[c];
    const std::int8_t* src = quantized.data.data() + c * quantized.depth;
    for (std::size_t d = 0; d < quantized.depth; ++d) {
      dst[d * quantized.channels + c] =
          static_cast<float>(src[d]) * scale;
    }
  }
  return out;
}

float quantize_row_int8(std::span<const float> src,
                        std::span<std::int8_t> dst) {
  ANOLE_CHECK_EQ(src.size(), dst.size(), "quantize_row_int8: size mismatch");
  float abs_max = 0.0f;
  for (const float v : src) abs_max = std::max(abs_max, std::abs(v));
  const float scale = row_scale(abs_max);
  const float inv_scale = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<std::int8_t>(quantize_value(src[i], inv_scale));
  }
  return scale;
}

Tensor qgemm(const Tensor& x, const QuantizedMatrix& weights,
             std::span<const float> bias) {
  ANOLE_CHECK_EQ(x.rank(), 2u, "qgemm: input rank != 2");
  ANOLE_CHECK_EQ(x.cols(), weights.depth, "qgemm: inner dimension mismatch ",
                 shape_to_string(x.shape()), " vs depth ", weights.depth);
  ANOLE_CHECK(bias.empty() || bias.size() == weights.channels,
              "qgemm: bias size mismatch");
  ANOLE_CHECK_LT(weights.depth, kMaxDepth,
                 "qgemm: depth too large for int32 accumulation");
  ANOLE_CHECK_EQ(weights.exec.size(),
                 weights.channels * weights.padded_depth,
                 "qgemm: QuantizedMatrix::prepare() not called");
  const std::size_t m = x.rows();
  const std::size_t kp = weights.padded_depth;
  const std::size_t n = weights.channels;
  Tensor y = Tensor::uninitialized(Shape{m, n});
  if (m == 0 || n == 0) return y;

  // One parallel pass: each chunk quantizes its own activation rows into
  // the padded int16 layout (rows are disjoint, so any thread
  // decomposition yields identical codes), then runs the blocked dot
  // kernel with fused dequant (+ bias) over them while they are still
  // L1-hot. Two output channels per iteration share the streamed x row;
  // the int32 accumulation is exact, so the result is independent of
  // blocking, unrolling, and thread count by construction.
  // for_overwrite: every slot (including depth padding) is written by
  // quantize_row_int16 before the kernel reads it, so value-initializing
  // ~m*kp*2 bytes here would be pure memset overhead on the hot path.
  const auto xq = std::make_unique_for_overwrite<std::int16_t[]>(m * kp);
  const auto xscale = std::make_unique_for_overwrite<float[]>(m);
  par::parallel_for_chunks(0, m, kRowGrain, [&](std::size_t ilo,
                                                std::size_t ihi) {
    std::int16_t* const qbase = xq.get();
    float* const sbase = xscale.get();
    const std::int16_t* const pw = weights.exec.data();
    const float* const pscale = weights.scales.data();
    const float* const pbias = bias.empty() ? nullptr : bias.data();
    float* const py = y.data().data();
    for (std::size_t i = ilo; i < ihi; ++i) {
      sbase[i] = quantize_row_int16(x.row(i), qbase + i * kp, kp);
    }
    for (std::size_t jb = 0; jb < n; jb += kChannelBlock) {
      const std::size_t jhi = std::min(n, jb + kChannelBlock);
      for (std::size_t i = ilo; i < ihi; ++i) {
        const std::int16_t* xrow = qbase + i * kp;
        const float row_scale = sbase[i];
        float* yrow = py + i * n;
        std::size_t j = jb;
#if defined(__SSE2__)
        // Four output channels per iteration: each 128-bit x load feeds
        // four pmaddwd accumulators, and one unpack tree reduces all four
        // at once (amortizing the horizontal fold that dominates short-
        // depth epilogues). The dequant matches the scalar formula
        // exactly: cvtdq2ps == static_cast<float>(int32), and the scale
        // product rounds once per lane just like (row_scale * pscale[j]).
        const __m128 vrs = _mm_set1_ps(row_scale);
        for (; j + 4 <= jhi; j += 4) {
          const std::int16_t* w0 = pw + j * kp;
          const std::int16_t* w1 = w0 + kp;
          const std::int16_t* w2 = w1 + kp;
          const std::int16_t* w3 = w2 + kp;
          __m128i a0 = _mm_setzero_si128();
          __m128i a1 = _mm_setzero_si128();
          __m128i a2 = _mm_setzero_si128();
          __m128i a3 = _mm_setzero_si128();
          for (std::size_t kk = 0; kk < kp; kk += 8) {
            const __m128i xv = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(xrow + kk));
            a0 = _mm_add_epi32(a0, _mm_madd_epi16(xv, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w0 + kk))));
            a1 = _mm_add_epi32(a1, _mm_madd_epi16(xv, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w1 + kk))));
            a2 = _mm_add_epi32(a2, _mm_madd_epi16(xv, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w2 + kk))));
            a3 = _mm_add_epi32(a3, _mm_madd_epi16(xv, _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(w3 + kk))));
          }
          const __m128i t01 = _mm_add_epi32(_mm_unpacklo_epi32(a0, a1),
                                            _mm_unpackhi_epi32(a0, a1));
          const __m128i t23 = _mm_add_epi32(_mm_unpacklo_epi32(a2, a3),
                                            _mm_unpackhi_epi32(a2, a3));
          const __m128i sums = _mm_add_epi32(
              _mm_unpacklo_epi64(t01, t23), _mm_unpackhi_epi64(t01, t23));
          const __m128 scaled = _mm_mul_ps(
              _mm_cvtepi32_ps(sums),
              _mm_mul_ps(vrs, _mm_loadu_ps(pscale + j)));
          const __m128 out = pbias == nullptr
              ? scaled
              : _mm_add_ps(scaled, _mm_loadu_ps(pbias + j));
          _mm_storeu_ps(yrow + j, out);
        }
#else
        for (; j + 1 < jhi; j += 2) {
          const std::int16_t* w0 = pw + j * kp;
          const std::int16_t* w1 = w0 + kp;
          std::int32_t acc0 = 0;
          std::int32_t acc1 = 0;
          for (std::size_t kk = 0; kk < kp; ++kk) {
            const std::int32_t xv = xrow[kk];
            acc0 += xv * w0[kk];
            acc1 += xv * w1[kk];
          }
          const float v0 =
              static_cast<float>(acc0) * (row_scale * pscale[j]);
          const float v1 =
              static_cast<float>(acc1) * (row_scale * pscale[j + 1]);
          yrow[j] = pbias == nullptr ? v0 : v0 + pbias[j];
          yrow[j + 1] = pbias == nullptr ? v1 : v1 + pbias[j + 1];
        }
#endif
        for (; j < jhi; ++j) {
          const std::int16_t* w0 = pw + j * kp;
          std::int32_t acc = 0;
          for (std::size_t kk = 0; kk < kp; ++kk) {
            acc += static_cast<std::int32_t>(xrow[kk]) * w0[kk];
          }
          const float value =
              static_cast<float>(acc) * (row_scale * pscale[j]);
          yrow[j] = pbias == nullptr ? value : value + pbias[j];
        }
      }
    }
  });
  return y;
}

}  // namespace anole
