// Int8 quantized GEMM kernels — the inference fast path for compressed
// models (paper section IV: serving under tight mobile latency/memory
// budgets; post-training int8 is the canonical next compression step).
//
// Scheme: weights are quantized per output channel with symmetric scales
// (scale_c = max|W[:,c]| / 127, snapped to an fp16-representable value so
// the artifact wire format round-trips bit-identically); activations are
// quantized per row on the fly with the same symmetric rule. qgemm()
// accumulates int8 x int8 products into int32 — exact integer arithmetic —
// and fuses the dequantization (one multiply by scale_row * scale_col per
// output element, plus an optional bias add).
//
// Determinism: the int32 accumulation is exact, so it is associative and
// independent of any blocking or thread decomposition; the fused dequant
// is one fp operation per output element. Every entry point here is
// therefore bitwise reproducible at any thread count AND at any SIMD
// dispatch level (tensor/simd.hpp) — a strictly easier contract than the
// fp32 kernels' ordered-combine discipline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace anole {

/// IEEE 754 binary16 conversions (round-to-nearest-even, with denormal and
/// inf/NaN handling). Used to snap quantization scales and biases to the
/// values the artifact v3 wire format stores, and by nn/serialize to
/// encode them.
std::uint16_t float_to_half(float value);
float half_to_float(std::uint16_t half);

/// A per-channel symmetrically quantized weight matrix, stored transposed
/// relative to nn::Linear's [in, out] layout: row c holds output channel
/// c's `depth` weights contiguously, so the qgemm inner loop is a
/// contiguous dot product.
///
/// `data` + `scales` are the wire state (what artifact v3 stores). The
/// kernel itself runs from `exec`, a derived int16 copy padded to a
/// multiple of simd::kQgemmDepthMultiple columns: int16 operands feed the
/// multiply-add-pairs idiom (pmaddwd, 8 MACs per instruction at baseline
/// SSE2 and 16 at AVX2 — double the fp32 rate), and the zero padding
/// removes the scalar tail of the widest vectorized dot. Call prepare()
/// after filling the wire fields; qgemm() requires it.
struct QuantizedMatrix {
  std::size_t channels = 0;  ///< output channels (rows of `data`)
  std::size_t depth = 0;     ///< reduction length (columns of `data`)
  /// [channels, depth] row-major int8 weights.
  std::vector<std::int8_t> data;
  /// One symmetric scale per channel; every value is exactly representable
  /// in fp16 (snapped at quantization time).
  std::vector<float> scales;

  /// Derived, never serialized: [channels, padded_depth] int16 copy of
  /// `data` with zero-filled padding columns.
  std::size_t padded_depth = 0;
  std::vector<std::int16_t> exec;

  std::size_t size() const { return data.size(); }

  /// Rebuilds `exec`/`padded_depth` from the wire fields. Idempotent.
  void prepare();
};

/// Quantizes fp32 weights `weights` [depth, channels] (the nn::Linear
/// layout) to per-channel symmetric int8. Channels that are entirely zero
/// get scale 1 (and all-zero rows). Throws on rank != 2.
QuantizedMatrix quantize_weights(const Tensor& weights);

/// Reconstructs fp32 weights [depth, channels] from a QuantizedMatrix.
/// This is the exact matrix the quantized kernel computes with; it is NOT
/// the pre-quantization fp32 matrix.
Tensor dequantize_weights(const QuantizedMatrix& quantized);

/// Quantizes one fp32 row to symmetric int8 in place; returns the scale
/// (max|src| / 127, or 1 when the row is all zero). `dst.size()` must
/// equal `src.size()`.
float quantize_row_int8(std::span<const float> src,
                        std::span<std::int8_t> dst);

/// y = x W (+ bias): x is [m, depth] fp32 (rows are quantized on the fly),
/// W is the per-channel quantized matrix, y is [m, channels] fp32 with the
/// dequantization (and the optional [channels] bias add) fused into the
/// kernel. Cache-blocked over output channels and parallelized over rows
/// of x via util/parallel.hpp; bitwise deterministic at any thread count.
Tensor qgemm(const Tensor& x, const QuantizedMatrix& weights,
             std::span<const float> bias = {});

}  // namespace anole
