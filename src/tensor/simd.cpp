#include "tensor/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <string_view>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "util/check.hpp"
#include "util/fault.hpp"

// GCC honors per-function optimize attributes; the scalar kernels use
// them to suppress autovectorization so the "scalar" level is a genuine
// one-lane reference (Release -O3 would otherwise re-vectorize it).
#if defined(__GNUC__) && !defined(__clang__)
#define ANOLE_NO_AUTOVEC \
  __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define ANOLE_NO_AUTOVEC
#endif

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define ANOLE_HAVE_AVX2_TARGET 1
#define ANOLE_TARGET_AVX2 __attribute__((target("avx2,fma")))
#else
#define ANOLE_HAVE_AVX2_TARGET 0
#define ANOLE_TARGET_AVX2
#endif

namespace anole::simd {
namespace {

/// Cache blocking shared by every fp32 GEMM level: a kJBlock-float
/// segment of the B and C rows (1 KiB) stays in L1 while a kKBlock-row
/// panel of B is reused across every row of a chunk. Accumulation over kk
/// stays ascending for every output element, so blocking never changes
/// results within a level.
constexpr std::size_t kJBlock = 256;
constexpr std::size_t kKBlock = 64;

/// Output channels per qgemm cache block (matches the historical qgemm
/// kernel): a 64-channel panel of int16 weights plus the matching output
/// segment stays L1-resident while a chunk's rows stream through it.
constexpr std::size_t kChannelBlock = 64;

/// Symmetric int8 code for `value / scale`: round-to-nearest-even (the
/// default FP environment, matching cvtps2dq in the vector paths),
/// clamped to [-127, 127]. Mirrors the quantizer in qgemm.cpp — both must
/// emit identical codes so weight and activation quantization agree.
std::int32_t quantize_code(float value, float inv_scale) {
  const float rounded = std::nearbyint(value * inv_scale);
  return static_cast<std::int32_t>(std::clamp(rounded, -127.0f, 127.0f));
}

/// Symmetric scale for a row with the given absolute maximum.
float row_scale_for(float abs_max) {
  float scale = abs_max > 0.0f ? abs_max / 127.0f : 1.0f;
  if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
  return scale;
}

/// --- level resolution -----------------------------------------------

Level probe_cpu() {
#if ANOLE_HAVE_AVX2_TARGET
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Level::kAVX2;
  }
#endif
#if defined(__SSE2__)
  return Level::kSSE2;
#else
  return Level::kScalar;
#endif
}

Level clamp_to_detected(Level level) {
  return std::min(level, detected_level());
}

/// Publishes the level as the fault trace-context tag (encoded level+1 so
/// an unresolved process reads 0). Governor hashes read the level
/// directly; fault hashes go through this tag because util sits below
/// tensor in the layering DAG.
void publish_level(Level level) {
  fault::set_trace_context(static_cast<std::uint64_t>(level) + 1);
}

Level parse_env_level() {
  const char* env = std::getenv("ANOLE_SIMD");
  if (env == nullptr || *env == '\0') return detected_level();
  const std::string_view name(env);
  Level requested = Level::kScalar;
  if (name == "scalar") {
    requested = Level::kScalar;
  } else if (name == "sse2") {
    requested = Level::kSSE2;
  } else if (name == "avx2") {
    requested = Level::kAVX2;
  } else {
    // A typo here would silently break replay pinning, so fail loudly.
    ANOLE_CHECK(false, "ANOLE_SIMD: unknown level '", name,
                "' (expected scalar, sse2, or avx2)");
  }
  return clamp_to_detected(requested);
}

/// set_level override; kSentinelNoOverride (>= any valid level) = unset.
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

Level env_level() {
  static const Level level = [] {
    const Level resolved = parse_env_level();
    publish_level(resolved);
    return resolved;
  }();
  return level;
}

/// --- fp32 GEMM kernels ----------------------------------------------

ANOLE_NO_AUTOVEC
void gemm_rows_scalar(std::size_t ilo, std::size_t ihi, std::size_t k,
                      std::size_t n, const float* pa, std::size_t ars,
                      std::size_t acs, const float* pb, float* pc) {
  for (std::size_t jb = 0; jb < n; jb += kJBlock) {
    const std::size_t jhi = std::min(n, jb + kJBlock);
    for (std::size_t kb = 0; kb < k; kb += kKBlock) {
      const std::size_t khi = std::min(k, kb + kKBlock);
      for (std::size_t i = ilo; i < ihi; ++i) {
        float* crow = pc + i * n;
        if (kb == 0) std::fill(crow + jb, crow + jhi, 0.0f);
        for (std::size_t kk = kb; kk < khi; ++kk) {
          const float aik = pa[i * ars + kk * acs];
          if (aik == 0.0f) continue;
          const float* brow = pb + kk * n;
          for (std::size_t j = jb; j < jhi; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

#if defined(__SSE2__)
void gemm_rows_sse2(std::size_t ilo, std::size_t ihi, std::size_t k,
                    std::size_t n, const float* pa, std::size_t ars,
                    std::size_t acs, const float* pb, float* pc) {
  for (std::size_t jb = 0; jb < n; jb += kJBlock) {
    const std::size_t jhi = std::min(n, jb + kJBlock);
    for (std::size_t kb = 0; kb < k; kb += kKBlock) {
      const std::size_t khi = std::min(k, kb + kKBlock);
      for (std::size_t i = ilo; i < ihi; ++i) {
        float* crow = pc + i * n;
        if (kb == 0) std::fill(crow + jb, crow + jhi, 0.0f);
        for (std::size_t kk = kb; kk < khi; ++kk) {
          const float aik = pa[i * ars + kk * acs];
          if (aik == 0.0f) continue;
          const float* brow = pb + kk * n;
          // Separate mul + add per lane: one rounding each, exactly the
          // scalar expression c[j] += a*b[j] — bitwise equal to kScalar.
          const __m128 va = _mm_set1_ps(aik);
          std::size_t j = jb;
          for (; j + 4 <= jhi; j += 4) {
            const __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(brow + j));
            _mm_storeu_ps(crow + j,
                          _mm_add_ps(_mm_loadu_ps(crow + j), prod));
          }
          for (; j < jhi; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}
#endif  // __SSE2__

#if ANOLE_HAVE_AVX2_TARGET
/// Lane-enable masks for `_mm256_maskload_ps`/`_mm256_maskstore_ps`:
/// `kTailMask + (8 - t)` enables the first `t` lanes. A masked fused
/// multiply-add is the same single-rounding operation per active lane as
/// the scalar `std::fmaf` it replaces, and inactive lanes are neither
/// read nor written, so tail handling stays bitwise identical to the
/// historical scalar-fma tail.
alignas(32) constexpr std::int32_t kTailMask[16] = {-1, -1, -1, -1, -1, -1,
                                                   -1, -1, 0,  0,  0,  0,
                                                   0,  0,  0,  0};

/// Narrow-output kernel: the whole C row lives in `kVecs` register
/// accumulators across the k loop instead of a load/store round trip per
/// k (the blocked path below is store-forwarding-bound at the skinny
/// widths the NN layers run: 5, 16, 24, 42). `kRows` C rows advance
/// together so one set of B-row loads feeds several accumulator rows —
/// and in the transpose-A layouts (`acs > 1`) the per-row A scalars for
/// a k step sit in the same cache line. The last vector is masked so any
/// n in ((kVecs-1)*8, kVecs*8] fits. Per output element the accumulation
/// is still one fused multiply-add per k, kk ascending, independent of
/// row grouping and chunk boundaries, so results are bitwise identical
/// to the blocked path at any thread count.
template <int kVecs, int kRows>
ANOLE_TARGET_AVX2 void gemm_rows_avx2_narrow(std::size_t ilo, std::size_t ihi,
                                             std::size_t k, std::size_t n,
                                             const float* pa, std::size_t ars,
                                             std::size_t acs, const float* pb,
                                             float* pc, __m256i last_mask) {
  std::size_t i = ilo;
  for (; i + kRows <= ihi; i += kRows) {
    __m256 acc[kRows][kVecs];
    for (int r = 0; r < kRows; ++r) {
      for (int v = 0; v < kVecs; ++v) acc[r][v] = _mm256_setzero_ps();
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = pb + kk * n;
      __m256 b[kVecs];
      for (int v = 0; v + 1 < kVecs; ++v) b[v] = _mm256_loadu_ps(brow + 8 * v);
      b[kVecs - 1] = _mm256_maskload_ps(brow + 8 * (kVecs - 1), last_mask);
      for (int r = 0; r < kRows; ++r) {
        const float aik = pa[(i + r) * ars + kk * acs];
        // Matches the scalar kernel's zero skip: a zero coefficient must
        // contribute nothing, even against non-finite B entries.
        if (aik == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(aik);
        for (int v = 0; v < kVecs; ++v) {
          acc[r][v] = _mm256_fmadd_ps(va, b[v], acc[r][v]);
        }
      }
    }
    for (int r = 0; r < kRows; ++r) {
      float* crow = pc + (i + r) * n;
      for (int v = 0; v + 1 < kVecs; ++v) {
        _mm256_storeu_ps(crow + 8 * v, acc[r][v]);
      }
      _mm256_maskstore_ps(crow + 8 * (kVecs - 1), last_mask, acc[r][kVecs - 1]);
    }
  }
  if constexpr (kRows > 1) {
    gemm_rows_avx2_narrow<kVecs, 1>(i, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
  }
}

ANOLE_TARGET_AVX2
void gemm_rows_avx2(std::size_t ilo, std::size_t ihi, std::size_t k,
                    std::size_t n, const float* pa, std::size_t ars,
                    std::size_t acs, const float* pb, float* pc) {
  if (n > 0 && n <= 64) {
    const std::size_t tail = n % 8;
    const __m256i last_mask = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
        kTailMask + (tail == 0 ? 0 : 8 - tail)));
    // Row-group widths keep every live accumulator (kRows * kVecs), the
    // shared B vectors, and the broadcast register inside the 16 ymm
    // registers; wider outputs drop to fewer rows per group.
    switch ((n + 7) / 8) {
      case 1:
        gemm_rows_avx2_narrow<1, 8>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 2:
        gemm_rows_avx2_narrow<2, 6>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 3:
        gemm_rows_avx2_narrow<3, 3>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 4:
        gemm_rows_avx2_narrow<4, 2>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 5:
        gemm_rows_avx2_narrow<5, 1>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 6:
        gemm_rows_avx2_narrow<6, 1>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      case 7:
        gemm_rows_avx2_narrow<7, 1>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
      default:
        gemm_rows_avx2_narrow<8, 1>(ilo, ihi, k, n, pa, ars, acs, pb, pc,
                                    last_mask);
        return;
    }
  }
  for (std::size_t jb = 0; jb < n; jb += kJBlock) {
    const std::size_t jhi = std::min(n, jb + kJBlock);
    const std::size_t tail = (jhi - jb) % 8;
    const std::size_t jvec = jhi - tail;
    const __m256i tail_mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMask + (8 - tail)));
    for (std::size_t kb = 0; kb < k; kb += kKBlock) {
      const std::size_t khi = std::min(k, kb + kKBlock);
      for (std::size_t i = ilo; i < ihi; ++i) {
        float* crow = pc + i * n;
        if (kb == 0) std::fill(crow + jb, crow + jhi, 0.0f);
        for (std::size_t kk = kb; kk < khi; ++kk) {
          const float aik = pa[i * ars + kk * acs];
          if (aik == 0.0f) continue;
          const float* brow = pb + kk * n;
          // FMA: one rounding per multiply-add, in the full vector body
          // and the masked tail alike, so the whole level is "fused
          // everywhere"; tail membership depends only on (n, jb), never
          // on threading.
          const __m256 va = _mm256_set1_ps(aik);
          for (std::size_t j = jb; j + 8 <= jhi; j += 8) {
            _mm256_storeu_ps(
                crow + j,
                _mm256_fmadd_ps(va, _mm256_loadu_ps(brow + j),
                                _mm256_loadu_ps(crow + j)));
          }
          if (tail != 0) {
            _mm256_maskstore_ps(
                crow + jvec, tail_mask,
                _mm256_fmadd_ps(va, _mm256_maskload_ps(brow + jvec, tail_mask),
                                _mm256_maskload_ps(crow + jvec, tail_mask)));
          }
        }
      }
    }
  }
}
#endif  // ANOLE_HAVE_AVX2_TARGET

/// --- activation quantization ----------------------------------------

ANOLE_NO_AUTOVEC
float quantize_row_int16_scalar(std::span<const float> src, std::int16_t* dst,
                                std::size_t padded) {
  const std::size_t n = src.size();
  float abs_max = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    abs_max = std::max(abs_max, std::fabs(src[i]));
  }
  const float scale = row_scale_for(abs_max);
  const float inv_scale = 1.0f / scale;
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::int16_t>(quantize_code(src[i], inv_scale));
  }
  std::fill(dst + n, dst + padded, std::int16_t{0});
  return scale;
}

#if defined(__SSE2__)
float quantize_row_int16_sse2(std::span<const float> src, std::int16_t* dst,
                              std::size_t padded) {
  const std::size_t n = src.size();
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 vmax = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vmax = _mm_max_ps(vmax,
                      _mm_and_ps(_mm_loadu_ps(src.data() + i), abs_mask));
  }
  __m128 fold = _mm_max_ps(vmax, _mm_shuffle_ps(vmax, vmax, 0x4E));
  fold = _mm_max_ps(fold, _mm_shuffle_ps(fold, fold, 0xB1));
  float abs_max = _mm_cvtss_f32(fold);
  for (; i < n; ++i) abs_max = std::max(abs_max, std::fabs(src[i]));
  const float scale = row_scale_for(abs_max);
  const float inv_scale = 1.0f / scale;
  const __m128 vinv = _mm_set1_ps(inv_scale);
  const __m128 vlo = _mm_set1_ps(-127.0f);
  const __m128 vhi = _mm_set1_ps(127.0f);
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a = _mm_min_ps(
        _mm_max_ps(_mm_mul_ps(_mm_loadu_ps(src.data() + i), vinv), vlo),
        vhi);
    const __m128 b = _mm_min_ps(
        _mm_max_ps(_mm_mul_ps(_mm_loadu_ps(src.data() + i + 4), vinv), vlo),
        vhi);
    // cvtps2dq rounds to nearest-even (default MXCSR), matching
    // quantize_code; the saturating pack cannot clip after the clamp.
    const __m128i packed =
        _mm_packs_epi32(_mm_cvtps_epi32(a), _mm_cvtps_epi32(b));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::int16_t>(quantize_code(src[i], inv_scale));
  }
  std::fill(dst + n, dst + padded, std::int16_t{0});
  return scale;
}
#endif  // __SSE2__

#if ANOLE_HAVE_AVX2_TARGET
ANOLE_TARGET_AVX2
float quantize_row_int16_avx2(std::span<const float> src, std::int16_t* dst,
                              std::size_t padded) {
  const std::size_t n = src.size();
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vmax = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(
        vmax, _mm256_and_ps(_mm256_loadu_ps(src.data() + i), abs_mask));
  }
  __m128 fold = _mm_max_ps(_mm256_castps256_ps128(vmax),
                           _mm256_extractf128_ps(vmax, 1));
  fold = _mm_max_ps(fold, _mm_shuffle_ps(fold, fold, 0x4E));
  fold = _mm_max_ps(fold, _mm_shuffle_ps(fold, fold, 0xB1));
  float abs_max = _mm_cvtss_f32(fold);
  for (; i < n; ++i) abs_max = std::max(abs_max, std::fabs(src[i]));
  const float scale = row_scale_for(abs_max);
  const float inv_scale = 1.0f / scale;
  const __m256 vinv = _mm256_set1_ps(inv_scale);
  const __m256 vlo = _mm256_set1_ps(-127.0f);
  const __m256 vhi = _mm256_set1_ps(127.0f);
  i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 a = _mm256_min_ps(
        _mm256_max_ps(
            _mm256_mul_ps(_mm256_loadu_ps(src.data() + i), vinv), vlo),
        vhi);
    const __m256 b = _mm256_min_ps(
        _mm256_max_ps(
            _mm256_mul_ps(_mm256_loadu_ps(src.data() + i + 8), vinv), vlo),
        vhi);
    // packs works within 128-bit lanes; the permute restores order.
    const __m256i packed = _mm256_permute4x64_epi64(
        _mm256_packs_epi32(_mm256_cvtps_epi32(a), _mm256_cvtps_epi32(b)),
        0xD8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), packed);
  }
  for (; i < n; ++i) {
    dst[i] = static_cast<std::int16_t>(quantize_code(src[i], inv_scale));
  }
  std::fill(dst + n, dst + padded, std::int16_t{0});
  return scale;
}
#endif  // ANOLE_HAVE_AVX2_TARGET

/// --- int8 GEMM kernels ----------------------------------------------

ANOLE_NO_AUTOVEC
void qgemm_rows_scalar(std::size_t ilo, std::size_t ihi, std::size_t n,
                       std::size_t kp, const std::int16_t* xq,
                       const float* xscale, const std::int16_t* pw,
                       const float* pscale, const float* pbias, float* py) {
  for (std::size_t jb = 0; jb < n; jb += kChannelBlock) {
    const std::size_t jhi = std::min(n, jb + kChannelBlock);
    for (std::size_t i = ilo; i < ihi; ++i) {
      const std::int16_t* xrow = xq + i * kp;
      const float row_scale = xscale[i];
      float* yrow = py + i * n;
      std::size_t j = jb;
      for (; j + 1 < jhi; j += 2) {
        const std::int16_t* w0 = pw + j * kp;
        const std::int16_t* w1 = w0 + kp;
        std::int32_t acc0 = 0;
        std::int32_t acc1 = 0;
        for (std::size_t kk = 0; kk < kp; ++kk) {
          const std::int32_t xv = xrow[kk];
          acc0 += xv * w0[kk];
          acc1 += xv * w1[kk];
        }
        const float v0 = static_cast<float>(acc0) * (row_scale * pscale[j]);
        const float v1 =
            static_cast<float>(acc1) * (row_scale * pscale[j + 1]);
        yrow[j] = pbias == nullptr ? v0 : v0 + pbias[j];
        yrow[j + 1] = pbias == nullptr ? v1 : v1 + pbias[j + 1];
      }
      for (; j < jhi; ++j) {
        const std::int16_t* w0 = pw + j * kp;
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < kp; ++kk) {
          acc += static_cast<std::int32_t>(xrow[kk]) * w0[kk];
        }
        const float value = static_cast<float>(acc) * (row_scale * pscale[j]);
        yrow[j] = pbias == nullptr ? value : value + pbias[j];
      }
    }
  }
}

#if defined(__SSE2__)
void qgemm_rows_sse2(std::size_t ilo, std::size_t ihi, std::size_t n,
                     std::size_t kp, const std::int16_t* xq,
                     const float* xscale, const std::int16_t* pw,
                     const float* pscale, const float* pbias, float* py) {
  for (std::size_t jb = 0; jb < n; jb += kChannelBlock) {
    const std::size_t jhi = std::min(n, jb + kChannelBlock);
    for (std::size_t i = ilo; i < ihi; ++i) {
      const std::int16_t* xrow = xq + i * kp;
      const float row_scale = xscale[i];
      float* yrow = py + i * n;
      std::size_t j = jb;
      // Four output channels per iteration: each 128-bit x load feeds
      // four pmaddwd accumulators, and one unpack tree reduces all four
      // at once (amortizing the horizontal fold that dominates short-
      // depth epilogues). The dequant matches the scalar formula exactly:
      // cvtdq2ps == static_cast<float>(int32), and the scale product
      // rounds once per lane just like (row_scale * pscale[j]).
      const __m128 vrs = _mm_set1_ps(row_scale);
      for (; j + 4 <= jhi; j += 4) {
        const std::int16_t* w0 = pw + j * kp;
        const std::int16_t* w1 = w0 + kp;
        const std::int16_t* w2 = w1 + kp;
        const std::int16_t* w3 = w2 + kp;
        __m128i a0 = _mm_setzero_si128();
        __m128i a1 = _mm_setzero_si128();
        __m128i a2 = _mm_setzero_si128();
        __m128i a3 = _mm_setzero_si128();
        for (std::size_t kk = 0; kk < kp; kk += 8) {
          const __m128i xv = _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(xrow + kk));
          a0 = _mm_add_epi32(a0, _mm_madd_epi16(xv, _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(w0 + kk))));
          a1 = _mm_add_epi32(a1, _mm_madd_epi16(xv, _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(w1 + kk))));
          a2 = _mm_add_epi32(a2, _mm_madd_epi16(xv, _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(w2 + kk))));
          a3 = _mm_add_epi32(a3, _mm_madd_epi16(xv, _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(w3 + kk))));
        }
        const __m128i t01 = _mm_add_epi32(_mm_unpacklo_epi32(a0, a1),
                                          _mm_unpackhi_epi32(a0, a1));
        const __m128i t23 = _mm_add_epi32(_mm_unpacklo_epi32(a2, a3),
                                          _mm_unpackhi_epi32(a2, a3));
        const __m128i sums = _mm_add_epi32(
            _mm_unpacklo_epi64(t01, t23), _mm_unpackhi_epi64(t01, t23));
        const __m128 scaled = _mm_mul_ps(
            _mm_cvtepi32_ps(sums), _mm_mul_ps(vrs, _mm_loadu_ps(pscale + j)));
        const __m128 out = pbias == nullptr
            ? scaled
            : _mm_add_ps(scaled, _mm_loadu_ps(pbias + j));
        _mm_storeu_ps(yrow + j, out);
      }
      for (; j < jhi; ++j) {
        const std::int16_t* w0 = pw + j * kp;
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < kp; ++kk) {
          acc += static_cast<std::int32_t>(xrow[kk]) * w0[kk];
        }
        const float value = static_cast<float>(acc) * (row_scale * pscale[j]);
        yrow[j] = pbias == nullptr ? value : value + pbias[j];
      }
    }
  }
}
#endif  // __SSE2__

#if ANOLE_HAVE_AVX2_TARGET
ANOLE_TARGET_AVX2
void qgemm_rows_avx2(std::size_t ilo, std::size_t ihi, std::size_t n,
                     std::size_t kp, const std::int16_t* xq,
                     const float* xscale, const std::int16_t* pw,
                     const float* pscale, const float* pbias, float* py) {
  for (std::size_t jb = 0; jb < n; jb += kChannelBlock) {
    const std::size_t jhi = std::min(n, jb + kChannelBlock);
    for (std::size_t i = ilo; i < ihi; ++i) {
      const std::int16_t* xrow = xq + i * kp;
      const float row_scale = xscale[i];
      float* yrow = py + i * n;
      std::size_t j = jb;
      // 256-bit pmaddwd: 16 int16 MACs per instruction, four channels per
      // iteration; each accumulator folds to 128 bits and goes through
      // the same unpack-tree reduction as the SSE2 kernel. int32 sums are
      // exact, so this is bitwise identical to every other level.
      const __m128 vrs = _mm_set1_ps(row_scale);
      for (; j + 4 <= jhi; j += 4) {
        const std::int16_t* w0 = pw + j * kp;
        const std::int16_t* w1 = w0 + kp;
        const std::int16_t* w2 = w1 + kp;
        const std::int16_t* w3 = w2 + kp;
        __m256i a0 = _mm256_setzero_si256();
        __m256i a1 = _mm256_setzero_si256();
        __m256i a2 = _mm256_setzero_si256();
        __m256i a3 = _mm256_setzero_si256();
        for (std::size_t kk = 0; kk < kp; kk += 16) {
          const __m256i xv = _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(xrow + kk));
          a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(xv, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w0 + kk))));
          a1 = _mm256_add_epi32(a1, _mm256_madd_epi16(xv, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w1 + kk))));
          a2 = _mm256_add_epi32(a2, _mm256_madd_epi16(xv, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w2 + kk))));
          a3 = _mm256_add_epi32(a3, _mm256_madd_epi16(xv, _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(w3 + kk))));
        }
        const __m128i f0 = _mm_add_epi32(_mm256_castsi256_si128(a0),
                                         _mm256_extracti128_si256(a0, 1));
        const __m128i f1 = _mm_add_epi32(_mm256_castsi256_si128(a1),
                                         _mm256_extracti128_si256(a1, 1));
        const __m128i f2 = _mm_add_epi32(_mm256_castsi256_si128(a2),
                                         _mm256_extracti128_si256(a2, 1));
        const __m128i f3 = _mm_add_epi32(_mm256_castsi256_si128(a3),
                                         _mm256_extracti128_si256(a3, 1));
        const __m128i t01 = _mm_add_epi32(_mm_unpacklo_epi32(f0, f1),
                                          _mm_unpackhi_epi32(f0, f1));
        const __m128i t23 = _mm_add_epi32(_mm_unpacklo_epi32(f2, f3),
                                          _mm_unpackhi_epi32(f2, f3));
        const __m128i sums = _mm_add_epi32(
            _mm_unpacklo_epi64(t01, t23), _mm_unpackhi_epi64(t01, t23));
        const __m128 scaled = _mm_mul_ps(
            _mm_cvtepi32_ps(sums), _mm_mul_ps(vrs, _mm_loadu_ps(pscale + j)));
        const __m128 out = pbias == nullptr
            ? scaled
            : _mm_add_ps(scaled, _mm_loadu_ps(pbias + j));
        _mm_storeu_ps(yrow + j, out);
      }
      for (; j < jhi; ++j) {
        const std::int16_t* w0 = pw + j * kp;
        std::int32_t acc = 0;
        for (std::size_t kk = 0; kk < kp; ++kk) {
          acc += static_cast<std::int32_t>(xrow[kk]) * w0[kk];
        }
        const float value = static_cast<float>(acc) * (row_scale * pscale[j]);
        yrow[j] = pbias == nullptr ? value : value + pbias[j];
      }
    }
  }
}
#endif  // ANOLE_HAVE_AVX2_TARGET

/// --- sigmoid / BCE transcendental kernels ---------------------------

ANOLE_NO_AUTOVEC
void sigmoid_terms_scalar(const float* z, std::size_t n, float* p,
                          float* log_term) {
  for (std::size_t i = 0; i < n; ++i) {
    const float zi = z[i];
    // Exactly the historical loss-loop expressions; this path defines
    // the reference values the AVX2 polynomial is tested against.
    p[i] = 1.0f / (1.0f + std::exp(-zi));
    if (log_term != nullptr) {
      log_term[i] = std::log1p(std::exp(-std::abs(zi)));
    }
  }
}

#if ANOLE_HAVE_AVX2_TARGET
/// Cephes-style exp: split x = n·ln2 + r with |r| <= ln2/2, evaluate a
/// degree-6 polynomial for exp(r) (FMA Horner), scale by 2^n through the
/// exponent field. The clamp to [-87.33, 88.0] keeps 2^n normal at both
/// ends (no subnormal or infinity encodings), so inputs past sigmoid
/// saturation return ~1.07e-38 instead of libm's subnormal/zero — an
/// absolute error below 1.1e-38. Elsewhere the result is within a few
/// ULP of libm.
ANOLE_TARGET_AVX2 inline __m256 exp_avx2(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  x = _mm256_min_ps(x, _mm256_set1_ps(88.0f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-87.3365478515625f));
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  // r = x - fx*ln2, with ln2 split so the reduction stays exact.
  __m256 r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), r);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(r, r), _mm256_add_ps(r, one));
  const __m256i exponent = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(exponent));
}

/// log1p(u) for u in [0, 1] via the atanh identity log1p(u) =
/// 2·atanh(u / (2 + u)): s = u/(2+u) lies in [0, 1/3], where the odd
/// series 2s·(1 + s²/3 + s⁴/5 + s⁶/7 + s⁸/9 + s¹⁰/11) converges to a
/// relative error below 1e-7 — and degrades gracefully to log1p(u) ≈ u
/// for tiny u, so the tiny-e tail of the BCE log term keeps full
/// relative accuracy.
ANOLE_TARGET_AVX2 inline __m256 log1p_unit_avx2(__m256 u) {
  const __m256 s = _mm256_div_ps(u, _mm256_add_ps(_mm256_set1_ps(2.0f), u));
  const __m256 s2 = _mm256_mul_ps(s, s);
  __m256 poly = _mm256_set1_ps(1.0f / 11.0f);
  poly = _mm256_fmadd_ps(poly, s2, _mm256_set1_ps(1.0f / 9.0f));
  poly = _mm256_fmadd_ps(poly, s2, _mm256_set1_ps(1.0f / 7.0f));
  poly = _mm256_fmadd_ps(poly, s2, _mm256_set1_ps(1.0f / 5.0f));
  poly = _mm256_fmadd_ps(poly, s2, _mm256_set1_ps(1.0f / 3.0f));
  poly = _mm256_fmadd_ps(poly, s2, _mm256_set1_ps(1.0f));
  return _mm256_mul_ps(_mm256_add_ps(s, s), poly);
}

ANOLE_TARGET_AVX2
void sigmoid_terms_avx2(const float* z, std::size_t n, float* p,
                        float* log_term) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 sign_bit = _mm256_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 zv = _mm256_loadu_ps(z + i);
    // e = exp(-|z|) in (0, 1]: one transcendental feeds both outputs,
    // and σ(z) = z >= 0 ? 1/(1+e) : e/(1+e) never overflows.
    const __m256 e = exp_avx2(_mm256_or_ps(zv, sign_bit));
    const __m256 denom = _mm256_add_ps(one, e);
    const __m256 sig = _mm256_blendv_ps(_mm256_div_ps(e, denom),
                                        _mm256_div_ps(one, denom),
                                        _mm256_cmp_ps(zv, zero, _CMP_GE_OQ));
    _mm256_storeu_ps(p + i, sig);
    if (log_term != nullptr) {
      _mm256_storeu_ps(log_term + i, log1p_unit_avx2(e));
    }
  }
  // libm tail: membership depends only on n, so the level stays bitwise
  // deterministic call to call.
  for (; i < n; ++i) {
    const float zi = z[i];
    p[i] = 1.0f / (1.0f + std::exp(-zi));
    if (log_term != nullptr) {
      log_term[i] = std::log1p(std::exp(-std::abs(zi)));
    }
  }
}
#endif  // ANOLE_HAVE_AVX2_TARGET

/// --- k-means distance kernels ---------------------------------------
/// Lanes map to centroids; each lane accumulates in ascending dimension
/// order with separate multiply and add, so every level produces bitwise
/// identical distances (and identical assignments downstream).

ANOLE_NO_AUTOVEC
void kmeans_distances_scalar(const float* point, std::size_t dims,
                             const double* ct, std::size_t k_stride,
                             double* dist) {
  for (std::size_t j = 0; j < k_stride; ++j) dist[j] = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double pv = static_cast<double>(point[d]);
    const double* crow = ct + d * k_stride;
    for (std::size_t j = 0; j < k_stride; ++j) {
      const double diff = pv - crow[j];
      dist[j] += diff * diff;
    }
  }
}

#if defined(__SSE2__)
void kmeans_distances_sse2(const float* point, std::size_t dims,
                           const double* ct, std::size_t k_stride,
                           double* dist) {
  for (std::size_t j = 0; j + 2 <= k_stride; j += 2) {
    __m128d acc = _mm_setzero_pd();
    for (std::size_t d = 0; d < dims; ++d) {
      const __m128d pv = _mm_set1_pd(static_cast<double>(point[d]));
      const __m128d diff = _mm_sub_pd(pv, _mm_loadu_pd(ct + d * k_stride + j));
      acc = _mm_add_pd(acc, _mm_mul_pd(diff, diff));
    }
    _mm_storeu_pd(dist + j, acc);
  }
}
#endif  // __SSE2__

#if ANOLE_HAVE_AVX2_TARGET
ANOLE_TARGET_AVX2
void kmeans_distances_avx2(const float* point, std::size_t dims,
                           const double* ct, std::size_t k_stride,
                           double* dist) {
  for (std::size_t j = 0; j + 4 <= k_stride; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t d = 0; d < dims; ++d) {
      const __m256d pv = _mm256_set1_pd(static_cast<double>(point[d]));
      const __m256d diff =
          _mm256_sub_pd(pv, _mm256_loadu_pd(ct + d * k_stride + j));
      // mul + add (no FMA): each lane rounds exactly like the scalar
      // loop, keeping distances bitwise identical across levels.
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(dist + j, acc);
  }
}
#endif  // ANOLE_HAVE_AVX2_TARGET

}  // namespace

Level detected_level() {
  static const Level level = probe_cpu();
  return level;
}

Level active_level() {
  const int override_level = g_override.load(std::memory_order_relaxed);
  if (override_level != kNoOverride) {
    return static_cast<Level>(override_level);
  }
  return env_level();
}

void set_level(Level level) {
  const Level clamped = clamp_to_detected(level);
  g_override.store(static_cast<int>(clamped), std::memory_order_relaxed);
  publish_level(clamped);
}

void reset_level() {
  g_override.store(kNoOverride, std::memory_order_relaxed);
  publish_level(env_level());
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSSE2:
      return "sse2";
    case Level::kAVX2:
      return "avx2";
  }
  return "unknown";
}

void gemm_rows(Level level, std::size_t ilo, std::size_t ihi, std::size_t k,
               std::size_t n, const float* pa, std::size_t a_row_stride,
               std::size_t a_col_stride, const float* pb, float* pc) {
  ANOLE_DCHECK(ilo <= ihi, "gemm_rows: ilo ", ilo, " > ihi ", ihi);
  switch (level) {
#if ANOLE_HAVE_AVX2_TARGET
    case Level::kAVX2:
      gemm_rows_avx2(ilo, ihi, k, n, pa, a_row_stride, a_col_stride, pb, pc);
      return;
#endif
#if defined(__SSE2__)
    case Level::kSSE2:
      gemm_rows_sse2(ilo, ihi, k, n, pa, a_row_stride, a_col_stride, pb, pc);
      return;
#endif
    default:
      gemm_rows_scalar(ilo, ihi, k, n, pa, a_row_stride, a_col_stride, pb,
                       pc);
      return;
  }
}

float quantize_row_int16(Level level, std::span<const float> src,
                         std::int16_t* dst, std::size_t padded) {
  ANOLE_DCHECK(padded >= src.size() && padded % kQgemmDepthMultiple == 0,
               "quantize_row_int16: padded depth ", padded,
               " must cover the row and be a multiple of ",
               kQgemmDepthMultiple);
  switch (level) {
#if ANOLE_HAVE_AVX2_TARGET
    case Level::kAVX2:
      return quantize_row_int16_avx2(src, dst, padded);
#endif
#if defined(__SSE2__)
    case Level::kSSE2:
      return quantize_row_int16_sse2(src, dst, padded);
#endif
    default:
      return quantize_row_int16_scalar(src, dst, padded);
  }
}

void qgemm_rows(Level level, std::size_t ilo, std::size_t ihi, std::size_t n,
                std::size_t kp, const std::int16_t* xq, const float* xscale,
                const std::int16_t* pw, const float* pscale,
                const float* pbias, float* py) {
  ANOLE_DCHECK(kp % kQgemmDepthMultiple == 0,
               "qgemm_rows: padded depth not a multiple of ",
               kQgemmDepthMultiple);
  switch (level) {
#if ANOLE_HAVE_AVX2_TARGET
    case Level::kAVX2:
      qgemm_rows_avx2(ilo, ihi, n, kp, xq, xscale, pw, pscale, pbias, py);
      return;
#endif
#if defined(__SSE2__)
    case Level::kSSE2:
      qgemm_rows_sse2(ilo, ihi, n, kp, xq, xscale, pw, pscale, pbias, py);
      return;
#endif
    default:
      qgemm_rows_scalar(ilo, ihi, n, kp, xq, xscale, pw, pscale, pbias, py);
      return;
  }
}

void sigmoid_terms(Level level, const float* z, std::size_t n, float* p,
                   float* log_term) {
  ANOLE_DCHECK(n == 0 || (z != nullptr && p != nullptr),
               "sigmoid_terms: null input/output for n ", n);
  switch (level) {
#if ANOLE_HAVE_AVX2_TARGET
    case Level::kAVX2:
      sigmoid_terms_avx2(z, n, p, log_term);
      return;
#endif
    default:
      // kSSE2 shares the libm path: the sigmoid cannot be vectorized
      // bitwise-exactly, and the SSE2 level's contract is bitwise
      // agreement with scalar.
      sigmoid_terms_scalar(z, n, p, log_term);
      return;
  }
}

void kmeans_distances(Level level, const float* point, std::size_t dims,
                      const double* centroids_t, std::size_t k_stride,
                      double* dist) {
  ANOLE_DCHECK(k_stride % kKmeansLaneMultiple == 0,
               "kmeans_distances: k_stride not a multiple of ",
               kKmeansLaneMultiple);
  switch (level) {
#if ANOLE_HAVE_AVX2_TARGET
    case Level::kAVX2:
      kmeans_distances_avx2(point, dims, centroids_t, k_stride, dist);
      return;
#endif
#if defined(__SSE2__)
    case Level::kSSE2:
      kmeans_distances_sse2(point, dims, centroids_t, k_stride, dist);
      return;
#endif
    default:
      kmeans_distances_scalar(point, dims, centroids_t, k_stride, dist);
      return;
  }
}

}  // namespace anole::simd
