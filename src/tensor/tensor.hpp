// Dense row-major float tensor. This is the numerical substrate for the
// neural-network library (src/nn): it provides exactly the operations the
// training stack needs (matmul, transposed matmuls, elementwise arithmetic,
// row reductions) with shape checking on every operation.
//
// Threading: the matmul kernels, large elementwise operations, and whole-
// tensor reductions run on the shared util/parallel.hpp pool. All of them
// honour its determinism contract (fixed chunk boundaries, ordered
// combines), so every operation here is bitwise reproducible at any thread
// count.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace anole {

/// Shape of a tensor; rank is shape.size().
using Shape = std::vector<std::size_t>;

std::string shape_to_string(const Shape& shape);

namespace detail {

/// std::allocator whose value-less construct() default-initializes (i.e.
/// leaves floats uninitialized) instead of value-initializing. Lets
/// Tensor::uninitialized skip the zero-fill of buffers that are about to
/// be overwritten entirely (matmul outputs write every element).
template <typename T>
struct DefaultInitAllocator : std::allocator<T> {
  template <typename U>
  struct rebind {
    using other = DefaultInitAllocator<U>;
  };

  using std::allocator<T>::allocator;

  template <typename U>
  void construct(U* ptr) noexcept(
      std::is_nothrow_default_constructible_v<U>) {
    ::new (static_cast<void*>(ptr)) U;
  }
  template <typename U, typename... Args>
  void construct(U* ptr, Args&&... args) {
    ::new (static_cast<void*>(ptr)) U(std::forward<Args>(args)...);
  }
};

}  // namespace detail

/// Backing storage of a Tensor. Element access behaves exactly like
/// std::vector<float>; only resize() without a value differs (default-
/// rather than value-initialization).
using FloatBuffer = std::vector<float, detail::DefaultInitAllocator<float>>;

/// Dense row-major float tensor with value semantics.
///
/// Rank 0 tensors are not supported; scalars are rank-1 tensors of size 1.
/// All binary operations check shapes and throw anole::ContractViolation
/// (a std::invalid_argument) on
/// mismatch — silent broadcasting bugs are the classic failure mode of
/// hand-rolled NN code, so there is no implicit broadcasting except the
/// explicitly named row-wise helpers.
class Tensor {
 public:
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape filled with `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor adopting `data`, which must have exactly shape-many elements.
  Tensor(Shape shape, FloatBuffer data);

  /// Same, copying from a plain std::vector<float> or a braced list.
  Tensor(Shape shape, const std::vector<float>& data);
  Tensor(Shape shape, std::initializer_list<float> data);

  /// Tensor whose elements are NOT initialized. For kernel outputs that
  /// overwrite every element; never hand one to code that reads before
  /// writing.
  static Tensor uninitialized(Shape shape);

  /// 2-D convenience factory.
  static Tensor matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  /// 1-D factory from values.
  static Tensor vector(std::initializer_list<float> values);
  static Tensor vector(std::vector<float> values);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension i; throws on out-of-range.
  std::size_t dim(std::size_t i) const;

  /// Rows/cols of a rank-2 tensor; throws if rank != 2.
  std::size_t rows() const;
  std::size_t cols() const;

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Flat element access (bounds checked in debug builds only).
  float& operator[](std::size_t i) {
    ANOLE_DCHECK_RANGE(i, data_.size(), "Tensor::operator[]");
    return data_[i];
  }
  float operator[](std::size_t i) const {
    ANOLE_DCHECK_RANGE(i, data_.size(), "Tensor::operator[]");
    return data_[i];
  }

  /// 2-D element access (rank-2 only; bounds checked in debug builds only).
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Returns a tensor with the same data and a new shape of equal size.
  Tensor reshaped(Shape new_shape) const;

  /// Fills with a constant.
  void fill(float value);

  /// In-place elementwise operations (shapes must match exactly).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// this += scale * other (axpy).
  void add_scaled(const Tensor& other, float scale);

  /// Sum of all elements (deterministically chunked; see util/parallel.hpp).
  float sum() const;

  /// Mean of all elements (0 if empty).
  float mean() const;

  /// Largest absolute element (0 if empty).
  float abs_max() const;

  /// L2 norm of all elements.
  float l2_norm() const;

  /// Row r of a rank-2 tensor as a span.
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

 private:
  struct UninitializedTag {};
  Tensor(UninitializedTag, Shape shape);

  Shape shape_;
  FloatBuffer data_;
};

/// C = A * B for rank-2 tensors, [m,k] x [k,n] -> [m,n].
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T * B, [k,m] x [k,n] -> [m,n]. Used for weight gradients.
Tensor matmul_transpose_a(const Tensor& a, const Tensor& b);

/// C = A * B^T, [m,k] x [n,k] -> [m,n]. Used for input gradients.
Tensor matmul_transpose_b(const Tensor& a, const Tensor& b);

/// Elementwise binary operators (shape-checked).
Tensor operator+(Tensor a, const Tensor& b);
Tensor operator-(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, const Tensor& b);
Tensor operator*(Tensor a, float scalar);

/// Adds a [cols]-shaped bias to every row of a [rows, cols] tensor.
void add_row_broadcast(Tensor& matrix, const Tensor& row_vector);

/// Sums the rows of a [rows, cols] tensor into a [cols] tensor.
Tensor sum_rows(const Tensor& matrix);

/// Transposes a rank-2 tensor.
Tensor transpose(const Tensor& matrix);

/// True when shapes and all elements are within `tol`.
bool allclose(const Tensor& a, const Tensor& b, float tol = 1e-5f);

}  // namespace anole
