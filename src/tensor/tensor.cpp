#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/simd.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace anole {
namespace {

std::size_t shape_size(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

void require_same_shape(const Tensor& a, const Tensor& b,
                        const char* op_name) {
  ANOLE_CHECK(a.shape() == b.shape(), op_name, ": shape mismatch ",
              shape_to_string(a.shape()), " vs ",
              shape_to_string(b.shape()));
}

/// Rows of C per parallel chunk (floor; the work-derived grain can only
/// coarsen it).
constexpr std::size_t kRowGrain = 16;
/// Elementwise ops: parallel grain (the serial cutoff in util/parallel
/// keeps small tensors off the pool).
constexpr std::size_t kElemGrain = 16384;
/// Whole-tensor reductions always use this fixed grain — the chunked
/// combine order is part of the numeric result, so it must not depend on
/// tensor size heuristics or the thread count.
constexpr std::size_t kReduceGrain = 4096;

template <typename Fn>
void for_each_index(std::size_t n, Fn&& fn) {
  par::parallel_for(0, n, kElemGrain, 1, std::forward<Fn>(fn));
}

// The shared row-parallel GEMM driver behind all three matmul entry
// points: C = A' B with A' read as pa[i*ars + kk*acs] (contiguous for
// matmul, stride-m for matmul_transpose_a; matmul_transpose_b materializes
// B^T once and then uses the contiguous strides). The cache-blocked inner
// kernel lives in tensor/simd.cpp and is dispatched once per call; each C
// row is produced entirely by one chunk with kk ascending, so blocking
// and row-parallelism never change results at a fixed dispatch level.
void dispatched_gemm(std::size_t m, std::size_t k, std::size_t n,
                     const float* pa, std::size_t ars, std::size_t acs,
                     const float* pb, float* pc) {
  const simd::Level level = simd::active_level();
  const std::size_t work_per_row = k * n;
  par::parallel_for_chunks(
      0, m, par::work_grain(kRowGrain, work_per_row), work_per_row,
      [&](std::size_t ilo, std::size_t ihi) {
        if (k == 0) {
          // The kernel's depth loop never runs, so zero-fill here.
          std::fill(pc + ilo * n, pc + ihi * n, 0.0f);
          return;
        }
        simd::gemm_rows(level, ilo, ihi, k, n, pa, ars, acs, pb, pc);
      });
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor::Tensor(Shape shape, FloatBuffer data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  ANOLE_CHECK_EQ(data_.size(), shape_size(shape_),
                 "Tensor: data size does not match shape ",
                 shape_to_string(shape_));
}

Tensor::Tensor(Shape shape, const std::vector<float>& data)
    : shape_(std::move(shape)), data_(data.begin(), data.end()) {
  ANOLE_CHECK_EQ(data_.size(), shape_size(shape_),
                 "Tensor: data size does not match shape ",
                 shape_to_string(shape_));
}

Tensor::Tensor(Shape shape, std::initializer_list<float> data)
    : Tensor(std::move(shape), FloatBuffer(data)) {}

Tensor::Tensor(UninitializedTag, Shape shape) : shape_(std::move(shape)) {
  // resize() default-initializes through DefaultInitAllocator: no fill.
  data_.resize(shape_size(shape_));
}

Tensor Tensor::uninitialized(Shape shape) {
  return Tensor(UninitializedTag{}, std::move(shape));
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols, float fill) {
  return Tensor(Shape{rows, cols}, fill);
}

Tensor Tensor::vector(std::initializer_list<float> values) {
  return Tensor(Shape{values.size()}, FloatBuffer(values));
}

Tensor Tensor::vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, FloatBuffer(values.begin(), values.end()));
}

std::size_t Tensor::dim(std::size_t i) const {
  ANOLE_CHECK_LT(i, shape_.size(), "Tensor::dim: axis out of range for ",
                 shape_to_string(shape_));
  return shape_[i];
}

std::size_t Tensor::rows() const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::rows on ", shape_to_string(shape_));
  return shape_[0];
}

std::size_t Tensor::cols() const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::cols on ", shape_to_string(shape_));
  return shape_[1];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  ANOLE_DCHECK(rank() == 2, "Tensor::at on ", shape_to_string(shape_));
  ANOLE_DCHECK_RANGE(r, shape_[0], "Tensor::at row");
  ANOLE_DCHECK_RANGE(c, shape_[1], "Tensor::at col");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  ANOLE_DCHECK(rank() == 2, "Tensor::at on ", shape_to_string(shape_));
  ANOLE_DCHECK_RANGE(r, shape_[0], "Tensor::at row");
  ANOLE_DCHECK_RANGE(c, shape_[1], "Tensor::at col");
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  ANOLE_CHECK_EQ(shape_size(new_shape), data_.size(),
                 "Tensor::reshaped: size mismatch for shape ",
                 shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for_each_index(data_.size(), [&](std::size_t i) { data_[i] = value; });
}

Tensor& Tensor::operator+=(const Tensor& other) {
  require_same_shape(*this, other, "operator+=");
  for_each_index(data_.size(),
                 [&](std::size_t i) { data_[i] += other.data_[i]; });
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  require_same_shape(*this, other, "operator-=");
  for_each_index(data_.size(),
                 [&](std::size_t i) { data_[i] -= other.data_[i]; });
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  require_same_shape(*this, other, "operator*=");
  for_each_index(data_.size(),
                 [&](std::size_t i) { data_[i] *= other.data_[i]; });
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for_each_index(data_.size(), [&](std::size_t i) { data_[i] *= scalar; });
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  require_same_shape(*this, other, "add_scaled");
  for_each_index(data_.size(), [&](std::size_t i) {
    data_[i] += scale * other.data_[i];
  });
}

float Tensor::sum() const {
  return par::parallel_reduce(
      std::size_t{0}, data_.size(), kReduceGrain, 1, 0.0f,
      [&](std::size_t lo, std::size_t hi) {
        float partial = 0.0f;
        for (std::size_t i = lo; i < hi; ++i) partial += data_[i];
        return partial;
      },
      [](float acc, float partial) { return acc + partial; });
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  return par::parallel_reduce(
      std::size_t{0}, data_.size(), kReduceGrain, 1, 0.0f,
      [&](std::size_t lo, std::size_t hi) {
        float partial = 0.0f;
        for (std::size_t i = lo; i < hi; ++i) {
          partial = std::max(partial, std::abs(data_[i]));
        }
        return partial;
      },
      [](float acc, float partial) { return std::max(acc, partial); });
}

float Tensor::l2_norm() const {
  const double sum_sq = par::parallel_reduce(
      std::size_t{0}, data_.size(), kReduceGrain, 1, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          partial += static_cast<double>(data_[i]) * data_[i];
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  return static_cast<float>(std::sqrt(sum_sq));
}

std::span<float> Tensor::row(std::size_t r) {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::row on ", shape_to_string(shape_));
  ANOLE_CHECK_LT(r, shape_[0], "Tensor::row out of range");
  return std::span<float>(data_).subspan(r * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::row on ", shape_to_string(shape_));
  ANOLE_CHECK_LT(r, shape_[0], "Tensor::row out of range");
  return std::span<const float>(data_).subspan(r * shape_[1], shape_[1]);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: rank != 2");
  ANOLE_CHECK_EQ(a.cols(), b.rows(), "matmul: inner dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::uninitialized(Shape{m, n});
  dispatched_gemm(m, k, n, a.data().data(), k, 1, b.data().data(),
                  c.data().data());
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2,
              "matmul_transpose_a: rank != 2");
  ANOLE_CHECK_EQ(a.rows(), b.rows(),
                 "matmul_transpose_a: outer dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::uninitialized(Shape{m, n});
  // A is read with column stride m; the kk blocking in the shared kernel
  // keeps the touched A elements and the B panel resident.
  dispatched_gemm(m, k, n, a.data().data(), 1, m, b.data().data(),
                  c.data().data());
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2,
              "matmul_transpose_b: rank != 2");
  ANOLE_CHECK_EQ(a.cols(), b.cols(),
                 "matmul_transpose_b: inner dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  Tensor c = Tensor::uninitialized(Shape{m, n});
  // Materialize B^T once (k*n work, negligible against the m*k*n kernel)
  // so the shared blocked kernel's inner loop stays contiguous in both
  // operands. Accumulation is kk-ascending per output element, exactly as
  // in the other entry points.
  const Tensor bt = transpose(b);
  dispatched_gemm(m, k, n, a.data().data(), k, 1, bt.data().data(),
                  c.data().data());
  return c;
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, const Tensor& b) {
  a *= b;
  return a;
}

Tensor operator*(Tensor a, float scalar) {
  a *= scalar;
  return a;
}

void add_row_broadcast(Tensor& matrix, const Tensor& row_vector) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "add_row_broadcast: matrix rank != 2");
  ANOLE_CHECK(row_vector.rank() == 1 && row_vector.size() == matrix.cols(),
              "add_row_broadcast: bias shape mismatch ",
              shape_to_string(row_vector.shape()), " for matrix ",
              shape_to_string(matrix.shape()));
  par::parallel_for(0, matrix.rows(), kRowGrain, matrix.cols(),
                    [&](std::size_t r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += row_vector[c];
  });
}

Tensor sum_rows(const Tensor& matrix) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "sum_rows: rank != 2");
  // Serial on purpose: accumulates across rows into a [cols] vector whose
  // width is small everywhere in this codebase, so a parallel version
  // would spend more on partial buffers than the scan costs.
  Tensor out(Shape{matrix.cols()});
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) out[c] += row[c];
  }
  return out;
}

Tensor transpose(const Tensor& matrix) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "transpose: rank != 2");
  Tensor out = Tensor::uninitialized(Shape{matrix.cols(), matrix.rows()});
  par::parallel_for(0, matrix.rows(), kRowGrain, matrix.cols(),
                    [&](std::size_t r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      out.at(c, r) = matrix.at(r, c);
    }
  });
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace anole
