#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace anole {
namespace {

std::size_t shape_size(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

void require(bool condition, const std::string& message) {
  if (!condition) throw std::invalid_argument(message);
}

void require_same_shape(const Tensor& a, const Tensor& b,
                        const char* op_name) {
  if (a.shape() != b.shape()) {
    std::ostringstream out;
    out << op_name << ": shape mismatch " << shape_to_string(a.shape())
        << " vs " << shape_to_string(b.shape());
    throw std::invalid_argument(out.str());
  }
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  require(data_.size() == shape_size(shape_),
          "Tensor: data size does not match shape " +
              shape_to_string(shape_));
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols, float fill) {
  return Tensor(Shape{rows, cols}, fill);
}

Tensor Tensor::vector(std::initializer_list<float> values) {
  return Tensor(Shape{values.size()}, std::vector<float>(values));
}

Tensor Tensor::vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, std::move(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  require(i < shape_.size(), "Tensor::dim: index out of range");
  return shape_[i];
}

std::size_t Tensor::rows() const {
  require(rank() == 2, "Tensor::rows: rank != 2");
  return shape_[0];
}

std::size_t Tensor::cols() const {
  require(rank() == 2, "Tensor::cols: rank != 2");
  return shape_[1];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  require(shape_size(new_shape) == data_.size(),
          "Tensor::reshaped: size mismatch for shape " +
              shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  require_same_shape(*this, other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  require_same_shape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  require_same_shape(*this, other, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  require_same_shape(*this, other, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const {
  double sum_sq = 0.0;
  for (float v : data_) sum_sq += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum_sq));
}

std::span<float> Tensor::row(std::size_t r) {
  require(rank() == 2, "Tensor::row: rank != 2");
  require(r < shape_[0], "Tensor::row: row out of range");
  return std::span<float>(data_).subspan(r * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const {
  require(rank() == 2, "Tensor::row: rank != 2");
  require(r < shape_[0], "Tensor::row: row out of range");
  return std::span<const float>(data_).subspan(r * shape_[1], shape_[1]);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul: rank != 2");
  require(a.cols() == b.rows(), "matmul: inner dimension mismatch " +
                                    shape_to_string(a.shape()) + " x " +
                                    shape_to_string(b.shape()));
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // i-k-j loop order keeps the inner loop contiguous in B and C.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_transpose_a: rank != 2");
  require(a.rows() == b.rows(),
          "matmul_transpose_a: outer dimension mismatch");
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  require(a.rank() == 2 && b.rank() == 2, "matmul_transpose_b: rank != 2");
  require(a.cols() == b.cols(),
          "matmul_transpose_b: inner dimension mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float dot = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      crow[j] = dot;
    }
  }
  return c;
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, const Tensor& b) {
  a *= b;
  return a;
}

Tensor operator*(Tensor a, float scalar) {
  a *= scalar;
  return a;
}

void add_row_broadcast(Tensor& matrix, const Tensor& row_vector) {
  require(matrix.rank() == 2, "add_row_broadcast: matrix rank != 2");
  require(row_vector.rank() == 1 && row_vector.size() == matrix.cols(),
          "add_row_broadcast: bias shape mismatch");
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += row_vector[c];
  }
}

Tensor sum_rows(const Tensor& matrix) {
  Tensor out(Shape{matrix.cols()});
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) out[c] += row[c];
  }
  return out;
}

Tensor transpose(const Tensor& matrix) {
  Tensor out = Tensor::matrix(matrix.cols(), matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      out.at(c, r) = matrix.at(r, c);
    }
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace anole
