#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace anole {
namespace {

std::size_t shape_size(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

void require_same_shape(const Tensor& a, const Tensor& b,
                        const char* op_name) {
  ANOLE_CHECK(a.shape() == b.shape(), op_name, ": shape mismatch ",
              shape_to_string(a.shape()), " vs ",
              shape_to_string(b.shape()));
}

}  // namespace

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  ANOLE_CHECK_EQ(data_.size(), shape_size(shape_),
                 "Tensor: data size does not match shape ",
                 shape_to_string(shape_));
}

Tensor Tensor::matrix(std::size_t rows, std::size_t cols, float fill) {
  return Tensor(Shape{rows, cols}, fill);
}

Tensor Tensor::vector(std::initializer_list<float> values) {
  return Tensor(Shape{values.size()}, std::vector<float>(values));
}

Tensor Tensor::vector(std::vector<float> values) {
  const std::size_t n = values.size();
  return Tensor(Shape{n}, std::move(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  ANOLE_CHECK_LT(i, shape_.size(), "Tensor::dim: axis out of range for ",
                 shape_to_string(shape_));
  return shape_[i];
}

std::size_t Tensor::rows() const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::rows on ", shape_to_string(shape_));
  return shape_[0];
}

std::size_t Tensor::cols() const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::cols on ", shape_to_string(shape_));
  return shape_[1];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  ANOLE_DCHECK(rank() == 2, "Tensor::at on ", shape_to_string(shape_));
  ANOLE_DCHECK_RANGE(r, shape_[0], "Tensor::at row");
  ANOLE_DCHECK_RANGE(c, shape_[1], "Tensor::at col");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  ANOLE_DCHECK(rank() == 2, "Tensor::at on ", shape_to_string(shape_));
  ANOLE_DCHECK_RANGE(r, shape_[0], "Tensor::at row");
  ANOLE_DCHECK_RANGE(c, shape_[1], "Tensor::at col");
  return data_[r * shape_[1] + c];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  ANOLE_CHECK_EQ(shape_size(new_shape), data_.size(),
                 "Tensor::reshaped: size mismatch for shape ",
                 shape_to_string(new_shape));
  return Tensor(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  require_same_shape(*this, other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  require_same_shape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(const Tensor& other) {
  require_same_shape(*this, other, "operator*=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  require_same_shape(*this, other, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  if (data_.empty()) return 0.0f;
  return sum() / static_cast<float>(data_.size());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const {
  double sum_sq = 0.0;
  for (float v : data_) sum_sq += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum_sq));
}

std::span<float> Tensor::row(std::size_t r) {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::row on ", shape_to_string(shape_));
  ANOLE_CHECK_LT(r, shape_[0], "Tensor::row out of range");
  return std::span<float>(data_).subspan(r * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t r) const {
  ANOLE_CHECK_EQ(rank(), 2u, "Tensor::row on ", shape_to_string(shape_));
  ANOLE_CHECK_LT(r, shape_[0], "Tensor::row out of range");
  return std::span<const float>(data_).subspan(r * shape_[1], shape_[1]);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: rank != 2");
  ANOLE_CHECK_EQ(a.cols(), b.rows(), "matmul: inner dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // i-k-j loop order keeps the inner loop contiguous in B and C.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_a(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2,
              "matmul_transpose_a: rank != 2");
  ANOLE_CHECK_EQ(a.rows(), b.rows(),
                 "matmul_transpose_a: outer dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t k = a.rows();
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_transpose_b(const Tensor& a, const Tensor& b) {
  ANOLE_CHECK(a.rank() == 2 && b.rank() == 2,
              "matmul_transpose_b: rank != 2");
  ANOLE_CHECK_EQ(a.cols(), b.cols(),
                 "matmul_transpose_b: inner dimension mismatch ",
                 shape_to_string(a.shape()), " x ",
                 shape_to_string(b.shape()));
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  Tensor c = Tensor::matrix(m, n);
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float dot = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) dot += arow[kk] * brow[kk];
      crow[j] = dot;
    }
  }
  return c;
}

Tensor operator+(Tensor a, const Tensor& b) {
  a += b;
  return a;
}

Tensor operator-(Tensor a, const Tensor& b) {
  a -= b;
  return a;
}

Tensor operator*(Tensor a, const Tensor& b) {
  a *= b;
  return a;
}

Tensor operator*(Tensor a, float scalar) {
  a *= scalar;
  return a;
}

void add_row_broadcast(Tensor& matrix, const Tensor& row_vector) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "add_row_broadcast: matrix rank != 2");
  ANOLE_CHECK(row_vector.rank() == 1 && row_vector.size() == matrix.cols(),
              "add_row_broadcast: bias shape mismatch ",
              shape_to_string(row_vector.shape()), " for matrix ",
              shape_to_string(matrix.shape()));
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) row[c] += row_vector[c];
  }
}

Tensor sum_rows(const Tensor& matrix) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "sum_rows: rank != 2");
  Tensor out(Shape{matrix.cols()});
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) out[c] += row[c];
  }
  return out;
}

Tensor transpose(const Tensor& matrix) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "transpose: rank != 2");
  Tensor out = Tensor::matrix(matrix.cols(), matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    for (std::size_t c = 0; c < matrix.cols(); ++c) {
      out.at(c, r) = matrix.at(r, c);
    }
  }
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float tol) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace anole
