// Runtime-dispatched SIMD kernel layer (DESIGN.md §13).
//
// Every vector instruction in the repo lives behind this module: callers
// pick a `Level` once (normally `active_level()`) and hand it to the
// kernels below. Three levels exist — a genuinely scalar reference
// (autovectorization suppressed, the baseline every speedup is measured
// against), the baseline-x86-64 SSE2 path, and an AVX2+FMA path — probed
// from CPUID at first use and overridable with the ANOLE_SIMD environment
// variable or `set_level()` (tests, replay).
//
// Determinism contract (per dispatch level):
//   - int8 qgemm accumulates exact int32 sums at every level, so all
//     levels produce bitwise identical outputs.
//   - fp32 GEMM: kScalar and kSSE2 are bitwise identical (both evaluate
//     c[j] += a*b[j] with one rounding per multiply and add); kAVX2 fuses
//     the multiply-add (FMA, one rounding), so its outputs differ from
//     scalar by the FMA rounding only — bounded by a few ULP per
//     accumulation step — and are bitwise stable at that level.
//   - k-means distances are bitwise identical at every level (lanes map
//     to centroids; each lane's accumulation order matches the scalar
//     loop and no FMA is used).
//   - sigmoid/BCE transcendentals: kScalar and kSSE2 call libm and are
//     bitwise identical to each other; kAVX2 uses a documented
//     polynomial exp/log1p pair accurate to a few ULP (see
//     sigmoid_terms below).
//   At any fixed level, every kernel is bitwise identical across thread
//   counts and chunkings. The active level is mixed into fault and
//   governor trace hashes, so replay logs pin it; replay under a
//   different ANOLE_SIMD is detected as a trace mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace anole::simd {

/// Dispatch levels, ordered by capability.
enum class Level : std::uint8_t { kScalar = 0, kSSE2 = 1, kAVX2 = 2 };

/// Best level the CPU supports (CPUID probe, cached).
Level detected_level();

/// Level the kernels run at: `set_level()` override if set, else the
/// ANOLE_SIMD environment variable (values: scalar, sse2, avx2), else
/// `detected_level()`. Requests above the detected level clamp down so a
/// pinned replay degrades loudly (trace-hash mismatch) instead of
/// executing illegal instructions.
Level active_level();

/// Runtime override (wins over ANOLE_SIMD; clamped to the detected
/// level). Used by tests and benches to pin a dispatch path.
void set_level(Level level);

/// Drops the `set_level()` override, restoring env/detected resolution.
void reset_level();

/// Stable lowercase name ("scalar", "sse2", "avx2").
const char* level_name(Level level);

/// --- fp32 GEMM row kernel -------------------------------------------
/// Computes rows [ilo, ihi) of C = A'·B over the full [0, n) column and
/// [0, k) depth extent, with A read as pa[i*a_row_stride +
/// kk*a_col_stride] (serves matmul and both transposed entry points).
/// Cache blocking and the zero-skip on A elements are identical at every
/// level; each output element accumulates in ascending kk order.
void gemm_rows(Level level, std::size_t ilo, std::size_t ihi, std::size_t k,
               std::size_t n, const float* pa, std::size_t a_row_stride,
               std::size_t a_col_stride, const float* pb, float* pc);

/// --- int8 GEMM kernels ----------------------------------------------

/// The int16 execution layout pads depth to a multiple of this so the
/// widest (AVX2) dot product has no scalar tail.
inline constexpr std::size_t kQgemmDepthMultiple = 16;

/// Quantizes one fp32 row into int8 codes stored as padded int16 (the
/// pmaddwd idiom's input), returning the symmetric row scale. Codes and
/// scale are identical at every level (round-to-nearest-even throughout).
float quantize_row_int16(Level level, std::span<const float> src,
                         std::int16_t* dst, std::size_t padded);

/// Computes rows [ilo, ihi) of the int8 GEMM with fused dequant + bias:
/// py[i*n + j] = float(dot(xq row i, pw channel j)) * (xscale[i] *
/// pscale[j]) + pbias[j]. `kp` is the padded depth (multiple of
/// kQgemmDepthMultiple); pbias may be null. Exact int32 accumulation:
/// bitwise identical at every level, chunking, and thread count.
void qgemm_rows(Level level, std::size_t ilo, std::size_t ihi, std::size_t n,
                std::size_t kp, const std::int16_t* xq, const float* xscale,
                const std::int16_t* pw, const float* pscale,
                const float* pbias, float* py);

/// --- k-means distance kernel ----------------------------------------

/// Centroid count is padded to a multiple of this in the transposed
/// layout below (one vector lane per centroid).
inline constexpr std::size_t kKmeansLaneMultiple = 4;

/// --- sigmoid / BCE transcendental kernel ----------------------------

/// p[i] = 1 / (1 + exp(-z[i])) and, when `log_term` is non-null,
/// log_term[i] = log1p(exp(-|z[i]|)) — the transcendental core of the
/// logistic sigmoid and of the numerically stable binary cross-entropy.
/// `p` may alias `z` (in-place sigmoid). kScalar and kSSE2 evaluate
/// exactly the libm expressions above, so those levels stay bitwise
/// identical to each other and to the historical scalar loss loop. kAVX2
/// evaluates a Cephes-style polynomial exp and an atanh-series log1p:
/// like the FMA contraction in gemm_rows, the AVX2 level trades bitwise
/// agreement with libm for throughput — outputs agree to a few ULP
/// relative (the exp argument is clamped to [-87.33, 88.0], so inputs
/// past sigmoid saturation differ from libm by < 1.1e-38 absolute) and
/// are bitwise stable at that level across calls and thread counts.
void sigmoid_terms(Level level, const float* z, std::size_t n, float* p,
                   float* log_term);

/// dist[j] = squared L2 distance (double) between `point` and centroid j,
/// for all j in [0, k). Centroids are given transposed and widened:
/// centroids_t[d * k_stride + j] = double(centroid_j[d]), with k_stride a
/// multiple of kKmeansLaneMultiple (>= k; the pad lanes are read but
/// their outputs ignored — dist must have k_stride slots). Each lane
/// accumulates (double(point[d]) - c)² in ascending d order with separate
/// multiply and add, so results are bitwise identical at every level and
/// to the classic per-centroid scalar loop.
void kmeans_distances(Level level, const float* point, std::size_t dims,
                      const double* centroids_t, std::size_t k_stride,
                      double* dist);

}  // namespace anole::simd
