#include "nn/quantize.hpp"

#include <cstdlib>
#include <string>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace anole::nn {
namespace {

float snap_to_half(float value) {
  return half_to_float(float_to_half(value));
}

Tensor snapped_bias(const Tensor& bias) {
  Tensor out = bias;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = snap_to_half(out[i]);
  return out;
}

}  // namespace

QuantizedLinear::QuantizedLinear(Linear& source)
    : weights_(quantize_weights(source.weight().value)),
      bias_(snapped_bias(source.bias().value)) {}

QuantizedLinear::QuantizedLinear(QuantizedMatrix weights, Tensor bias)
    : weights_(std::move(weights)), bias_(std::move(bias)) {
  ANOLE_CHECK_EQ(weights_.data.size(), weights_.channels * weights_.depth,
                 "QuantizedLinear: weight data size mismatch");
  ANOLE_CHECK_EQ(weights_.scales.size(), weights_.channels,
                 "QuantizedLinear: scales size mismatch");
  ANOLE_CHECK(bias_.rank() == 1 && bias_.size() == weights_.channels,
              "QuantizedLinear: bias shape mismatch");
  weights_.prepare();  // wire data carries no execution copy
}

Tensor QuantizedLinear::forward(const Tensor& input) {
  return qgemm(input, weights_, bias_.data());
}

Tensor QuantizedLinear::infer(const Tensor& input) const {
  // The layer is stateless at inference; forward() already writes no
  // caches, so the const path is the same call.
  return qgemm(input, weights_, bias_.data());
}

Tensor QuantizedLinear::backward(const Tensor& grad_output) {
  (void)grad_output;
  ANOLE_CHECK(false, "QuantizedLinear::backward: quantized layers are "
              "inference-only; quantize after training");
  return Tensor();
}

std::uint64_t QuantizedLinear::flops_per_sample() const {
  const std::uint64_t in = weights_.depth;
  const std::uint64_t out = weights_.channels;
  return 2 * in * out + out;
}

std::vector<std::pair<std::size_t, ModulePtr>> quantize_linear_layers(
    Sequential& net) {
  std::vector<std::pair<std::size_t, ModulePtr>> displaced;
  for (std::size_t i = 0; i < net.size(); ++i) {
    auto* linear = dynamic_cast<Linear*>(&net.at(i));
    if (linear == nullptr) continue;
    auto quantized = std::make_unique<QuantizedLinear>(*linear);
    displaced.emplace_back(i, net.replace(i, std::move(quantized)));
  }
  return displaced;
}

std::size_t dequantize_linear_layers(Sequential& net) {
  std::size_t converted = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    auto* quantized = dynamic_cast<QuantizedLinear*>(&net.at(i));
    if (quantized == nullptr) continue;
    // Linear requires an RNG for its He init; the values are overwritten
    // immediately, so the seed is irrelevant.
    Rng rng(0);
    auto linear = std::make_unique<Linear>(quantized->in_features(),
                                           quantized->out_features(), rng);
    linear->weight().value = quantized->dequantized_weight();
    linear->bias().value = quantized->bias();
    net.replace(i, std::move(linear));
    ++converted;
  }
  return converted;
}

bool is_quantized(Sequential& net) {
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (dynamic_cast<QuantizedLinear*>(&net.at(i)) != nullptr) return true;
  }
  return false;
}

bool quantization_enabled() {
  const char* value = std::getenv("ANOLE_QUANT");
  if (value == nullptr) return true;
  return std::string(value) != "0";
}

}  // namespace anole::nn
