#include "nn/sequential.hpp"

#include "util/check.hpp"

namespace anole::nn {

Sequential& Sequential::add(ModulePtr module) {
  ANOLE_CHECK_NOTNULL(module, "Sequential::add: null module");
  modules_.push_back(std::move(module));
  return *this;
}

ModulePtr Sequential::replace(std::size_t i, ModulePtr module) {
  ANOLE_CHECK_LT(i, modules_.size(), "Sequential::replace: index out of range");
  ANOLE_CHECK_NOTNULL(module, "Sequential::replace: null module");
  module->set_training(training());
  std::swap(modules_[i], module);
  return module;
}

Tensor Sequential::forward(const Tensor& input) {
  Tensor current = input;
  for (auto& module : modules_) current = module->forward(current);
  return current;
}

Tensor Sequential::infer(const Tensor& input) const {
  Tensor current = input;
  for (const auto& module : modules_) current = module->infer(current);
  return current;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor current = grad_output;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    current = (*it)->backward(current);
  }
  return current;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& module : modules_) {
    for (Parameter* p : module->parameters()) params.push_back(p);
  }
  return params;
}

void Sequential::set_training(bool training) {
  Module::set_training(training);
  for (auto& module : modules_) module->set_training(training);
}

std::uint64_t Sequential::flops_per_sample() const {
  std::uint64_t total = 0;
  for (const auto& module : modules_) total += module->flops_per_sample();
  return total;
}

std::unique_ptr<Sequential> make_mlp(const std::vector<std::size_t>& widths,
                                     Rng& rng, float dropout_rate) {
  ANOLE_CHECK_GE(widths.size(), 2u,
                 "make_mlp: need at least input and output widths");
  for (std::size_t width : widths) {
    ANOLE_CHECK_GT(width, 0u, "make_mlp: zero layer width");
  }
  auto net = std::make_unique<Sequential>();
  for (std::size_t i = 0; i + 1 < widths.size(); ++i) {
    net->emplace<Linear>(widths[i], widths[i + 1], rng);
    const bool is_last = i + 2 == widths.size();
    if (!is_last) {
      net->emplace<ReLU>();
      if (dropout_rate > 0.0f) {
        net->emplace<Dropout>(dropout_rate, rng());
      }
    }
  }
  return net;
}

}  // namespace anole::nn
