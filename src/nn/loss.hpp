// Loss functions with fused gradients.
//
// Each loss returns the scalar loss averaged over the batch and writes the
// gradient with respect to the logits/predictions into `grad` (same shape
// as the input), already divided by the batch size.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace anole::nn {

/// Row-wise softmax of a [batch, classes] logit matrix.
Tensor softmax_rows(const Tensor& logits);

/// Softmax + cross-entropy against integer class labels.
/// `labels[i]` must be in [0, classes).
float softmax_cross_entropy(const Tensor& logits,
                            std::span<const std::size_t> labels,
                            Tensor& grad);

/// Softmax + cross-entropy against soft target distributions
/// (rows of `targets` sum to 1). Used by the decision model, whose labels
/// are model-allocation vectors possibly marking several suitable models.
float softmax_cross_entropy_soft(const Tensor& logits, const Tensor& targets,
                                 Tensor& grad);

/// Sigmoid + binary cross-entropy against {0,1} targets, optionally
/// weighting positive targets by `positive_weight` (useful for the sparse
/// objectness maps of the detector).
float bce_with_logits(const Tensor& logits, const Tensor& targets,
                      Tensor& grad, float positive_weight = 1.0f);

/// Mean squared error, averaged over batch and features.
/// If `element_mask` is non-empty it gates each element's contribution
/// (used to regress box sizes only where an object exists).
float mse_loss(const Tensor& predictions, const Tensor& targets, Tensor& grad,
               const Tensor& element_mask = Tensor());

/// Top-1 accuracy of logits against integer labels.
double accuracy(const Tensor& logits, std::span<const std::size_t> labels);

/// Row-wise argmax of a [batch, classes] matrix.
std::vector<std::size_t> argmax_rows(const Tensor& matrix);

}  // namespace anole::nn
