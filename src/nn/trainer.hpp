// Minibatch training loops for classification heads.
//
// Detector training has its own loop (src/detect/detector_trainer); this
// trainer covers M_scene and M_decision, which are plain classifiers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace anole::nn {

struct TrainConfig {
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  /// Stop early after this many epochs without validation improvement;
  /// 0 disables early stopping.
  std::size_t patience = 0;
  bool verbose = false;
};

struct TrainResult {
  std::vector<double> epoch_losses;
  double final_train_accuracy = 0.0;
  double best_validation_accuracy = 0.0;
  std::size_t epochs_run = 0;
};

/// Trains `net` as a hard-label classifier with Adam. When validation data
/// is supplied (val_inputs non-empty) the patience rule applies to
/// validation accuracy.
TrainResult train_classifier(Module& net, const Tensor& inputs,
                             std::span<const std::size_t> labels,
                             const TrainConfig& config, Rng& rng,
                             const Tensor& val_inputs = Tensor(),
                             std::span<const std::size_t> val_labels = {});

/// Trains `net` against soft target rows (each row a distribution over
/// classes). This is the decision-model objective: the model-allocation
/// vector may mark several suitable compressed models.
TrainResult train_soft_classifier(Module& net, const Tensor& inputs,
                                  const Tensor& soft_targets,
                                  const TrainConfig& config, Rng& rng);

/// Slices rows `indices` of a [n, d] matrix into a new [k, d] matrix.
Tensor gather_rows(const Tensor& matrix, std::span<const std::size_t> indices);

}  // namespace anole::nn
