#include "nn/serialize.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace anole::nn {
namespace {

constexpr std::array<char, 8> kMagic = {'A', 'N', 'O', 'L',
                                        'E', 'W', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_parameters: truncated stream");
  return value;
}

}  // namespace

void save_parameters(Module& module, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint32_t>(params.size()));
  for (Parameter* p : params) {
    const Shape& shape = p->value.shape();
    write_pod(out, static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) write_pod(out, static_cast<std::uint64_t>(d));
    const auto data = p->value.data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(Module& module, std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_parameters: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  const auto params = module.parameters();
  const auto count = read_pod<std::uint32_t>(in);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const auto rank = read_pod<std::uint32_t>(in);
    Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    }
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch");
    }
    auto data = p->value.data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_parameters: truncated payload");
  }
}

void save_parameters_to_file(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_parameters(module, out);
}

void load_parameters_from_file(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  load_parameters(module, in);
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table-driven CRC-32 (reflected polynomial 0xEDB88320). The table is
  // built once on first use; thread-safe per C++11 static initialization.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t serialized_size_bytes(Module& module) {
  std::uint64_t bytes = kMagic.size() + sizeof(kVersion) +
                        sizeof(std::uint32_t);
  for (Parameter* p : module.parameters()) {
    bytes += sizeof(std::uint32_t);
    bytes += p->value.shape().size() * sizeof(std::uint64_t);
    bytes += p->value.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace anole::nn
