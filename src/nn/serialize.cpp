#include "nn/serialize.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <vector>

#include "nn/quantize.hpp"
#include "tensor/qgemm.hpp"

namespace anole::nn {
namespace {

constexpr std::array<char, 8> kMagic = {'A', 'N', 'O', 'L',
                                        'E', 'W', 'T', 'S'};
constexpr std::uint32_t kVersion = 1;

/// Precision tags of the compact network format (one byte per Linear).
constexpr std::uint8_t kTagFp32 = 0;
constexpr std::uint8_t kTagInt8 = 1;

void write_fp16_span(std::ostream& out, std::span<const float> values) {
  for (const float v : values) write_pod(out, float_to_half(v));
}

void read_fp16_span(std::istream& in, std::span<float> values) {
  for (float& v : values) v = half_to_float(read_pod<std::uint16_t>(in));
}

}  // namespace

void write_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

void read_bytes(std::istream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("read_bytes: truncated stream");
}

void save_parameters(Module& module, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  const auto params = module.parameters();
  write_pod(out, static_cast<std::uint32_t>(params.size()));
  for (Parameter* p : params) {
    const Shape& shape = p->value.shape();
    write_pod(out, static_cast<std::uint32_t>(shape.size()));
    for (std::size_t d : shape) write_pod(out, static_cast<std::uint64_t>(d));
    const auto data = p->value.data();
    write_bytes(out, data.data(), data.size() * sizeof(float));
  }
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(Module& module, std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_parameters: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  const auto params = module.parameters();
  const auto count = read_pod<std::uint32_t>(in);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const auto rank = read_pod<std::uint32_t>(in);
    Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    }
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch");
    }
    auto data = p->value.data();
    read_bytes(in, data.data(), data.size() * sizeof(float));
  }
}

void save_parameters_to_file(Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_parameters(module, out);
}

void load_parameters_from_file(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  load_parameters(module, in);
}

std::uint64_t serialized_size_bytes(Module& module) {
  std::uint64_t bytes = kMagic.size() + sizeof(kVersion) +
                        sizeof(std::uint32_t);
  for (Parameter* p : module.parameters()) {
    bytes += sizeof(std::uint32_t);
    bytes += p->value.shape().size() * sizeof(std::uint64_t);
    bytes += p->value.size() * sizeof(float);
  }
  return bytes;
}

void save_network(Sequential& net, std::ostream& out) {
  for (std::size_t i = 0; i < net.size(); ++i) {
    Module& module = net.at(i);
    if (auto* linear = dynamic_cast<Linear*>(&module)) {
      write_pod(out, kTagFp32);
      const auto weight = linear->weight().value.data();
      write_bytes(out, weight.data(), weight.size() * sizeof(float));
      const auto bias = linear->bias().value.data();
      write_bytes(out, bias.data(), bias.size() * sizeof(float));
      continue;
    }
    if (auto* quantized = dynamic_cast<QuantizedLinear*>(&module)) {
      write_pod(out, kTagInt8);
      const QuantizedMatrix& w = quantized->quantized_weights();
      write_bytes(out, w.data.data(), w.data.size());
      write_fp16_span(out, w.scales);
      write_fp16_span(out, quantized->bias().data());
      continue;
    }
    // Any other parameterized layer (e.g. LayerNorm): raw fp32 values in
    // declaration order, no tag — the reader walks the same architecture.
    for (Parameter* p : module.parameters()) {
      const auto data = p->value.data();
      write_bytes(out, data.data(), data.size() * sizeof(float));
    }
  }
  if (!out) throw std::runtime_error("save_network: write failed");
}

void load_network(Sequential& net, std::istream& in) {
  for (std::size_t i = 0; i < net.size(); ++i) {
    Module& module = net.at(i);
    if (auto* linear = dynamic_cast<Linear*>(&module)) {
      const auto tag = read_pod<std::uint8_t>(in);
      if (tag == kTagFp32) {
        auto weight = linear->weight().value.data();
        read_bytes(in, weight.data(), weight.size() * sizeof(float));
        auto bias = linear->bias().value.data();
        read_bytes(in, bias.data(), bias.size() * sizeof(float));
      } else if (tag == kTagInt8) {
        QuantizedMatrix w;
        w.depth = linear->in_features();
        w.channels = linear->out_features();
        w.data.resize(w.channels * w.depth);
        read_bytes(in, w.data.data(), w.data.size());
        w.scales.resize(w.channels);
        read_fp16_span(in, w.scales);
        Tensor bias(Shape{w.channels});
        read_fp16_span(in, bias.data());
        net.replace(i, std::make_unique<QuantizedLinear>(std::move(w),
                                                         std::move(bias)));
      } else {
        throw std::runtime_error("load_network: unknown precision tag");
      }
      continue;
    }
    if (dynamic_cast<QuantizedLinear*>(&module) != nullptr) {
      // Loading always starts from a freshly constructed fp32 network.
      throw std::runtime_error(
          "load_network: target network is already quantized");
    }
    for (Parameter* p : module.parameters()) {
      auto data = p->value.data();
      read_bytes(in, data.data(), data.size() * sizeof(float));
    }
  }
}

std::uint64_t network_wire_bytes(Sequential& net) {
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < net.size(); ++i) {
    Module& module = net.at(i);
    if (auto* linear = dynamic_cast<Linear*>(&module)) {
      bytes += sizeof(std::uint8_t);
      bytes += (linear->weight().value.size() + linear->bias().value.size()) *
               sizeof(float);
      continue;
    }
    if (auto* quantized = dynamic_cast<QuantizedLinear*>(&module)) {
      bytes += sizeof(std::uint8_t);
      bytes += quantized->quantized_weights().data.size();
      bytes += quantized->quantized_weights().scales.size() *
               sizeof(std::uint16_t);
      bytes += quantized->bias().size() * sizeof(std::uint16_t);
      continue;
    }
    for (Parameter* p : module.parameters()) {
      bytes += p->value.size() * sizeof(float);
    }
  }
  return bytes;
}

std::uint64_t streamed_weight_bytes(Sequential& net) {
  return is_quantized(net) ? network_wire_bytes(net)
                           : serialized_size_bytes(net);
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  // Table-driven CRC-32 (reflected polynomial 0xEDB88320). The table is
  // built once on first use; thread-safe per C++11 static initialization.
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace anole::nn
