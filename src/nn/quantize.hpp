// Post-training int8 quantization for the nn stack.
//
// QuantizedLinear is the inference-only int8 counterpart of Linear: the
// weight matrix is per-channel symmetric int8 (tensor/qgemm.hpp) and the
// bias is snapped to fp16-representable values, so a quantized layer's
// in-memory state is exactly what the artifact v3 wire format stores —
// save/load round-trips are bit-identical, and so is every inference
// result before vs after an artifact hop.
//
// The conversion entry point is quantize_linear_layers(): an in-place
// post-training pass over a Sequential that swaps every Linear for a
// QuantizedLinear and hands back the displaced originals, so callers can
// restore them when a model fails its accuracy guard (core/quantize.hpp
// implements the repository-level δ guard on top of this).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "tensor/qgemm.hpp"

namespace anole::nn {

/// Inference-only int8 fully connected layer: y = qgemm(x, Wq) + b.
/// Weights are [out, in] per-channel int8; bias values are exactly
/// fp16-representable. backward() is a contract violation — quantized
/// layers never train.
class QuantizedLinear : public Module {
 public:
  /// Post-training conversion of a trained Linear (weights quantized
  /// per output channel, bias snapped through fp16).
  explicit QuantizedLinear(Linear& source);

  /// From wire data (artifact v3): `weights` is the stored [out, in]
  /// matrix, `bias` a [out] tensor of fp16-representable values.
  QuantizedLinear(QuantizedMatrix weights, Tensor bias);

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "QuantizedLinear"; }
  /// Same MAC count as the fp32 layer: quantization changes the cost per
  /// op, not the op count, and the device model charges by FLOPs.
  std::uint64_t flops_per_sample() const override;

  std::size_t in_features() const { return weights_.depth; }
  std::size_t out_features() const { return weights_.channels; }

  const QuantizedMatrix& quantized_weights() const { return weights_; }
  const Tensor& bias() const { return bias_; }

  /// The fp32 weight matrix [in, out] this layer effectively multiplies
  /// by (dequantized codes; NOT the pre-quantization weights).
  Tensor dequantized_weight() const { return dequantize_weights(weights_); }

 private:
  QuantizedMatrix weights_;
  Tensor bias_;  // [out], fp32 values snapped to fp16 grid
};

/// Replaces every Linear in `net` with a QuantizedLinear, in place.
/// Returns the displaced originals as (layer index, module) pairs so the
/// caller can undo individual swaps via Sequential::replace. Layers that
/// are already quantized (or not Linear) are left untouched.
std::vector<std::pair<std::size_t, ModulePtr>> quantize_linear_layers(
    Sequential& net);

/// Replaces every QuantizedLinear in `net` with an equivalent fp32 Linear
/// carrying the dequantized weights (used by ANOLE_QUANT=0 artifact
/// loads). Returns the number of layers converted.
std::size_t dequantize_linear_layers(Sequential& net);

/// True when any layer of `net` is a QuantizedLinear.
bool is_quantized(Sequential& net);

/// The ANOLE_QUANT gate: quantized execution is on unless the environment
/// sets ANOLE_QUANT=0 (read fresh on every call so tests can toggle it).
bool quantization_enabled();

}  // namespace anole::nn
