// Concrete layers: Linear, activations, Dropout, LayerNorm.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace anole::nn {

/// Fully connected layer: y = x W + b, x is [batch, in], W is [in, out].
class Linear : public Module {
 public:
  /// He-style fan-in initialization with the given RNG.
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "Linear"; }
  std::uint64_t flops_per_sample() const override;

  std::size_t in_features() const { return in_features_; }
  std::size_t out_features() const { return out_features_; }

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t in_features_;
  std::size_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
};

/// Rectified linear unit.
class ReLU : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::uint64_t flops_per_sample() const override { return last_width_; }

 private:
  Tensor cached_input_;
  std::uint64_t last_width_ = 0;
};

/// Leaky rectified linear unit with fixed negative slope.
class LeakyReLU : public Module {
 public:
  explicit LeakyReLU(float negative_slope = 0.1f)
      : negative_slope_(negative_slope) {}

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }
  std::uint64_t flops_per_sample() const override { return last_width_; }

 private:
  float negative_slope_;
  Tensor cached_input_;
  std::uint64_t last_width_ = 0;
};

/// Logistic sigmoid.
class Sigmoid : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Sigmoid"; }
  std::uint64_t flops_per_sample() const override { return 4 * last_width_; }

 private:
  Tensor cached_output_;
  std::uint64_t last_width_ = 0;
};

/// Hyperbolic tangent.
class Tanh : public Module {
 public:
  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }
  std::uint64_t flops_per_sample() const override { return 4 * last_width_; }

 private:
  Tensor cached_output_;
  std::uint64_t last_width_ = 0;
};

/// Inverted dropout: active only in training mode.
class Dropout : public Module {
 public:
  /// `rate` is the drop probability in [0, 1).
  Dropout(float rate, std::uint64_t seed);

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  float rate_;
  Rng rng_;
  Tensor mask_;
};

/// Layer normalization over the feature dimension with learnable gain/bias.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::size_t features, float epsilon = 1e-5f);

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return "LayerNorm"; }
  std::uint64_t flops_per_sample() const override { return 8 * features_; }

 private:
  std::size_t features_;
  float epsilon_;
  Parameter gain_;
  Parameter bias_;
  Tensor cached_normalized_;
  Tensor cached_inv_std_;  // [batch]
};

}  // namespace anole::nn
