#include "nn/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace anole::nn {
namespace {

void check_params(const std::vector<Parameter*>& params, const char* who) {
  for (const Parameter* p : params) {
    ANOLE_CHECK_NOTNULL(p, who, ": null parameter");
    ANOLE_CHECK(p->value.shape() == p->grad.shape(), who,
                ": parameter value/grad shape mismatch");
  }
}

}  // namespace

void Optimizer::zero_grad() {
  for (Parameter* p : params_) p->zero_grad();
}

Sgd::Sgd(std::vector<Parameter*> params, double learning_rate, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  check_params(params_, "Sgd");
  ANOLE_CHECK_GE(learning_rate, 0.0, "Sgd: negative learning rate");
  learning_rate_ = learning_rate;
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  const float lr = static_cast<float>(learning_rate_);
  const float mu = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto vel = v.data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + wd * value[j];
      vel[j] = mu * vel[j] + g;
      value[j] -= lr * vel[j];
    }
    p.zero_grad();
  }
}

Adam::Adam(std::vector<Parameter*> params, double learning_rate, double beta1,
           double beta2, double epsilon, double weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      weight_decay_(weight_decay) {
  check_params(params_, "Adam");
  ANOLE_CHECK_GE(learning_rate, 0.0, "Adam: negative learning rate");
  ANOLE_CHECK(beta1 >= 0.0 && beta1 < 1.0, "Adam: beta1 must be in [0, 1)");
  ANOLE_CHECK(beta2 >= 0.0 && beta2 < 1.0, "Adam: beta2 must be in [0, 1)");
  ANOLE_CHECK_GT(epsilon, 0.0, "Adam: epsilon must be > 0");
  learning_rate_ = learning_rate;
  first_moment_.reserve(params_.size());
  second_moment_.reserve(params_.size());
  for (Parameter* p : params_) {
    first_moment_.emplace_back(p->value.shape());
    second_moment_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const float lr = static_cast<float>(learning_rate_);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(epsilon_);
  const float wd = static_cast<float>(weight_decay_);
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    auto value = p.value.data();
    auto grad = p.grad.data();
    auto m = first_moment_[i].data();
    auto v = second_moment_[i].data();
    for (std::size_t j = 0; j < value.size(); ++j) {
      const float g = grad[j] + wd * value[j];
      m[j] = b1 * m[j] + (1.0f - b1) * g;
      v[j] = b2 * v[j] + (1.0f - b2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
    p.zero_grad();
  }
}

}  // namespace anole::nn
