// Binary (de)serialization of module parameters.
//
// Mirrors the paper's deployment flow: models are trained by the offline
// profiler ("cloud") and downloaded to the device as weight blobs; the
// device simulator charges load latency proportional to the blob size.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "nn/module.hpp"

namespace anole::nn {

/// Writes all parameters of `module` to `out`. Format:
/// magic "ANOLEWTS", u32 version, u32 parameter count, then per parameter
/// u32 rank, u64 dims..., f32 data...
void save_parameters(Module& module, std::ostream& out);

/// Loads parameters into `module`. The module must already have the same
/// architecture (same parameter count and shapes); throws std::runtime_error
/// on any mismatch or malformed stream.
void load_parameters(Module& module, std::istream& in);

/// Convenience: file-based wrappers; throw std::runtime_error on I/O errors.
void save_parameters_to_file(Module& module, const std::string& path);
void load_parameters_from_file(Module& module, const std::string& path);

/// Size in bytes the serialized parameters occupy (header + payload).
std::uint64_t serialized_size_bytes(Module& module);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes at `data`.
/// Chain blocks by passing the previous return value as `seed`. Used by
/// the artifact layer's per-section checksums: a CRC-32 detects every
/// single-bit flip and every burst error up to 32 bits.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace anole::nn
