// Binary (de)serialization of module parameters.
//
// Mirrors the paper's deployment flow: models are trained by the offline
// profiler ("cloud") and downloaded to the device as weight blobs; the
// device simulator charges load latency proportional to the blob size.
//
// Two formats live here:
//  - save_parameters/load_parameters: the self-describing "ANOLEWTS" blob
//    (per-parameter rank + dims headers, fp32 data). Used by artifact
//    v1/v2 sections and standalone weight files.
//  - save_network/load_network: the compact precision-tagged format used
//    by artifact v3 model sections. The architecture is NOT encoded —
//    the reader walks a same-architecture Sequential — so the only
//    framing is one precision byte per Linear layer (0 = fp32 weights +
//    bias; 1 = per-channel int8 weights + fp16 scales + fp16 bias).
//    Non-Linear parameters are stored as raw fp32 in declaration order.
//
// This header also owns the raw-byte stream helpers (write_pod/read_pod/
// try_read_pod): they are the ONLY sanctioned home for reinterpret_cast
// weight access, which scripts/anole_lint.py enforces.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "nn/module.hpp"
#include "nn/sequential.hpp"

namespace anole::nn {

/// Writes one trivially copyable value to `out` in host byte order.
template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Reads one trivially copyable value; throws std::runtime_error on a
/// short read.
template <typename T>
T read_pod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("read_pod: truncated stream");
  return value;
}

/// Like read_pod but returns false on a short read (EOF-tolerant; used by
/// the artifact section scanner).
template <typename T>
bool try_read_pod(std::istream& in, T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

/// Writes `size` raw bytes of `data` to `out`.
void write_bytes(std::ostream& out, const void* data, std::size_t size);

/// Reads `size` raw bytes into `data`; throws std::runtime_error on a
/// short read.
void read_bytes(std::istream& in, void* data, std::size_t size);

/// Writes all parameters of `module` to `out`. Format:
/// magic "ANOLEWTS", u32 version, u32 parameter count, then per parameter
/// u32 rank, u64 dims..., f32 data...
void save_parameters(Module& module, std::ostream& out);

/// Loads parameters into `module`. The module must already have the same
/// architecture (same parameter count and shapes); throws std::runtime_error
/// on any mismatch or malformed stream.
void load_parameters(Module& module, std::istream& in);

/// Convenience: file-based wrappers; throw std::runtime_error on I/O errors.
void save_parameters_to_file(Module& module, const std::string& path);
void load_parameters_from_file(Module& module, const std::string& path);

/// Size in bytes the serialized parameters occupy (header + payload).
std::uint64_t serialized_size_bytes(Module& module);

/// Writes `net` in the compact precision-tagged format (artifact v3).
/// Quantized layers cost ~4x fewer bytes than their fp32 form.
void save_network(Sequential& net, std::ostream& out);

/// Loads a precision-tagged network into `net`, which must have the same
/// architecture the writer walked; Linear positions tagged as int8 are
/// replaced with QuantizedLinear in place. Throws std::runtime_error on a
/// malformed stream or an architecture mismatch.
void load_network(Sequential& net, std::istream& in);

/// Size in bytes save_network would emit. For an all-fp32 network this is
/// intentionally NOT serialized_size_bytes (no per-parameter headers).
std::uint64_t network_wire_bytes(Sequential& net);

/// Bytes the network costs when streamed to a device: the ANOLEWTS blob
/// size for fp32 networks (matching artifact v1/v2 accounting) and the
/// compact precision-tagged size once any layer is quantized (artifact
/// v3 accounting).
std::uint64_t streamed_weight_bytes(Sequential& net);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes at `data`.
/// Chain blocks by passing the previous return value as `seed`. Used by
/// the artifact layer's per-section checksums: a CRC-32 detects every
/// single-bit flip and every burst error up to 32 bits.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace anole::nn
