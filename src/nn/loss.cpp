#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/simd.hpp"
#include "util/check.hpp"

namespace anole::nn {

Tensor softmax_rows(const Tensor& logits) {
  ANOLE_CHECK_EQ(logits.rank(), 2u, "softmax_rows: rank != 2");
  Tensor out = logits;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    auto row = out.row(r);
    float max_logit = row[0];
    for (float v : row) max_logit = std::max(max_logit, v);
    float sum = 0.0f;
    for (auto& v : row) {
      v = std::exp(v - max_logit);
      sum += v;
    }
    for (auto& v : row) v /= sum;
  }
  return out;
}

float softmax_cross_entropy(const Tensor& logits,
                            std::span<const std::size_t> labels,
                            Tensor& grad) {
  ANOLE_CHECK_EQ(logits.rank(), 2u, "softmax_cross_entropy: rank != 2");
  ANOLE_CHECK_EQ(labels.size(), logits.rows(),
                 "softmax_cross_entropy: batch mismatch");
  ANOLE_CHECK_GT(logits.rows(), 0u, "softmax_cross_entropy: empty batch");
  const std::size_t batch = logits.rows();
  grad = softmax_rows(logits);
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    ANOLE_CHECK_LT(labels[r], logits.cols(),
                   "softmax_cross_entropy: label out of range at row ", r);
    auto g = grad.row(r);
    loss -= std::log(std::max(g[labels[r]], 1e-12f));
    g[labels[r]] -= 1.0f;
    for (auto& v : g) v *= inv_batch;
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

float softmax_cross_entropy_soft(const Tensor& logits, const Tensor& targets,
                                 Tensor& grad) {
  ANOLE_CHECK_EQ(logits.rank(), 2u, "softmax_cross_entropy_soft: rank != 2");
  ANOLE_CHECK(logits.shape() == targets.shape(),
              "softmax_cross_entropy_soft: shape mismatch ",
              shape_to_string(logits.shape()), " vs ",
              shape_to_string(targets.shape()));
  ANOLE_CHECK_GT(logits.rows(), 0u, "softmax_cross_entropy_soft: empty batch");
  const std::size_t batch = logits.rows();
  grad = softmax_rows(logits);
  double loss = 0.0;
  const float inv_batch = 1.0f / static_cast<float>(batch);
  for (std::size_t r = 0; r < batch; ++r) {
    auto g = grad.row(r);
    auto t = targets.row(r);
    for (std::size_t c = 0; c < g.size(); ++c) {
      if (t[c] > 0.0f) {
        loss -= static_cast<double>(t[c]) * std::log(std::max(g[c], 1e-12f));
      }
      g[c] = (g[c] - t[c]) * inv_batch;
    }
  }
  return static_cast<float>(loss / static_cast<double>(batch));
}

float bce_with_logits(const Tensor& logits, const Tensor& targets,
                      Tensor& grad, float positive_weight) {
  ANOLE_CHECK(logits.shape() == targets.shape(),
              "bce_with_logits: shape mismatch ",
              shape_to_string(logits.shape()), " vs ",
              shape_to_string(targets.shape()));
  ANOLE_CHECK_GT(positive_weight, 0.0f,
                 "bce_with_logits: positive_weight must be > 0");
  // Every element is written below; skip the zero-fill.
  grad = Tensor::uninitialized(logits.shape());
  const std::size_t n = logits.size();
  ANOLE_CHECK_GT(n, 0u, "bce_with_logits: empty input");
  // The transcendental core — σ(z) and log1p(exp(-|z|)) — runs through
  // the dispatched kernel: scalar/SSE2 evaluate the exact libm
  // expressions, AVX2 the documented polynomial path (DESIGN.md §13).
  // σ(z) lands in `grad` and is rescaled to the gradient in place.
  Tensor log_terms = Tensor::uninitialized(logits.shape());
  simd::sigmoid_terms(simd::active_level(), logits.data().data(), n,
                      grad.data().data(), log_terms.data().data());
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float z = logits[i];
    const float t = targets[i];
    const float w = t > 0.5f ? positive_weight : 1.0f;
    // Numerically stable BCE: max(z,0) - z*t + log(1+exp(-|z|)).
    const float stable = std::max(z, 0.0f) - z * t + log_terms[i];
    loss += static_cast<double>(w * stable);
    grad[i] = w * (grad[i] - t) * inv_n;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

float mse_loss(const Tensor& predictions, const Tensor& targets, Tensor& grad,
               const Tensor& element_mask) {
  ANOLE_CHECK(predictions.shape() == targets.shape(),
              "mse_loss: shape mismatch ",
              shape_to_string(predictions.shape()), " vs ",
              shape_to_string(targets.shape()));
  const bool masked = !element_mask.empty();
  if (masked) {
    ANOLE_CHECK(element_mask.shape() == predictions.shape(),
                "mse_loss: mask shape mismatch ",
                shape_to_string(element_mask.shape()));
  }
  grad = Tensor(predictions.shape());
  const std::size_t n = predictions.size();
  ANOLE_CHECK_GT(n, 0u, "mse_loss: empty input");
  double loss = 0.0;
  double active = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float m = masked ? element_mask[i] : 1.0f;
    if (m == 0.0f) continue;
    const float diff = predictions[i] - targets[i];
    loss += static_cast<double>(m) * diff * diff;
    grad[i] = 2.0f * m * diff;
    active += m;
  }
  if (active == 0.0) return 0.0f;
  const float inv_active = static_cast<float>(1.0 / active);
  for (auto& g : grad.data()) g *= inv_active;
  return static_cast<float>(loss / active);
}

double accuracy(const Tensor& logits, std::span<const std::size_t> labels) {
  if (logits.rows() == 0 || labels.size() != logits.rows()) return 0.0;
  const auto predicted = argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < predicted.size(); ++r) {
    if (predicted[r] == labels[r]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

std::vector<std::size_t> argmax_rows(const Tensor& matrix) {
  std::vector<std::size_t> out(matrix.rows(), 0);
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    auto row = matrix.row(r);
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = best;
  }
  return out;
}

}  // namespace anole::nn
