#include "nn/module.hpp"

namespace anole::nn {

std::uint64_t Module::parameter_count() {
  std::uint64_t count = 0;
  for (Parameter* p : parameters()) count += p->value.size();
  return count;
}

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->zero_grad();
}

}  // namespace anole::nn
