// Sequential container plus a convenience MLP factory.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/module.hpp"

namespace anole::nn {

/// Runs child modules in order; backward runs them in reverse.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns *this for chaining.
  Sequential& add(ModulePtr module);

  template <typename T, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<T>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return "Sequential"; }
  std::uint64_t flops_per_sample() const override;

  std::size_t size() const { return modules_.size(); }
  Module& at(std::size_t i) { return *modules_.at(i); }

  /// Swaps the module at position `i` for `module` and returns the old
  /// one. Used by the post-training quantization pass (nn/quantize.hpp)
  /// so callers can restore the original layer when a quantized model
  /// fails its accuracy guard.
  ModulePtr replace(std::size_t i, ModulePtr module);

 private:
  std::vector<ModulePtr> modules_;
};

/// Builds [Linear -> ReLU]* -> Linear over the given layer widths.
/// `widths` must have at least two entries (input and output width).
std::unique_ptr<Sequential> make_mlp(const std::vector<std::size_t>& widths,
                                     Rng& rng, float dropout_rate = 0.0f);

}  // namespace anole::nn
