#include "nn/layers.hpp"

#include <cmath>

#include "tensor/simd.hpp"
#include "util/check.hpp"

namespace anole::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::matrix(in_features, out_features)),
      bias_(Tensor(Shape{out_features})) {
  ANOLE_CHECK_GT(in_features, 0u, "Linear: in_features == 0");
  ANOLE_CHECK_GT(out_features, 0u, "Linear: out_features == 0");
  // He initialization: suited to the ReLU-family activations used here.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_features));
  for (auto& w : weight_.value.data()) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
}

Tensor Linear::forward(const Tensor& input) {
  ANOLE_CHECK(input.rank() == 2 && input.cols() == in_features_,
              "Linear::forward: expected [batch, ", in_features_, "], got ",
              shape_to_string(input.shape()));
  cached_input_ = input;
  Tensor out = matmul(input, weight_.value);
  add_row_broadcast(out, bias_.value);
  return out;
}

Tensor Linear::infer(const Tensor& input) const {
  ANOLE_CHECK(input.rank() == 2 && input.cols() == in_features_,
              "Linear::infer: expected [batch, ", in_features_, "], got ",
              shape_to_string(input.shape()));
  Tensor out = matmul(input, weight_.value);
  add_row_broadcast(out, bias_.value);
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  ANOLE_CHECK(!cached_input_.empty(),
              "Linear::backward before forward");
  ANOLE_CHECK(grad_output.rank() == 2 && grad_output.cols() == out_features_,
              "Linear::backward: expected [batch, ", out_features_,
              "], got ", shape_to_string(grad_output.shape()));
  weight_.grad += matmul_transpose_a(cached_input_, grad_output);
  bias_.grad += sum_rows(grad_output);
  return matmul_transpose_b(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::parameters() { return {&weight_, &bias_}; }

std::uint64_t Linear::flops_per_sample() const {
  // One multiply + one add per weight, plus the bias add.
  return 2ull * in_features_ * out_features_ + out_features_;
}

Tensor ReLU::forward(const Tensor& input) {
  cached_input_ = input;
  last_width_ = input.rank() == 2 ? input.cols() : input.size();
  // Single pass into an uninitialized output instead of copy-then-clamp:
  // same values, one fewer sweep over the activation buffer.
  Tensor out = Tensor::uninitialized(input.shape());
  auto in = input.data();
  auto o = out.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    o[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::infer(const Tensor& input) const {
  Tensor out = Tensor::uninitialized(input.shape());
  auto in = input.data();
  auto o = out.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    o[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  Tensor grad = Tensor::uninitialized(grad_output.shape());
  auto in = cached_input_.data();
  auto go = grad_output.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = in[i] <= 0.0f ? 0.0f : go[i];
  }
  return grad;
}

Tensor LeakyReLU::forward(const Tensor& input) {
  cached_input_ = input;
  last_width_ = input.rank() == 2 ? input.cols() : input.size();
  Tensor out = input;
  for (auto& v : out.data()) {
    if (v < 0.0f) v *= negative_slope_;
  }
  return out;
}

Tensor LeakyReLU::infer(const Tensor& input) const {
  Tensor out = input;
  for (auto& v : out.data()) {
    if (v < 0.0f) v *= negative_slope_;
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto in = cached_input_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (in[i] < 0.0f) g[i] *= negative_slope_;
  }
  return grad;
}

Tensor Sigmoid::forward(const Tensor& input) {
  last_width_ = input.rank() == 2 ? input.cols() : input.size();
  // σ through the dispatched transcendental kernel (libm at scalar/SSE2,
  // polynomial at AVX2 — DESIGN.md §13), written straight into an
  // uninitialized output.
  Tensor out = Tensor::uninitialized(input.shape());
  simd::sigmoid_terms(simd::active_level(), input.data().data(), input.size(),
                      out.data().data(), nullptr);
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::infer(const Tensor& input) const {
  Tensor out = Tensor::uninitialized(input.shape());
  simd::sigmoid_terms(simd::active_level(), input.data().data(), input.size(),
                      out.data().data(), nullptr);
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto y = cached_output_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0f - y[i]);
  return grad;
}

Tensor Tanh::forward(const Tensor& input) {
  last_width_ = input.rank() == 2 ? input.cols() : input.size();
  Tensor out = input;
  for (auto& v : out.data()) v = std::tanh(v);
  cached_output_ = out;
  return out;
}

Tensor Tanh::infer(const Tensor& input) const {
  Tensor out = input;
  for (auto& v : out.data()) v = std::tanh(v);
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  Tensor grad = grad_output;
  auto y = cached_output_.data();
  auto g = grad.data();
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return grad;
}

Dropout::Dropout(float rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  ANOLE_CHECK(rate >= 0.0f && rate < 1.0f,
              "Dropout: rate must be in [0, 1), got ", rate);
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training() || rate_ == 0.0f) {
    mask_ = Tensor();
    return input;
  }
  mask_ = Tensor(input.shape());
  const float keep = 1.0f - rate_;
  Tensor out = input;
  auto m = mask_.data();
  auto o = out.data();
  for (std::size_t i = 0; i < o.size(); ++i) {
    // Inverted dropout keeps inference a no-op.
    m[i] = rng_.bernoulli(keep) ? 1.0f / keep : 0.0f;
    o[i] *= m[i];
  }
  return out;
}

Tensor Dropout::infer(const Tensor& input) const {
  // Inverted dropout: inference is a no-op at any rate.
  return input;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor grad = grad_output;
  grad *= mask_;
  return grad;
}

LayerNorm::LayerNorm(std::size_t features, float epsilon)
    : features_(features),
      epsilon_(epsilon),
      gain_(Tensor(Shape{features}, 1.0f)),
      bias_(Tensor(Shape{features})) {
  ANOLE_CHECK_GT(features, 0u, "LayerNorm: features == 0");
  ANOLE_CHECK_GT(epsilon, 0.0f, "LayerNorm: epsilon must be > 0");
}

Tensor LayerNorm::forward(const Tensor& input) {
  ANOLE_CHECK(input.rank() == 2 && input.cols() == features_,
              "LayerNorm::forward: expected [batch, ", features_, "], got ",
              shape_to_string(input.shape()));
  const std::size_t batch = input.rows();
  Tensor out = input;
  cached_normalized_ = Tensor::matrix(batch, features_);
  cached_inv_std_ = Tensor(Shape{batch});
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = out.row(r);
    float m = 0.0f;
    for (float v : row) m += v;
    m /= static_cast<float>(features_);
    float var = 0.0f;
    for (float v : row) var += (v - m) * (v - m);
    var /= static_cast<float>(features_);
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    cached_inv_std_[r] = inv_std;
    auto norm_row = cached_normalized_.row(r);
    for (std::size_t c = 0; c < features_; ++c) {
      norm_row[c] = (row[c] - m) * inv_std;
      row[c] = norm_row[c] * gain_.value[c] + bias_.value[c];
    }
  }
  return out;
}

Tensor LayerNorm::infer(const Tensor& input) const {
  ANOLE_CHECK(input.rank() == 2 && input.cols() == features_,
              "LayerNorm::infer: expected [batch, ", features_, "], got ",
              shape_to_string(input.shape()));
  const std::size_t batch = input.rows();
  Tensor out = input;
  for (std::size_t r = 0; r < batch; ++r) {
    auto row = out.row(r);
    float m = 0.0f;
    for (float v : row) m += v;
    m /= static_cast<float>(features_);
    float var = 0.0f;
    for (float v : row) var += (v - m) * (v - m);
    var /= static_cast<float>(features_);
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    for (std::size_t c = 0; c < features_; ++c) {
      row[c] = (row[c] - m) * inv_std * gain_.value[c] + bias_.value[c];
    }
  }
  return out;
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  ANOLE_CHECK(!cached_normalized_.empty(),
              "LayerNorm::backward before forward");
  ANOLE_CHECK(grad_output.rank() == 2 && grad_output.cols() == features_ &&
                  grad_output.rows() == cached_normalized_.rows(),
              "LayerNorm::backward: grad shape ",
              shape_to_string(grad_output.shape()), " does not match forward");
  const std::size_t batch = grad_output.rows();
  Tensor grad_input = Tensor::matrix(batch, features_);
  for (std::size_t r = 0; r < batch; ++r) {
    auto g = grad_output.row(r);
    auto xhat = cached_normalized_.row(r);
    const float inv_std = cached_inv_std_[r];
    // Accumulate parameter grads and the two reduction terms.
    float sum_gy = 0.0f;
    float sum_gy_xhat = 0.0f;
    for (std::size_t c = 0; c < features_; ++c) {
      const float gy = g[c] * gain_.value[c];
      gain_.grad[c] += g[c] * xhat[c];
      bias_.grad[c] += g[c];
      sum_gy += gy;
      sum_gy_xhat += gy * xhat[c];
    }
    const float inv_n = 1.0f / static_cast<float>(features_);
    auto gi = grad_input.row(r);
    for (std::size_t c = 0; c < features_; ++c) {
      const float gy = g[c] * gain_.value[c];
      gi[c] = inv_std * (gy - inv_n * sum_gy - xhat[c] * inv_n * sum_gy_xhat);
    }
  }
  return grad_input;
}

std::vector<Parameter*> LayerNorm::parameters() { return {&gain_, &bias_}; }

}  // namespace anole::nn
