// Minimal reverse-mode neural-network layer abstraction.
//
// This plays the role of PyTorch in the paper's stack: the scene encoder
// (M_scene), the decision model (M_decision), and every detector are built
// from these modules and trained with real gradient descent.
//
// The interface is deliberately simple: forward() caches whatever the layer
// needs, backward() consumes the upstream gradient and returns the gradient
// with respect to the layer input, accumulating parameter gradients into
// Parameter::grad.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace anole::nn {

/// A learnable tensor and its accumulated gradient.
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor initial)
      : value(std::move(initial)), grad(value.shape()) {}

  void zero_grad() { grad.fill(0.0f); }
};

/// Base class for all layers. Inputs and outputs are [batch, features]
/// matrices; layers that need other shapes document their convention.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output and caches what backward() needs.
  virtual Tensor forward(const Tensor& input) = 0;

  /// Inference-only forward: the same arithmetic as forward() in eval
  /// mode (Dropout is a pass-through regardless of the training flag),
  /// but const — no backward caches or statistics are written, so
  /// concurrent infer() calls on one module from multiple threads are
  /// safe as long as no thread mutates the module concurrently.
  virtual Tensor infer(const Tensor& input) const = 0;

  /// Propagates `grad_output` (same shape as the last forward output),
  /// accumulates parameter gradients, and returns the input gradient.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// All learnable parameters of this module (possibly empty).
  virtual std::vector<Parameter*> parameters() { return {}; }

  /// Training vs inference mode (affects Dropout).
  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  /// Human-readable layer name for debugging and summaries.
  virtual std::string name() const = 0;

  /// Multiply-accumulate-style FLOPs for one input sample, used by the
  /// device simulator to derive latency/energy (Table II / Table IV).
  virtual std::uint64_t flops_per_sample() const { return 0; }

  /// Number of scalar learnable parameters.
  std::uint64_t parameter_count();

  /// Clears all parameter gradients.
  void zero_grad();

 private:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace anole::nn
