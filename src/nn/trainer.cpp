#include "nn/trainer.hpp"

#include <algorithm>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace anole::nn {

Tensor gather_rows(const Tensor& matrix,
                   std::span<const std::size_t> indices) {
  ANOLE_CHECK_EQ(matrix.rank(), 2u, "gather_rows: rank != 2");
  Tensor out = Tensor::matrix(indices.size(), matrix.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    auto src = matrix.row(indices[i]);
    auto dst = out.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

TrainResult train_classifier(Module& net, const Tensor& inputs,
                             std::span<const std::size_t> labels,
                             const TrainConfig& config, Rng& rng,
                             const Tensor& val_inputs,
                             std::span<const std::size_t> val_labels) {
  ANOLE_CHECK_EQ(inputs.rank(), 2u, "train_classifier: inputs rank != 2");
  ANOLE_CHECK_EQ(inputs.rows(), labels.size(),
                 "train_classifier: label count mismatch");
  ANOLE_CHECK_GT(inputs.rows(), 0u, "train_classifier: empty training set");
  ANOLE_CHECK_GT(config.batch_size, 0u, "train_classifier: batch_size == 0");
  ANOLE_CHECK_EQ(val_inputs.empty(), val_labels.empty(),
                 "train_classifier: validation inputs/labels disagree");

  TrainResult result;
  Adam optimizer(net.parameters(), config.learning_rate, 0.9, 0.999, 1e-8,
                 config.weight_decay);
  const std::size_t n = inputs.rows();
  const bool has_val = !val_inputs.empty();
  double best_val = -1.0;
  std::size_t stale_epochs = 0;

  net.set_training(true);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto order = random_permutation(n, rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(start + config.batch_size, n);
      std::vector<std::size_t> batch_idx(order.begin() + start,
                                         order.begin() + end);
      Tensor x = gather_rows(inputs, batch_idx);
      std::vector<std::size_t> y(batch_idx.size());
      for (std::size_t i = 0; i < batch_idx.size(); ++i) {
        y[i] = labels[batch_idx[i]];
      }
      Tensor logits = net.forward(x);
      Tensor grad;
      epoch_loss += softmax_cross_entropy(logits, y, grad);
      net.backward(grad);
      optimizer.step();
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    result.epochs_run = epoch + 1;

    if (has_val) {
      net.set_training(false);
      const double val_acc = accuracy(net.forward(val_inputs), val_labels);
      net.set_training(true);
      if (val_acc > best_val) {
        best_val = val_acc;
        stale_epochs = 0;
      } else {
        ++stale_epochs;
      }
      if (config.verbose) {
        log_info("epoch ", epoch, " loss ", epoch_loss, " val_acc ", val_acc);
      }
      if (config.patience > 0 && stale_epochs >= config.patience) break;
    } else if (config.verbose) {
      log_info("epoch ", epoch, " loss ", epoch_loss);
    }
  }

  net.set_training(false);
  result.final_train_accuracy = accuracy(net.forward(inputs), labels);
  result.best_validation_accuracy = best_val < 0.0 ? 0.0 : best_val;
  return result;
}

TrainResult train_soft_classifier(Module& net, const Tensor& inputs,
                                  const Tensor& soft_targets,
                                  const TrainConfig& config, Rng& rng) {
  ANOLE_CHECK_EQ(inputs.rank(), 2u,
                 "train_soft_classifier: inputs rank != 2");
  ANOLE_CHECK_EQ(inputs.rows(), soft_targets.rows(),
                 "train_soft_classifier: target count mismatch");
  ANOLE_CHECK_GT(inputs.rows(), 0u,
                 "train_soft_classifier: empty training set");
  ANOLE_CHECK_GT(config.batch_size, 0u,
                 "train_soft_classifier: batch_size == 0");

  TrainResult result;
  Adam optimizer(net.parameters(), config.learning_rate, 0.9, 0.999, 1e-8,
                 config.weight_decay);
  const std::size_t n = inputs.rows();

  net.set_training(true);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    auto order = random_permutation(n, rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(start + config.batch_size, n);
      std::vector<std::size_t> batch_idx(order.begin() + start,
                                         order.begin() + end);
      Tensor x = gather_rows(inputs, batch_idx);
      Tensor t = gather_rows(soft_targets, batch_idx);
      Tensor logits = net.forward(x);
      Tensor grad;
      epoch_loss += softmax_cross_entropy_soft(logits, t, grad);
      net.backward(grad);
      optimizer.step();
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    result.epochs_run = epoch + 1;
    if (config.verbose) log_info("epoch ", epoch, " loss ", epoch_loss);
  }

  net.set_training(false);
  // Hard accuracy against the argmax of the soft targets, as a sanity
  // signal rather than the training objective.
  std::vector<std::size_t> hard_labels = argmax_rows(soft_targets);
  result.final_train_accuracy = accuracy(net.forward(inputs), hard_labels);
  return result;
}

}  // namespace anole::nn
