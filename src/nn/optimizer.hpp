// First-order optimizers over Module parameters.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace anole::nn {

/// Base optimizer bound to a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Parameter*> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the accumulated gradients, then clears them.
  virtual void step() = 0;

  /// Clears all gradients without updating.
  void zero_grad();

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 protected:
  std::vector<Parameter*> params_;
  double learning_rate_ = 1e-2;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Parameter*> params, double learning_rate,
      double momentum = 0.9, double weight_decay = 0.0);

  void step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional L2 weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Parameter*> params, double learning_rate,
       double beta1 = 0.9, double beta2 = 0.999, double epsilon = 1e-8,
       double weight_decay = 0.0);

  void step() override;

 private:
  double beta1_;
  double beta2_;
  double epsilon_;
  double weight_decay_;
  std::vector<Tensor> first_moment_;
  std::vector<Tensor> second_moment_;
  long step_count_ = 0;
};

}  // namespace anole::nn
