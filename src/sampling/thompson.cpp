#include "sampling/thompson.hpp"

#include <cmath>

#include "util/check.hpp"

namespace anole::sampling {

double required_samples(std::size_t training_set_size, double theta) {
  if (training_set_size <= 1) return 1.0;
  ANOLE_CHECK(theta > 0.0 && theta < 1.0,
              "required_samples: theta must be in (0, 1), got ", theta);
  const double n = static_cast<double>(training_set_size);
  const double numerator = std::log(1.0 - std::pow(theta, 1.0 / n));
  const double denominator = std::log(1.0 - 1.0 / n);
  return numerator / denominator;
}

AdaptiveSceneSampler::AdaptiveSceneSampler(
    std::vector<std::size_t> training_set_sizes, double theta)
    : theta_(theta) {
  ANOLE_CHECK(!training_set_sizes.empty(),
              "AdaptiveSceneSampler: no training sets");
  ANOLE_CHECK(theta > 0.0 && theta < 1.0,
              "AdaptiveSceneSampler: theta must be in (0, 1), got ", theta);
  arms_.reserve(training_set_sizes.size());
  for (std::size_t size : training_set_sizes) {
    SamplingArm arm;
    arm.training_set_size = size;
    arms_.push_back(arm);
  }
}

std::optional<std::size_t> AdaptiveSceneSampler::next_arm(Rng& rng) {
  std::optional<std::size_t> best;
  double best_draw = -1.0;
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (well_sampled(i)) continue;
    const double draw = rng.beta(arms_[i].alpha, arms_[i].beta);
    if (draw > best_draw) {
      best_draw = draw;
      best = i;
    }
  }
  return best;
}

void AdaptiveSceneSampler::record_draw(std::size_t arm) {
  ANOLE_CHECK_RANGE(arm, arms_.size(), "AdaptiveSceneSampler::record_draw");
  // Note: the paper's text updates the *chosen* arm with alpha+1 and all
  // others with beta+1, but under "highest draw wins" that feedback loop is
  // rich-get-richer: one training set monopolizes the budget and most
  // scenes receive zero samples — the opposite of the balanced |S_i| the
  // paper's Fig. 3(b) reports. We therefore apply the update with the roles
  // reversed (chosen arm beta+1, others alpha+1), which makes
  // under-sampled training sets progressively more likely to win and
  // reproduces the balancing behaviour.
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (i == arm) {
      arms_[i].beta += 1.0;
      ++arms_[i].samples_drawn;
    } else {
      arms_[i].alpha += 1.0;
    }
  }
}

bool AdaptiveSceneSampler::well_sampled(std::size_t arm) const {
  ANOLE_CHECK_RANGE(arm, arms_.size(), "AdaptiveSceneSampler::well_sampled");
  const SamplingArm& a = arms_[arm];
  return static_cast<double>(a.samples_drawn) >
         required_samples(a.training_set_size, theta_);
}

bool AdaptiveSceneSampler::all_well_sampled() const {
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    if (!well_sampled(i)) return false;
  }
  return true;
}

std::vector<double> AdaptiveSceneSampler::draw_counts() const {
  std::vector<double> counts;
  counts.reserve(arms_.size());
  for (const auto& arm : arms_) {
    counts.push_back(static_cast<double>(arm.samples_drawn));
  }
  return counts;
}

RandomSceneSampler::RandomSceneSampler(
    std::vector<std::size_t> training_set_sizes)
    : sizes_(std::move(training_set_sizes)) {
  ANOLE_CHECK(!sizes_.empty(), "RandomSceneSampler: no training sets");
  weights_.reserve(sizes_.size());
  for (std::size_t size : sizes_) {
    weights_.push_back(static_cast<double>(size));
  }
  draws_.assign(sizes_.size(), 0);
}

std::size_t RandomSceneSampler::next_arm(Rng& rng) {
  return rng.weighted_index(weights_);
}

void RandomSceneSampler::record_draw(std::size_t arm) {
  ANOLE_CHECK_RANGE(arm, draws_.size(), "RandomSceneSampler::record_draw");
  ++draws_[arm];
}

std::vector<double> RandomSceneSampler::draw_counts() const {
  std::vector<double> counts;
  counts.reserve(draws_.size());
  for (std::size_t d : draws_) counts.push_back(static_cast<double>(d));
  return counts;
}

}  // namespace anole::sampling
