// Adaptive Scene Sampling (ASS, paper section IV-B).
//
// Goal: build balanced per-model sample sets {Psi_i^sub} for decision-model
// training without exhaustively testing every sample against every model.
// Each compressed model's training set Gamma_i is an "arm"; Thompson
// sampling over Beta(alpha_i, beta_i) picks which arm to sample next, and a
// coupon-collector-style bound decides when an arm is "well sampled".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/rng.hpp"

namespace anole::sampling {

/// The paper's well-sampledness bound: the number of draws needed from a
/// training set of `training_set_size` elements so that, with confidence
/// `theta`, every element has been seen at least once under uniform
/// sampling with replacement:  log(1 - theta^(1/N)) / log(1 - 1/N).
double required_samples(std::size_t training_set_size, double theta);

/// One arm per compressed model / training set.
struct SamplingArm {
  double alpha = 1.0;
  double beta = 1.0;
  std::size_t samples_drawn = 0;
  std::size_t training_set_size = 0;
};

/// Thompson-sampling scheduler over training sets.
class AdaptiveSceneSampler {
 public:
  /// `training_set_sizes[i]` = |Gamma_i|; `theta` = well-sampled confidence.
  AdaptiveSceneSampler(std::vector<std::size_t> training_set_sizes,
                       double theta = 0.9);

  /// Picks the next training set to sample: among arms not yet well
  /// sampled, the one with the highest Beta draw. Returns nullopt when all
  /// arms are well sampled.
  std::optional<std::size_t> next_arm(Rng& rng);

  /// Records that one sample was drawn from `arm`: alpha+1 for the chosen
  /// arm, beta+1 for every other arm (the paper's update rule).
  void record_draw(std::size_t arm);

  bool well_sampled(std::size_t arm) const;
  bool all_well_sampled() const;

  std::size_t arm_count() const { return arms_.size(); }
  const SamplingArm& arm(std::size_t i) const { return arms_.at(i); }

  /// Draw counts per arm (the |S_i| of Fig. 3).
  std::vector<double> draw_counts() const;

 private:
  std::vector<SamplingArm> arms_;
  double theta_;
};

/// Baseline from the paper's Fig. 3(a): samples are drawn uniformly from
/// the union of all training sets, so each arm is hit proportionally to its
/// training-set size — producing unbalanced {S_i} when sets are skewed.
class RandomSceneSampler {
 public:
  explicit RandomSceneSampler(std::vector<std::size_t> training_set_sizes);

  std::size_t next_arm(Rng& rng);
  void record_draw(std::size_t arm);

  std::vector<double> draw_counts() const;
  std::size_t arm_count() const { return sizes_.size(); }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<double> weights_;
  std::vector<std::size_t> draws_;
};

}  // namespace anole::sampling
