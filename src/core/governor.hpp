// RuntimeGovernor: a deterministic overload controller for the OMI path.
//
// The governor closes the loop between observed frame latencies
// (DeviceSession) and serving decisions (AnoleEngine / ModelCache). It
// watches a sliding window of deadline-overrun flags and moves through
// three states with hysteresis:
//
//            overrun rate >= throttle_enter        rate >= shed_enter
//   kNormal ───────────────────────────────▶ kThrottled ───────────▶ kShedding
//      ▲                                        │   ▲                   │
//      └────────────────────────────────────────┘   └───────────────────┘
//            rate <= throttle_exit (slow)           rate <= shed_exit (slow)
//
// - kNormal: no intervention; swaps and fresh rankings every frame.
// - kThrottled: model swaps are suppressed (the engine serves the best
//   *resident* model instead of streaming the top-1 miss), and the
//   previous decision ranking is reused except every k-th frame.
// - kShedding: in addition, every shed_period-th frame is dropped
//   outright; the drop is recorded in the engine's Health record.
//
// Escalation requires `min_dwell` planned frames in the current state;
// de-escalation requires the longer `recovery_dwell` so a lull in a burst
// does not bounce the controller (hysteresis). All time is logical — the
// frame counter — never wall-clock, so for a fixed observation sequence
// the state-transition trace (and its FNV-1a hash) is bitwise identical
// across runs and thread counts. See DESIGN.md §11.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anole::core {

enum class GovernorState : std::uint8_t {
  kNormal = 0,
  kThrottled,
  kShedding,
};

const char* to_string(GovernorState state);

/// True unless the environment variable ANOLE_GOVERNOR is set to "0"
/// (read fresh on every call; tests toggle it mid-process).
bool governor_enabled_from_env();

struct GovernorConfig {
  /// Sliding window of observed frames the overrun rate is computed over.
  /// Transitions are only evaluated once the window is full.
  std::size_t window = 32;
  /// Overrun rate at/above which kNormal escalates to kThrottled.
  double throttle_enter_rate = 0.06;
  /// Overrun rate at/below which kThrottled recovers to kNormal.
  double throttle_exit_rate = 0.02;
  /// Overrun rate at/above which the governor escalates to kShedding.
  double shed_enter_rate = 0.50;
  /// Overrun rate at/below which kShedding de-escalates to kThrottled.
  double shed_exit_rate = 0.10;
  /// Planned frames that must elapse in a state before escalating.
  std::size_t min_dwell = 16;
  /// Planned frames that must elapse before de-escalating (hysteresis:
  /// recovery is deliberately slower than escalation).
  std::size_t recovery_dwell = 256;
  /// While throttled/shedding, a fresh decision ranking is computed only
  /// every ranking_refresh_period-th frame; the rest reuse the previous
  /// one. Must be >= 1 (1 = refresh every frame).
  std::size_t ranking_refresh_period = 4;
  /// While shedding, every shed_period-th frame is dropped. Must be >= 2
  /// so shedding never drops every frame.
  std::size_t shed_period = 3;
};

/// One state transition (or drop decision), in logical-frame order.
struct GovernorEvent {
  /// Planned-frame counter when the event happened.
  std::uint64_t frame = 0;
  GovernorState from = GovernorState::kNormal;
  GovernorState to = GovernorState::kNormal;
  /// True when this event records a dropped frame, not a transition.
  bool dropped = false;
};

/// What the governor tells the engine to do with the next frame.
struct GovernorDirective {
  GovernorState state = GovernorState::kNormal;
  /// Drop this frame outright (kShedding only).
  bool drop_frame = false;
  /// False: the cache must not start a model load for this frame; serve
  /// the best already-resident model instead.
  bool allow_swap = true;
  /// False: reuse the previous decision ranking instead of running the
  /// decision model.
  bool refresh_ranking = true;
};

class RuntimeGovernor {
 public:
  explicit RuntimeGovernor(GovernorConfig config = {});

  /// Called once per frame *before* the engine executes it; advances the
  /// logical clock and returns the serving directive for this frame.
  GovernorDirective plan();

  /// Called once per *executed* frame with its measured latency and
  /// deadline verdict (dropped frames are not observed — they have no
  /// latency). Evaluates state transitions.
  void observe(double latency_ms, bool deadline_overrun);

  GovernorState state() const { return state_; }
  const GovernorConfig& config() const { return config_; }

  /// Frames planned (plan() calls) / dropped so far.
  std::uint64_t frames_planned() const { return planned_; }
  std::uint64_t dropped_frames() const { return dropped_; }
  /// State transitions taken (excludes drop events).
  std::uint64_t transitions() const { return transitions_; }

  /// Overrun rate over the current observation window; 0 until the first
  /// observation arrives.
  double window_overrun_rate() const;

  /// Every transition and drop decision, in logical-frame order.
  const std::vector<GovernorEvent>& trace() const { return trace_; }

  /// FNV-1a hash of the trace; equal hashes across two runs mean the
  /// governor took bitwise-identical decisions.
  std::uint64_t trace_hash() const;

  /// Returns to kNormal with empty window, counters, and trace; the
  /// configuration is kept.
  void reset();

 private:
  void maybe_transition();
  void transition_to(GovernorState next);

  GovernorConfig config_;
  GovernorState state_ = GovernorState::kNormal;
  /// Ring buffer of the last `config_.window` overrun flags.
  std::vector<std::uint8_t> window_;
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  std::size_t window_overruns_ = 0;
  std::uint64_t planned_ = 0;
  std::uint64_t observed_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t transitions_ = 0;
  /// Value of planned_ when the current state was entered.
  std::uint64_t state_entered_at_ = 0;
  std::vector<GovernorEvent> trace_;
};

}  // namespace anole::core
