// The compressed-model repository and Algorithm 1 (paper section IV-A):
// multi-granularity k-means over scene embeddings, one compressed detector
// trained per accepted cluster until the repository holds n models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/scene_encoder.hpp"
#include "core/semantic_scenes.hpp"
#include "detect/detector_trainer.hpp"
#include "detect/grid_detector.hpp"
#include "util/check.hpp"

namespace anole::core {

/// One scene-specific compressed model (an M_i with its Gamma_i).
struct SceneModel {
  std::unique_ptr<detect::GridDetector> detector;
  /// Dense scene classes whose frames formed the training set Gamma_i.
  std::vector<std::size_t> scene_classes;
  /// Training frames of Gamma_i (borrowed from the corpus).
  std::vector<const world::Frame*> training_frames;
  /// Held-out frames of the same scenes. ASS samples these: evaluating a
  /// model on its own training frames would let an overfit specialist
  /// dominate the allocation labels.
  std::vector<const world::Frame*> validation_frames;
  /// Validation F1 achieved when the model was accepted.
  double validation_f1 = 0.0;
  /// Which clustering granularity produced it.
  std::size_t cluster_k = 0;
  std::string name;
};

class ModelRepository {
 public:
  std::size_t size() const { return models_.size(); }
  bool empty() const { return models_.empty(); }

  SceneModel& model(std::size_t i) {
    ANOLE_CHECK_RANGE(i, models_.size(), "ModelRepository::model");
    return models_[i];
  }
  const SceneModel& model(std::size_t i) const {
    ANOLE_CHECK_RANGE(i, models_.size(), "ModelRepository::model");
    return models_[i];
  }

  detect::GridDetector& detector(std::size_t i) {
    ANOLE_CHECK_RANGE(i, models_.size(), "ModelRepository::detector");
    ANOLE_CHECK_NOTNULL(models_[i].detector,
                        "ModelRepository::detector: model ", i,
                        " has no detector");
    return *models_[i].detector;
  }

  void add(SceneModel model) {
    ANOLE_CHECK_NOTNULL(model.detector,
                        "ModelRepository::add: model has no detector");
    models_.push_back(std::move(model));
  }

  /// |Gamma_i| for every model, in order (input to ASS).
  std::vector<std::size_t> training_set_sizes() const;

 private:
  std::vector<SceneModel> models_;
};

struct RepositoryConfig {
  /// Preset number n of compressed models to train (paper: 19).
  std::size_t target_models = 19;
  /// Validation-F1 acceptance threshold delta of Algorithm 1. Coarse
  /// clusters that mix incompatible scenes validate poorly and are
  /// rejected, pushing the repository toward finer granularities.
  double acceptance_threshold = 0.35;
  /// After the multi-granularity sweep, train one dedicated specialist for
  /// every scene class no accepted model covers (the paper's remedy for
  /// case 3 of the problem formulation: samples outside every Psi_i).
  bool backfill_uncovered_scenes = true;
  /// Clustering granularities run k = 2 .. max_cluster_k (clamped to the
  /// number of semantic scene groups).
  std::size_t max_cluster_k = 16;
  /// Clusters with fewer training/validation frames than this are skipped.
  std::size_t min_training_frames = 40;
  std::size_t min_validation_frames = 10;
  detect::GridDetectorConfig detector_config =
      detect::GridDetectorConfig::compressed();
  detect::DetectorTrainConfig detector_train;
  bool verbose = false;
};

/// Algorithm 1. `train_frames` / `val_frames` are the seen-clip train and
/// validation splits; embeddings come from the (already trained) encoder.
ModelRepository train_model_repository(
    SceneEncoder& encoder, const SemanticSceneIndex& scene_index,
    const std::vector<const world::Frame*>& train_frames,
    const std::vector<const world::Frame*>& val_frames,
    const RepositoryConfig& config, Rng& rng);

}  // namespace anole::core
