#include "core/quantize.hpp"

#include <cmath>
#include <utility>

#include "detect/detector_trainer.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace anole::core {
namespace {

/// Input width of the first Linear layer, or 0 when the network has none
/// (nothing to quantize, nothing to probe).
std::size_t first_linear_width(nn::Sequential& net) {
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (auto* linear = dynamic_cast<nn::Linear*>(&net.at(i))) {
      return linear->in_features();
    }
  }
  return 0;
}

/// Deterministic synthetic probe batch: standard-normal activations are
/// the distribution the guard cares about — symmetric quantization is
/// worst around dense small-magnitude inputs, not outliers.
Tensor probe_inputs(std::size_t count, std::size_t width,
                    std::uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::uninitialized({count, width});
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  return x;
}

double mean_abs_delta(const Tensor& a, const Tensor& b) {
  if (a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return sum / static_cast<double>(a.size());
}

void restore(nn::Sequential& net,
             std::vector<std::pair<std::size_t, nn::ModulePtr>> displaced) {
  for (auto& [index, original] : displaced) {
    net.replace(index, std::move(original));
  }
}

/// Quantizes one network under the probe guard. Returns the measured
/// delta; on failure the network is already restored.
bool quantize_with_probe_guard(nn::Sequential& net,
                               const QuantizeConfig& config,
                               double& delta_out) {
  const std::size_t width = first_linear_width(net);
  delta_out = 0.0;
  if (width == 0) return false;
  const Tensor probes =
      probe_inputs(config.probes, width, config.probe_seed);
  const Tensor fp32_out = net.forward(probes);
  auto displaced = nn::quantize_linear_layers(net);
  if (displaced.empty()) return false;
  const Tensor int8_out = net.forward(probes);
  delta_out = mean_abs_delta(fp32_out, int8_out);
  if (delta_out > config.max_output_delta) {
    restore(net, std::move(displaced));
    return false;
  }
  return true;
}

bool is_damaged(const AnoleSystem& system, std::size_t model_id) {
  for (std::size_t damaged : system.damaged_models) {
    if (damaged == model_id) return true;
  }
  return false;
}

}  // namespace

QuantizeReport quantize_system(AnoleSystem& system,
                               const QuantizeConfig& config) {
  QuantizeReport report;
  report.detector_f1.assign(system.repository.size(), 0.0);
  report.detector_delta.assign(system.repository.size(), 0.0);

  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    if (is_damaged(system, m)) continue;
    SceneModel& model = system.repository.model(m);
    nn::Sequential& net = model.detector->network();
    if (nn::is_quantized(net)) continue;

    if (model.validation_frames.empty()) {
      // Artifact-loaded systems carry no frame pools: probe guard.
      if (quantize_with_probe_guard(net, config,
                                    report.detector_delta[m])) {
        ++report.quantized_detectors;
      } else if (report.detector_delta[m] > 0.0) {
        ++report.rejected_detectors;
      }
      continue;
    }

    // The repository accepted this model under the delta bar; the int8
    // model must clear the same bar — or, when the model was below delta
    // even at fp32 (backfill specialists bypass Algorithm 1's check),
    // must not fall further than max_f1_drop behind its fp32 self.
    const double fp32_f1 =
        detect::evaluate_f1(*model.detector, model.validation_frames);
    auto displaced = nn::quantize_linear_layers(net);
    if (displaced.empty()) continue;
    const double f1 =
        detect::evaluate_f1(*model.detector, model.validation_frames);
    report.detector_f1[m] = f1;
    if (f1 >= config.min_validation_f1 || f1 + config.max_f1_drop >= fp32_f1) {
      ++report.quantized_detectors;
    } else {
      restore(net, std::move(displaced));
      ++report.rejected_detectors;
    }
  }

  if (system.decision) {
    report.decision_quantized = quantize_with_probe_guard(
        system.decision->head(), config, report.decision_delta);
  }
  return report;
}

std::size_t dequantize_system(AnoleSystem& system) {
  std::size_t converted = 0;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    converted = converted + nn::dequantize_linear_layers(
        system.repository.model(m).detector->network());
  }
  if (system.decision) {
    converted += nn::dequantize_linear_layers(system.decision->head());
  }
  return converted;
}

bool system_is_quantized(AnoleSystem& system) {
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    if (nn::is_quantized(system.repository.model(m).detector->network())) {
      return true;
    }
  }
  return system.decision && nn::is_quantized(system.decision->head());
}

}  // namespace anole::core
