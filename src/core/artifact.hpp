// Deployment artifacts: serialize a trained AnoleSystem to a single binary
// blob and load it back.
//
// This is the paper's "download pre-trained {M_1..M_n} and M_decision to
// the device" step: the cloud-side OfflineProfiler produces an
// AnoleSystem, save_system() ships it, and the device reconstructs an
// identical system with load_system() — no training data travels, so the
// loaded repository carries no ASS frame pools (they are cloud-only).
#pragma once

#include <iosfwd>
#include <string>

#include "core/engine.hpp"

namespace anole::core {

/// Writes the full system (scene index, M_scene, every compressed model
/// with its metadata, M_decision head) to `out`.
/// Throws std::runtime_error on I/O failure.
void save_system(AnoleSystem& system, std::ostream& out);

/// Reconstructs a system from a stream written by save_system. The loaded
/// models produce bit-identical inference results; `training_frames` /
/// `validation_frames` pools are empty (deployment artifacts carry no
/// data). Throws std::runtime_error on malformed input.
AnoleSystem load_system(std::istream& in);

/// File-based wrappers.
void save_system_to_file(AnoleSystem& system, const std::string& path);
AnoleSystem load_system_from_file(const std::string& path);

/// Total artifact size in bytes (what the device must download).
std::uint64_t system_artifact_bytes(AnoleSystem& system);

}  // namespace anole::core
