// Deployment artifacts: serialize a trained AnoleSystem to a single binary
// blob and load it back.
//
// This is the paper's "download pre-trained {M_1..M_n} and M_decision to
// the device" step: the cloud-side OfflineProfiler produces an
// AnoleSystem, save_system() ships it, and the device reconstructs an
// identical system with load_system() — no training data travels, so the
// loaded repository carries no ASS frame pools (they are cloud-only).
//
// Format v2 (self-healing, DESIGN.md §9): the blob is a sequence of
// CRC-32-guarded sections. Vital sections (scene index, encoder, decision
// head) come first; one section per compressed model follows, so tail
// truncation can only damage models. A corrupt or truncated model section
// does not abort the load: the slot gets a placeholder detector, the
// model id is recorded in AnoleSystem::damaged_models, and the engine
// quarantines it permanently. Corruption in a vital section throws.
// Version-1 blobs (unsectioned, no checksums) still load.
//
// Format v3 (quantized sections, DESIGN.md §10) keeps v2's framing —
// identical blob header, section headers, CRC-32 policy, and recovery
// ladder — but stores model and decision sections compactly: narrow
// metadata fields plus the precision-tagged nn::save_network payload, so
// int8-quantized layers ship as int8 weights + fp16 scales (~4x fewer
// bytes on a cache miss). The encoder section stays fp32 (its trunk is
// shared with the decision head and is never quantized). Saving a
// quantized system requires v3; v1/v2 writers reject it rather than
// silently dropping quantized weights. Loads honor ANOLE_QUANT=0 by
// dequantizing every network to fp32 before returning.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.hpp"

namespace anole::core {

/// Latest artifact format version written by save_system.
inline constexpr std::uint32_t kArtifactVersion = 3;

/// Writes the full system (scene index, M_scene, every compressed model
/// with its metadata, M_decision head) to `out`. `version` selects the
/// blob format (1 = legacy unsectioned, 2 = CRC-guarded fp32
/// sections, 3 = CRC-guarded sections with compact quantized payloads).
/// Throws std::runtime_error on I/O failure, and when `version` < 3
/// and the system carries quantized layers (older formats cannot
/// represent them).
void save_system(AnoleSystem& system, std::ostream& out,
                 std::uint32_t version = kArtifactVersion);

/// Reconstructs a system from a stream written by save_system. The loaded
/// models produce bit-identical inference results; `training_frames` /
/// `validation_frames` pools are empty (deployment artifacts carry no
/// data). Models whose v2 sections fail their checksum are replaced by
/// placeholders and listed in AnoleSystem::damaged_models. Throws
/// std::runtime_error on malformed vital input or when every model is
/// damaged. `faults` (optional, site `artifact_section`) deterministically
/// flips one bit per hit section before verification, simulating storage
/// rot; pass nullptr for a faithful load.
AnoleSystem load_system(std::istream& in,
                        fault::FaultInjector* faults = nullptr);

/// File-based wrappers.
void save_system_to_file(AnoleSystem& system, const std::string& path);
AnoleSystem load_system_from_file(const std::string& path);

/// Total artifact size in bytes (what the device must download).
std::uint64_t system_artifact_bytes(AnoleSystem& system);

}  // namespace anole::core
