#include "core/model_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anole::core {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLfu:
      return "LFU";
    case EvictionPolicy::kLru:
      return "LRU";
    case EvictionPolicy::kFifo:
      return "FIFO";
  }
  ANOLE_UNREACHABLE("unknown EvictionPolicy ",
                    static_cast<int>(policy));
}

ModelCache::ModelCache(std::size_t model_count, const CacheConfig& config)
    : config_(config), model_count_(model_count),
      use_counts_(model_count, 0) {
  ANOLE_CHECK_GE(config.capacity, 1u, "ModelCache: capacity must be >= 1");
  ANOLE_CHECK_GE(model_count, 1u, "ModelCache: no models to cache");
}

std::optional<std::size_t> ModelCache::find(std::size_t model) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].model == model) return i;
  }
  return std::nullopt;
}

bool ModelCache::contains(std::size_t model) const {
  return find(model).has_value();
}

std::vector<std::size_t> ModelCache::resident_models() const {
  std::vector<std::size_t> models;
  models.reserve(entries_.size());
  for (const auto& entry : entries_) models.push_back(entry.model);
  return models;
}

double ModelCache::miss_rate() const {
  return lookups_ == 0 ? 0.0
                       : static_cast<double>(misses_) /
                             static_cast<double>(lookups_);
}

std::size_t ModelCache::pick_victim() const {
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& candidate = entries_[i];
    const Entry& current = entries_[victim];
    bool better = false;
    switch (config_.policy) {
      case EvictionPolicy::kLfu:
        better = candidate.frequency < current.frequency ||
                 (candidate.frequency == current.frequency &&
                  candidate.last_used < current.last_used);
        break;
      case EvictionPolicy::kLru:
        better = candidate.last_used < current.last_used;
        break;
      case EvictionPolicy::kFifo:
        better = candidate.loaded_at < current.loaded_at;
        break;
    }
    if (better) victim = i;
  }
  return victim;
}

void ModelCache::load(std::size_t model) {
  if (entries_.size() >= config_.capacity) {
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(pick_victim()));
  }
  Entry entry;
  entry.model = model;
  entry.loaded_at = clock_;
  entry.last_used = clock_;
  entries_.push_back(entry);
}

void ModelCache::touch(std::size_t entry_index) {
  ANOLE_DCHECK_RANGE(entry_index, entries_.size(), "ModelCache::touch");
  entries_[entry_index].frequency += 1;
  entries_[entry_index].last_used = clock_;
}

ModelCache::Admission ModelCache::admit(
    std::span<const std::size_t> ranking) {
  ANOLE_CHECK(!ranking.empty(), "ModelCache::admit: empty ranking");
  // A ranking entry outside the model id space would silently corrupt
  // use_counts_; validate the whole vector up front.
  for (std::size_t model : ranking) {
    ANOLE_CHECK_RANGE(model, model_count_,
                      "ModelCache::admit: unknown model id in ranking");
  }
  ++clock_;
  ++lookups_;
  Admission admission;

  const std::size_t top1 = ranking[0];
  if (auto resident = find(top1)) {
    admission.hit = true;
    admission.served_model = top1;
    touch(*resident);
    use_counts_[top1] += 1;
    return admission;
  }

  ++misses_;
  // Serve with the best-ranked resident model, if any, and credit its use
  // *before* the load so the eviction policy sees it as active.
  std::optional<std::size_t> serving_model;
  for (std::size_t model : ranking) {
    if (contains(model)) {
      serving_model = model;
      break;
    }
  }
  if (serving_model) touch(*find(*serving_model));

  // Load top-1 (evicting per policy) so future frames of this scene hit.
  const auto before = resident_models();
  load(top1);
  admission.loaded = top1;
  for (std::size_t model : before) {
    if (!contains(model)) {
      admission.evicted = model;
      break;
    }
  }

  if (!serving_model) {
    // Cold start: the freshly loaded top-1 serves the frame.
    serving_model = top1;
    touch(*find(top1));
  }
  admission.served_model = *serving_model;
  use_counts_[admission.served_model] += 1;
  return admission;
}

void ModelCache::preload(std::span<const std::size_t> models) {
  for (std::size_t model : models) {
    ANOLE_CHECK_RANGE(model, model_count_,
                      "ModelCache::preload: unknown model id");
    ++clock_;
    if (!contains(model)) load(model);
  }
}

}  // namespace anole::core
