#include "core/model_cache.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anole::core {

const char* to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLfu:
      return "LFU";
    case EvictionPolicy::kLru:
      return "LRU";
    case EvictionPolicy::kFifo:
      return "FIFO";
  }
  ANOLE_UNREACHABLE("unknown EvictionPolicy ",
                    static_cast<int>(policy));
}

ModelCache::ModelCache(std::size_t model_count, const CacheConfig& config)
    : config_(config), model_count_(model_count),
      use_counts_(model_count, 0), health_(model_count) {
  ANOLE_CHECK_GE(config.capacity, 1u, "ModelCache: capacity must be >= 1");
  ANOLE_CHECK_GE(model_count, 1u, "ModelCache: no models to cache");
  ANOLE_CHECK_GE(config.max_load_attempts, 1u,
                 "ModelCache: max_load_attempts must be >= 1");
  ANOLE_CHECK_GE(config.quarantine_after, 1u,
                 "ModelCache: quarantine_after must be >= 1");
  ANOLE_CHECK_GE(config.quarantine_frames, 1u,
                 "ModelCache: quarantine_frames must be >= 1");
}

std::optional<std::size_t> ModelCache::find(std::size_t model) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].model == model) return i;
  }
  return std::nullopt;
}

bool ModelCache::contains(std::size_t model) const {
  return find(model).has_value();
}

std::vector<std::size_t> ModelCache::resident_models() const {
  std::vector<std::size_t> models;
  models.reserve(entries_.size());
  for (const auto& entry : entries_) models.push_back(entry.model);
  return models;
}

double ModelCache::miss_rate() const {
  return lookups_ == 0 ? 0.0
                       : static_cast<double>(misses_) /
                             static_cast<double>(lookups_);
}

void ModelCache::set_pinned_fallback(std::size_t model) {
  ANOLE_CHECK_RANGE(model, model_count_,
                    "ModelCache::set_pinned_fallback: unknown model id");
  ANOLE_CHECK(!health_[model].forever,
              "ModelCache::set_pinned_fallback: model ", model,
              " is permanently quarantined");
  pinned_ = model;
}

bool ModelCache::is_quarantined(std::size_t model) const {
  ANOLE_CHECK_RANGE(model, model_count_,
                    "ModelCache::is_quarantined: unknown model id");
  const Health& health = health_[model];
  return health.forever || clock_ < health.quarantined_until;
}

void ModelCache::quarantine_forever(std::size_t model) {
  ANOLE_CHECK_RANGE(model, model_count_,
                    "ModelCache::quarantine_forever: unknown model id");
  ANOLE_CHECK(!pinned_ || *pinned_ != model,
              "ModelCache::quarantine_forever: model ", model,
              " is the pinned fallback");
  health_[model].forever = true;
  ++quarantine_events_;
  evict_model(model);
}

std::vector<std::size_t> ModelCache::quarantined_models() const {
  std::vector<std::size_t> models;
  for (std::size_t m = 0; m < model_count_; ++m) {
    if (is_quarantined(m)) models.push_back(m);
  }
  return models;
}

std::size_t ModelCache::pick_victim() const {
  std::size_t victim = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& candidate = entries_[i];
    const Entry& current = entries_[victim];
    bool better = false;
    switch (config_.policy) {
      case EvictionPolicy::kLfu:
        better = candidate.frequency < current.frequency ||
                 (candidate.frequency == current.frequency &&
                  candidate.last_used < current.last_used);
        break;
      case EvictionPolicy::kLru:
        better = candidate.last_used < current.last_used;
        break;
      case EvictionPolicy::kFifo:
        better = candidate.loaded_at < current.loaded_at;
        break;
    }
    if (better) victim = i;
  }
  return victim;
}

void ModelCache::load(std::size_t model) {
  if (entries_.size() >= config_.capacity) evict_entry(pick_victim());
  if (budget_active()) {
    // Free bytes-to-fit, not one slot: a large model may displace several
    // small residents. An oversized model (> the whole budget) would
    // drain the cache and still not fit — callers refuse it up front; the
    // pinned fallback is exempt and loads over budget (last line of
    // defence).
    const std::uint64_t need = bytes_of(model);
    const std::uint64_t budget = effective_budget_bytes();
    while (!entries_.empty() && resident_bytes_ + need > budget) {
      evict_entry(pick_victim());
      ++budget_evictions_;
    }
  }
  Entry entry;
  entry.model = model;
  entry.loaded_at = clock_;
  entry.last_used = clock_;
  entries_.push_back(entry);
  resident_bytes_ += bytes_of(model);
}

void ModelCache::touch(std::size_t entry_index) {
  ANOLE_DCHECK_RANGE(entry_index, entries_.size(), "ModelCache::touch");
  entries_[entry_index].frequency += 1;
  entries_[entry_index].last_used = clock_;
}

void ModelCache::evict_model(std::size_t model) {
  if (auto index = find(model)) evict_entry(*index);
}

void ModelCache::evict_entry(std::size_t entry_index) {
  ANOLE_DCHECK_RANGE(entry_index, entries_.size(),
                     "ModelCache::evict_entry");
  resident_bytes_ -= bytes_of(entries_[entry_index].model);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(entry_index));
}

std::uint64_t ModelCache::bytes_of(std::size_t model) const {
  return model_bytes_.empty() ? 0 : model_bytes_[model];
}

bool ModelCache::budget_active() const {
  return config_.memory_budget_bytes > 0 && !model_bytes_.empty();
}

std::uint64_t ModelCache::effective_budget_bytes() const {
  if (config_.memory_budget_bytes == 0) return 0;
  if (clock_ >= pressure_until_) return config_.memory_budget_bytes;
  return static_cast<std::uint64_t>(
      static_cast<double>(config_.memory_budget_bytes) / pressure_divisor_);
}

bool ModelCache::under_pressure() const {
  return config_.memory_budget_bytes > 0 && clock_ < pressure_until_;
}

bool ModelCache::fits_budget(std::size_t model) const {
  if (!budget_active()) return true;
  return bytes_of(model) <= effective_budget_bytes();
}

void ModelCache::enforce_budget() {
  if (!budget_active()) return;
  const std::uint64_t budget = effective_budget_bytes();
  while (!entries_.empty() && resident_bytes_ > budget) {
    evict_entry(pick_victim());
    ++budget_evictions_;
  }
}

void ModelCache::consult_memory_pressure() {
  if (faults_ == nullptr || config_.memory_budget_bytes == 0) return;
  if (!faults_->should_fail(fault::Site::kMemoryPressure, clock_)) return;
  // The OS reclaims memory: the effective budget shrinks by the armed
  // magnitude (a divisor) for the next pressure_window admissions, and
  // residents are evicted down to the shrunk budget immediately.
  pressure_until_ = clock_ + config_.pressure_window;
  pressure_divisor_ =
      std::max(1.0, faults_->magnitude(fault::Site::kMemoryPressure));
  ++pressure_events_;
  enforce_budget();
}

void ModelCache::set_model_bytes(std::span<const std::uint64_t> bytes) {
  ANOLE_CHECK_EQ(bytes.size(), model_count_,
                 "ModelCache::set_model_bytes: need one size per model");
  model_bytes_.assign(bytes.begin(), bytes.end());
  resident_bytes_ = 0;
  for (const Entry& entry : entries_) {
    resident_bytes_ += model_bytes_[entry.model];
  }
  enforce_budget();
}

void ModelCache::set_memory_budget_bytes(std::uint64_t budget) {
  config_.memory_budget_bytes = budget;
  enforce_budget();
}

bool ModelCache::try_load(std::size_t model, Admission& admission) {
  Health& health = health_[model];
  for (std::size_t attempt = 1; attempt <= config_.max_load_attempts;
       ++attempt) {
    admission.load_attempts = attempt;
    if (faults_ != nullptr &&
        faults_->should_fail(fault::Site::kModelLoad, model)) {
      ++load_failures_;
      continue;
    }
    load(model);
    health.consecutive_abandoned = 0;
    return true;
  }
  // Every attempt failed: abandon the load and walk the quarantine ladder.
  admission.load_abandoned = true;
  ++abandoned_loads_;
  ++health.consecutive_abandoned;
  if (health.consecutive_abandoned >= config_.quarantine_after) {
    const std::size_t backoff =
        std::min<std::size_t>(health.quarantine_count, 6);
    health.quarantined_until =
        clock_ + (config_.quarantine_frames << backoff);
    ++health.quarantine_count;
    health.consecutive_abandoned = 0;
    ++quarantine_events_;
    admission.quarantined = model;
    evict_model(model);
  }
  return false;
}

void ModelCache::serve_pinned(Admission& admission) {
  // Defined degradation for "nothing admissible": the pinned premodel
  // serves. Its load is fault-free by design (reserved slot).
  const std::size_t pinned = *pinned_;
  if (!contains(pinned)) {
    const auto before = resident_models();
    load(pinned);
    admission.loaded = pinned;
    for (std::size_t model : before) {
      if (!contains(model)) {
        if (!admission.evicted) admission.evicted = model;
        ++admission.evicted_count;
      }
    }
  }
  touch(*find(pinned));
  admission.served_model = pinned;
  admission.served_pinned = true;
  ++degraded_serves_;
  use_counts_[pinned] += 1;
}

ModelCache::Admission ModelCache::admit(
    std::span<const std::size_t> ranking, const AdmitOptions& options) {
  // A ranking entry outside the model id space would silently corrupt
  // use_counts_; validate the whole vector up front.
  for (std::size_t model : ranking) {
    ANOLE_CHECK_RANGE(model, model_count_,
                      "ModelCache::admit: unknown model id in ranking");
  }
  ANOLE_CHECK(!ranking.empty() || pinned_.has_value(),
              "ModelCache::admit: empty ranking and no pinned fallback "
              "(set_pinned_fallback defines the degraded serve)");
  ++clock_;
  ++lookups_;
  consult_memory_pressure();
  Admission admission;

  // Effective top-1: the best-ranked model that is not quarantined.
  std::optional<std::size_t> top;
  for (std::size_t model : ranking) {
    if (!is_quarantined(model)) {
      top = model;
      break;
    }
  }
  if (!top) {
    // Empty or fully quarantined ranking: the pinned premodel serves.
    ++misses_;
    serve_pinned(admission);
    return admission;
  }

  if (auto resident = find(*top)) {
    admission.hit = true;
    admission.served_model = *top;
    touch(*resident);
    use_counts_[*top] += 1;
    return admission;
  }

  ++misses_;
  // Serve with the best-ranked admissible resident model, if any, and
  // credit its use *before* the load so the eviction policy sees it as
  // active.
  std::optional<std::size_t> serving_model;
  for (std::size_t model : ranking) {
    if (!is_quarantined(model) && contains(model)) {
      serving_model = model;
      break;
    }
  }
  if (serving_model) touch(*find(*serving_model));

  if (!options.allow_load && serving_model) {
    // Governor-throttled: skip the load, serve the best resident model.
    // A cold miss (nothing ranked resident) still falls through to the
    // load below — suppression must never leave a frame unserved.
    admission.swap_suppressed = true;
    admission.served_model = *serving_model;
    use_counts_[admission.served_model] += 1;
    return admission;
  }

  if (!fits_budget(*top)) {
    // Larger than the whole (possibly pressure-shrunk) budget: loading it
    // would drain the cache and still overflow. Refuse — no retry, no
    // quarantine (the model is healthy, the budget is not) — and degrade
    // to the best resident model below.
    admission.load_refused_oversized = true;
    ++oversized_rejections_;
  } else {
    // Load top-1 (evicting to fit) so future frames of this scene hit.
    const auto before = resident_models();
    if (try_load(*top, admission)) {
      admission.loaded = *top;
      for (std::size_t model : before) {
        if (!contains(model)) {
          if (!admission.evicted) admission.evicted = model;
          ++admission.evicted_count;
        }
      }
    }
  }

  if (!serving_model) {
    if (contains(*top)) {
      // Cold start: the freshly loaded top-1 serves the frame.
      serving_model = *top;
      touch(*find(*top));
    } else if (pinned_) {
      // Cold start whose load was abandoned: degrade to the premodel.
      serve_pinned(admission);
      return admission;
    } else {
      // No resident model, no pinned fallback: a misconfigured caller
      // (faults armed on a bare cache). Surface it as a contract error.
      ANOLE_CHECK(false,
                  "ModelCache::admit: load of model ", *top,
                  " abandoned or refused with an empty cache and no "
                  "pinned fallback");
    }
  }
  admission.served_model = *serving_model;
  use_counts_[admission.served_model] += 1;
  return admission;
}

void ModelCache::preload(std::span<const std::size_t> models) {
  for (std::size_t model : models) {
    ANOLE_CHECK_RANGE(model, model_count_,
                      "ModelCache::preload: unknown model id");
    ++clock_;
    if (!contains(model) && !is_quarantined(model) && fits_budget(model)) {
      load(model);
    }
  }
}

}  // namespace anole::core
