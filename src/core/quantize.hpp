// Post-training int8 quantization of a trained AnoleSystem (the
// deployment-side compression step on top of the paper's already
// compressed models: per-channel symmetric int8 for every Linear layer
// of the detectors and the M_decision head; the shared encoder trunk
// stays fp32 because its embeddings feed both the scene index and the
// decision head).
//
// Every conversion is guarded: a model that loses too much accuracy in
// int8 is restored to fp32 on the spot, so quantize_system() can never
// make a system worse than the repository's own acceptance bar.
//  - Detectors with validation pools re-run detect::evaluate_f1: the
//    int8 model must still clear the same delta threshold Algorithm 1
//    used to accept the model (RepositoryConfig::acceptance_threshold) —
//    or, for models below delta at fp32 (backfill specialists bypass the
//    bar), lose at most `max_f1_drop` relative to their fp32 F1.
//  - Detectors without pools (systems loaded from a deployment artifact
//    carry no frames) and the decision head use a probe guard instead:
//    deterministic synthetic inputs through the fp32 and int8 networks,
//    mean absolute output delta bounded by `max_output_delta`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/engine.hpp"

namespace anole::core {

struct QuantizeConfig {
  /// Minimum int8 validation F1 for a detector to stay quantized; the
  /// default is the repository's Algorithm-1 acceptance threshold delta.
  double min_validation_f1 = RepositoryConfig{}.acceptance_threshold;
  /// Fallback bound: a detector below `min_validation_f1` stays quantized
  /// as long as its F1 dropped by at most this much from fp32.
  double max_f1_drop = 0.02;
  /// Probe guard bound: mean |fp32 - int8| over probe outputs for
  /// networks with no validation pool (decision head, artifact loads).
  double max_output_delta = 0.02;
  /// Probe batch size for the probe guard.
  std::size_t probes = 128;
  /// Seed for the synthetic probe inputs (fixed: the guard itself must be
  /// deterministic).
  std::uint64_t probe_seed = 0x51AB17;
};

/// What quantize_system did, for logging and benches.
struct QuantizeReport {
  /// Detectors now serving int8.
  std::size_t quantized_detectors = 0;
  /// Detectors that failed their guard and were restored to fp32.
  std::size_t rejected_detectors = 0;
  /// True when the M_decision head is now int8.
  bool decision_quantized = false;
  /// Int8 validation F1 per guarded detector (index-aligned with the
  /// repository; NaN-free: models without pools record their probe delta
  /// in `detector_delta` instead and keep 0 here).
  std::vector<double> detector_f1;
  /// Probe-guard mean output delta per detector (0 when the F1 guard ran).
  std::vector<double> detector_delta;
  /// Probe-guard mean output delta of the decision head.
  double decision_delta = 0.0;
};

/// Quantizes every Linear layer of the repository's detectors and the
/// decision head in place, subject to the per-model guards above.
/// Damaged (placeholder) models are skipped. Idempotent: already
/// quantized networks are left alone.
QuantizeReport quantize_system(AnoleSystem& system,
                               const QuantizeConfig& config = {});

/// Restores every quantized layer in the system to fp32 (the weights are
/// the dequantized ones — quantization is lossy, so this recovers the
/// served precision, not the original training result). Returns the
/// number of layers converted back.
std::size_t dequantize_system(AnoleSystem& system);

/// True when any network in the system carries a quantized layer.
bool system_is_quantized(AnoleSystem& system);

}  // namespace anole::core
