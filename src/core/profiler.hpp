// Offline Scene Profiling (OSP, paper section IV): the end-to-end cloud
// pipeline that trains M_scene, the compressed-model repository
// (Algorithm 1), the ASS dataset, and M_decision, producing the artifact
// set a device downloads.
#pragma once

#include "core/engine.hpp"
#include "world/world.hpp"

namespace anole::core {

struct ProfilerConfig {
  SceneEncoderConfig encoder;
  RepositoryConfig repository;
  DecisionSamplingConfig sampling;
  DecisionModelConfig decision;
  bool verbose = false;
};

/// A small report of what the pipeline produced (used by tests/benches).
struct ProfilerReport {
  double encoder_train_accuracy = 0.0;
  std::size_t models_trained = 0;
  std::size_t decision_samples = 0;
  double decision_train_accuracy = 0.0;
};

class OfflineProfiler {
 public:
  explicit OfflineProfiler(ProfilerConfig config = {})
      : config_(std::move(config)) {}

  /// Runs the full OSP pipeline on the seen portion of `world`.
  AnoleSystem run(const world::World& world, Rng& rng,
                  ProfilerReport* report = nullptr) const;

  const ProfilerConfig& config() const { return config_; }

 private:
  ProfilerConfig config_;
};

}  // namespace anole::core
