// M_scene: the scene representation model (paper section IV-A2).
//
// Trained as a classifier over semantic-scene labels; its last hidden layer
// is the scene embedding used for (a) multi-granularity clustering into
// model-friendly scenes and (b) as the frozen backbone of M_decision.
// The paper uses a ResNet18 on pixels; here the trunk is an MLP over the
// FrameFeaturizer descriptor.
#pragma once

#include <memory>

#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "world/featurizer.hpp"

namespace anole::core {

struct SceneEncoderConfig {
  std::size_t hidden_width = 64;
  std::size_t embedding_dim = 48;
  nn::TrainConfig train;

  SceneEncoderConfig() {
    train.epochs = 30;
    train.batch_size = 64;
    train.learning_rate = 2e-3;
  }
};

class SceneEncoder : public nn::Module {
 public:
  /// `class_count` = number of semantic scenes (the classifier head size).
  SceneEncoder(std::size_t class_count, const SceneEncoderConfig& config,
               Rng& rng);

  /// Full classifier forward (trunk + head); used during training.
  Tensor forward(const Tensor& input) override;
  Tensor infer(const Tensor& input) const override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<nn::Parameter*> parameters() override;
  void set_training(bool training) override;
  std::string name() const override { return "M_scene"; }
  std::uint64_t flops_per_sample() const override;

  /// Trains on frame descriptors + dense scene labels.
  nn::TrainResult train(const Tensor& descriptors,
                        std::span<const std::size_t> labels, Rng& rng,
                        const Tensor& val_descriptors = Tensor(),
                        std::span<const std::size_t> val_labels = {});

  /// Scene embeddings (trunk activations) for a batch of descriptors.
  Tensor embed(const Tensor& descriptors);

  /// Classifier logits over semantic scene classes.
  Tensor classify(const Tensor& descriptors);

  std::size_t embedding_dim() const { return config_.embedding_dim; }
  std::size_t class_count() const { return class_count_; }
  const SceneEncoderConfig& config() const { return config_; }

  /// Cost of the trunk alone (what M_decision inference pays).
  std::uint64_t trunk_flops_per_sample() const;
  nn::Sequential& trunk() { return *trunk_; }

 private:
  std::size_t class_count_;
  SceneEncoderConfig config_;
  std::unique_ptr<nn::Sequential> trunk_;
  std::unique_ptr<nn::Sequential> head_;
};

}  // namespace anole::core
