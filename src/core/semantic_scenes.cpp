#include "core/semantic_scenes.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace anole::core {

SemanticSceneIndex SemanticSceneIndex::build(
    const std::vector<const world::Frame*>& frames) {
  SemanticSceneIndex index;
  for (const world::Frame* frame : frames) {
    index.semantic_ids_.push_back(frame->semantic_scene_id());
  }
  std::sort(index.semantic_ids_.begin(), index.semantic_ids_.end());
  index.semantic_ids_.erase(
      std::unique(index.semantic_ids_.begin(), index.semantic_ids_.end()),
      index.semantic_ids_.end());
  return index;
}

SemanticSceneIndex SemanticSceneIndex::from_semantic_ids(
    std::vector<std::size_t> ids) {
  SemanticSceneIndex index;
  index.semantic_ids_ = std::move(ids);
  std::sort(index.semantic_ids_.begin(), index.semantic_ids_.end());
  index.semantic_ids_.erase(
      std::unique(index.semantic_ids_.begin(), index.semantic_ids_.end()),
      index.semantic_ids_.end());
  return index;
}

std::optional<std::size_t> SemanticSceneIndex::class_of(
    std::size_t semantic_id) const {
  const auto it = std::lower_bound(semantic_ids_.begin(), semantic_ids_.end(),
                                   semantic_id);
  if (it == semantic_ids_.end() || *it != semantic_id) return std::nullopt;
  return static_cast<std::size_t>(it - semantic_ids_.begin());
}

std::optional<std::size_t> SemanticSceneIndex::class_of(
    const world::Frame& frame) const {
  return class_of(frame.semantic_scene_id());
}

std::size_t SemanticSceneIndex::semantic_of(std::size_t class_id) const {
  ANOLE_CHECK_RANGE(class_id, semantic_ids_.size(),
                    "SemanticSceneIndex::semantic_of");
  return semantic_ids_[class_id];
}

world::SceneAttributes SemanticSceneIndex::attributes_of(
    std::size_t class_id) const {
  return world::SceneAttributes::from_semantic_index(semantic_of(class_id));
}

std::vector<std::size_t> SemanticSceneIndex::labels_of(
    const std::vector<const world::Frame*>& frames) const {
  std::vector<std::size_t> labels;
  labels.reserve(frames.size());
  for (const world::Frame* frame : frames) {
    const auto label = class_of(*frame);
    ANOLE_CHECK(label.has_value(),
                "SemanticSceneIndex::labels_of: frame from unindexed "
                "semantic scene ", frame->semantic_scene_id());
    labels.push_back(*label);
  }
  return labels;
}

}  // namespace anole::core
