#include "core/repository.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"

namespace anole::core {

std::vector<std::size_t> ModelRepository::training_set_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(models_.size());
  for (const auto& model : models_) {
    sizes.push_back(model.training_frames.size());
  }
  return sizes;
}

namespace {

/// Frames grouped by dense scene class.
std::vector<std::vector<const world::Frame*>> group_by_class(
    const SemanticSceneIndex& index,
    const std::vector<const world::Frame*>& frames) {
  std::vector<std::vector<const world::Frame*>> groups(index.class_count());
  for (const world::Frame* frame : frames) {
    const auto cls = index.class_of(*frame);
    if (cls) groups[*cls].push_back(frame);
  }
  return groups;
}

/// Mean embedding per scene class; classes with no frames get zero rows
/// and are excluded from clustering via the `present` mask.
Tensor class_mean_embeddings(SceneEncoder& encoder,
                             const SemanticSceneIndex& index,
                             const std::vector<std::vector<const world::Frame*>>&
                                 class_frames,
                             std::vector<bool>& present) {
  const world::FrameFeaturizer featurizer;
  Tensor means = Tensor::matrix(index.class_count(), encoder.embedding_dim());
  present.assign(index.class_count(), false);
  for (std::size_t c = 0; c < class_frames.size(); ++c) {
    if (class_frames[c].empty()) continue;
    present[c] = true;
    Tensor embeddings =
        encoder.embed(featurizer.featurize_batch(class_frames[c]));
    auto mean_row = means.row(c);
    for (std::size_t i = 0; i < embeddings.rows(); ++i) {
      auto row = embeddings.row(i);
      for (std::size_t j = 0; j < row.size(); ++j) mean_row[j] += row[j];
    }
    for (auto& v : mean_row) v /= static_cast<float>(embeddings.rows());
  }
  return means;
}

}  // namespace

ModelRepository train_model_repository(
    SceneEncoder& encoder, const SemanticSceneIndex& scene_index,
    const std::vector<const world::Frame*>& train_frames,
    const std::vector<const world::Frame*>& val_frames,
    const RepositoryConfig& config, Rng& rng) {
  ANOLE_CHECK_GE(config.target_models, 1u,
                 "train_model_repository: target_models == 0");
  ANOLE_CHECK_GE(config.max_cluster_k, 2u,
                 "train_model_repository: max_cluster_k must be >= 2");
  ANOLE_CHECK(config.acceptance_threshold >= 0.0 &&
                  config.acceptance_threshold <= 1.0,
              "train_model_repository: acceptance_threshold must be in "
              "[0, 1], got ", config.acceptance_threshold);
  ModelRepository repository;

  const auto train_by_class = group_by_class(scene_index, train_frames);
  const auto val_by_class = group_by_class(scene_index, val_frames);

  // Scene embedding (Algorithm 1 lines 1-3): mean trunk embedding per
  // semantic scene class.
  std::vector<bool> present;
  const Tensor class_means =
      class_mean_embeddings(encoder, scene_index, train_by_class, present);
  std::vector<std::size_t> active_classes;
  for (std::size_t c = 0; c < present.size(); ++c) {
    if (present[c]) active_classes.push_back(c);
  }
  if (active_classes.empty()) return repository;

  Tensor points =
      Tensor::matrix(active_classes.size(), encoder.embedding_dim());
  for (std::size_t i = 0; i < active_classes.size(); ++i) {
    auto src = class_means.row(active_classes[i]);
    std::copy(src.begin(), src.end(), points.row(i).begin());
  }

  // Small clusters receive a step count comparable to training on the
  // whole corpus (per-scene fine-tuning budget).
  detect::DetectorTrainConfig train_config = config.detector_train;
  if (train_config.reference_frames == 0) {
    train_config.reference_frames = train_frames.size();
  }

  // Model training with multi-level clustering (Algorithm 1 lines 4-13).
  //
  // Parallel structure, scheduled for determinism: every random draw
  // happens on this thread in a fixed order (one pre-split Rng per
  // clustering granularity, one per candidate detector), after which the
  // expensive work — the k-means sweep and the per-candidate detector
  // training — fans out over the pool. Acceptance then walks the
  // candidates of each granularity in cluster order, so the repository's
  // contents are independent of how tasks were scheduled.
  const std::size_t max_k =
      std::min(config.max_cluster_k, active_classes.size());
  std::vector<Rng> kmeans_rngs;
  for (std::size_t k = 2; k <= max_k; ++k) kmeans_rngs.push_back(rng.split());
  std::vector<cluster::KMeansResult> clusterings(kmeans_rngs.size());
  par::parallel_for(0, kmeans_rngs.size(), 1, [&](std::size_t idx) {
    cluster::KMeansConfig kmeans_config;
    kmeans_config.clusters = idx + 2;
    clusterings[idx] = cluster::kmeans(points, kmeans_config,
                                       kmeans_rngs[idx]);
  });

  struct Candidate {
    std::vector<std::size_t> member_classes;
    std::vector<const world::Frame*> train;
    std::vector<const world::Frame*> val;
    detect::GridDetectorConfig detector_config;
    Rng rng{0};
    std::size_t cluster_index = 0;
    std::unique_ptr<detect::GridDetector> detector;
    double f1 = 0.0;
  };

  std::set<std::vector<std::size_t>> trained_scene_sets;
  for (std::size_t k = 2;
       k <= max_k && repository.size() < config.target_models; ++k) {
    const auto& clustering = clusterings[k - 2];

    std::vector<Candidate> candidates;
    for (std::size_t j = 0; j < k; ++j) {
      std::vector<std::size_t> member_classes;
      for (std::size_t i = 0; i < active_classes.size(); ++i) {
        if (clustering.assignments[i] == j) {
          member_classes.push_back(active_classes[i]);
        }
      }
      if (member_classes.empty()) continue;
      // The same scene grouping can re-appear at several granularities;
      // train it once.
      if (!trained_scene_sets.insert(member_classes).second) continue;

      std::vector<const world::Frame*> cluster_train;
      std::vector<const world::Frame*> cluster_val;
      for (std::size_t cls : member_classes) {
        cluster_train.insert(cluster_train.end(), train_by_class[cls].begin(),
                             train_by_class[cls].end());
        cluster_val.insert(cluster_val.end(), val_by_class[cls].begin(),
                           val_by_class[cls].end());
      }
      if (cluster_train.size() < config.min_training_frames ||
          cluster_val.size() < config.min_validation_frames) {
        continue;
      }

      Candidate candidate;
      candidate.detector_config = config.detector_config;
      // Built via append rather than operator+ chains: GCC 12 -O2 emits a
      // spurious -Wrestrict on `"literal" + std::string&&`.
      std::string model_name = "M";
      model_name +=
          std::to_string(repository.size() + candidates.size() + 1);
      model_name += "(k=";
      model_name += std::to_string(k);
      model_name += ",c=";
      model_name += std::to_string(j);
      model_name += ")";
      candidate.detector_config.name = std::move(model_name);
      candidate.member_classes = std::move(member_classes);
      candidate.train = std::move(cluster_train);
      candidate.val = std::move(cluster_val);
      candidate.rng = rng.split();
      candidate.cluster_index = j;
      candidates.push_back(std::move(candidate));
    }

    // Train this granularity's candidates concurrently, each on its own
    // Rng stream. At most the final granularity trains a few models the
    // serial sweep would have skipped once the target count was reached.
    par::parallel_for(0, candidates.size(), 1, [&](std::size_t c) {
      Candidate& candidate = candidates[c];
      candidate.detector = std::make_unique<detect::GridDetector>(
          candidate.detector_config, candidate.rng,
          candidate.train.front()->grid_size);
      detect::train_detector(*candidate.detector, candidate.train,
                             train_config, candidate.rng);
      candidate.f1 = detect::evaluate_f1(*candidate.detector, candidate.val);
    });

    for (Candidate& candidate : candidates) {
      if (repository.size() >= config.target_models) break;
      if (config.verbose) {
        log_info("Algorithm1 k=", k, " cluster=", candidate.cluster_index,
                 " scenes=", candidate.member_classes.size(), " train=",
                 candidate.train.size(), " val_f1=", candidate.f1);
      }
      if (candidate.f1 > config.acceptance_threshold) {
        SceneModel model;
        model.detector = std::move(candidate.detector);
        model.scene_classes = std::move(candidate.member_classes);
        model.training_frames = std::move(candidate.train);
        model.validation_frames = std::move(candidate.val);
        model.validation_f1 = candidate.f1;
        model.cluster_k = k;
        model.name = candidate.detector_config.name;
        repository.add(std::move(model));
      }
    }
  }

  if (config.backfill_uncovered_scenes) {
    std::vector<bool> covered(scene_index.class_count(), false);
    for (std::size_t m = 0; m < repository.size(); ++m) {
      for (std::size_t cls : repository.model(m).scene_classes) {
        covered[cls] = true;
      }
    }
    for (std::size_t cls : active_classes) {
      if (covered[cls] || repository.size() >= config.target_models) continue;
      const auto& cluster_train = train_by_class[cls];
      if (cluster_train.size() < config.min_training_frames / 2) continue;
      detect::GridDetectorConfig detector_config = config.detector_config;
      std::string model_name = "M";
      model_name += std::to_string(repository.size() + 1);
      model_name += "(scene=";
      model_name += std::to_string(cls);
      model_name += ")";
      detector_config.name = std::move(model_name);
      auto detector = std::make_unique<detect::GridDetector>(
          detector_config, rng, cluster_train.front()->grid_size);
      detect::train_detector(*detector, cluster_train, train_config, rng);
      const double f1 = val_by_class[cls].empty()
                            ? 0.0
                            : detect::evaluate_f1(*detector,
                                                  val_by_class[cls]);
      if (config.verbose) {
        log_info("Algorithm1 backfill scene=", cls, " train=",
                 cluster_train.size(), " val_f1=", f1);
      }
      SceneModel model;
      model.detector = std::move(detector);
      model.scene_classes = {cls};
      model.training_frames = cluster_train;
      model.validation_frames = val_by_class[cls];
      model.validation_f1 = f1;
      model.cluster_k = 0;  // marks a backfilled specialist
      model.name = detector_config.name;
      repository.add(std::move(model));
    }
  }
  return repository;
}

}  // namespace anole::core
