// Maps the sparse set of semantic scenes actually present in a corpus to
// dense class labels for training M_scene (the paper's Gamma^sem scenes).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "world/frame.hpp"

namespace anole::core {

class SemanticSceneIndex {
 public:
  SemanticSceneIndex() = default;

  /// Builds the index from the distinct semantic scenes of `frames`.
  static SemanticSceneIndex build(
      const std::vector<const world::Frame*>& frames);

  /// Rebuilds an index from serialized semantic ids (deduplicated and
  /// sorted); used when loading a deployed artifact.
  static SemanticSceneIndex from_semantic_ids(std::vector<std::size_t> ids);

  /// The sorted distinct semantic ids (position = dense class).
  const std::vector<std::size_t>& semantic_ids() const {
    return semantic_ids_;
  }

  /// Number of distinct semantic scenes (the m of Algorithm 1).
  std::size_t class_count() const { return semantic_ids_.size(); }

  /// Dense class of a semantic scene id, if present.
  std::optional<std::size_t> class_of(std::size_t semantic_id) const;

  /// Dense class of a frame's scene; nullopt for scenes unseen in training.
  std::optional<std::size_t> class_of(const world::Frame& frame) const;

  /// Semantic scene id of a dense class.
  std::size_t semantic_of(std::size_t class_id) const;

  /// Attributes of a dense class (for reporting).
  world::SceneAttributes attributes_of(std::size_t class_id) const;

  /// Dense class labels for `frames`; throws std::invalid_argument if any
  /// frame's scene is absent from the index.
  std::vector<std::size_t> labels_of(
      const std::vector<const world::Frame*>& frames) const;

 private:
  /// Sorted distinct semantic ids; position = dense class.
  std::vector<std::size_t> semantic_ids_;
};

}  // namespace anole::core
