#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>

#include "util/check.hpp"

namespace anole::core {

bool drift_enabled_from_env() {
  const char* value = std::getenv("ANOLE_DRIFT");
  return value == nullptr || std::string_view(value) != "0";
}

const char* to_string(DriftEventKind kind) {
  switch (kind) {
    case DriftEventKind::kConfidenceShift:
      return "confidence_shift";
    case DriftEventKind::kLatencyShift:
      return "latency_shift";
  }
  return "unknown";
}

DriftDetector::DriftDetector(DriftConfig config) : config_(config) {
  ANOLE_CHECK_GE(config.window, 2u, "DriftDetector: window must be >= 2");
  ANOLE_CHECK_GE(config.baseline_window, 1u,
                 "DriftDetector: baseline_window must be >= 1");
  ANOLE_CHECK_GT(config.cusum_threshold, 0.0,
                 "DriftDetector: cusum_threshold must be > 0");
  ANOLE_CHECK_GE(config.cusum_slack, 0.0,
                 "DriftDetector: negative cusum_slack");
  ANOLE_CHECK(config.recalibration_quantile >= 0.0 &&
                  config.recalibration_quantile <= 1.0,
              "DriftDetector: recalibration_quantile must be in [0, 1]");
  ANOLE_CHECK(config.smoothing_decay > 0.0 && config.smoothing_decay <= 1.0,
              "DriftDetector: smoothing_decay must be in (0, 1]");
  ANOLE_CHECK_GT(config.latency_threshold_ms, 0.0,
                 "DriftDetector: latency_threshold_ms must be > 0");
  conf_window_.resize(config.window, 0.0);
  served_window_.resize(config.window, 0);
}

void DriftDetector::observe_confidence(double top1_confidence,
                                       bool low_confidence,
                                       std::size_t served_model) {
  // A corrupt (sanitized-negative) confidence is already an anomaly the
  // fault ladder accounts for; clamp so one poisoned frame cannot dump a
  // full threshold of CUSUM mass by itself.
  const double confidence = std::clamp(top1_confidence, 0.0, 1.0);
  (void)low_confidence;

  conf_window_[window_next_] = confidence;
  served_window_[window_next_] = served_model;
  window_next_ = (window_next_ + 1) % conf_window_.size();
  window_filled_ = std::min(window_filled_ + 1, conf_window_.size());
  ++conf_observed_;

  if (!baseline_ready_) {
    baseline_sum_ += confidence;
    if (++baseline_count_ >= config_.baseline_window) {
      baseline_mean_ =
          baseline_sum_ / static_cast<double>(baseline_count_);
      baseline_ready_ = true;
      cusum_ = 0.0;
    }
    return;
  }

  // One-sided CUSUM for a downward confidence shift.
  cusum_ = std::max(
      0.0, cusum_ + (baseline_mean_ - confidence - config_.cusum_slack));
  if (cusum_ >= config_.cusum_threshold &&
      conf_observed_ - last_detection_at_ >= config_.min_separation) {
    detect_confidence_shift();
  }
}

void DriftDetector::detect_confidence_shift() {
  ++detections_;
  last_detection_at_ = conf_observed_;

  const std::size_t n = conf_window_.size();
  const std::size_t start =
      window_filled_ < n ? 0 : window_next_;  // oldest entry

  // Recalibrated floor: a quantile of the *newest quarter* of the window,
  // scaled down. At detection time the ring is still dominated by
  // pre-shift samples; the floor must track the regime the stream just
  // entered, not the one it left.
  const std::size_t recent_count = std::min(
      window_filled_, std::max<std::size_t>(2, window_filled_ / 4));
  std::vector<double> recent;
  recent.reserve(recent_count);
  for (std::size_t i = window_filled_ - recent_count; i < window_filled_;
       ++i) {
    recent.push_back(conf_window_[(start + i) % n]);
  }
  std::sort(recent.begin(), recent.end());
  const auto rank = static_cast<std::size_t>(
      config_.recalibration_quantile *
      static_cast<double>(recent.size() - 1));
  const double floor = recent[rank] * config_.recalibration_scale;

  // Stale-model resampling: served in the older half of the (logical)
  // window, absent from the newer half. Walk the ring in age order.
  std::vector<std::size_t> ordered;
  ordered.reserve(window_filled_);
  for (std::size_t i = 0; i < window_filled_; ++i) {
    ordered.push_back(served_window_[(start + i) % n]);
  }
  const std::size_t half = window_filled_ / 2;
  std::vector<std::size_t> stale;
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t model = ordered[i];
    const bool in_recent =
        std::find(ordered.begin() + half, ordered.end(), model) !=
        ordered.end();
    const bool already =
        std::find(stale.begin(), stale.end(), model) != stale.end();
    if (!in_recent && !already) stale.push_back(model);
  }
  std::sort(stale.begin(), stale.end());

  smoothing_scale_ *= config_.smoothing_decay;
  pending_ = DriftResponse{floor, smoothing_scale_, std::move(stale)};
  response_pending_ = true;

  trace_.push_back(DriftEvent{
      DriftEventKind::kConfidenceShift, conf_observed_,
      static_cast<std::uint64_t>(std::max(0.0, floor) * 1000.0)});

  // Re-baseline on the new regime so a second, later shift is detectable
  // relative to where the stream settled, not the original clean world.
  baseline_sum_ = 0.0;
  baseline_count_ = 0;
  baseline_ready_ = false;
  cusum_ = 0.0;
}

void DriftDetector::observe_latency(double latency_ms,
                                    bool deadline_overrun) {
  (void)deadline_overrun;
  ++lat_observed_;
  if (!lat_baseline_ready_) {
    lat_baseline_sum_ += latency_ms;
    if (++lat_baseline_count_ >= config_.baseline_window) {
      lat_baseline_mean_ =
          lat_baseline_sum_ / static_cast<double>(lat_baseline_count_);
      lat_baseline_ready_ = true;
      lat_cusum_ = 0.0;
    }
    return;
  }
  // One-sided CUSUM for an upward latency shift.
  lat_cusum_ = std::max(
      0.0, lat_cusum_ + (latency_ms - lat_baseline_mean_ -
                         config_.latency_slack_ms));
  if (lat_cusum_ >= config_.latency_threshold_ms) {
    ++latency_detections_;
    trace_.push_back(
        DriftEvent{DriftEventKind::kLatencyShift, lat_observed_,
                   static_cast<std::uint64_t>(lat_cusum_)});
    lat_baseline_sum_ = 0.0;
    lat_baseline_count_ = 0;
    lat_baseline_ready_ = false;
    lat_cusum_ = 0.0;
  }
}

DriftResponse DriftDetector::take_response() {
  ANOLE_CHECK(response_pending_,
              "DriftDetector::take_response: no pending response");
  response_pending_ = false;
  return std::move(pending_);
}

std::uint64_t DriftDetector::trace_hash() const {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFu;
      hash *= 0x100000001B3ULL;
    }
  };
  for (const DriftEvent& event : trace_) {
    mix(static_cast<std::uint64_t>(event.kind));
    mix(event.observation);
    mix(event.detail);
  }
  return hash;
}

void DriftDetector::reset() {
  std::fill(conf_window_.begin(), conf_window_.end(), 0.0);
  std::fill(served_window_.begin(), served_window_.end(), 0);
  window_next_ = 0;
  window_filled_ = 0;
  baseline_sum_ = 0.0;
  baseline_count_ = 0;
  baseline_mean_ = 0.0;
  baseline_ready_ = false;
  cusum_ = 0.0;
  conf_observed_ = 0;
  last_detection_at_ = 0;
  lat_baseline_sum_ = 0.0;
  lat_baseline_count_ = 0;
  lat_baseline_mean_ = 0.0;
  lat_baseline_ready_ = false;
  lat_cusum_ = 0.0;
  lat_observed_ = 0;
  detections_ = 0;
  latency_detections_ = 0;
  response_pending_ = false;
  pending_ = DriftResponse{};
  smoothing_scale_ = 1.0;
  trace_.clear();
}

}  // namespace anole::core
