// Online Model Inference (OMI, paper section V): per-frame model selection
// (MSS), cache-based deployment (CMD), and model inference (MI), plus two
// optional extensions the paper motivates: a decision-confidence fallback
// for samples outside every model's distribution (problem-formulation
// case 3) and temporal smoothing of the suitability vector.
//
// The online path is fault-tolerant (DESIGN.md §9): model loads can fail
// (bounded retry + quarantine in the cache), suitability vectors are
// guarded against non-finite entries, corrupt frame payloads degrade to
// empty detections, and a pinned fallback model serves whenever nothing
// else is admissible. Faults are injected deterministically through
// util/fault.hpp — per AnoleEngine, from EngineConfig::faults or the
// ANOLE_FAULTS environment variable — and every frame carries a health
// record of what degraded.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/decision_model.hpp"
#include "core/drift.hpp"
#include "core/governor.hpp"
#include "core/model_cache.hpp"
#include "core/repository.hpp"
#include "util/fault.hpp"

namespace anole::core {

/// The downloadable artifact set produced by offline scene profiling:
/// scene encoder, compressed-model repository, and decision model.
struct AnoleSystem {
  std::unique_ptr<SceneEncoder> encoder;
  SemanticSceneIndex scene_index;
  ModelRepository repository;
  std::unique_ptr<DecisionModel> decision;
  /// Models whose artifact sections were corrupt at load time; their
  /// repository slots hold placeholders and the engine quarantines them
  /// permanently (core/artifact partial-load recovery).
  std::vector<std::size_t> damaged_models;

  std::size_t model_count() const { return repository.size(); }
};

struct EngineConfig {
  CacheConfig cache;
  /// Exponential smoothing factor applied to the suitability vector across
  /// consecutive frames: s_t = alpha * s_{t-1} + (1-alpha) * p_t.
  /// 0 reproduces the paper's pure per-frame selection; ~0.5 damps model
  /// thrashing on noisy streams at the cost of slower scene switches.
  double suitability_smoothing = 0.0;
  /// When the (smoothed) top-1 suitability probability falls below this
  /// floor, the frame is treated as outside every Psi_i and served by the
  /// broadest model in the repository (the paper's case-3 best effort).
  /// 0 disables the fallback.
  double confidence_floor = 0.0;
  /// Fault injector driving this engine's failure schedule. When null,
  /// the engine builds one from the ANOLE_FAULTS environment variable
  /// (and runs fault-free when that is unset).
  std::shared_ptr<fault::FaultInjector> faults;
  /// Overload governor consulted once per frame (DESIGN.md §11). Null
  /// (the default) means ungoverned; the pointer is also ignored when
  /// ANOLE_GOVERNOR=0, reproducing ungoverned behavior exactly. Not
  /// owned; must outlive the engine.
  core::RuntimeGovernor* governor = nullptr;
  /// Drift detector fed one confidence observation per decision-model run
  /// (DESIGN.md §14); its responses recalibrate the confidence floor,
  /// decay the smoothing alpha, and force a re-rank. Null (the default)
  /// means no drift response; the pointer is also ignored when
  /// ANOLE_DRIFT=0, reproducing the unadapted timeline exactly. Not
  /// owned; must outlive the engine.
  core::DriftDetector* drift = nullptr;
};

/// Everything that happened while processing one frame.
struct EngineResult {
  /// Per-frame degradation record (all false/empty on a healthy frame).
  struct Health {
    /// Load attempts made by the cache (0 = no load needed).
    std::size_t load_attempts = 0;
    /// True when every load attempt failed and the load was abandoned.
    bool load_abandoned = false;
    /// True when the suitability vector contained non-finite entries
    /// (sanitized to "unsuitable" before ranking).
    bool nonfinite_suitability = false;
    /// True when the frame payload was corrupt; detections are empty.
    bool payload_corrupt = false;
    /// True when the pinned fallback served because no ranked model was
    /// admissible.
    bool served_degraded = false;
    /// Model newly quarantined while processing this frame, if any.
    std::optional<std::size_t> quarantined;
    /// True when the serving detector ran int8-quantized layers (the
    /// artifact v3 fast path); false for fp32 or payload-corrupt frames.
    bool served_quantized = false;
    /// True when the governor shed this frame: no detector ran,
    /// detections are empty, served_model repeats the previous frame.
    bool frame_dropped = false;
    /// True when a top-1 miss did not stream its model — the governor
    /// suppressed the swap (or the byte budget refused an oversized
    /// load) and the best resident model served instead.
    bool swap_suppressed = false;
    /// True when a pending drift response was applied while planning this
    /// frame (smoothed state reset, ranking refresh forced).
    bool drift_detected = false;
    /// True when that response also recalibrated the confidence floor.
    bool drift_recalibrated = false;
  };

  std::vector<detect::Detection> detections;
  /// Model that actually served the frame.
  std::size_t served_model = 0;
  /// Top-1 model per the decision ranking.
  std::size_t top1_model = 0;
  /// Suitability probability of the top-1 model.
  double top1_confidence = 0.0;
  bool cache_hit = false;
  /// True when a model load was triggered this frame.
  bool model_loaded = false;
  /// True when the served model differs from the previous frame's.
  bool model_switched = false;
  /// True when the confidence fallback replaced the decision's choice.
  bool low_confidence = false;
  /// True when the governor reused the previous frame's decision ranking
  /// instead of running the MSS tail (throttled ranking refresh).
  bool ranking_reused = false;
  /// Governor state this frame was planned under (kNormal when
  /// ungoverned).
  core::GovernorState governor_state = core::GovernorState::kNormal;
  Health health;
};

class AnoleEngine {
 public:
  /// `system` must outlive the engine.
  AnoleEngine(AnoleSystem& system, const EngineConfig& config);
  AnoleEngine(AnoleSystem& system, const CacheConfig& cache_config);

  EngineResult process(const world::Frame& frame);

  /// Processes `frames` in stream order in three stages. Featurization
  /// and the decision model's embedding run once over the whole batch
  /// (batched matmuls). The stateful plan stage (temporal smoothing,
  /// governor directives, cache admission, every fault draw and counter)
  /// then runs sequentially in frame order. Finally the detect stage fans
  /// out across frames through the const Detector::infer path — per-frame
  /// detections depend only on that frame's planned model, and nested
  /// tensor kernels use thread-count-invariant chunking — so the results,
  /// and any injected fault schedule, are bitwise identical to calling
  /// process() frame by frame at any thread count.
  std::vector<EngineResult> process_batch(
      const std::vector<const world::Frame*>& frames);

  const ModelCache& cache() const { return cache_; }
  std::size_t model_switches() const { return switches_; }
  std::size_t frames_processed() const { return frames_; }
  std::size_t low_confidence_frames() const { return low_confidence_; }

  /// The model served when confidence falls below the floor: the broadest
  /// accepted model (most scene classes, ties by validation F1) that is
  /// not damaged. Also the cache's pinned fallback.
  std::size_t fallback_model() const { return fallback_model_; }

  /// Per-model counts of being ranked top-1 (the utility of Fig. 4b).
  const std::vector<std::size_t>& top1_counts() const { return top1_counts_; }

  /// --- degradation ladder counters ---

  /// Frames whose suitability vector carried non-finite entries.
  std::size_t nonfinite_frames() const { return nonfinite_frames_; }
  /// Frames whose payload was corrupt (served with empty detections).
  std::size_t payload_corrupt_frames() const {
    return payload_corrupt_frames_;
  }
  /// Frames served by the pinned fallback because nothing ranked was
  /// admissible.
  std::size_t degraded_frames() const { return degraded_frames_; }

  /// --- active-precision introspection (artifact v3 / ANOLE_QUANT) ---

  /// Frames whose serving detector ran int8.
  std::size_t quantized_frames() const { return quantized_frames_; }

  /// --- governor introspection (DESIGN.md §11) ---

  /// Frames shed by the governor (no detector ran).
  std::size_t dropped_frames() const { return dropped_frames_; }
  /// Top-1 misses whose model swap was suppressed (throttle or budget).
  std::size_t swap_suppressed_frames() const {
    return swap_suppressed_frames_;
  }
  /// Frames that reused the previous decision ranking.
  std::size_t reused_ranking_frames() const {
    return reused_ranking_frames_;
  }
  /// The governor in effect; null when ungoverned (none configured or
  /// ANOLE_GOVERNOR=0).
  core::RuntimeGovernor* governor() const { return governor_; }

  /// --- drift introspection (DESIGN.md §14) ---

  /// Frames whose planning applied a drift response.
  std::size_t drift_responses() const { return drift_responses_; }
  /// Drift responses that recalibrated the confidence floor.
  std::size_t drift_recalibrations() const { return drift_recalibrations_; }
  /// The confidence floor currently in effect (config value until a drift
  /// response recalibrates it).
  double effective_confidence_floor() const { return effective_floor_; }
  /// The smoothing alpha currently in effect (config value scaled down by
  /// drift responses).
  double effective_smoothing() const { return effective_smoothing_; }
  /// The drift detector in effect; null when detached (none configured or
  /// ANOLE_DRIFT=0).
  core::DriftDetector* drift() const { return drift_; }
  /// True when the M_decision head currently carries int8 layers.
  bool decision_quantized() const;
  /// True when detector `model` currently carries int8 layers.
  bool model_quantized(std::size_t model) const;

  /// This engine's injector; null when running fault-free.
  const fault::FaultInjector* faults() const { return faults_.get(); }
  fault::FaultInjector* faults() { return faults_.get(); }

 private:
  /// Shared tail of process()/process_batch(): everything after the
  /// suitability probabilities for one frame are known.
  EngineResult process_with_suitability(const world::Frame& frame,
                                        std::span<const float> probs);

  /// Stateful plan stage for one frame: governor directive, MSS ranking
  /// (or throttled reuse), cache admission, every fault draw and counter
  /// update — everything except running the detector. Must be called in
  /// frame order. Returns the model to run detection with, or nullopt
  /// when no detector runs (shed frame or corrupt payload); the detect
  /// stage itself is const (Detector::infer) and may fan out.
  std::optional<std::size_t> plan_with_suitability(
      EngineResult& result, std::span<const float> probs);

  /// MSS tail: smoothing, NaN guard, ranking sort, confidence fallback.
  /// Fills the top-1 fields of `result` and stores the ranking for
  /// throttled reuse.
  std::vector<std::size_t> rank_suitability(EngineResult& result,
                                            std::span<const float> probs);

  AnoleSystem* system_;
  EngineConfig config_;
  std::shared_ptr<fault::FaultInjector> faults_;
  ModelCache cache_;
  world::FrameFeaturizer featurizer_;
  std::vector<std::size_t> top1_counts_;
  std::vector<double> smoothed_suitability_;
  std::size_t fallback_model_ = 0;
  std::size_t switches_ = 0;
  std::size_t frames_ = 0;
  std::size_t low_confidence_ = 0;
  std::size_t nonfinite_frames_ = 0;
  std::size_t payload_corrupt_frames_ = 0;
  std::size_t degraded_frames_ = 0;
  std::size_t quantized_frames_ = 0;
  std::optional<std::size_t> last_served_;
  /// --- governor state ---
  core::RuntimeGovernor* governor_ = nullptr;
  std::size_t dropped_frames_ = 0;
  std::size_t swap_suppressed_frames_ = 0;
  std::size_t reused_ranking_frames_ = 0;
  /// --- drift-response state (DESIGN.md §14) ---
  core::DriftDetector* drift_ = nullptr;
  std::size_t drift_responses_ = 0;
  std::size_t drift_recalibrations_ = 0;
  /// Floor/alpha currently in effect; start at the config values and move
  /// only when a drift response lands.
  double effective_floor_ = 0.0;
  double effective_smoothing_ = 0.0;
  /// Previous frame's ranking (post confidence-fallback rotation) and
  /// top-1 fields, replayed on throttled ranking reuse.
  std::vector<std::size_t> last_ranking_;
  std::size_t last_top1_model_ = 0;
  double last_top1_confidence_ = 0.0;
  bool last_low_confidence_ = false;
};

}  // namespace anole::core
