#include "core/profiler.hpp"

#include "util/check.hpp"
#include "util/log.hpp"
#include "world/featurizer.hpp"

namespace anole::core {

AnoleSystem OfflineProfiler::run(const world::World& world, Rng& rng,
                                 ProfilerReport* report) const {
  AnoleSystem system;
  const auto train_frames = world.frames_with_role(world::SplitRole::kTrain);
  const auto val_frames =
      world.frames_with_role(world::SplitRole::kValidation);
  ANOLE_CHECK(!train_frames.empty(),
              "OfflineProfiler: world has no train frames");

  // --- Training dataset segmentation: semantic scenes (IV-A1) ---
  system.scene_index = SemanticSceneIndex::build(train_frames);

  // --- Scene embedding: train M_scene on semantic labels (IV-A2) ---
  const world::FrameFeaturizer featurizer;
  const Tensor train_descriptors = featurizer.featurize_batch(train_frames);
  const auto train_labels = system.scene_index.labels_of(train_frames);
  system.encoder = std::make_unique<SceneEncoder>(
      system.scene_index.class_count(), config_.encoder, rng);
  // Validation frames may include scenes absent from training; filter.
  std::vector<const world::Frame*> usable_val;
  for (const world::Frame* frame : val_frames) {
    if (system.scene_index.class_of(*frame)) usable_val.push_back(frame);
  }
  const Tensor val_descriptors = featurizer.featurize_batch(usable_val);
  const auto val_labels = system.scene_index.labels_of(usable_val);
  const auto encoder_result = system.encoder->train(
      train_descriptors, train_labels, rng, val_descriptors, val_labels);
  if (config_.verbose) {
    log_info("M_scene trained: acc=", encoder_result.final_train_accuracy,
             " over ", system.scene_index.class_count(), " semantic scenes");
  }

  // --- Algorithm 1: compressed model repository ---
  system.repository =
      train_model_repository(*system.encoder, system.scene_index,
                             train_frames, val_frames, config_.repository,
                             rng);
  if (config_.verbose) {
    log_info("repository: ", system.repository.size(), " compressed models");
  }

  // --- ASS + decision model (IV-B, IV-C) ---
  const DecisionDataset dataset =
      build_decision_dataset(system.repository, config_.sampling, rng);
  system.decision = std::make_unique<DecisionModel>(
      *system.encoder, system.repository.size(), config_.decision, rng);
  const auto decision_result = system.decision->train(dataset, rng);
  if (config_.verbose) {
    log_info("M_decision trained on ", dataset.features.rows(),
             " ASS samples: acc=", decision_result.final_train_accuracy);
  }

  if (report != nullptr) {
    report->encoder_train_accuracy = encoder_result.final_train_accuracy;
    report->models_trained = system.repository.size();
    report->decision_samples = dataset.features.rows();
    report->decision_train_accuracy = decision_result.final_train_accuracy;
  }
  return system;
}

}  // namespace anole::core
