// Cache-based Model Deployment (CMD, paper section V-B).
//
// A device can keep only `capacity` compressed models resident. Each frame
// the decision model produces a ranking; the frame is served by the
// best-ranked *resident* model, and on a top-1 miss the top-1 model is
// loaded, evicting a victim chosen by the configured policy (the paper
// motivates LFU from the power-law model-utility distribution; LRU and
// FIFO are kept for the ablation bench).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace anole::core {

enum class EvictionPolicy { kLfu, kLru, kFifo };

const char* to_string(EvictionPolicy policy);

struct CacheConfig {
  std::size_t capacity = 5;
  EvictionPolicy policy = EvictionPolicy::kLfu;
};

class ModelCache {
 public:
  /// What happened for one frame's ranking.
  struct Admission {
    /// Model used to serve this frame (best-ranked resident model).
    std::size_t served_model = 0;
    /// True when the top-1 model was already resident.
    bool hit = false;
    /// Model loaded this step (top-1 on a miss), if any.
    std::optional<std::size_t> loaded;
    /// Model evicted to make room, if any.
    std::optional<std::size_t> evicted;
  };

  ModelCache(std::size_t model_count, const CacheConfig& config);

  /// Serves a frame given the decision ranking (ranking[0] = top-1).
  /// On a cold start (empty cache) the top-1 model is loaded synchronously
  /// and counted as a miss.
  Admission admit(std::span<const std::size_t> ranking);

  /// Convenience overload for literal rankings.
  Admission admit(std::initializer_list<std::size_t> ranking) {
    return admit(std::span<const std::size_t>(ranking.begin(),
                                              ranking.size()));
  }

  bool contains(std::size_t model) const;
  std::vector<std::size_t> resident_models() const;
  std::size_t capacity() const { return config_.capacity; }

  std::size_t lookups() const { return lookups_; }
  std::size_t misses() const { return misses_; }
  double miss_rate() const;

  /// Loads models up-front (no miss accounting), evicting as needed.
  void preload(std::span<const std::size_t> models);

  /// Per-model use counts (how often each model served a frame).
  const std::vector<std::size_t>& use_counts() const { return use_counts_; }

 private:
  struct Entry {
    std::size_t model = 0;
    std::size_t frequency = 0;   // uses since load (LFU)
    std::size_t last_used = 0;   // logical clock (LRU)
    std::size_t loaded_at = 0;   // logical clock (FIFO)
  };

  std::optional<std::size_t> find(std::size_t model) const;
  void load(std::size_t model);
  std::size_t pick_victim() const;
  void touch(std::size_t entry_index);

  CacheConfig config_;
  std::size_t model_count_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> use_counts_;
  std::size_t clock_ = 0;
  std::size_t lookups_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace anole::core
