// Cache-based Model Deployment (CMD, paper section V-B).
//
// A device can keep only `capacity` compressed models resident. Each frame
// the decision model produces a ranking; the frame is served by the
// best-ranked *resident* model, and on a top-1 miss the top-1 model is
// loaded, evicting a victim chosen by the configured policy (the paper
// motivates LFU from the power-law model-utility distribution; LRU and
// FIFO are kept for the ablation bench).
//
// Degradation ladder (DESIGN.md §9): model loads can fail (exercised via
// util/fault.hpp). A failed load is retried up to `max_load_attempts`
// times within the admission; a model whose loads are abandoned
// `quarantine_after` times in a row is quarantined — exiled from rankings
// for a cooldown that doubles on every repeat offence, then re-admitted.
// When no ranked model is admissible (all quarantined, or the ranking is
// empty), the pinned fallback model serves the frame; its load bypasses
// fault injection (the premodel lives in a reserved slot, the framework's
// last line of defence). Nothing in this path throws: every frame is
// served by a resident model.
//
// Byte budget (DESIGN.md §11): beyond the slot count, the cache can be
// bounded by real weight bytes. `set_model_bytes` supplies per-model
// sizes (quantized artifact sections at their real, smaller size) and
// `memory_budget_bytes` caps the resident total; a load evicts victims
// until the new model *fits*, not just one slot. A model larger than the
// whole (possibly pressure-shrunk) budget is refused outright and the
// frame degrades to the best resident model — except the pinned fallback,
// whose load is exempt. The `memory_pressure` fault site shrinks the
// effective budget by the armed magnitude for a window of admissions,
// exercising mid-run OS memory reclamation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/fault.hpp"

namespace anole::core {

enum class EvictionPolicy { kLfu, kLru, kFifo };

const char* to_string(EvictionPolicy policy);

struct CacheConfig {
  std::size_t capacity = 5;
  EvictionPolicy policy = EvictionPolicy::kLfu;
  /// Load attempts per admission before the load is abandoned.
  std::size_t max_load_attempts = 3;
  /// Consecutive abandoned loads before a model is quarantined.
  std::size_t quarantine_after = 3;
  /// Base quarantine cooldown in admissions; doubles per repeat offence
  /// (capped), giving decayed re-admission.
  std::size_t quarantine_frames = 64;
  /// Resident-weight byte cap; 0 disables byte accounting entirely (the
  /// cache is bounded by `capacity` slots only, today's behavior). Takes
  /// effect once `set_model_bytes` supplies per-model sizes.
  std::uint64_t memory_budget_bytes = 0;
  /// Admissions a `memory_pressure` fault keeps the budget shrunk for.
  std::size_t pressure_window = 128;
};

/// Per-admission knobs (the governor's levers). Defaults preserve the
/// unconstrained behavior.
struct AdmitOptions {
  /// False: do not start a model load for this frame — serve the best
  /// already-resident model instead (a throttled governor suppressing
  /// swaps). Ignored when nothing ranked is resident: a cold start must
  /// still load.
  bool allow_load = true;
};

class ModelCache {
 public:
  /// What happened for one frame's ranking.
  struct Admission {
    /// Model used to serve this frame (best-ranked resident model).
    std::size_t served_model = 0;
    /// True when the (admissible) top-1 model was already resident.
    bool hit = false;
    /// Model loaded this step (top-1 on a miss), if any.
    std::optional<std::size_t> loaded;
    /// First model evicted to make room, if any.
    std::optional<std::size_t> evicted;
    /// Total models evicted this admission (a byte-budget load can evict
    /// several victims to fit).
    std::size_t evicted_count = 0;
    /// Load attempts made this admission (0 when no load was needed).
    std::size_t load_attempts = 0;
    /// True when every attempt failed and the load was abandoned.
    bool load_abandoned = false;
    /// Model newly quarantined by this admission, if any.
    std::optional<std::size_t> quarantined;
    /// True when the pinned fallback served because no ranked model was
    /// admissible (empty ranking, all quarantined, or failed cold load).
    bool served_pinned = false;
    /// True when a top-1 miss did not load because AdmitOptions.allow_load
    /// was false (governor-throttled swap).
    bool swap_suppressed = false;
    /// True when the top-1 load was refused because the model exceeds the
    /// whole effective byte budget.
    bool load_refused_oversized = false;
  };

  ModelCache(std::size_t model_count, const CacheConfig& config);

  /// Serves a frame given the decision ranking (ranking[0] = top-1).
  /// On a cold start (empty cache) the top-1 model is loaded synchronously
  /// and counted as a miss. An empty ranking (or one whose every model is
  /// quarantined) is served by the pinned fallback when one is set and
  /// throws anole::ContractViolation otherwise.
  Admission admit(std::span<const std::size_t> ranking) {
    return admit(ranking, AdmitOptions{});
  }
  Admission admit(std::span<const std::size_t> ranking,
                  const AdmitOptions& options);

  /// Convenience overloads for literal rankings.
  Admission admit(std::initializer_list<std::size_t> ranking) {
    return admit(std::span<const std::size_t>(ranking.begin(),
                                              ranking.size()));
  }
  Admission admit(std::initializer_list<std::size_t> ranking,
                  const AdmitOptions& options) {
    return admit(std::span<const std::size_t>(ranking.begin(),
                                              ranking.size()),
                 options);
  }

  bool contains(std::size_t model) const;
  std::vector<std::size_t> resident_models() const;
  std::size_t capacity() const { return config_.capacity; }

  std::size_t lookups() const { return lookups_; }
  std::size_t misses() const { return misses_; }
  double miss_rate() const;

  /// Loads models up-front (no miss accounting, no fault injection),
  /// evicting as needed. Quarantined models are skipped.
  void preload(std::span<const std::size_t> models);

  /// Per-model use counts (how often each model served a frame).
  const std::vector<std::size_t>& use_counts() const { return use_counts_; }

  /// --- degradation ladder ---

  /// Injector consulted on every load attempt (site `model_load`); null
  /// (the default) means loads always succeed. Not owned.
  void set_fault_injector(fault::FaultInjector* faults) { faults_ = faults; }

  /// Pins the model that serves when no ranked model is admissible. Its
  /// loads bypass fault injection (a reserved premodel slot).
  void set_pinned_fallback(std::size_t model);
  std::optional<std::size_t> pinned_fallback() const { return pinned_; }

  /// True while `model` is exiled from rankings (cooldown not yet over).
  bool is_quarantined(std::size_t model) const;

  /// Exiles `model` permanently (e.g. its artifact section was corrupt).
  void quarantine_forever(std::size_t model);

  /// Currently quarantined models, ascending.
  std::vector<std::size_t> quarantined_models() const;

  /// Failed load attempts / abandoned loads / quarantine entries /
  /// pinned-fallback serves since construction.
  std::size_t load_failures() const { return load_failures_; }
  std::size_t abandoned_loads() const { return abandoned_loads_; }
  std::size_t quarantine_events() const { return quarantine_events_; }
  std::size_t degraded_serves() const { return degraded_serves_; }

  /// --- byte budget ---

  /// Supplies per-model weight sizes (bytes[m] = weight bytes of model
  /// m). Requires exactly model_count entries. Enables byte accounting;
  /// immediately evicts to the configured budget if already over it.
  void set_model_bytes(std::span<const std::uint64_t> bytes);

  /// Replaces the configured byte budget (0 disables byte accounting)
  /// and immediately evicts down to it.
  void set_memory_budget_bytes(std::uint64_t budget);

  /// Total weight bytes currently resident (0 until set_model_bytes).
  std::uint64_t resident_bytes() const { return resident_bytes_; }
  std::uint64_t memory_budget_bytes() const {
    return config_.memory_budget_bytes;
  }

  /// The budget after any active memory-pressure shrink; 0 when byte
  /// accounting is disabled.
  std::uint64_t effective_budget_bytes() const;

  /// True while a `memory_pressure` fault keeps the budget shrunk.
  bool under_pressure() const;

  /// Top-1 loads refused as oversized / evictions forced by the byte
  /// budget (beyond slot-capacity evictions) / memory-pressure faults
  /// fired, since construction.
  std::size_t oversized_rejections() const { return oversized_rejections_; }
  std::size_t budget_evictions() const { return budget_evictions_; }
  std::size_t pressure_events() const { return pressure_events_; }

 private:
  struct Entry {
    std::size_t model = 0;
    std::size_t frequency = 0;   // uses since load (LFU)
    std::size_t last_used = 0;   // logical clock (LRU)
    std::size_t loaded_at = 0;   // logical clock (FIFO)
  };

  /// Per-model failure bookkeeping for the quarantine ladder.
  struct Health {
    std::size_t consecutive_abandoned = 0;
    std::size_t quarantine_count = 0;
    /// Admissible again once clock_ >= quarantined_until.
    std::size_t quarantined_until = 0;
    bool forever = false;
  };

  std::optional<std::size_t> find(std::size_t model) const;
  void load(std::size_t model);
  std::size_t pick_victim() const;
  void touch(std::size_t entry_index);
  void evict_model(std::size_t model);
  void evict_entry(std::size_t entry_index);

  /// Weight bytes of `model`; 0 until set_model_bytes supplies sizes.
  std::uint64_t bytes_of(std::size_t model) const;
  /// True when byte accounting is active (budget and sizes configured).
  bool budget_active() const;
  /// True when `model` alone fits the effective budget (always true when
  /// byte accounting is inactive).
  bool fits_budget(std::size_t model) const;
  /// Evicts victims until the resident total fits the effective budget.
  void enforce_budget();
  /// One deterministic memory-pressure draw per admission (site
  /// `memory_pressure`); a hit shrinks the budget for pressure_window
  /// admissions.
  void consult_memory_pressure();

  /// Attempts to load `model` with bounded retry under fault injection;
  /// fills the load/quarantine fields of `admission`. Returns true when
  /// the model is resident afterwards.
  bool try_load(std::size_t model, Admission& admission);

  /// Serves via the pinned fallback (loading it fault-free if needed).
  void serve_pinned(Admission& admission);

  CacheConfig config_;
  std::size_t model_count_;
  std::vector<Entry> entries_;
  std::vector<std::size_t> use_counts_;
  std::vector<Health> health_;
  fault::FaultInjector* faults_ = nullptr;
  std::optional<std::size_t> pinned_;
  std::size_t clock_ = 0;
  std::size_t lookups_ = 0;
  std::size_t misses_ = 0;
  std::size_t load_failures_ = 0;
  std::size_t abandoned_loads_ = 0;
  std::size_t quarantine_events_ = 0;
  std::size_t degraded_serves_ = 0;
  /// --- byte budget state ---
  /// Per-model weight bytes; empty until set_model_bytes.
  std::vector<std::uint64_t> model_bytes_;
  std::uint64_t resident_bytes_ = 0;
  /// Budget stays shrunk while clock_ < pressure_until_.
  std::size_t pressure_until_ = 0;
  double pressure_divisor_ = 1.0;
  std::size_t oversized_rejections_ = 0;
  std::size_t budget_evictions_ = 0;
  std::size_t pressure_events_ = 0;
};

}  // namespace anole::core
