// DriftDetector: windowed change detection over the decision model's
// confidence stream, plus the on-device response the engine applies when
// the world shifts under it (DESIGN.md §14).
//
// The decision model is trained offline against a fixed scene mix; under
// distribution drift its top-1 suitability confidence collapses long
// before accuracy can be measured on-device (there are no labels at
// runtime). The detector runs a one-sided CUSUM on that confidence
// stream: after a baseline window establishes the clean-regime mean, each
// observation accumulates S = max(0, S + (baseline - confidence - slack))
// and a detection fires when S crosses the threshold. Each detection
// produces a DriftResponse the engine applies on the *next* planned
// frame:
//
//   - suitability-threshold recalibration: the confidence floor is reset
//     to a quantile of the recent confidence window, so a floor tuned for
//     the clean regime stops misfiring (constantly rerouting to the
//     broadest fallback) once the achievable confidence level moves;
//   - smoothing decay: the temporal-smoothing alpha is scaled down per
//     detection, so the smoothed suitability state stops dragging stale
//     scene evidence across segment switches;
//   - stale-model resampling (ASS-style): models that served in the older
//     half of the observation window but vanished from the newer half are
//     flagged; the engine drops its cached ranking and smoothed state so
//     the next frame re-ranks every model from fresh evidence.
//
// A second CUSUM over observed frame latencies (fed by DeviceSession)
// counts latency-regime shifts; it never produces a serving response —
// overload is the governor's job — but its detections land in the same
// trace. The detector is purely deterministic: no clocks, no Rng, one
// observation per decision-model run, so for a fixed observation sequence
// the event trace and its FNV-1a hash are bitwise identical across runs
// and thread counts. ANOLE_DRIFT=0 detaches the detector everywhere it
// is consulted (mirroring ANOLE_GOVERNOR), reproducing the unadapted
// timeline exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anole::core {

/// True unless the environment variable ANOLE_DRIFT is set to "0" (read
/// fresh on every call; tests toggle it mid-process).
bool drift_enabled_from_env();

struct DriftConfig {
  /// Sliding window of confidence observations used for recalibration and
  /// stale-model resampling.
  std::size_t window = 48;
  /// Observations used to establish the clean-regime baseline mean before
  /// the CUSUM arms (and to re-baseline after a detection).
  std::size_t baseline_window = 48;
  /// CUSUM slack (allowance): confidence dips smaller than this above the
  /// baseline mean never accumulate.
  double cusum_slack = 0.04;
  /// CUSUM detection threshold (accumulated confidence mass).
  double cusum_threshold = 1.25;
  /// Minimum observations between two confidence detections.
  std::size_t min_separation = 32;
  /// Quantile of the recent confidence window the floor recalibrates to.
  double recalibration_quantile = 0.25;
  /// Scale applied below the quantile so the recalibrated floor sits
  /// under the new regime's typical confidence instead of on top of it.
  double recalibration_scale = 0.8;
  /// Multiplier applied to the smoothing alpha per detection.
  double smoothing_decay = 0.5;
  /// Latency CUSUM slack in ms and threshold (accumulated ms).
  double latency_slack_ms = 4.0;
  double latency_threshold_ms = 120.0;
};

/// What kind of event a trace entry records.
enum class DriftEventKind : std::uint8_t {
  /// Confidence CUSUM crossed its threshold (a serving response follows).
  kConfidenceShift = 0,
  /// Latency CUSUM crossed its threshold (informational).
  kLatencyShift,
};

const char* to_string(DriftEventKind kind);

/// One detection, in observation order — the replayable trace.
struct DriftEvent {
  DriftEventKind kind = DriftEventKind::kConfidenceShift;
  /// Observation index (confidence or latency stream) of the detection.
  std::uint64_t observation = 0;
  /// Kind-specific detail: recalibrated floor (confidence, per-mille) or
  /// accumulated CUSUM mass at detection (latency, ms, rounded).
  std::uint64_t detail = 0;
};

/// The serving response produced by a confidence detection, applied by
/// the engine on its next planned frame.
struct DriftResponse {
  /// New confidence floor (already quantile-recalibrated); < 0 means the
  /// window was empty and the floor is left unchanged.
  double recalibrated_floor = -1.0;
  /// Cumulative multiplier for the engine's base smoothing alpha.
  double smoothing_scale = 1.0;
  /// Models flagged stale (served in the older half of the window, absent
  /// from the newer half); the engine re-ranks from fresh evidence.
  std::vector<std::size_t> stale_models;
};

class DriftDetector {
 public:
  explicit DriftDetector(DriftConfig config = {});

  /// One observation per decision-model run (fresh rankings only —
  /// dropped frames and throttled ranking reuses produce no new decision
  /// evidence). `served_model` feeds the stale-model window.
  void observe_confidence(double top1_confidence, bool low_confidence,
                          std::size_t served_model);

  /// One observation per executed frame's measured latency (fed by
  /// DeviceSession). Never produces a serving response.
  void observe_latency(double latency_ms, bool deadline_overrun);

  /// True when a confidence detection has fired and its response has not
  /// been consumed yet.
  bool response_pending() const { return response_pending_; }

  /// Consumes the pending response (engine-side, next planned frame).
  DriftResponse take_response();

  const DriftConfig& config() const { return config_; }

  /// Confidence observations / latency observations so far.
  std::uint64_t confidence_observations() const { return conf_observed_; }
  std::uint64_t latency_observations() const { return lat_observed_; }
  /// Confidence detections (each produced one response).
  std::uint64_t detections() const { return detections_; }
  /// Latency-regime detections (informational).
  std::uint64_t latency_detections() const { return latency_detections_; }

  /// Current confidence CUSUM mass and baseline mean (0 until armed).
  double cusum() const { return cusum_; }
  double baseline_mean() const { return baseline_mean_; }

  /// Every detection, in observation order.
  const std::vector<DriftEvent>& trace() const { return trace_; }

  /// FNV-1a hash of the trace; equal hashes across two runs mean the
  /// detector fired bitwise-identical detections.
  std::uint64_t trace_hash() const;

  /// Clears all state (windows, CUSUMs, trace); the config is kept.
  void reset();

 private:
  void detect_confidence_shift();

  DriftConfig config_;
  /// Ring buffers over the last `config_.window` observations.
  std::vector<double> conf_window_;
  std::vector<std::size_t> served_window_;
  std::size_t window_next_ = 0;
  std::size_t window_filled_ = 0;
  /// Baseline accumulation (restarts after every detection).
  double baseline_sum_ = 0.0;
  std::size_t baseline_count_ = 0;
  double baseline_mean_ = 0.0;
  bool baseline_ready_ = false;
  double cusum_ = 0.0;
  std::uint64_t conf_observed_ = 0;
  std::uint64_t last_detection_at_ = 0;
  /// Latency CUSUM (same baseline-then-accumulate structure).
  double lat_baseline_sum_ = 0.0;
  std::size_t lat_baseline_count_ = 0;
  double lat_baseline_mean_ = 0.0;
  bool lat_baseline_ready_ = false;
  double lat_cusum_ = 0.0;
  std::uint64_t lat_observed_ = 0;
  std::uint64_t detections_ = 0;
  std::uint64_t latency_detections_ = 0;
  bool response_pending_ = false;
  DriftResponse pending_;
  double smoothing_scale_ = 1.0;
  std::vector<DriftEvent> trace_;
};

}  // namespace anole::core
