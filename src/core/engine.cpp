#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "nn/quantize.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace anole::core {
namespace {

/// Sanitized value for a non-finite suitability entry: strictly below any
/// valid probability and any configurable confidence floor, so a corrupt
/// reading ranks last and can never win a frame.
constexpr double kCorruptSuitability = -1.0;

bool is_damaged(const AnoleSystem& system, std::size_t model) {
  return std::find(system.damaged_models.begin(),
                   system.damaged_models.end(),
                   model) != system.damaged_models.end();
}

/// Parses ANOLE_MEM_BUDGET_MB (paper-equivalent MB, fractional allowed);
/// 0 when unset, empty, or unparseable.
double mem_budget_mb_from_env() {
  const char* value = std::getenv("ANOLE_MEM_BUDGET_MB");
  if (value == nullptr || *value == '\0') return 0.0;
  char* end = nullptr;
  const double mb = std::strtod(value, &end);
  ANOLE_CHECK(end != value && *end == '\0' && mb > 0.0,
              "ANOLE_MEM_BUDGET_MB: expected a positive number, got '",
              value, "'");
  return mb;
}

}  // namespace

AnoleEngine::AnoleEngine(AnoleSystem& system, const EngineConfig& config)
    : system_(&system),
      config_(config),
      faults_(config.faults ? config.faults
                            : std::shared_ptr<fault::FaultInjector>(
                                  fault::FaultInjector::from_env())),
      cache_(system.repository.size(), config.cache),
      top1_counts_(system.repository.size(), 0) {
  ANOLE_CHECK(!system.repository.empty(),
              "AnoleEngine: empty model repository");
  ANOLE_CHECK_NOTNULL(system.decision, "AnoleEngine: missing decision model");
  ANOLE_CHECK(config.suitability_smoothing >= 0.0 &&
                  config.suitability_smoothing < 1.0,
              "AnoleEngine: smoothing must be in [0, 1), got ",
              config.suitability_smoothing);
  ANOLE_CHECK_GE(config.confidence_floor, 0.0,
                 "AnoleEngine: negative confidence floor");
  ANOLE_CHECK_EQ(system.decision->model_count(), system.repository.size(),
                 "AnoleEngine: decision head width != repository size");
  ANOLE_CHECK_LT(system.damaged_models.size(), system.repository.size(),
                 "AnoleEngine: every model in the artifact was damaged");
  // Broadest undamaged model = most scene classes, ties broken by
  // validation F1. Damaged slots hold placeholders and must never serve.
  bool have_fallback = false;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    if (is_damaged(system, m)) continue;
    if (!have_fallback) {
      fallback_model_ = m;
      have_fallback = true;
      continue;
    }
    const SceneModel& candidate = system.repository.model(m);
    const SceneModel& current = system.repository.model(fallback_model_);
    if (candidate.scene_classes.size() > current.scene_classes.size() ||
        (candidate.scene_classes.size() == current.scene_classes.size() &&
         candidate.validation_f1 > current.validation_f1)) {
      fallback_model_ = m;
    }
  }
  cache_.set_pinned_fallback(fallback_model_);
  cache_.set_fault_injector(faults_.get());
  for (std::size_t m : system.damaged_models) cache_.quarantine_forever(m);

  // Byte accounting: real streamed weight bytes per model (quantized
  // artifact sections already report their smaller size).
  std::vector<std::uint64_t> model_bytes;
  model_bytes.reserve(system.repository.size());
  std::uint64_t reference_bytes = 0;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    const std::uint64_t bytes = system.repository.detector(m).weight_bytes();
    model_bytes.push_back(bytes);
    reference_bytes = std::max(reference_bytes, bytes);
  }
  cache_.set_model_bytes(model_bytes);
  if (config.cache.memory_budget_bytes == 0) {
    // ANOLE_MEM_BUDGET_MB speaks paper-equivalent MB, where one full
    // compressed model is the device simulator's ~40 paper-MB reference
    // (device/profile.hpp MemoryModel); damaged placeholders are smaller,
    // so the largest real model anchors the conversion.
    const double budget_mb = mem_budget_mb_from_env();
    if (budget_mb > 0.0) {
      cache_.set_memory_budget_bytes(static_cast<std::uint64_t>(
          budget_mb / 40.0 * static_cast<double>(reference_bytes)));
    }
  }

  governor_ =
      core::governor_enabled_from_env() ? config.governor : nullptr;
  drift_ = core::drift_enabled_from_env() ? config.drift : nullptr;
  effective_floor_ = config.confidence_floor;
  effective_smoothing_ = config.suitability_smoothing;
}

AnoleEngine::AnoleEngine(AnoleSystem& system, const CacheConfig& cache_config)
    : AnoleEngine(system, EngineConfig{cache_config, 0.0, 0.0, nullptr}) {}

EngineResult AnoleEngine::process(const world::Frame& frame) {
  const Tensor descriptor = featurizer_.featurize(frame);
  const Tensor probs = system_->decision->suitability(descriptor);
  return process_with_suitability(frame, probs.row(0));
}

std::vector<EngineResult> AnoleEngine::process_batch(
    const std::vector<const world::Frame*>& frames) {
  std::vector<EngineResult> results;
  if (frames.empty()) return results;
  for (const world::Frame* frame : frames) {
    ANOLE_CHECK(frame != nullptr,
                "AnoleEngine::process_batch: null frame pointer");
  }
  // MSS, hoisted: one featurize_batch and one decision-model forward for
  // the whole batch. Each matmul output row depends only on its own input
  // row, so row i of `probs` is bitwise identical to what process() would
  // have computed for frame i alone.
  const Tensor descriptors = featurizer_.featurize_batch(frames);
  const Tensor probs = system_->decision->suitability(descriptors);
  // Plan stage, sequential in frame order: every piece of mutable engine
  // state — smoothing, governor, cache admission, fault draws, counters —
  // advances here exactly as the frame-by-frame path would.
  results.resize(frames.size());
  constexpr std::size_t kNoDetect = ~std::size_t{0};
  std::vector<std::size_t> planned(frames.size(), kNoDetect);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    planned[i] =
        plan_with_suitability(results[i], probs.row(i)).value_or(kNoDetect);
  }
  // Detect stage: fan out across frames through the const
  // Detector::infer path (grain 1: one frame is a full network pass).
  // Frames sharing a detector are safe — infer writes no module state —
  // and nested tensor kernels inside a pool worker run inline with
  // thread-count-invariant chunking, so each frame's detections are
  // bitwise identical to the serial path. No work hint: a frame is
  // always worth a chunk.
  par::parallel_for(0, frames.size(), 1, [&](std::size_t i) {
    if (planned[i] == kNoDetect) return;
    results[i].detections =
        system_->repository.detector(planned[i]).infer(*frames[i]);
  });
  return results;
}

EngineResult AnoleEngine::process_with_suitability(
    const world::Frame& frame, std::span<const float> probs) {
  EngineResult result;
  const std::optional<std::size_t> model =
      plan_with_suitability(result, probs);
  if (model.has_value()) {
    result.detections = system_->repository.detector(*model).infer(frame);
  }
  return result;
}

std::optional<std::size_t> AnoleEngine::plan_with_suitability(
    EngineResult& result, std::span<const float> probs) {
  const std::size_t n = system_->repository.size();
  ANOLE_CHECK_EQ(probs.size(), n,
                 "AnoleEngine: suitability width != repository size");

  // Overload governor (DESIGN.md §11): one plan() per frame decides
  // drop / swap suppression / ranking reuse before any stateful work.
  core::GovernorDirective directive;
  if (governor_ != nullptr) directive = governor_->plan();
  result.governor_state = directive.state;

  if (directive.drop_frame) {
    // Shed outright: no smoothing update, no cache admission, no fault
    // draws, no detector — the frame's only trace is this record. The
    // previous served model is reported so downstream accounting has a
    // stable id.
    result.health.frame_dropped = true;
    ++dropped_frames_;
    result.served_model = last_served_.value_or(fallback_model_);
    result.top1_model = result.served_model;
    ++frames_;
    return std::nullopt;
  }

  // Drift response (DESIGN.md §14), applied forward: a detection observed
  // on an earlier frame lands here, before this frame's ranking, so the
  // response never re-runs a ranking (and its fault draws) mid-frame.
  // Recalibrate the floor, decay the smoothing alpha, and drop every
  // piece of stale scene evidence — the smoothed suitability state and
  // the cached ranking — so the next sort re-ranks all models fresh even
  // while the governor is throttling ranking refreshes.
  if (drift_ != nullptr && drift_->response_pending()) {
    const DriftResponse response = drift_->take_response();
    result.health.drift_detected = true;
    ++drift_responses_;
    if (response.recalibrated_floor >= 0.0 &&
        config_.confidence_floor > 0.0) {
      effective_floor_ = response.recalibrated_floor;
      result.health.drift_recalibrated = true;
      ++drift_recalibrations_;
    }
    effective_smoothing_ =
        config_.suitability_smoothing * response.smoothing_scale;
    smoothed_suitability_.clear();
    last_ranking_.clear();
  }

  const bool reuse_ranking =
      !directive.refresh_ranking && last_ranking_.size() == n;
  std::vector<std::size_t> ranking;
  if (reuse_ranking) {
    // Throttled MSS: replay the previous frame's ranking (post
    // confidence-fallback rotation) without running the decision tail —
    // no smoothing update, no decision fault draw, no top1 credit.
    ranking = last_ranking_;
    result.ranking_reused = true;
    ++reused_ranking_frames_;
    result.top1_model = last_top1_model_;
    result.top1_confidence = last_top1_confidence_;
    result.low_confidence = last_low_confidence_;
  } else {
    ranking = rank_suitability(result, probs);
  }

  // CMD: resolve against the model cache (bounded retry + quarantine
  // ladder live inside admit; it never throws on a valid ranking).
  const auto admission =
      cache_.admit(ranking, AdmitOptions{.allow_load = directive.allow_swap});
  result.served_model = admission.served_model;
  result.cache_hit = admission.hit;
  result.model_loaded = admission.loaded.has_value();
  result.health.load_attempts = admission.load_attempts;
  result.health.load_abandoned = admission.load_abandoned;
  result.health.quarantined = admission.quarantined;
  result.health.served_degraded = admission.served_pinned;
  result.health.swap_suppressed =
      admission.swap_suppressed || admission.load_refused_oversized;
  if (admission.served_pinned) ++degraded_frames_;
  if (result.health.swap_suppressed) ++swap_suppressed_frames_;

  // MI planning: decide whether the chosen compressed model runs. A
  // corrupt payload degrades to an empty detection set for this frame
  // instead of feeding the detector garbage; the inference itself is the
  // caller's (const, fan-out-able) detect stage.
  std::optional<std::size_t> detect_model;
  if (faults_ != nullptr &&
      faults_->should_fail(fault::Site::kFramePayload, frames_)) {
    result.health.payload_corrupt = true;
    ++payload_corrupt_frames_;
  } else {
    detect::GridDetector& served =
        system_->repository.detector(admission.served_model);
    result.health.served_quantized = nn::is_quantized(served.network());
    if (result.health.served_quantized) ++quantized_frames_;
    detect_model = admission.served_model;
  }

  // Drift observation: one sample per decision-model run. Reused rankings
  // and shed frames carry no new decision evidence, so they are not fed —
  // the detector's observation stream (and trace hash) is a pure function
  // of the fresh-ranking sequence, identical across thread counts.
  if (drift_ != nullptr && !reuse_ranking) {
    drift_->observe_confidence(result.top1_confidence, result.low_confidence,
                               admission.served_model);
  }

  result.model_switched =
      last_served_.has_value() && *last_served_ != admission.served_model;
  if (result.model_switched) ++switches_;
  last_served_ = admission.served_model;
  ++frames_;
  return detect_model;
}

std::vector<std::size_t> AnoleEngine::rank_suitability(
    EngineResult& result, std::span<const float> probs) {
  // MSS tail: optional temporal smoothing of the suitability vector.
  const std::size_t n = system_->repository.size();
  std::vector<double> suitability(probs.begin(), probs.end());
  // Injected decision corruption: one entry turns non-finite, exercising
  // the guard below exactly as a misbehaving decision head would.
  if (faults_ != nullptr &&
      faults_->should_fail(fault::Site::kDecisionOutput, frames_)) {
    suitability[faults_->draw_index(fault::Site::kDecisionOutput, n)] =
        std::numeric_limits<double>::quiet_NaN();
  }
  // NaN/Inf guard: a non-finite suitability entry is treated as "below
  // the confidence floor" — sanitized to rank last — instead of poisoning
  // the sort and the smoothed state.
  for (double& value : suitability) {
    if (!std::isfinite(value)) {
      value = kCorruptSuitability;
      result.health.nonfinite_suitability = true;
    }
  }
  if (result.health.nonfinite_suitability) ++nonfinite_frames_;

  if (smoothed_suitability_.size() != n) {
    smoothed_suitability_ = suitability;
  } else {
    const double alpha = effective_smoothing_;
    for (std::size_t m = 0; m < n; ++m) {
      smoothed_suitability_[m] =
          alpha * smoothed_suitability_[m] + (1.0 - alpha) * suitability[m];
    }
  }
  std::vector<std::size_t> ranking(n);
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
    if (smoothed_suitability_[a] != smoothed_suitability_[b]) {
      return smoothed_suitability_[a] > smoothed_suitability_[b];
    }
    return a < b;  // deterministic tie-break
  });
  result.top1_model = ranking[0];
  result.top1_confidence = smoothed_suitability_[ranking[0]];
  ++top1_counts_[ranking[0]];

  // Case-3 fallback: no model looks suitable — or the whole vector was
  // corrupt (top-1 below zero) — use the broadest one.
  if ((effective_floor_ > 0.0 &&
       result.top1_confidence < effective_floor_) ||
      result.top1_confidence < 0.0) {
    result.low_confidence = true;
    ++low_confidence_;
    std::rotate(ranking.begin(),
                std::find(ranking.begin(), ranking.end(), fallback_model_),
                ranking.end());
  }

  // Remember the (rotated) ranking for throttled reuse.
  last_ranking_ = ranking;
  last_top1_model_ = result.top1_model;
  last_top1_confidence_ = result.top1_confidence;
  last_low_confidence_ = result.low_confidence;
  return ranking;
}

bool AnoleEngine::decision_quantized() const {
  return system_->decision && nn::is_quantized(system_->decision->head());
}

bool AnoleEngine::model_quantized(std::size_t model) const {
  return nn::is_quantized(system_->repository.detector(model).network());
}

}  // namespace anole::core
