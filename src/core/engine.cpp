#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/quantize.hpp"
#include "util/check.hpp"

namespace anole::core {
namespace {

/// Sanitized value for a non-finite suitability entry: strictly below any
/// valid probability and any configurable confidence floor, so a corrupt
/// reading ranks last and can never win a frame.
constexpr double kCorruptSuitability = -1.0;

bool is_damaged(const AnoleSystem& system, std::size_t model) {
  return std::find(system.damaged_models.begin(),
                   system.damaged_models.end(),
                   model) != system.damaged_models.end();
}

}  // namespace

AnoleEngine::AnoleEngine(AnoleSystem& system, const EngineConfig& config)
    : system_(&system),
      config_(config),
      faults_(config.faults ? config.faults
                            : std::shared_ptr<fault::FaultInjector>(
                                  fault::FaultInjector::from_env())),
      cache_(system.repository.size(), config.cache),
      top1_counts_(system.repository.size(), 0) {
  ANOLE_CHECK(!system.repository.empty(),
              "AnoleEngine: empty model repository");
  ANOLE_CHECK_NOTNULL(system.decision, "AnoleEngine: missing decision model");
  ANOLE_CHECK(config.suitability_smoothing >= 0.0 &&
                  config.suitability_smoothing < 1.0,
              "AnoleEngine: smoothing must be in [0, 1), got ",
              config.suitability_smoothing);
  ANOLE_CHECK_GE(config.confidence_floor, 0.0,
                 "AnoleEngine: negative confidence floor");
  ANOLE_CHECK_EQ(system.decision->model_count(), system.repository.size(),
                 "AnoleEngine: decision head width != repository size");
  ANOLE_CHECK_LT(system.damaged_models.size(), system.repository.size(),
                 "AnoleEngine: every model in the artifact was damaged");
  // Broadest undamaged model = most scene classes, ties broken by
  // validation F1. Damaged slots hold placeholders and must never serve.
  bool have_fallback = false;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    if (is_damaged(system, m)) continue;
    if (!have_fallback) {
      fallback_model_ = m;
      have_fallback = true;
      continue;
    }
    const SceneModel& candidate = system.repository.model(m);
    const SceneModel& current = system.repository.model(fallback_model_);
    if (candidate.scene_classes.size() > current.scene_classes.size() ||
        (candidate.scene_classes.size() == current.scene_classes.size() &&
         candidate.validation_f1 > current.validation_f1)) {
      fallback_model_ = m;
    }
  }
  cache_.set_pinned_fallback(fallback_model_);
  cache_.set_fault_injector(faults_.get());
  for (std::size_t m : system.damaged_models) cache_.quarantine_forever(m);
}

AnoleEngine::AnoleEngine(AnoleSystem& system, const CacheConfig& cache_config)
    : AnoleEngine(system, EngineConfig{cache_config, 0.0, 0.0, nullptr}) {}

EngineResult AnoleEngine::process(const world::Frame& frame) {
  const Tensor descriptor = featurizer_.featurize(frame);
  const Tensor probs = system_->decision->suitability(descriptor);
  return process_with_suitability(frame, probs.row(0));
}

std::vector<EngineResult> AnoleEngine::process_batch(
    const std::vector<const world::Frame*>& frames) {
  std::vector<EngineResult> results;
  if (frames.empty()) return results;
  // MSS, hoisted: one featurize_batch and one decision-model forward for
  // the whole batch. Each matmul output row depends only on its own input
  // row, so row i of `probs` is bitwise identical to what process() would
  // have computed for frame i alone. Fault draws all happen in the
  // sequential tail below, keeping the schedule thread-count-invariant.
  const Tensor descriptors = featurizer_.featurize_batch(frames);
  const Tensor probs = system_->decision->suitability(descriptors);
  results.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    results.push_back(process_with_suitability(*frames[i], probs.row(i)));
  }
  return results;
}

EngineResult AnoleEngine::process_with_suitability(
    const world::Frame& frame, std::span<const float> probs) {
  EngineResult result;
  // MSS tail: optional temporal smoothing of the suitability vector.
  const std::size_t n = system_->repository.size();
  ANOLE_CHECK_EQ(probs.size(), n,
                 "AnoleEngine: suitability width != repository size");
  std::vector<double> suitability(probs.begin(), probs.end());
  // Injected decision corruption: one entry turns non-finite, exercising
  // the guard below exactly as a misbehaving decision head would.
  if (faults_ != nullptr &&
      faults_->should_fail(fault::Site::kDecisionOutput, frames_)) {
    suitability[faults_->draw_index(fault::Site::kDecisionOutput, n)] =
        std::numeric_limits<double>::quiet_NaN();
  }
  // NaN/Inf guard: a non-finite suitability entry is treated as "below
  // the confidence floor" — sanitized to rank last — instead of poisoning
  // the sort and the smoothed state.
  for (double& value : suitability) {
    if (!std::isfinite(value)) {
      value = kCorruptSuitability;
      result.health.nonfinite_suitability = true;
    }
  }
  if (result.health.nonfinite_suitability) ++nonfinite_frames_;

  if (smoothed_suitability_.size() != n) {
    smoothed_suitability_ = suitability;
  } else {
    const double alpha = config_.suitability_smoothing;
    for (std::size_t m = 0; m < n; ++m) {
      smoothed_suitability_[m] =
          alpha * smoothed_suitability_[m] + (1.0 - alpha) * suitability[m];
    }
  }
  std::vector<std::size_t> ranking(n);
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
    return smoothed_suitability_[a] > smoothed_suitability_[b];
  });
  result.top1_model = ranking[0];
  result.top1_confidence = smoothed_suitability_[ranking[0]];
  ++top1_counts_[ranking[0]];

  // Case-3 fallback: no model looks suitable — or the whole vector was
  // corrupt (top-1 below zero) — use the broadest one.
  if ((config_.confidence_floor > 0.0 &&
       result.top1_confidence < config_.confidence_floor) ||
      result.top1_confidence < 0.0) {
    result.low_confidence = true;
    ++low_confidence_;
    std::rotate(ranking.begin(),
                std::find(ranking.begin(), ranking.end(), fallback_model_),
                ranking.end());
  }

  // CMD: resolve against the model cache (bounded retry + quarantine
  // ladder live inside admit; it never throws on a valid ranking).
  const auto admission = cache_.admit(ranking);
  result.served_model = admission.served_model;
  result.cache_hit = admission.hit;
  result.model_loaded = admission.loaded.has_value();
  result.health.load_attempts = admission.load_attempts;
  result.health.load_abandoned = admission.load_abandoned;
  result.health.quarantined = admission.quarantined;
  result.health.served_degraded = admission.served_pinned;
  if (admission.served_pinned) ++degraded_frames_;

  // MI: run the chosen compressed model. A corrupt payload degrades to an
  // empty detection set for this frame instead of feeding the detector
  // garbage.
  if (faults_ != nullptr &&
      faults_->should_fail(fault::Site::kFramePayload, frames_)) {
    result.health.payload_corrupt = true;
    ++payload_corrupt_frames_;
  } else {
    detect::GridDetector& served =
        system_->repository.detector(admission.served_model);
    result.health.served_quantized = nn::is_quantized(served.network());
    if (result.health.served_quantized) ++quantized_frames_;
    result.detections = served.detect(frame);
  }

  result.model_switched =
      last_served_.has_value() && *last_served_ != admission.served_model;
  if (result.model_switched) ++switches_;
  last_served_ = admission.served_model;
  ++frames_;
  return result;
}

bool AnoleEngine::decision_quantized() const {
  return system_->decision && nn::is_quantized(system_->decision->head());
}

bool AnoleEngine::model_quantized(std::size_t model) const {
  return nn::is_quantized(system_->repository.detector(model).network());
}

}  // namespace anole::core
