#include "core/engine.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace anole::core {

AnoleEngine::AnoleEngine(AnoleSystem& system, const EngineConfig& config)
    : system_(&system),
      config_(config),
      cache_(system.repository.size(), config.cache),
      top1_counts_(system.repository.size(), 0) {
  ANOLE_CHECK(!system.repository.empty(),
              "AnoleEngine: empty model repository");
  ANOLE_CHECK_NOTNULL(system.decision, "AnoleEngine: missing decision model");
  ANOLE_CHECK(config.suitability_smoothing >= 0.0 &&
                  config.suitability_smoothing < 1.0,
              "AnoleEngine: smoothing must be in [0, 1), got ",
              config.suitability_smoothing);
  ANOLE_CHECK_GE(config.confidence_floor, 0.0,
                 "AnoleEngine: negative confidence floor");
  ANOLE_CHECK_EQ(system.decision->model_count(), system.repository.size(),
                 "AnoleEngine: decision head width != repository size");
  // Broadest model = most scene classes, ties broken by validation F1.
  for (std::size_t m = 1; m < system.repository.size(); ++m) {
    const SceneModel& candidate = system.repository.model(m);
    const SceneModel& current = system.repository.model(fallback_model_);
    if (candidate.scene_classes.size() > current.scene_classes.size() ||
        (candidate.scene_classes.size() == current.scene_classes.size() &&
         candidate.validation_f1 > current.validation_f1)) {
      fallback_model_ = m;
    }
  }
}

AnoleEngine::AnoleEngine(AnoleSystem& system, const CacheConfig& cache_config)
    : AnoleEngine(system, EngineConfig{cache_config, 0.0, 0.0}) {}

EngineResult AnoleEngine::process(const world::Frame& frame) {
  const Tensor descriptor = featurizer_.featurize(frame);
  const Tensor probs = system_->decision->suitability(descriptor);
  return process_with_suitability(frame, probs.row(0));
}

std::vector<EngineResult> AnoleEngine::process_batch(
    const std::vector<const world::Frame*>& frames) {
  std::vector<EngineResult> results;
  if (frames.empty()) return results;
  // MSS, hoisted: one featurize_batch and one decision-model forward for
  // the whole batch. Each matmul output row depends only on its own input
  // row, so row i of `probs` is bitwise identical to what process() would
  // have computed for frame i alone.
  const Tensor descriptors = featurizer_.featurize_batch(frames);
  const Tensor probs = system_->decision->suitability(descriptors);
  results.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    results.push_back(process_with_suitability(*frames[i], probs.row(i)));
  }
  return results;
}

EngineResult AnoleEngine::process_with_suitability(
    const world::Frame& frame, std::span<const float> probs) {
  EngineResult result;
  // MSS tail: optional temporal smoothing of the suitability vector.
  const std::size_t n = system_->repository.size();
  ANOLE_CHECK_EQ(probs.size(), n,
                 "AnoleEngine: suitability width != repository size");
  if (smoothed_suitability_.size() != n) {
    smoothed_suitability_.assign(probs.begin(), probs.end());
  } else {
    const double alpha = config_.suitability_smoothing;
    for (std::size_t m = 0; m < n; ++m) {
      smoothed_suitability_[m] =
          alpha * smoothed_suitability_[m] + (1.0 - alpha) * probs[m];
    }
  }
  std::vector<std::size_t> ranking(n);
  std::iota(ranking.begin(), ranking.end(), std::size_t{0});
  std::sort(ranking.begin(), ranking.end(), [&](std::size_t a, std::size_t b) {
    return smoothed_suitability_[a] > smoothed_suitability_[b];
  });
  result.top1_model = ranking[0];
  result.top1_confidence = smoothed_suitability_[ranking[0]];
  ++top1_counts_[ranking[0]];

  // Case-3 fallback: no model looks suitable, use the broadest one.
  if (config_.confidence_floor > 0.0 &&
      result.top1_confidence < config_.confidence_floor) {
    result.low_confidence = true;
    ++low_confidence_;
    std::rotate(ranking.begin(),
                std::find(ranking.begin(), ranking.end(), fallback_model_),
                ranking.end());
  }

  // CMD: resolve against the model cache.
  const auto admission = cache_.admit(ranking);
  result.served_model = admission.served_model;
  result.cache_hit = admission.hit;
  result.model_loaded = admission.loaded.has_value();

  // MI: run the chosen compressed model.
  result.detections =
      system_->repository.detector(admission.served_model).detect(frame);

  result.model_switched =
      last_served_.has_value() && *last_served_ != admission.served_model;
  if (result.model_switched) ++switches_;
  last_served_ = admission.served_model;
  ++frames_;
  return result;
}

}  // namespace anole::core
