#include "core/scene_encoder.hpp"

#include "util/check.hpp"

namespace anole::core {

SceneEncoder::SceneEncoder(std::size_t class_count,
                           const SceneEncoderConfig& config, Rng& rng)
    : class_count_(class_count), config_(config) {
  ANOLE_CHECK_GE(class_count, 1u, "SceneEncoder: no scene classes");
  ANOLE_CHECK_GE(config.hidden_width, 1u, "SceneEncoder: hidden_width == 0");
  ANOLE_CHECK_GE(config.embedding_dim, 1u, "SceneEncoder: embedding_dim == 0");
  const std::size_t input = world::FrameFeaturizer::feature_count();
  trunk_ = std::make_unique<nn::Sequential>();
  trunk_->emplace<nn::Linear>(input, config.hidden_width, rng);
  trunk_->emplace<nn::ReLU>();
  trunk_->emplace<nn::Linear>(config.hidden_width, config.embedding_dim, rng);
  trunk_->emplace<nn::ReLU>();
  head_ = std::make_unique<nn::Sequential>();
  head_->emplace<nn::Linear>(config.embedding_dim, class_count, rng);
  trunk_->set_training(false);
  head_->set_training(false);
}

Tensor SceneEncoder::forward(const Tensor& input) {
  return head_->forward(trunk_->forward(input));
}

Tensor SceneEncoder::infer(const Tensor& input) const {
  return head_->infer(trunk_->infer(input));
}

Tensor SceneEncoder::backward(const Tensor& grad_output) {
  return trunk_->backward(head_->backward(grad_output));
}

std::vector<nn::Parameter*> SceneEncoder::parameters() {
  auto params = trunk_->parameters();
  for (nn::Parameter* p : head_->parameters()) params.push_back(p);
  return params;
}

void SceneEncoder::set_training(bool training) {
  nn::Module::set_training(training);
  trunk_->set_training(training);
  head_->set_training(training);
}

std::uint64_t SceneEncoder::flops_per_sample() const {
  return trunk_->flops_per_sample() + head_->flops_per_sample();
}

std::uint64_t SceneEncoder::trunk_flops_per_sample() const {
  return trunk_->flops_per_sample();
}

nn::TrainResult SceneEncoder::train(const Tensor& descriptors,
                                    std::span<const std::size_t> labels,
                                    Rng& rng, const Tensor& val_descriptors,
                                    std::span<const std::size_t> val_labels) {
  return nn::train_classifier(*this, descriptors, labels, config_.train, rng,
                              val_descriptors, val_labels);
}

Tensor SceneEncoder::embed(const Tensor& descriptors) {
  trunk_->set_training(false);
  return trunk_->forward(descriptors);
}

Tensor SceneEncoder::classify(const Tensor& descriptors) {
  set_training(false);
  return forward(descriptors);
}

}  // namespace anole::core
