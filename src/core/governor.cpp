#include "core/governor.hpp"

#include <cstdlib>
#include <string_view>

#include "tensor/simd.hpp"
#include "util/check.hpp"

namespace anole::core {

const char* to_string(GovernorState state) {
  switch (state) {
    case GovernorState::kNormal: return "normal";
    case GovernorState::kThrottled: return "throttled";
    case GovernorState::kShedding: return "shedding";
  }
  ANOLE_UNREACHABLE("unknown GovernorState ", static_cast<int>(state));
}

bool governor_enabled_from_env() {
  const char* value = std::getenv("ANOLE_GOVERNOR");
  return value == nullptr || std::string_view(value) != "0";
}

RuntimeGovernor::RuntimeGovernor(GovernorConfig config)
    : config_(config) {
  ANOLE_CHECK_GE(config_.window, 1u, "GovernorConfig: window must be >= 1");
  ANOLE_CHECK_GE(config_.ranking_refresh_period, 1u,
                 "GovernorConfig: ranking_refresh_period must be >= 1");
  ANOLE_CHECK_GE(config_.shed_period, 2u,
                 "GovernorConfig: shed_period must be >= 2 so shedding "
                 "never drops every frame");
  ANOLE_CHECK(config_.throttle_exit_rate <= config_.throttle_enter_rate,
              "GovernorConfig: throttle_exit_rate must not exceed "
              "throttle_enter_rate (hysteresis)");
  ANOLE_CHECK(config_.shed_exit_rate <= config_.shed_enter_rate,
              "GovernorConfig: shed_exit_rate must not exceed "
              "shed_enter_rate (hysteresis)");
  ANOLE_CHECK(config_.throttle_enter_rate <= config_.shed_enter_rate,
              "GovernorConfig: shed_enter_rate must be at least "
              "throttle_enter_rate");
  window_.assign(config_.window, 0);
}

GovernorDirective RuntimeGovernor::plan() {
  GovernorDirective directive;
  directive.state = state_;
  // Frames spent in the current state, counting this one as the first
  // when the state was just entered.
  const std::uint64_t in_state = planned_ - state_entered_at_;
  ++planned_;
  if (state_ == GovernorState::kNormal) return directive;

  directive.allow_swap = false;
  directive.refresh_ranking =
      (in_state % config_.ranking_refresh_period) == 0;
  if (state_ == GovernorState::kShedding &&
      (in_state % config_.shed_period) == config_.shed_period - 1) {
    directive.drop_frame = true;
    ++dropped_;
    trace_.push_back(GovernorEvent{planned_ - 1, state_, state_,
                                   /*dropped=*/true});
  }
  return directive;
}

void RuntimeGovernor::observe(double latency_ms, bool deadline_overrun) {
  ANOLE_CHECK_GE(latency_ms, 0.0,
                 "RuntimeGovernor::observe: negative latency");
  ++observed_;
  const std::uint8_t flag = deadline_overrun ? 1 : 0;
  if (window_filled_ < window_.size()) {
    window_[window_next_] = flag;
    ++window_filled_;
  } else {
    window_overruns_ -= window_[window_next_];
    window_[window_next_] = flag;
  }
  window_overruns_ += flag;
  window_next_ = (window_next_ + 1) % window_.size();
  // Only judge a full window: a handful of early frames should not trip
  // the controller.
  if (window_filled_ == window_.size()) maybe_transition();
}

double RuntimeGovernor::window_overrun_rate() const {
  if (window_filled_ == 0) return 0.0;
  return static_cast<double>(window_overruns_) /
         static_cast<double>(window_filled_);
}

void RuntimeGovernor::maybe_transition() {
  const double rate = window_overrun_rate();
  const std::uint64_t in_state = planned_ - state_entered_at_;
  switch (state_) {
    case GovernorState::kNormal:
      if (in_state < config_.min_dwell) return;
      if (rate >= config_.shed_enter_rate) {
        transition_to(GovernorState::kShedding);
      } else if (rate >= config_.throttle_enter_rate) {
        transition_to(GovernorState::kThrottled);
      }
      return;
    case GovernorState::kThrottled:
      if (rate >= config_.shed_enter_rate &&
          in_state >= config_.min_dwell) {
        transition_to(GovernorState::kShedding);
      } else if (rate <= config_.throttle_exit_rate &&
                 in_state >= config_.recovery_dwell) {
        transition_to(GovernorState::kNormal);
      }
      return;
    case GovernorState::kShedding:
      if (rate <= config_.shed_exit_rate &&
          in_state >= config_.recovery_dwell) {
        transition_to(GovernorState::kThrottled);
      }
      return;
  }
}

void RuntimeGovernor::transition_to(GovernorState next) {
  trace_.push_back(GovernorEvent{planned_, state_, next,
                                 /*dropped=*/false});
  state_ = next;
  state_entered_at_ = planned_;
  ++transitions_;
}

std::uint64_t RuntimeGovernor::trace_hash() const {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (value >> (8 * byte)) & 0xFFu;
      hash *= 0x100000001B3ULL;
    }
  };
  // The active SIMD dispatch level is part of the trace identity: a
  // replay under a different level (ANOLE_SIMD) is a different execution
  // environment and must not silently hash equal.
  mix(static_cast<std::uint64_t>(simd::active_level()) + 1);
  for (const GovernorEvent& event : trace_) {
    mix(event.frame);
    mix(static_cast<std::uint64_t>(event.from));
    mix(static_cast<std::uint64_t>(event.to));
    mix(event.dropped ? 1 : 0);
  }
  return hash;
}

void RuntimeGovernor::reset() {
  state_ = GovernorState::kNormal;
  window_.assign(config_.window, 0);
  window_next_ = 0;
  window_filled_ = 0;
  window_overruns_ = 0;
  planned_ = 0;
  observed_ = 0;
  dropped_ = 0;
  transitions_ = 0;
  state_entered_at_ = 0;
  trace_.clear();
}

}  // namespace anole::core
