#include "core/decision_model.hpp"

#include <algorithm>
#include <numeric>

#include "nn/loss.hpp"
#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"

namespace anole::core {

DecisionDataset build_decision_dataset(ModelRepository& repository,
                                       const DecisionSamplingConfig& config,
                                       Rng& rng) {
  ANOLE_CHECK(config.suitability_f1 > 0.0 && config.suitability_f1 <= 1.0,
              "build_decision_dataset: suitability_f1 must be in (0, 1], "
              "got ", config.suitability_f1);
  DecisionDataset dataset;
  const std::size_t n_models = repository.size();
  if (n_models == 0) return dataset;

  const auto sizes = repository.training_set_sizes();
  sampling::AdaptiveSceneSampler adaptive(sizes, config.theta);
  sampling::RandomSceneSampler random(sizes);

  const world::FrameFeaturizer featurizer;
  FloatBuffer feature_rows;
  FloatBuffer target_rows;
  std::size_t samples = 0;

  for (std::size_t round = 0; round < config.budget; ++round) {
    std::size_t arm;
    if (config.adaptive) {
      const auto next = adaptive.next_arm(rng);
      if (!next) break;  // every Gamma_i is well sampled
      arm = *next;
      adaptive.record_draw(arm);
    } else {
      arm = random.next_arm(rng);
      random.record_draw(arm);
    }

    const auto& model = repository.model(arm);
    const auto& pool = model.validation_frames.empty()
                           ? model.training_frames
                           : model.validation_frames;
    if (pool.empty()) continue;
    const world::Frame& frame = *pool[rng.uniform_index(pool.size())];

    // Test every compressed model on the sampled frame (paper IV-B); the
    // allocation vector marks the models whose frame-level F1 passes both
    // the absolute suitability threshold and a relative bar against the
    // per-frame best, weighted by their F1 so clearly better models get
    // more label mass.
    std::vector<double> scores(n_models, 0.0);
    // Scoring fans out over the pool through the const Detector::infer
    // path (disjoint writes, no rng draws, no module state). No work
    // hint: each model is a full network pass, always worth a chunk.
    par::parallel_for(0, n_models, 1, [&](std::size_t m) {
      scores[m] = detect::match_detections(
                      repository.detector(m).infer(frame), frame.objects)
                      .f1();
    });
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    const double bar = std::max(config.suitability_f1 * scores[best],
                                0.8 * scores[best]);
    std::vector<float> allocation(n_models, 0.0f);
    bool any = false;
    for (std::size_t m = 0; m < n_models; ++m) {
      if (scores[m] > 0.0 && scores[m] >= bar) {
        allocation[m] = static_cast<float>(scores[m]);
        any = true;
      }
    }
    if (!any) allocation[best] = 1.0f;

    // Normalize the allocation vector into a distribution.
    float sum = 0.0f;
    for (float v : allocation) sum += v;
    for (float& v : allocation) v /= sum;

    const Tensor descriptor = featurizer.featurize(frame);
    feature_rows.insert(feature_rows.end(), descriptor.data().begin(),
                        descriptor.data().end());
    target_rows.insert(target_rows.end(), allocation.begin(),
                       allocation.end());
    dataset.best_model.push_back(best);
    dataset.source_arm.push_back(arm);
    dataset.semantic_scene.push_back(frame.semantic_scene_id());
    ++samples;
  }

  const std::size_t width = world::FrameFeaturizer::feature_count();
  dataset.features = Tensor(Shape{samples, width}, std::move(feature_rows));
  dataset.targets = Tensor(Shape{samples, n_models}, std::move(target_rows));
  dataset.draws_per_model =
      config.adaptive ? adaptive.draw_counts() : random.draw_counts();
  return dataset;
}

DecisionModel::DecisionModel(SceneEncoder& encoder, std::size_t model_count,
                             const DecisionModelConfig& config, Rng& rng)
    : encoder_(&encoder), model_count_(model_count), config_(config) {
  ANOLE_CHECK_GE(model_count, 1u, "DecisionModel: no models to rank");
  ANOLE_CHECK_GE(config.hidden_width, 1u, "DecisionModel: hidden_width == 0");
  head_ = std::make_unique<nn::Sequential>();
  head_->emplace<nn::Linear>(encoder.embedding_dim(), config.hidden_width,
                             rng);
  head_->emplace<nn::ReLU>();
  head_->emplace<nn::Linear>(config.hidden_width, model_count, rng);
  head_->set_training(false);
}

nn::TrainResult DecisionModel::train(const DecisionDataset& dataset,
                                     Rng& rng) {
  ANOLE_CHECK_EQ(dataset.targets.cols(), model_count_,
                 "DecisionModel::train: target width != model count");
  // Backbone frozen: embed once, train only the head on the embeddings.
  const Tensor embeddings = encoder_->embed(dataset.features);
  return nn::train_soft_classifier(*head_, embeddings, dataset.targets,
                                   config_.train, rng);
}

Tensor DecisionModel::suitability(const Tensor& descriptors) {
  head_->set_training(false);
  return nn::softmax_rows(head_->forward(encoder_->embed(descriptors)));
}

std::vector<std::size_t> DecisionModel::rank(const Tensor& descriptor_row) {
  ANOLE_CHECK(descriptor_row.rank() == 2 && descriptor_row.rows() == 1,
              "DecisionModel::rank: expected a single descriptor row, got ",
              shape_to_string(descriptor_row.shape()));
  const Tensor probs = suitability(descriptor_row);
  std::vector<std::size_t> order(model_count_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  auto row = probs.row(0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row[a] != row[b]) return row[a] > row[b];
    return a < b;  // deterministic tie-break
  });
  return order;
}

std::uint64_t DecisionModel::flops_per_sample() const {
  return encoder_->trunk_flops_per_sample() + head_->flops_per_sample();
}

std::uint64_t DecisionModel::head_weight_bytes() {
  // Matches the artifact accounting: ANOLEWTS blob size while fp32, the
  // compact precision-tagged size once quantized (artifact v3).
  return nn::streamed_weight_bytes(*head_);
}

}  // namespace anole::core
