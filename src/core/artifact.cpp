#include "core/artifact.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace anole::core {
namespace {

constexpr std::array<char, 8> kMagic = {'A', 'N', 'O', 'L',
                                        'E', 'S', 'Y', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("load_system: truncated stream");
  return value;
}

void write_string(std::ostream& out, const std::string& value) {
  write_pod(out, static_cast<std::uint32_t>(value.size()));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint32_t>(in);
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("load_system: truncated string");
  return value;
}

void write_size_vector(std::ostream& out,
                       const std::vector<std::size_t>& values) {
  write_pod(out, static_cast<std::uint32_t>(values.size()));
  for (std::size_t v : values) {
    write_pod(out, static_cast<std::uint64_t>(v));
  }
}

std::vector<std::size_t> read_size_vector(std::istream& in) {
  const auto count = read_pod<std::uint32_t>(in);
  std::vector<std::size_t> values(count);
  for (auto& v : values) {
    v = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  }
  return values;
}

}  // namespace

void save_system(AnoleSystem& system, std::ostream& out) {
  if (!system.encoder || !system.decision) {
    throw std::runtime_error("save_system: incomplete system");
  }
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);

  // --- scene index ---
  write_size_vector(out, system.scene_index.semantic_ids());

  // --- encoder: architecture, then weights ---
  write_pod(out, static_cast<std::uint64_t>(system.encoder->class_count()));
  write_pod(out,
            static_cast<std::uint64_t>(system.encoder->config().hidden_width));
  write_pod(out, static_cast<std::uint64_t>(system.encoder->embedding_dim()));
  nn::save_parameters(*system.encoder, out);

  // --- repository ---
  write_pod(out, static_cast<std::uint32_t>(system.repository.size()));
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    SceneModel& model = system.repository.model(m);
    write_string(out, model.name);
    write_size_vector(out, model.scene_classes);
    write_pod(out, model.validation_f1);
    write_pod(out, static_cast<std::uint64_t>(model.cluster_k));
    const auto& config = model.detector->config();
    write_pod(out, static_cast<std::uint64_t>(model.detector->grid_size()));
    write_size_vector(out, config.hidden);
    write_pod(out, config.confidence_threshold);
    write_pod(out, config.nms_threshold);
    write_pod(out, config.nms_center_distance);
    nn::save_parameters(model.detector->network(), out);
  }

  // --- decision head ---
  write_pod(out,
            static_cast<std::uint64_t>(system.decision->config().hidden_width));
  write_pod(out, static_cast<std::uint32_t>(system.decision->model_count()));
  nn::save_parameters(system.decision->head(), out);

  if (!out) throw std::runtime_error("save_system: write failed");
}

AnoleSystem load_system(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_system: bad magic");
  }
  if (read_pod<std::uint32_t>(in) != kVersion) {
    throw std::runtime_error("load_system: unsupported version");
  }

  AnoleSystem system;
  // Weights are overwritten after construction, so the init RNG seed is
  // irrelevant; a fixed seed keeps loading deterministic anyway.
  Rng rng(0xA401EULL);

  system.scene_index =
      SemanticSceneIndex::from_semantic_ids(read_size_vector(in));

  const auto class_count =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  SceneEncoderConfig encoder_config;
  encoder_config.hidden_width =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  encoder_config.embedding_dim =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  system.encoder =
      std::make_unique<SceneEncoder>(class_count, encoder_config, rng);
  nn::load_parameters(*system.encoder, in);

  const auto model_count = read_pod<std::uint32_t>(in);
  for (std::uint32_t m = 0; m < model_count; ++m) {
    SceneModel model;
    model.name = read_string(in);
    model.scene_classes = read_size_vector(in);
    model.validation_f1 = read_pod<double>(in);
    model.cluster_k = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    const auto grid_size =
        static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    detect::GridDetectorConfig config;
    config.hidden = read_size_vector(in);
    config.confidence_threshold = read_pod<double>(in);
    config.nms_threshold = read_pod<double>(in);
    config.nms_center_distance = read_pod<double>(in);
    config.name = model.name;
    model.detector =
        std::make_unique<detect::GridDetector>(config, rng, grid_size);
    nn::load_parameters(model.detector->network(), in);
    system.repository.add(std::move(model));
  }

  DecisionModelConfig decision_config;
  decision_config.hidden_width =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto decision_models = read_pod<std::uint32_t>(in);
  system.decision = std::make_unique<DecisionModel>(
      *system.encoder, decision_models, decision_config, rng);
  nn::load_parameters(system.decision->head(), in);
  return system;
}

void save_system_to_file(AnoleSystem& system, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_system(system, out);
}

AnoleSystem load_system_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_system(in);
}

std::uint64_t system_artifact_bytes(AnoleSystem& system) {
  std::ostringstream out;
  save_system(system, out);
  return out.str().size();
}

}  // namespace anole::core
