#include "core/artifact.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/quantize.hpp"
#include "nn/serialize.hpp"

namespace anole::core {
namespace {

constexpr std::array<char, 8> kMagic = {'A', 'N', 'O', 'L',
                                        'E', 'S', 'Y', 'S'};
constexpr std::uint32_t kVersionLegacy = 1;
constexpr std::uint32_t kVersionSections = 2;

using nn::read_pod;
using nn::try_read_pod;
using nn::write_pod;

// v2 section tags. Vital sections are written first so tail truncation
// can only damage model sections.
constexpr std::uint32_t kSectionSceneIndex = 1;
constexpr std::uint32_t kSectionEncoder = 2;
constexpr std::uint32_t kSectionDecision = 3;
constexpr std::uint32_t kSectionModel = 4;

// Upper bound on a single section payload; a corrupted size field must
// not turn into a multi-gigabyte allocation.
constexpr std::uint64_t kMaxSectionBytes = 1ull << 30;

void write_string(std::ostream& out, const std::string& value) {
  write_pod(out, static_cast<std::uint32_t>(value.size()));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

std::string read_string(std::istream& in) {
  const auto size = read_pod<std::uint32_t>(in);
  std::string value(size, '\0');
  in.read(value.data(), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("load_system: truncated string");
  return value;
}

void write_size_vector(std::ostream& out,
                       const std::vector<std::size_t>& values) {
  write_pod(out, static_cast<std::uint32_t>(values.size()));
  for (std::size_t v : values) {
    write_pod(out, static_cast<std::uint64_t>(v));
  }
}

std::vector<std::size_t> read_size_vector(std::istream& in) {
  const auto count = read_pod<std::uint32_t>(in);
  std::vector<std::size_t> values(count);
  for (auto& v : values) {
    v = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  }
  return values;
}

// --- section payloads (shared between the v1 inline layout and the v2
// sectioned layout; each function reads/writes exactly one logical unit
// from the given stream) ---

void write_scene_index(std::ostream& out, AnoleSystem& system) {
  write_size_vector(out, system.scene_index.semantic_ids());
}

void read_scene_index(std::istream& in, AnoleSystem& system) {
  system.scene_index =
      SemanticSceneIndex::from_semantic_ids(read_size_vector(in));
}

void write_encoder(std::ostream& out, AnoleSystem& system) {
  write_pod(out, static_cast<std::uint64_t>(system.encoder->class_count()));
  write_pod(out,
            static_cast<std::uint64_t>(system.encoder->config().hidden_width));
  write_pod(out, static_cast<std::uint64_t>(system.encoder->embedding_dim()));
  nn::save_parameters(*system.encoder, out);
}

void read_encoder(std::istream& in, AnoleSystem& system, Rng& rng) {
  const auto class_count =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  SceneEncoderConfig encoder_config;
  encoder_config.hidden_width =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  encoder_config.embedding_dim =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  system.encoder =
      std::make_unique<SceneEncoder>(class_count, encoder_config, rng);
  nn::load_parameters(*system.encoder, in);
}

void write_model(std::ostream& out, SceneModel& model) {
  write_string(out, model.name);
  write_size_vector(out, model.scene_classes);
  write_pod(out, model.validation_f1);
  write_pod(out, static_cast<std::uint64_t>(model.cluster_k));
  const auto& config = model.detector->config();
  write_pod(out, static_cast<std::uint64_t>(model.detector->grid_size()));
  write_size_vector(out, config.hidden);
  write_pod(out, config.confidence_threshold);
  write_pod(out, config.nms_threshold);
  write_pod(out, config.nms_center_distance);
  nn::save_parameters(model.detector->network(), out);
}

SceneModel read_model(std::istream& in, Rng& rng) {
  SceneModel model;
  model.name = read_string(in);
  model.scene_classes = read_size_vector(in);
  model.validation_f1 = read_pod<double>(in);
  model.cluster_k = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto grid_size =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  detect::GridDetectorConfig config;
  config.hidden = read_size_vector(in);
  config.confidence_threshold = read_pod<double>(in);
  config.nms_threshold = read_pod<double>(in);
  config.nms_center_distance = read_pod<double>(in);
  config.name = model.name;
  model.detector =
      std::make_unique<detect::GridDetector>(config, rng, grid_size);
  nn::load_parameters(model.detector->network(), in);
  return model;
}

// --- v3 compact payloads: narrow metadata fields plus the precision-
// tagged nn::save_network body. The framing (sections, CRCs, recovery)
// is identical to v2; only the payload encoding differs. ---

void write_u16_vector(std::ostream& out,
                      const std::vector<std::size_t>& values) {
  if (values.size() > 0xFFFF) {
    throw std::runtime_error("save_system: vector too long for v3");
  }
  write_pod(out, static_cast<std::uint16_t>(values.size()));
  for (std::size_t v : values) {
    if (v > 0xFFFF) {
      throw std::runtime_error("save_system: value too large for v3");
    }
    write_pod(out, static_cast<std::uint16_t>(v));
  }
}

std::vector<std::size_t> read_u16_vector(std::istream& in) {
  const auto count = read_pod<std::uint16_t>(in);
  std::vector<std::size_t> values(count);
  for (auto& v : values) {
    v = static_cast<std::size_t>(read_pod<std::uint16_t>(in));
  }
  return values;
}

void write_model_v3(std::ostream& out, SceneModel& model) {
  write_string(out, model.name);
  write_u16_vector(out, model.scene_classes);
  write_pod(out, model.validation_f1);
  write_pod(out, static_cast<std::uint16_t>(model.cluster_k));
  const auto& config = model.detector->config();
  write_pod(out, static_cast<std::uint16_t>(model.detector->grid_size()));
  write_u16_vector(out, config.hidden);
  write_pod(out, config.confidence_threshold);
  write_pod(out, config.nms_threshold);
  write_pod(out, config.nms_center_distance);
  nn::save_network(model.detector->network(), out);
}

SceneModel read_model_v3(std::istream& in, Rng& rng) {
  SceneModel model;
  model.name = read_string(in);
  model.scene_classes = read_u16_vector(in);
  model.validation_f1 = read_pod<double>(in);
  model.cluster_k = static_cast<std::size_t>(read_pod<std::uint16_t>(in));
  const auto grid_size =
      static_cast<std::size_t>(read_pod<std::uint16_t>(in));
  detect::GridDetectorConfig config;
  config.hidden = read_u16_vector(in);
  config.confidence_threshold = read_pod<double>(in);
  config.nms_threshold = read_pod<double>(in);
  config.nms_center_distance = read_pod<double>(in);
  config.name = model.name;
  model.detector =
      std::make_unique<detect::GridDetector>(config, rng, grid_size);
  nn::load_network(model.detector->network(), in);
  return model;
}

void write_decision_v3(std::ostream& out, AnoleSystem& system) {
  write_pod(out,
            static_cast<std::uint16_t>(system.decision->config().hidden_width));
  write_pod(out, static_cast<std::uint16_t>(system.decision->model_count()));
  nn::save_network(system.decision->head(), out);
}

void read_decision_v3(std::istream& in, AnoleSystem& system, Rng& rng) {
  DecisionModelConfig decision_config;
  decision_config.hidden_width =
      static_cast<std::size_t>(read_pod<std::uint16_t>(in));
  const auto decision_models = read_pod<std::uint16_t>(in);
  system.decision = std::make_unique<DecisionModel>(
      *system.encoder, decision_models, decision_config, rng);
  nn::load_network(system.decision->head(), in);
}

/// True when any network in the system carries a quantized layer; v1/v2
/// writers must reject such systems (their fp32 parameter walk would
/// silently drop quantized weights).
bool any_quantized(AnoleSystem& system) {
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    if (nn::is_quantized(system.repository.model(m).detector->network())) {
      return true;
    }
  }
  return system.decision && nn::is_quantized(system.decision->head());
}

void write_decision(std::ostream& out, AnoleSystem& system) {
  write_pod(out,
            static_cast<std::uint64_t>(system.decision->config().hidden_width));
  write_pod(out, static_cast<std::uint32_t>(system.decision->model_count()));
  nn::save_parameters(system.decision->head(), out);
}

void read_decision(std::istream& in, AnoleSystem& system, Rng& rng) {
  DecisionModelConfig decision_config;
  decision_config.hidden_width =
      static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto decision_models = read_pod<std::uint32_t>(in);
  system.decision = std::make_unique<DecisionModel>(
      *system.encoder, decision_models, decision_config, rng);
  nn::load_parameters(system.decision->head(), in);
}

/// Stand-in for a model whose artifact section was damaged. It keeps the
/// repository width (and thus the decision-head wiring) intact but must
/// never serve: the engine quarantines every damaged slot permanently.
SceneModel make_placeholder_model(std::size_t model_id, Rng& rng) {
  SceneModel model;
  model.name = "damaged-" + std::to_string(model_id);
  detect::GridDetectorConfig config = detect::GridDetectorConfig::compressed();
  config.name = model.name;
  model.detector = std::make_unique<detect::GridDetector>(config, rng);
  return model;
}

/// Serializes one logical unit into a buffer and emits it as a v2 section:
/// u32 tag, u64 payload size, u32 CRC-32 of the payload, payload bytes.
template <typename WriteBody>
void write_section(std::ostream& out, std::uint32_t tag, WriteBody&& body) {
  std::ostringstream buffer(std::ios::binary);
  body(buffer);
  const std::string payload = buffer.str();
  write_pod(out, tag);
  write_pod(out, static_cast<std::uint64_t>(payload.size()));
  write_pod(out, nn::crc32(payload.data(), payload.size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
}

void save_system_v1(AnoleSystem& system, std::ostream& out) {
  write_scene_index(out, system);
  write_encoder(out, system);
  write_pod(out, static_cast<std::uint32_t>(system.repository.size()));
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    write_model(out, system.repository.model(m));
  }
  write_decision(out, system);
}

void load_system_v1(std::istream& in, AnoleSystem& system, Rng& rng) {
  read_scene_index(in, system);
  read_encoder(in, system, rng);
  const auto model_count = read_pod<std::uint32_t>(in);
  for (std::uint32_t m = 0; m < model_count; ++m) {
    system.repository.add(read_model(in, rng));
  }
  read_decision(in, system, rng);
}

void save_system_sections(AnoleSystem& system, std::ostream& out,
                          std::uint32_t version) {
  const auto model_count =
      static_cast<std::uint32_t>(system.repository.size());
  write_pod(out, model_count);
  write_pod(out, static_cast<std::uint32_t>(model_count + 3));  // sections
  write_section(out, kSectionSceneIndex,
                [&](std::ostream& s) { write_scene_index(s, system); });
  write_section(out, kSectionEncoder,
                [&](std::ostream& s) { write_encoder(s, system); });
  write_section(out, kSectionDecision, [&](std::ostream& s) {
    if (version >= kArtifactVersion) {
      write_decision_v3(s, system);
    } else {
      write_decision(s, system);
    }
  });
  for (std::uint32_t m = 0; m < model_count; ++m) {
    write_section(out, kSectionModel, [&](std::ostream& s) {
      if (version >= kArtifactVersion) {
        write_model_v3(s, system.repository.model(m));
      } else {
        write_model(s, system.repository.model(m));
      }
    });
  }
}

void load_system_sections(std::istream& in, AnoleSystem& system,
                          fault::FaultInjector* faults, Rng& rng,
                          std::uint32_t version) {
  const auto model_count = read_pod<std::uint32_t>(in);
  const auto section_count = read_pod<std::uint32_t>(in);
  bool have_index = false;
  bool have_encoder = false;
  bool have_decision = false;
  std::uint32_t models_read = 0;
  bool truncated = false;

  for (std::uint32_t s = 0; s < section_count && !truncated; ++s) {
    // Section header. Truncation here is recoverable only once every
    // vital section has been read: the missing tail is all models.
    std::uint32_t tag = 0;
    std::uint64_t size = 0;
    std::uint32_t expected_crc = 0;
    if (!try_read_pod(in, tag) || !try_read_pod(in, size) ||
        !try_read_pod(in, expected_crc)) {
      if (have_index && have_encoder && have_decision) {
        truncated = true;
        break;
      }
      throw std::runtime_error("load_system: truncated before section " +
                               std::to_string(s));
    }
    if (size > kMaxSectionBytes) {
      throw std::runtime_error("load_system: implausible section size");
    }
    std::string payload(static_cast<std::size_t>(size), '\0');
    in.read(payload.data(), static_cast<std::streamsize>(size));
    const bool payload_complete = static_cast<bool>(in);
    if (!payload_complete && tag != kSectionModel) {
      throw std::runtime_error("load_system: truncated vital section " +
                               std::to_string(tag));
    }
    // Injected storage rot: flip one deterministic bit, then let the
    // checksum below catch it exactly as real corruption would be caught.
    if (faults != nullptr && !payload.empty() &&
        faults->should_fail(fault::Site::kArtifactSection, s)) {
      const std::size_t bit =
          faults->draw_index(fault::Site::kArtifactSection,
                             payload.size() * 8);
      payload[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(payload[bit / 8]) ^
          (1u << (bit % 8)));
    }
    const bool intact =
        payload_complete &&
        nn::crc32(payload.data(), payload.size()) == expected_crc;

    if (tag == kSectionModel) {
      if (models_read >= model_count) {
        throw std::runtime_error("load_system: more model sections than "
                                 "the header's model count");
      }
      const std::size_t model_id = models_read++;
      bool added = false;
      if (intact) {
        std::istringstream section(payload, std::ios::binary);
        try {
          system.repository.add(version >= kArtifactVersion
                                    ? read_model_v3(section, rng)
                                    : read_model(section, rng));
          added = true;
        } catch (const std::exception&) {
          // CRC passed but the payload would not parse; treat the slot
          // as damaged rather than aborting the boot.
        }
      }
      if (!added) {
        system.repository.add(make_placeholder_model(model_id, rng));
        system.damaged_models.push_back(model_id);
      }
      if (!payload_complete) truncated = true;
      continue;
    }

    if (!intact) {
      throw std::runtime_error("load_system: checksum mismatch in vital "
                               "section " + std::to_string(tag));
    }
    std::istringstream section(payload, std::ios::binary);
    switch (tag) {
      case kSectionSceneIndex:
        read_scene_index(section, system);
        have_index = true;
        break;
      case kSectionEncoder:
        read_encoder(section, system, rng);
        have_encoder = true;
        break;
      case kSectionDecision:
        if (!system.encoder) {
          throw std::runtime_error(
              "load_system: decision section before encoder");
        }
        if (version >= kArtifactVersion) {
          read_decision_v3(section, system, rng);
        } else {
          read_decision(section, system, rng);
        }
        have_decision = true;
        break;
      default:
        throw std::runtime_error("load_system: unknown section tag " +
                                 std::to_string(tag));
    }
  }

  if (!have_index || !have_encoder || !have_decision) {
    throw std::runtime_error("load_system: artifact missing a vital section");
  }
  // Models lost to tail truncation: keep the repository (and decision
  // head) at full width with quarantined placeholders.
  while (models_read < model_count) {
    const std::size_t model_id = models_read++;
    system.repository.add(make_placeholder_model(model_id, rng));
    system.damaged_models.push_back(model_id);
  }
  if (!system.damaged_models.empty() &&
      system.damaged_models.size() >= system.repository.size()) {
    throw std::runtime_error(
        "load_system: every model section was damaged");
  }
}

}  // namespace

void save_system(AnoleSystem& system, std::ostream& out,
                 std::uint32_t version) {
  if (!system.encoder || !system.decision) {
    throw std::runtime_error("save_system: incomplete system");
  }
  if (version != kVersionLegacy && version != kVersionSections &&
      version != kArtifactVersion) {
    throw std::runtime_error("save_system: unsupported version " +
                             std::to_string(version));
  }
  if (version < kArtifactVersion && any_quantized(system)) {
    throw std::runtime_error(
        "save_system: version " + std::to_string(version) +
        " cannot represent quantized layers; use v3 or dequantize first");
  }
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, version);
  if (version == kVersionLegacy) {
    save_system_v1(system, out);
  } else {
    save_system_sections(system, out, version);
  }
  if (!out) throw std::runtime_error("save_system: write failed");
}

AnoleSystem load_system(std::istream& in, fault::FaultInjector* faults) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("load_system: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);

  AnoleSystem system;
  // Weights are overwritten after construction, so the init RNG seed is
  // irrelevant; a fixed seed keeps loading deterministic anyway.
  Rng rng(0xA401EULL);

  if (version == kVersionLegacy) {
    load_system_v1(in, system, rng);
  } else if (version == kVersionSections || version == kArtifactVersion) {
    load_system_sections(in, system, faults, rng, version);
  } else {
    throw std::runtime_error("load_system: unsupported version");
  }
  // The ANOLE_QUANT=0 escape hatch: serve fp32 even from a quantized
  // artifact (the dequantized weights are the codes the int8 kernel
  // would have used, so accuracy is unchanged; only speed is).
  if (!nn::quantization_enabled()) {
    for (std::size_t m = 0; m < system.repository.size(); ++m) {
      nn::dequantize_linear_layers(
          system.repository.model(m).detector->network());
    }
    if (system.decision) {
      nn::dequantize_linear_layers(system.decision->head());
    }
  }
  return system;
}

void save_system_to_file(AnoleSystem& system, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  save_system(system, out);
}

AnoleSystem load_system_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return load_system(in);
}

std::uint64_t system_artifact_bytes(AnoleSystem& system) {
  std::ostringstream out(std::ios::binary);
  save_system(system, out);
  return out.str().size();
}

}  // namespace anole::core
