// M_decision (paper sections IV-B, IV-C, V-A): the model classifier that
// maps a test frame to a model-allocation vector of per-compressed-model
// suitability probabilities. It reuses M_scene's trunk as a frozen
// backbone and trains a small MLP head on the sample sets produced by
// Adaptive Scene Sampling.
#pragma once

#include <memory>
#include <vector>

#include "core/repository.hpp"
#include "core/scene_encoder.hpp"
#include "nn/trainer.hpp"
#include "sampling/thompson.hpp"

namespace anole::core {

/// The labeled dataset built by ASS: descriptors plus allocation vectors.
struct DecisionDataset {
  /// [n, descriptor] frame descriptors.
  Tensor features;
  /// [n, models] allocation vectors normalized to row sum 1.
  Tensor targets;
  /// Argmax-suitable model per sample (for confusion matrices).
  std::vector<std::size_t> best_model;
  /// Which arm (model training set) each sample was drawn from.
  std::vector<std::size_t> source_arm;
  /// Semantic scene id of each sampled frame.
  std::vector<std::size_t> semantic_scene;
  /// How many samples were drawn from each model's Gamma_i.
  std::vector<double> draws_per_model;
};

struct DecisionSamplingConfig {
  /// Total sampling budget kappa.
  std::size_t budget = 1200;
  /// Well-sampledness confidence theta.
  double theta = 0.9;
  /// A model is "suitable" for a frame when its frame-level F1 reaches
  /// this threshold.
  double suitability_f1 = 0.5;
  /// Use Thompson sampling (the paper's ASS); false = the random baseline.
  bool adaptive = true;
};

/// Runs ASS over the repository: repeatedly picks a training set Gamma_i,
/// draws a frame from it, tests every compressed model on the frame, and
/// labels the frame with the set of suitable models.
DecisionDataset build_decision_dataset(ModelRepository& repository,
                                       const DecisionSamplingConfig& config,
                                       Rng& rng);

struct DecisionModelConfig {
  std::size_t hidden_width = 32;
  nn::TrainConfig train;

  DecisionModelConfig() {
    train.epochs = 40;
    train.batch_size = 32;
    train.learning_rate = 2e-3;
  }
};

class DecisionModel {
 public:
  /// `encoder` must outlive the decision model; its trunk is shared and
  /// kept frozen (paper section IV-C).
  DecisionModel(SceneEncoder& encoder, std::size_t model_count,
                const DecisionModelConfig& config, Rng& rng);

  /// Trains the head on an ASS dataset (backbone stays frozen).
  nn::TrainResult train(const DecisionDataset& dataset, Rng& rng);

  /// Suitability probabilities for a batch of descriptors: [n, models].
  Tensor suitability(const Tensor& descriptors);

  /// Model indices sorted by descending suitability for one descriptor row.
  std::vector<std::size_t> rank(const Tensor& descriptor_row);

  std::size_t model_count() const { return model_count_; }
  const DecisionModelConfig& config() const { return config_; }

  /// Inference cost: frozen trunk + head.
  std::uint64_t flops_per_sample() const;

  /// Serialized size of the head (the downloadable M_decision artifact).
  std::uint64_t head_weight_bytes();

  nn::Sequential& head() { return *head_; }

 private:
  SceneEncoder* encoder_;
  std::size_t model_count_;
  DecisionModelConfig config_;
  std::unique_ptr<nn::Sequential> head_;
};

}  // namespace anole::core
