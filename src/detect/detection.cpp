#include "detect/detection.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace anole::detect {

double iou(double acx, double acy, double aw, double ah, double bcx,
           double bcy, double bw, double bh) {
  const double ax0 = acx - aw / 2;
  const double ax1 = acx + aw / 2;
  const double ay0 = acy - ah / 2;
  const double ay1 = acy + ah / 2;
  const double bx0 = bcx - bw / 2;
  const double bx1 = bcx + bw / 2;
  const double by0 = bcy - bh / 2;
  const double by1 = bcy + bh / 2;
  const double ix = std::max(0.0, std::min(ax1, bx1) - std::max(ax0, bx0));
  const double iy = std::max(0.0, std::min(ay1, by1) - std::max(ay0, by0));
  const double intersection = ix * iy;
  const double union_area = aw * ah + bw * bh - intersection;
  return union_area > 0.0 ? intersection / union_area : 0.0;
}

double iou(const Detection& a, const Detection& b) {
  return iou(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

double iou(const Detection& a, const world::ObjectInstance& b) {
  return iou(a.cx, a.cy, a.w, a.h, b.cx, b.cy, b.w, b.h);
}

std::vector<Detection> non_maximum_suppression(std::vector<Detection> dets,
                                               double threshold,
                                               double min_center_distance) {
  ANOLE_CHECK(threshold >= 0.0 && threshold <= 1.0,
              "non_maximum_suppression: threshold must be in [0, 1], got ",
              threshold);
  ANOLE_CHECK_GE(min_center_distance, 0.0,
                 "non_maximum_suppression: negative center distance");
  // Index sort with the repo's tie-break idiom: equal confidences keep
  // their arrival order no matter how the sort implementation pivots.
  std::vector<std::size_t> order(dets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (dets[a].confidence != dets[b].confidence) {
      return dets[a].confidence > dets[b].confidence;
    }
    return a < b;  // deterministic tie-break
  });
  const double min_dist_sq = min_center_distance * min_center_distance;
  std::vector<Detection> kept;
  for (const std::size_t idx : order) {
    const Detection& candidate = dets[idx];
    bool suppressed = false;
    for (const auto& keeper : kept) {
      const double dx = candidate.cx - keeper.cx;
      const double dy = candidate.cy - keeper.cy;
      if (iou(candidate, keeper) > threshold ||
          dx * dx + dy * dy < min_dist_sq) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

MatchCounts& MatchCounts::operator+=(const MatchCounts& other) {
  true_positives += other.true_positives;
  false_positives += other.false_positives;
  false_negatives += other.false_negatives;
  return *this;
}

double MatchCounts::precision() const {
  const std::size_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MatchCounts::recall() const {
  const std::size_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double MatchCounts::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

MatchCounts match_detections(const std::vector<Detection>& detections,
                             const std::vector<world::ObjectInstance>& truth,
                             double iou_threshold) {
  ANOLE_CHECK(iou_threshold > 0.0 && iou_threshold <= 1.0,
              "match_detections: iou_threshold must be in (0, 1], got ",
              iou_threshold);
  std::vector<std::size_t> order(detections.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (detections[a].confidence != detections[b].confidence) {
      return detections[a].confidence > detections[b].confidence;
    }
    return a < b;  // deterministic tie-break
  });

  std::vector<bool> truth_matched(truth.size(), false);
  MatchCounts counts;
  for (std::size_t idx : order) {
    const Detection& det = detections[idx];
    double best_iou = iou_threshold;
    std::size_t best_truth = truth.size();
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (truth_matched[t]) continue;
      const double overlap = iou(det, truth[t]);
      if (overlap >= best_iou) {
        best_iou = overlap;
        best_truth = t;
      }
    }
    if (best_truth < truth.size()) {
      truth_matched[best_truth] = true;
      ++counts.true_positives;
    } else {
      ++counts.false_positives;
    }
  }
  for (bool matched : truth_matched) {
    if (!matched) ++counts.false_negatives;
  }
  return counts;
}

}  // namespace anole::detect
