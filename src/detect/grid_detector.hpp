// GridDetector: the trainable object detector over cell-grid frames.
//
// This is the repo's stand-in for YOLOv3 (large preset) and YOLOv3-tiny
// (compressed preset): a per-cell prediction head shared across all grid
// cells — the 1x1-conv view of a one-stage detector. Each cell's input is
// its own features plus a global context descriptor (per-channel mean and
// spread of the whole frame), so a sufficiently large head can *adapt* its
// decision rule to the scene, while a small head lacks the capacity to do
// so across many scenes — the exact asymmetry Anole exploits.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "detect/detection.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"
#include "world/frame.hpp"

namespace anole::detect {

/// Abstract detector, the unit Anole routes between.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Runs detection on one frame (post NMS).
  virtual std::vector<Detection> detect(const world::Frame& frame) = 0;

  /// Const detection path: identical results to detect(), but guaranteed
  /// to write no state (it runs the network through nn::Module::infer),
  /// so concurrent infer() calls on one detector are safe as long as no
  /// thread mutates the detector concurrently. This is what the engine's
  /// batch path fans out over frames.
  virtual std::vector<Detection> infer(const world::Frame& frame) const = 0;

  virtual std::string name() const = 0;

  /// Per-frame multiply-accumulate cost (drives the device simulator).
  virtual std::uint64_t flops_per_frame() const = 0;

  /// Serialized weight size in bytes (drives load latency and memory).
  virtual std::uint64_t weight_bytes() = 0;
};

struct GridDetectorConfig {
  /// Hidden layer widths of the shared per-cell head.
  std::vector<std::size_t> hidden = {24};
  /// Confidence threshold for emitting a detection.
  double confidence_threshold = 0.5;
  /// NMS IoU threshold (low: duplicate firings on adjacent cells of one
  /// object overlap only partially).
  double nms_threshold = 0.30;
  /// NMS center-distance suppression radius (~1.2 cells at grid 12).
  double nms_center_distance = 0.10;
  std::string name = "grid-detector";

  /// Compressed preset — the YOLOv3-tiny stand-in.
  static GridDetectorConfig compressed(std::string name = "tiny");
  /// Large preset — the YOLOv3 stand-in (roughly 10x the FLOPs).
  static GridDetectorConfig large(std::string name = "deep");
};

class GridDetector : public Detector {
 public:
  /// Outputs per cell: objectness logit + (dx, dy, w, h).
  static constexpr std::size_t kOutputsPerCell = 5;

  GridDetector(const GridDetectorConfig& config, Rng& rng,
               std::size_t grid_size = world::kDefaultGridSize);

  std::vector<Detection> detect(const world::Frame& frame) override;
  std::vector<Detection> infer(const world::Frame& frame) const override;
  std::string name() const override { return config_.name; }
  std::uint64_t flops_per_frame() const override;
  std::uint64_t weight_bytes() override;

  /// Width of one per-cell input row.
  static std::size_t input_features();

  /// Builds the [cells, input_features] matrix for one frame.
  static Tensor build_inputs(const world::Frame& frame);

  /// Per-cell training targets for one frame: objectness [cells, 1],
  /// box regression [cells, 4], and the positive-cell mask [cells, 4].
  struct Targets {
    Tensor objectness;
    Tensor boxes;
    Tensor box_mask;
  };
  static Targets build_targets(const world::Frame& frame);

  nn::Sequential& network() { return *network_; }
  const GridDetectorConfig& config() const { return config_; }
  std::size_t grid_size() const { return grid_size_; }

  void set_confidence_threshold(double threshold) {
    config_.confidence_threshold = threshold;
  }

 private:
  GridDetectorConfig config_;
  std::size_t grid_size_;
  std::unique_ptr<nn::Sequential> network_;
};

}  // namespace anole::detect
