// Training loop for GridDetector: joint objectness BCE (with positive
// weighting — object cells are rare) and masked box-regression MSE.
#pragma once

#include <vector>

#include "detect/grid_detector.hpp"
#include "util/rng.hpp"

namespace anole::detect {

struct DetectorTrainConfig {
  std::size_t epochs = 12;
  std::size_t frames_per_batch = 8;
  double learning_rate = 2e-3;
  double weight_decay = 1e-5;
  /// Loss weight on box regression relative to objectness.
  double box_loss_weight = 1.0;
  /// BCE weight on positive (object) cells.
  double positive_weight = 6.0;
  /// When > 0, epoch count is scaled so a training set of
  /// `reference_frames` frames and a smaller specialist set receive a
  /// comparable number of gradient steps (capped at 6x `epochs`). This is
  /// how scene-specific models get fully fine-tuned on their small
  /// Gamma_i, mirroring the paper's per-scene fine-tuning budget.
  std::size_t reference_frames = 0;
  bool verbose = false;

  /// Epochs actually run for a training set of `frames` frames.
  std::size_t effective_epochs(std::size_t frames) const;
};

struct DetectorTrainResult {
  std::vector<double> epoch_losses;
  std::size_t frames_seen = 0;
};

/// Trains `detector` on `frames` (ground truth comes from each frame).
DetectorTrainResult train_detector(GridDetector& detector,
                                   const std::vector<const world::Frame*>& frames,
                                   const DetectorTrainConfig& config,
                                   Rng& rng);

/// Mean frame-level F1 of a detector over frames.
double evaluate_f1(Detector& detector,
                   const std::vector<const world::Frame*>& frames,
                   double iou_threshold = kDefaultIouThreshold);

/// Aggregate match counts of a detector over frames.
MatchCounts evaluate_counts(Detector& detector,
                            const std::vector<const world::Frame*>& frames,
                            double iou_threshold = kDefaultIouThreshold);

}  // namespace anole::detect
