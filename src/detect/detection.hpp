// Detection types and box geometry shared by detectors and evaluation.
#pragma once

#include <cstddef>
#include <vector>

#include "world/frame.hpp"

namespace anole::detect {

/// Default IoU threshold for counting a detection as a true positive.
/// The paper uses the conventional 0.5 on pixel detectors; on this repo's
/// coarse 12x12 cell grid a box cannot be localized to IoU-0.5 precision,
/// so 0.3 is the calibrated equivalent (documented in DESIGN.md).
inline constexpr double kDefaultIouThreshold = 0.3;

/// One predicted box in normalized frame coordinates.
struct Detection {
  double cx = 0.0;
  double cy = 0.0;
  double w = 0.0;
  double h = 0.0;
  double confidence = 0.0;
};

/// Intersection-over-union of two center-format boxes.
double iou(double acx, double acy, double aw, double ah, double bcx,
           double bcy, double bw, double bh);

double iou(const Detection& a, const Detection& b);
double iou(const Detection& a, const world::ObjectInstance& b);

/// Greedy non-maximum suppression: keeps detections in descending
/// confidence order, dropping any with IoU > `threshold` against a keeper
/// or with center distance below `min_center_distance` (duplicate firings
/// on adjacent grid cells of one object can have low IoU when the boxes
/// are thin, so IoU alone under-suppresses).
std::vector<Detection> non_maximum_suppression(
    std::vector<Detection> dets, double threshold = 0.30,
    double min_center_distance = 0.0);

/// Confusion counts from greedy IoU matching.
struct MatchCounts {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  MatchCounts& operator+=(const MatchCounts& other);

  double precision() const;
  double recall() const;
  double f1() const;
};

/// Greedy matching of detections (by descending confidence) to ground
/// truth at the given IoU threshold. Each ground-truth object matches at
/// most one detection.
MatchCounts match_detections(const std::vector<Detection>& detections,
                             const std::vector<world::ObjectInstance>& truth,
                             double iou_threshold = kDefaultIouThreshold);

}  // namespace anole::detect
