#include "detect/grid_detector.hpp"

#include <algorithm>
#include <cmath>

#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "world/scene_style.hpp"

namespace anole::detect {
namespace {

/// Context descriptor width: per-channel mean and stddev of the frame.
constexpr std::size_t kContextFeatures = 2 * world::kCellChannels;

void write_context(const world::Frame& frame, std::span<float> out) {
  const std::size_t cells = frame.cell_count();
  const float* cp = frame.cells.data().data();
  // One row-major sweep instead of a strided column walk per channel;
  // each channel still accumulates in ascending cell order, so the sums
  // (and the context features) are bitwise unchanged.
  double sum[world::kCellChannels] = {};
  double sum_sq[world::kCellChannels] = {};
  for (std::size_t i = 0; i < cells; ++i) {
    const float* cell = cp + i * world::kCellChannels;
    for (std::size_t c = 0; c < world::kCellChannels; ++c) {
      const float v = cell[c];
      sum[c] += v;
      sum_sq[c] += static_cast<double>(v) * v;
    }
  }
  for (std::size_t c = 0; c < world::kCellChannels; ++c) {
    const double mean = sum[c] / static_cast<double>(cells);
    const double var =
        std::max(0.0, sum_sq[c] / static_cast<double>(cells) - mean * mean);
    out[c] = static_cast<float>(mean);
    out[world::kCellChannels + c] = static_cast<float>(std::sqrt(var));
  }
}

}  // namespace

GridDetectorConfig GridDetectorConfig::compressed(std::string name) {
  GridDetectorConfig config;
  config.hidden = {16};
  config.name = std::move(name);
  return config;
}

GridDetectorConfig GridDetectorConfig::large(std::string name) {
  GridDetectorConfig config;
  config.hidden = {64, 64, 48};
  config.name = std::move(name);
  return config;
}

GridDetector::GridDetector(const GridDetectorConfig& config, Rng& rng,
                           std::size_t grid_size)
    : config_(config), grid_size_(grid_size) {
  ANOLE_CHECK_GE(grid_size, 1u, "GridDetector: grid_size == 0");
  // A threshold above 1 is legal: it suppresses every detection.
  ANOLE_CHECK_GE(config.confidence_threshold, 0.0,
                 "GridDetector: negative confidence_threshold");
  std::vector<std::size_t> widths;
  widths.push_back(input_features());
  for (std::size_t h : config.hidden) widths.push_back(h);
  widths.push_back(kOutputsPerCell);
  network_ = nn::make_mlp(widths, rng);
  network_->set_training(false);
}

std::size_t GridDetector::input_features() {
  // Cell channels + global context + normalized cell coordinates +
  // 3x3-neighborhood mean of the object block (local-peak cue, so the
  // shared head can suppress off-center cells of multi-cell objects).
  return world::kCellChannels + kContextFeatures + 2 + world::kBlockChannels;
}

Tensor GridDetector::build_inputs(const world::Frame& frame) {
  const std::size_t g = frame.grid_size;
  const std::size_t cells = frame.cell_count();
  ANOLE_CHECK(frame.cells.rank() == 2 && frame.cells.rows() == cells &&
                  frame.cells.cols() == world::kCellChannels,
              "GridDetector::build_inputs: frame cell tensor shape ",
              shape_to_string(frame.cells.shape()), " does not match grid ",
              g, "x", g);
  // Hot on both the serving and training paths (every infer featurizes
  // its frame), so the assembly runs on raw row pointers: same values in
  // the same order as the span-per-cell version, minus the per-access
  // span construction and index arithmetic. Every element of every row
  // is written below, so the zero-fill is skipped too.
  const std::size_t features = input_features();
  Tensor inputs = Tensor::uninitialized(Shape{cells, features});
  std::vector<float> context(kContextFeatures);
  write_context(frame, context);
  float* const ip = inputs.data().data();
  const float* const cp = frame.cells.data().data();
  for (std::size_t y = 0; y < g; ++y) {
    for (std::size_t x = 0; x < g; ++x) {
      const std::size_t i = y * g + x;
      float* row = ip + i * features;
      const float* cell = cp + i * world::kCellChannels;
      std::copy(cell, cell + world::kCellChannels, row);
      std::copy(context.begin(), context.end(), row + world::kCellChannels);
      row[world::kCellChannels + kContextFeatures] =
          static_cast<float>(x) / static_cast<float>(g);
      row[world::kCellChannels + kContextFeatures + 1] =
          static_cast<float>(y) / static_cast<float>(g);
      // Neighborhood mean of the object block.
      float neighborhood[world::kBlockChannels] = {};
      int count = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = static_cast<int>(x) + dx;
          const int ny = static_cast<int>(y) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<int>(g) ||
              ny >= static_cast<int>(g)) {
            continue;
          }
          const float* neighbor =
              cp + (static_cast<std::size_t>(ny) * g +
                    static_cast<std::size_t>(nx)) *
                       world::kCellChannels;
          for (std::size_t c = 0; c < world::kBlockChannels; ++c) {
            neighborhood[c] += neighbor[2 * world::kBlockChannels + c];
          }
          ++count;
        }
      }
      for (std::size_t c = 0; c < world::kBlockChannels; ++c) {
        row[world::kCellChannels + kContextFeatures + 2 + c] =
            neighborhood[c] / static_cast<float>(count);
      }
    }
  }
  return inputs;
}

GridDetector::Targets GridDetector::build_targets(const world::Frame& frame) {
  const std::size_t g = frame.grid_size;
  Targets targets;
  targets.objectness = Tensor::matrix(frame.cell_count(), 1);
  targets.boxes = Tensor::matrix(frame.cell_count(), 4);
  targets.box_mask = Tensor::matrix(frame.cell_count(), 4);
  for (const auto& obj : frame.objects) {
    const auto x = static_cast<std::size_t>(std::clamp(
        obj.cx * static_cast<double>(g), 0.0, static_cast<double>(g - 1)));
    const auto y = static_cast<std::size_t>(std::clamp(
        obj.cy * static_cast<double>(g), 0.0, static_cast<double>(g - 1)));
    const std::size_t i = y * g + x;
    targets.objectness.at(i, 0) = 1.0f;
    // Offsets of the center within its cell, then absolute size.
    targets.boxes.at(i, 0) = static_cast<float>(
        obj.cx * static_cast<double>(g) - static_cast<double>(x));
    targets.boxes.at(i, 1) = static_cast<float>(
        obj.cy * static_cast<double>(g) - static_cast<double>(y));
    targets.boxes.at(i, 2) = static_cast<float>(obj.w);
    targets.boxes.at(i, 3) = static_cast<float>(obj.h);
    for (std::size_t c = 0; c < 4; ++c) targets.box_mask.at(i, c) = 1.0f;
  }
  return targets;
}

std::vector<Detection> GridDetector::detect(const world::Frame& frame) {
  // Detection never backpropagates (training drives network().forward
  // directly), so the mutable path just delegates to the const one.
  return infer(frame);
}

std::vector<Detection> GridDetector::infer(const world::Frame& frame) const {
  const std::size_t g = frame.grid_size;
  ANOLE_CHECK_EQ(g, grid_size_,
                 "GridDetector::infer: frame grid does not match the grid "
                 "this detector was built for");
  Tensor inputs = build_inputs(frame);
  Tensor outputs = network_->infer(inputs);
  std::vector<Detection> detections;
  for (std::size_t y = 0; y < g; ++y) {
    for (std::size_t x = 0; x < g; ++x) {
      const std::size_t i = y * g + x;
      auto row = outputs.row(i);
      const double confidence = 1.0 / (1.0 + std::exp(-row[0]));
      if (confidence < config_.confidence_threshold) continue;
      Detection det;
      det.confidence = confidence;
      const double dx = std::clamp(static_cast<double>(row[1]), 0.0, 1.0);
      const double dy = std::clamp(static_cast<double>(row[2]), 0.0, 1.0);
      det.cx = (static_cast<double>(x) + dx) / static_cast<double>(g);
      det.cy = (static_cast<double>(y) + dy) / static_cast<double>(g);
      det.w = std::clamp(static_cast<double>(row[3]), 0.02, 0.5);
      det.h = std::clamp(static_cast<double>(row[4]), 0.02, 0.5);
      detections.push_back(det);
    }
  }
  return non_maximum_suppression(std::move(detections), config_.nms_threshold,
                                 config_.nms_center_distance);
}

std::uint64_t GridDetector::flops_per_frame() const {
  return network_->flops_per_sample() *
         static_cast<std::uint64_t>(grid_size_ * grid_size_);
}

std::uint64_t GridDetector::weight_bytes() {
  // fp32 networks report the ANOLEWTS blob size (artifact v1/v2
  // accounting); quantized networks report the compact v3 wire size, so
  // cache misses charge ~4x fewer streamed bytes.
  return nn::streamed_weight_bytes(*network_);
}

}  // namespace anole::detect
