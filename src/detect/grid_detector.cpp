#include "detect/grid_detector.hpp"

#include <algorithm>
#include <cmath>

#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "world/scene_style.hpp"

namespace anole::detect {
namespace {

/// Context descriptor width: per-channel mean and stddev of the frame.
constexpr std::size_t kContextFeatures = 2 * world::kCellChannels;

void write_context(const world::Frame& frame, std::span<float> out) {
  const std::size_t cells = frame.cell_count();
  for (std::size_t c = 0; c < world::kCellChannels; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (std::size_t i = 0; i < cells; ++i) {
      const float v = frame.cells.at(i, c);
      sum += v;
      sum_sq += static_cast<double>(v) * v;
    }
    const double mean = sum / static_cast<double>(cells);
    const double var =
        std::max(0.0, sum_sq / static_cast<double>(cells) - mean * mean);
    out[c] = static_cast<float>(mean);
    out[world::kCellChannels + c] = static_cast<float>(std::sqrt(var));
  }
}

}  // namespace

GridDetectorConfig GridDetectorConfig::compressed(std::string name) {
  GridDetectorConfig config;
  config.hidden = {16};
  config.name = std::move(name);
  return config;
}

GridDetectorConfig GridDetectorConfig::large(std::string name) {
  GridDetectorConfig config;
  config.hidden = {64, 64, 48};
  config.name = std::move(name);
  return config;
}

GridDetector::GridDetector(const GridDetectorConfig& config, Rng& rng,
                           std::size_t grid_size)
    : config_(config), grid_size_(grid_size) {
  ANOLE_CHECK_GE(grid_size, 1u, "GridDetector: grid_size == 0");
  // A threshold above 1 is legal: it suppresses every detection.
  ANOLE_CHECK_GE(config.confidence_threshold, 0.0,
                 "GridDetector: negative confidence_threshold");
  std::vector<std::size_t> widths;
  widths.push_back(input_features());
  for (std::size_t h : config.hidden) widths.push_back(h);
  widths.push_back(kOutputsPerCell);
  network_ = nn::make_mlp(widths, rng);
  network_->set_training(false);
}

std::size_t GridDetector::input_features() {
  // Cell channels + global context + normalized cell coordinates +
  // 3x3-neighborhood mean of the object block (local-peak cue, so the
  // shared head can suppress off-center cells of multi-cell objects).
  return world::kCellChannels + kContextFeatures + 2 + world::kBlockChannels;
}

Tensor GridDetector::build_inputs(const world::Frame& frame) {
  const std::size_t g = frame.grid_size;
  const std::size_t cells = frame.cell_count();
  ANOLE_CHECK(frame.cells.rank() == 2 && frame.cells.rows() == cells &&
                  frame.cells.cols() == world::kCellChannels,
              "GridDetector::build_inputs: frame cell tensor shape ",
              shape_to_string(frame.cells.shape()), " does not match grid ",
              g, "x", g);
  Tensor inputs = Tensor::matrix(cells, input_features());
  std::vector<float> context(kContextFeatures);
  write_context(frame, context);
  for (std::size_t y = 0; y < g; ++y) {
    for (std::size_t x = 0; x < g; ++x) {
      const std::size_t i = y * g + x;
      auto row = inputs.row(i);
      auto cell = frame.cells.row(i);
      std::copy(cell.begin(), cell.end(), row.begin());
      std::copy(context.begin(), context.end(),
                row.begin() + world::kCellChannels);
      row[world::kCellChannels + kContextFeatures] =
          static_cast<float>(x) / static_cast<float>(g);
      row[world::kCellChannels + kContextFeatures + 1] =
          static_cast<float>(y) / static_cast<float>(g);
      // Neighborhood mean of the object block.
      float neighborhood[world::kBlockChannels] = {};
      int count = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = static_cast<int>(x) + dx;
          const int ny = static_cast<int>(y) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<int>(g) ||
              ny >= static_cast<int>(g)) {
            continue;
          }
          auto neighbor = frame.cells.row(static_cast<std::size_t>(ny) * g +
                                          static_cast<std::size_t>(nx));
          for (std::size_t c = 0; c < world::kBlockChannels; ++c) {
            neighborhood[c] += neighbor[2 * world::kBlockChannels + c];
          }
          ++count;
        }
      }
      for (std::size_t c = 0; c < world::kBlockChannels; ++c) {
        row[world::kCellChannels + kContextFeatures + 2 + c] =
            neighborhood[c] / static_cast<float>(count);
      }
    }
  }
  return inputs;
}

GridDetector::Targets GridDetector::build_targets(const world::Frame& frame) {
  const std::size_t g = frame.grid_size;
  Targets targets;
  targets.objectness = Tensor::matrix(frame.cell_count(), 1);
  targets.boxes = Tensor::matrix(frame.cell_count(), 4);
  targets.box_mask = Tensor::matrix(frame.cell_count(), 4);
  for (const auto& obj : frame.objects) {
    const auto x = static_cast<std::size_t>(std::clamp(
        obj.cx * static_cast<double>(g), 0.0, static_cast<double>(g - 1)));
    const auto y = static_cast<std::size_t>(std::clamp(
        obj.cy * static_cast<double>(g), 0.0, static_cast<double>(g - 1)));
    const std::size_t i = y * g + x;
    targets.objectness.at(i, 0) = 1.0f;
    // Offsets of the center within its cell, then absolute size.
    targets.boxes.at(i, 0) = static_cast<float>(
        obj.cx * static_cast<double>(g) - static_cast<double>(x));
    targets.boxes.at(i, 1) = static_cast<float>(
        obj.cy * static_cast<double>(g) - static_cast<double>(y));
    targets.boxes.at(i, 2) = static_cast<float>(obj.w);
    targets.boxes.at(i, 3) = static_cast<float>(obj.h);
    for (std::size_t c = 0; c < 4; ++c) targets.box_mask.at(i, c) = 1.0f;
  }
  return targets;
}

std::vector<Detection> GridDetector::detect(const world::Frame& frame) {
  const std::size_t g = frame.grid_size;
  ANOLE_CHECK_EQ(g, grid_size_,
                 "GridDetector::detect: frame grid does not match the grid "
                 "this detector was built for");
  Tensor inputs = build_inputs(frame);
  Tensor outputs = network_->forward(inputs);
  std::vector<Detection> detections;
  for (std::size_t y = 0; y < g; ++y) {
    for (std::size_t x = 0; x < g; ++x) {
      const std::size_t i = y * g + x;
      auto row = outputs.row(i);
      const double confidence = 1.0 / (1.0 + std::exp(-row[0]));
      if (confidence < config_.confidence_threshold) continue;
      Detection det;
      det.confidence = confidence;
      const double dx = std::clamp(static_cast<double>(row[1]), 0.0, 1.0);
      const double dy = std::clamp(static_cast<double>(row[2]), 0.0, 1.0);
      det.cx = (static_cast<double>(x) + dx) / static_cast<double>(g);
      det.cy = (static_cast<double>(y) + dy) / static_cast<double>(g);
      det.w = std::clamp(static_cast<double>(row[3]), 0.02, 0.5);
      det.h = std::clamp(static_cast<double>(row[4]), 0.02, 0.5);
      detections.push_back(det);
    }
  }
  return non_maximum_suppression(std::move(detections), config_.nms_threshold,
                                 config_.nms_center_distance);
}

std::uint64_t GridDetector::flops_per_frame() const {
  return network_->flops_per_sample() *
         static_cast<std::uint64_t>(grid_size_ * grid_size_);
}

std::uint64_t GridDetector::weight_bytes() {
  // fp32 networks report the ANOLEWTS blob size (artifact v1/v2
  // accounting); quantized networks report the compact v3 wire size, so
  // cache misses charge ~4x fewer streamed bytes.
  return nn::streamed_weight_bytes(*network_);
}

}  // namespace anole::detect
