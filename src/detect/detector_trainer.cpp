#include "detect/detector_trainer.hpp"

#include <algorithm>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace anole::detect {
namespace {

/// Splits detector outputs [cells, 5] into objectness [cells, 1] and
/// boxes [cells, 4] views (copies; cheap at this scale).
void split_outputs(const Tensor& outputs, Tensor& objectness, Tensor& boxes) {
  const std::size_t cells = outputs.rows();
  // Every element is written below; skip the zero-fills.
  objectness = Tensor::uninitialized(Shape{cells, 1});
  boxes = Tensor::uninitialized(Shape{cells, 4});
  for (std::size_t i = 0; i < cells; ++i) {
    auto row = outputs.row(i);
    objectness.at(i, 0) = row[0];
    for (std::size_t c = 0; c < 4; ++c) boxes.at(i, c) = row[c + 1];
  }
}

Tensor merge_gradients(const Tensor& grad_objectness, const Tensor& grad_boxes,
                       double box_weight) {
  const std::size_t cells = grad_objectness.rows();
  Tensor grad =
      Tensor::uninitialized(Shape{cells, GridDetector::kOutputsPerCell});
  for (std::size_t i = 0; i < cells; ++i) {
    auto row = grad.row(i);
    row[0] = grad_objectness.at(i, 0);
    for (std::size_t c = 0; c < 4; ++c) {
      row[c + 1] = static_cast<float>(box_weight) * grad_boxes.at(i, c);
    }
  }
  return grad;
}

}  // namespace

std::size_t DetectorTrainConfig::effective_epochs(std::size_t frames) const {
  if (reference_frames == 0 || frames == 0 || frames >= reference_frames) {
    return epochs;
  }
  const std::size_t scaled = epochs * reference_frames / frames;
  return std::min(scaled, epochs * 6);
}

DetectorTrainResult train_detector(
    GridDetector& detector, const std::vector<const world::Frame*>& frames,
    const DetectorTrainConfig& config, Rng& rng) {
  ANOLE_CHECK_GE(config.frames_per_batch, 1u,
                 "train_detector: frames_per_batch == 0 would never advance");
  ANOLE_CHECK(config.learning_rate > 0.0,
              "train_detector: learning_rate must be positive, got ",
              config.learning_rate);
  DetectorTrainResult result;
  result.frames_seen = frames.size();
  if (frames.empty()) return result;

  nn::Sequential& net = detector.network();
  net.set_training(true);
  nn::Adam optimizer(net.parameters(), config.learning_rate, 0.9, 0.999,
                     1e-8, config.weight_decay);

  // Featurize every frame once up front: inputs and targets are pure
  // functions of the frame, and rebuilding them per batch per epoch used
  // to dominate the non-GEMM training profile.
  std::vector<Tensor> cached_inputs(frames.size());
  std::vector<GridDetector::Targets> cached_targets(frames.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    cached_inputs[f] = GridDetector::build_inputs(*frames[f]);
    cached_targets[f] = GridDetector::build_targets(*frames[f]);
  }

  const std::size_t epochs = config.effective_epochs(frames.size());
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    auto order = random_permutation(frames.size(), rng);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += config.frames_per_batch) {
      const std::size_t end =
          std::min(start + config.frames_per_batch, order.size());
      // Stack the per-cell rows of all frames in the batch.
      std::vector<const Tensor*> frame_inputs;
      std::vector<const GridDetector::Targets*> frame_targets;
      std::size_t total_cells = 0;
      for (std::size_t k = start; k < end; ++k) {
        frame_inputs.push_back(&cached_inputs[order[k]]);
        frame_targets.push_back(&cached_targets[order[k]]);
        total_cells += frames[order[k]]->cell_count();
      }
      // The assembly loop below writes every row of all four tensors, so
      // the zero-fill of Tensor::matrix would be pure overwritten work.
      Tensor inputs = Tensor::uninitialized(
          Shape{total_cells, GridDetector::input_features()});
      Tensor target_obj = Tensor::uninitialized(Shape{total_cells, 1});
      Tensor target_boxes = Tensor::uninitialized(Shape{total_cells, 4});
      Tensor box_mask = Tensor::uninitialized(Shape{total_cells, 4});
      std::size_t row = 0;
      for (std::size_t f = 0; f < frame_inputs.size(); ++f) {
        const std::size_t cells = frame_inputs[f]->rows();
        for (std::size_t i = 0; i < cells; ++i, ++row) {
          auto src = frame_inputs[f]->row(i);
          std::copy(src.begin(), src.end(), inputs.row(row).begin());
          target_obj.at(row, 0) = frame_targets[f]->objectness.at(i, 0);
          for (std::size_t c = 0; c < 4; ++c) {
            target_boxes.at(row, c) = frame_targets[f]->boxes.at(i, c);
            box_mask.at(row, c) = frame_targets[f]->box_mask.at(i, c);
          }
        }
      }

      Tensor outputs = net.forward(inputs);
      Tensor objectness;
      Tensor boxes;
      split_outputs(outputs, objectness, boxes);

      Tensor grad_obj;
      Tensor grad_boxes;
      const float obj_loss =
          nn::bce_with_logits(objectness, target_obj, grad_obj,
                              static_cast<float>(config.positive_weight));
      const float box_loss =
          nn::mse_loss(boxes, target_boxes, grad_boxes, box_mask);
      net.backward(
          merge_gradients(grad_obj, grad_boxes, config.box_loss_weight));
      optimizer.step();
      epoch_loss += obj_loss + config.box_loss_weight * box_loss;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(batches, 1));
    result.epoch_losses.push_back(epoch_loss);
    if (config.verbose) {
      log_info(detector.name(), " epoch ", epoch, " loss ", epoch_loss);
    }
  }
  net.set_training(false);
  return result;
}

double evaluate_f1(Detector& detector,
                   const std::vector<const world::Frame*>& frames,
                   double iou_threshold) {
  return evaluate_counts(detector, frames, iou_threshold).f1();
}

MatchCounts evaluate_counts(Detector& detector,
                            const std::vector<const world::Frame*>& frames,
                            double iou_threshold) {
  MatchCounts counts;
  for (const world::Frame* frame : frames) {
    ANOLE_CHECK_NOTNULL(frame, "evaluate_counts: null frame pointer");
    counts += match_detections(detector.detect(*frame), frame->objects,
                               iou_threshold);
  }
  return counts;
}

}  // namespace anole::detect
