// k-means with k-means++ seeding, plus the multi-granularity sweep used by
// Algorithm 1 (clustering scene embeddings at k = 2, 3, ... levels).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace anole::cluster {

struct KMeansConfig {
  std::size_t clusters = 2;
  std::size_t max_iterations = 50;
  /// Stop when no assignment changes.
  bool early_stop = true;
};

struct KMeansResult {
  /// [clusters, features] centroids.
  Tensor centroids;
  /// Cluster index of each input row.
  std::vector<std::size_t> assignments;
  /// Sum of squared distances to assigned centroids.
  double inertia = 0.0;
  std::size_t iterations = 0;

  /// Number of points in each cluster.
  std::vector<std::size_t> cluster_sizes() const;
};

/// Lloyd's algorithm over the rows of `points` ([n, d]); k-means++ init.
/// Requires points.rows() >= config.clusters.
KMeansResult kmeans(const Tensor& points, const KMeansConfig& config,
                    Rng& rng);

/// Index of the centroid nearest to `point` (a [d] or [1, d] tensor row).
std::size_t nearest_centroid(const Tensor& centroids,
                             std::span<const float> point);

/// Squared Euclidean distance between two equal-length spans.
double squared_distance(std::span<const float> a, std::span<const float> b);

}  // namespace anole::cluster
