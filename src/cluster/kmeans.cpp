#include "cluster/kmeans.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "tensor/simd.hpp"
#include "util/check.hpp"
#include "util/parallel.hpp"

namespace anole::cluster {
namespace {

/// Floor for points per parallel chunk in the O(n*k*d) scans. The actual
/// grain is derived from the per-point work via par::work_grain, so small
/// problems produce few, coarse chunks instead of waking the pool for
/// microseconds of work. Fixed (thread-count independent) so chunked
/// reductions stay deterministic.
constexpr std::size_t kPointGrain = 64;

}  // namespace

double squared_distance(std::span<const float> a, std::span<const float> b) {
  ANOLE_CHECK_EQ(a.size(), b.size(), "squared_distance: length mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    sum += diff * diff;
  }
  return sum;
}

std::size_t nearest_centroid(const Tensor& centroids,
                             std::span<const float> point) {
  ANOLE_CHECK(centroids.rank() == 2 && centroids.rows() > 0,
              "nearest_centroid: centroids must be a non-empty [k, d]");
  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::max();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const double d = squared_distance(centroids.row(c), point);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

std::vector<std::size_t> KMeansResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(centroids.rows(), 0);
  for (std::size_t a : assignments) ++sizes[a];
  return sizes;
}

KMeansResult kmeans(const Tensor& points, const KMeansConfig& config,
                    Rng& rng) {
  ANOLE_CHECK_EQ(points.rank(), 2u, "kmeans: points must be [n, d]");
  const std::size_t n = points.rows();
  const std::size_t d = points.cols();
  const std::size_t k = config.clusters;
  ANOLE_CHECK(k >= 1 && n >= k, "kmeans: need at least k points (k=", k,
              ", n=", n, ")");
  ANOLE_CHECK_GE(config.max_iterations, 1u, "kmeans: max_iterations == 0");

  KMeansResult result;
  result.centroids = Tensor::matrix(k, d);

  // --- k-means++ seeding ---
  // The distance scans fan out over points (disjoint writes); the random
  // draws stay on the calling thread, so the seeding sequence is
  // independent of the thread count.
  std::vector<double> min_distance(n, std::numeric_limits<double>::max());
  std::size_t first = rng.uniform_index(n);
  std::copy(points.row(first).begin(), points.row(first).end(),
            result.centroids.row(0).begin());
  for (std::size_t c = 1; c < k; ++c) {
    par::parallel_for(0, n, kPointGrain, d, [&](std::size_t i) {
      const double dist =
          squared_distance(points.row(i), result.centroids.row(c - 1));
      min_distance[i] = std::min(min_distance[i], dist);
    });
    double total = 0.0;
    for (double v : min_distance) total += v;
    std::size_t chosen;
    if (total <= 0.0) {
      chosen = rng.uniform_index(n);
    } else {
      chosen = rng.weighted_index(min_distance);
    }
    std::copy(points.row(chosen).begin(), points.row(chosen).end(),
              result.centroids.row(c).begin());
  }

  // --- Lloyd iterations ---
  result.assignments.assign(n, 0);
  // Assignment is the O(n*k*d) step and runs through the dispatched
  // distance kernel (tensor/simd.hpp): centroids are staged in a
  // lane-transposed double copy (ct[dim * k_stride + c]) so vector lanes
  // map to centroids. Every dispatch level accumulates each lane in
  // ascending dimension order with separate mul+add — bitwise identical
  // to squared_distance — so assignments (and therefore the whole
  // clustering) are independent of the SIMD level and thread count.
  const simd::Level level = simd::active_level();
  const std::size_t k_stride =
      (k + simd::kKmeansLaneMultiple - 1) / simd::kKmeansLaneMultiple *
      simd::kKmeansLaneMultiple;
  std::vector<double> centroids_t(d * k_stride, 0.0);
  const std::size_t work_per_point = k * d;
  const std::size_t point_grain = par::work_grain(kPointGrain, work_per_point);
  for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
    for (std::size_t c = 0; c < k; ++c) {
      const auto row = result.centroids.row(c);
      for (std::size_t dim = 0; dim < d; ++dim) {
        centroids_t[dim * k_stride + c] = static_cast<double>(row[dim]);
      }
    }
    const std::size_t changes = par::parallel_reduce(
        std::size_t{0}, n, point_grain, work_per_point, std::size_t{0},
        [&](std::size_t lo, std::size_t hi) {
          // Padding lanes (c >= k) compute distances to the zero vector;
          // the argmin below never reads them.
          std::vector<double> dist(k_stride);
          std::size_t chunk_changes = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            simd::kmeans_distances(level, points.row(i).data(), d,
                                   centroids_t.data(), k_stride, dist.data());
            std::size_t nearest = 0;
            double best = dist[0];
            for (std::size_t c = 1; c < k; ++c) {
              if (dist[c] < best) {
                best = dist[c];
                nearest = c;
              }
            }
            if (nearest != result.assignments[i]) {
              result.assignments[i] = nearest;
              ++chunk_changes;
            }
          }
          return chunk_changes;
        },
        [](std::size_t acc, std::size_t partial) { return acc + partial; });
    bool changed = changes > 0;
    result.iterations = iter + 1;

    // Recompute centroids; empty clusters grab the point furthest from
    // its centroid to avoid collapse.
    Tensor sums = Tensor::matrix(k, d);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto sum_row = sums.row(result.assignments[i]);
      auto point = points.row(i);
      for (std::size_t j = 0; j < d; ++j) sum_row[j] += point[j];
      ++counts[result.assignments[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed from the globally worst-fit point.
        double worst = -1.0;
        std::size_t worst_idx = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double dist = squared_distance(
              points.row(i), result.centroids.row(result.assignments[i]));
          if (dist > worst) {
            worst = dist;
            worst_idx = i;
          }
        }
        std::copy(points.row(worst_idx).begin(), points.row(worst_idx).end(),
                  result.centroids.row(c).begin());
        result.assignments[worst_idx] = c;
        changed = true;
        continue;
      }
      auto centroid = result.centroids.row(c);
      auto sum_row = sums.row(c);
      for (std::size_t j = 0; j < d; ++j) {
        centroid[j] = sum_row[j] / static_cast<float>(counts[c]);
      }
    }
    if (config.early_stop && !changed) break;
  }

  result.inertia = par::parallel_reduce(
      std::size_t{0}, n, kPointGrain, d, 0.0,
      [&](std::size_t lo, std::size_t hi) {
        double partial = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          partial += squared_distance(
              points.row(i), result.centroids.row(result.assignments[i]));
        }
        return partial;
      },
      [](double acc, double partial) { return acc + partial; });
  return result;
}

}  // namespace anole::cluster
