// Windowed-F1 series and related helpers for the cross-scene CDF figures
// (paper computes F1 every ten frames, Fig. 8 / Fig. 10).
#pragma once

#include <functional>
#include <vector>

#include "detect/detection.hpp"
#include "world/frame.hpp"

namespace anole::eval {

/// Any per-frame detector: a baseline method or the Anole engine.
using InferFn =
    std::function<std::vector<detect::Detection>(const world::Frame&)>;

/// F1 computed over consecutive windows of `window` frames (the last,
/// possibly shorter window is included when it has at least one frame).
std::vector<double> windowed_f1(const InferFn& infer,
                                const std::vector<const world::Frame*>& frames,
                                std::size_t window = 10,
                                double iou_threshold = detect::kDefaultIouThreshold);

/// Aggregate F1 over all frames.
double overall_f1(const InferFn& infer,
                  const std::vector<const world::Frame*>& frames,
                  double iou_threshold = detect::kDefaultIouThreshold);

}  // namespace anole::eval
