#include "eval/confusion.hpp"

#include "util/check.hpp"
#include "util/table.hpp"

namespace anole::eval {

ConfusionMatrix::ConfusionMatrix(std::size_t classes)
    : classes_(classes), counts_(classes * classes, 0) {
  ANOLE_CHECK_GE(classes, 1u, "ConfusionMatrix: classes must be >= 1");
}

void ConfusionMatrix::add(std::size_t truth, std::size_t predicted) {
  ANOLE_CHECK_RANGE(truth, classes_, "ConfusionMatrix::add: truth label");
  ANOLE_CHECK_RANGE(predicted, classes_,
                    "ConfusionMatrix::add: predicted label");
  ++counts_[truth * classes_ + predicted];
}

std::size_t ConfusionMatrix::count(std::size_t truth,
                                   std::size_t predicted) const {
  return counts_.at(truth * classes_ + predicted);
}

std::size_t ConfusionMatrix::total() const {
  std::size_t sum = 0;
  for (std::size_t c : counts_) sum += c;
  return sum;
}

double ConfusionMatrix::accuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  std::size_t diagonal = 0;
  for (std::size_t i = 0; i < classes_; ++i) diagonal += count(i, i);
  return static_cast<double>(diagonal) / static_cast<double>(all);
}

double ConfusionMatrix::normalized(std::size_t truth,
                                   std::size_t predicted) const {
  std::size_t row_total = 0;
  for (std::size_t p = 0; p < classes_; ++p) row_total += count(truth, p);
  if (row_total == 0) return 0.0;
  return static_cast<double>(count(truth, predicted)) /
         static_cast<double>(row_total);
}

std::vector<double> ConfusionMatrix::per_class_recall() const {
  std::vector<double> recalls(classes_, 0.0);
  for (std::size_t i = 0; i < classes_; ++i) {
    recalls[i] = normalized(i, i);
  }
  return recalls;
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < classes_; ++i) {
    std::size_t row_total = 0;
    for (std::size_t p = 0; p < classes_; ++p) row_total += count(i, p);
    if (row_total == 0) continue;
    sum += normalized(i, i);
    ++active;
  }
  return active == 0 ? 0.0 : sum / static_cast<double>(active);
}

std::string ConfusionMatrix::to_table(
    const std::vector<std::string>& labels) const {
  std::vector<std::string> header;
  header.push_back("truth\\pred");
  for (std::size_t c = 0; c < classes_; ++c) {
    header.push_back(c < labels.size() ? labels[c] : std::to_string(c));
  }
  anole::TablePrinter table(std::move(header));
  for (std::size_t t = 0; t < classes_; ++t) {
    std::vector<std::string> row;
    row.push_back(t < labels.size() ? labels[t] : std::to_string(t));
    for (std::size_t p = 0; p < classes_; ++p) {
      row.push_back(anole::format_double(normalized(t, p), 2));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

}  // namespace anole::eval
