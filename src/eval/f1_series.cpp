#include "eval/f1_series.hpp"

namespace anole::eval {

std::vector<double> windowed_f1(const InferFn& infer,
                                const std::vector<const world::Frame*>& frames,
                                std::size_t window, double iou_threshold) {
  std::vector<double> series;
  if (window == 0) window = 1;
  detect::MatchCounts counts;
  std::size_t in_window = 0;
  for (const world::Frame* frame : frames) {
    counts += detect::match_detections(infer(*frame), frame->objects,
                                       iou_threshold);
    if (++in_window == window) {
      series.push_back(counts.f1());
      counts = {};
      in_window = 0;
    }
  }
  if (in_window > 0) series.push_back(counts.f1());
  return series;
}

double overall_f1(const InferFn& infer,
                  const std::vector<const world::Frame*>& frames,
                  double iou_threshold) {
  detect::MatchCounts counts;
  for (const world::Frame* frame : frames) {
    counts += detect::match_detections(infer(*frame), frame->objects,
                                       iou_threshold);
  }
  return counts.f1();
}

}  // namespace anole::eval
