// Confusion matrices for the scene encoder and decision model (Fig. 6).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace anole::eval {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t classes);

  void add(std::size_t truth, std::size_t predicted);

  std::size_t classes() const { return classes_; }
  std::size_t count(std::size_t truth, std::size_t predicted) const;
  std::size_t total() const;

  /// Overall top-1 accuracy.
  double accuracy() const;

  /// Row-normalized value (P(pred | truth)); 0 for empty rows.
  double normalized(std::size_t truth, std::size_t predicted) const;

  /// Per-class recall (diagonal of the row-normalized matrix).
  std::vector<double> per_class_recall() const;

  /// Mean of per-class recalls over classes with at least one sample
  /// (balanced accuracy).
  double balanced_accuracy() const;

  /// Renders the row-normalized matrix as an ASCII table.
  std::string to_table(const std::vector<std::string>& labels = {}) const;

 private:
  std::size_t classes_;
  std::vector<std::size_t> counts_;  // row-major [truth, predicted]
};

}  // namespace anole::eval
