file(REMOVE_RECURSE
  "CMakeFiles/cross_city.dir/cross_city.cpp.o"
  "CMakeFiles/cross_city.dir/cross_city.cpp.o.d"
  "cross_city"
  "cross_city.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
