# Empty compiler generated dependencies file for cross_city.
# This may be replaced when dependencies are built.
