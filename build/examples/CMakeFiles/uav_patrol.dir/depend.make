# Empty dependencies file for uav_patrol.
# This may be replaced when dependencies are built.
