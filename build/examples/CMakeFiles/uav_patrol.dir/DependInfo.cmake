
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/uav_patrol.cpp" "examples/CMakeFiles/uav_patrol.dir/uav_patrol.cpp.o" "gcc" "examples/CMakeFiles/uav_patrol.dir/uav_patrol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anole_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/anole_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/anole_device.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/anole_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anole_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/anole_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/anole_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/anole_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/anole_world.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/anole_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anole_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
