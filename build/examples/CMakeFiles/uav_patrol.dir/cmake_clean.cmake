file(REMOVE_RECURSE
  "CMakeFiles/uav_patrol.dir/uav_patrol.cpp.o"
  "CMakeFiles/uav_patrol.dir/uav_patrol.cpp.o.d"
  "uav_patrol"
  "uav_patrol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_patrol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
