# Empty dependencies file for test_artifact.
# This may be replaced when dependencies are built.
