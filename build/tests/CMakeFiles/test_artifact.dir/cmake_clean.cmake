file(REMOVE_RECURSE
  "CMakeFiles/test_artifact.dir/test_artifact.cpp.o"
  "CMakeFiles/test_artifact.dir/test_artifact.cpp.o.d"
  "test_artifact"
  "test_artifact.pdb"
  "test_artifact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_artifact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
