file(REMOVE_RECURSE
  "CMakeFiles/test_nn_trainer.dir/test_nn_trainer.cpp.o"
  "CMakeFiles/test_nn_trainer.dir/test_nn_trainer.cpp.o.d"
  "test_nn_trainer"
  "test_nn_trainer.pdb"
  "test_nn_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
