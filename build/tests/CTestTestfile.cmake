# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn_layers[1]_include.cmake")
include("/root/repo/build/tests/test_nn_loss[1]_include.cmake")
include("/root/repo/build/tests/test_nn_optim[1]_include.cmake")
include("/root/repo/build/tests/test_nn_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_nn_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_world[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_model_cache[1]_include.cmake")
include("/root/repo/build/tests/test_device[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_core_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_artifact[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
