file(REMOVE_RECURSE
  "libanole_nn.a"
)
