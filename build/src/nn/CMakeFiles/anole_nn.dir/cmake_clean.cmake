file(REMOVE_RECURSE
  "CMakeFiles/anole_nn.dir/layers.cpp.o"
  "CMakeFiles/anole_nn.dir/layers.cpp.o.d"
  "CMakeFiles/anole_nn.dir/loss.cpp.o"
  "CMakeFiles/anole_nn.dir/loss.cpp.o.d"
  "CMakeFiles/anole_nn.dir/module.cpp.o"
  "CMakeFiles/anole_nn.dir/module.cpp.o.d"
  "CMakeFiles/anole_nn.dir/optimizer.cpp.o"
  "CMakeFiles/anole_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/anole_nn.dir/sequential.cpp.o"
  "CMakeFiles/anole_nn.dir/sequential.cpp.o.d"
  "CMakeFiles/anole_nn.dir/serialize.cpp.o"
  "CMakeFiles/anole_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/anole_nn.dir/trainer.cpp.o"
  "CMakeFiles/anole_nn.dir/trainer.cpp.o.d"
  "libanole_nn.a"
  "libanole_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
