# Empty compiler generated dependencies file for anole_nn.
# This may be replaced when dependencies are built.
