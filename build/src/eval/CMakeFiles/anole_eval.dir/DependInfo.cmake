
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/confusion.cpp" "src/eval/CMakeFiles/anole_eval.dir/confusion.cpp.o" "gcc" "src/eval/CMakeFiles/anole_eval.dir/confusion.cpp.o.d"
  "/root/repo/src/eval/f1_series.cpp" "src/eval/CMakeFiles/anole_eval.dir/f1_series.cpp.o" "gcc" "src/eval/CMakeFiles/anole_eval.dir/f1_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/anole_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/anole_world.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anole_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/anole_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/anole_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
