# Empty dependencies file for anole_eval.
# This may be replaced when dependencies are built.
