file(REMOVE_RECURSE
  "CMakeFiles/anole_eval.dir/confusion.cpp.o"
  "CMakeFiles/anole_eval.dir/confusion.cpp.o.d"
  "CMakeFiles/anole_eval.dir/f1_series.cpp.o"
  "CMakeFiles/anole_eval.dir/f1_series.cpp.o.d"
  "libanole_eval.a"
  "libanole_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
