file(REMOVE_RECURSE
  "libanole_eval.a"
)
