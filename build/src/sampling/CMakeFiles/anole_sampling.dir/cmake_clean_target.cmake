file(REMOVE_RECURSE
  "libanole_sampling.a"
)
