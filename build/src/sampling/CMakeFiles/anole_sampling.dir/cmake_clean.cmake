file(REMOVE_RECURSE
  "CMakeFiles/anole_sampling.dir/thompson.cpp.o"
  "CMakeFiles/anole_sampling.dir/thompson.cpp.o.d"
  "libanole_sampling.a"
  "libanole_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
