# Empty dependencies file for anole_sampling.
# This may be replaced when dependencies are built.
