file(REMOVE_RECURSE
  "CMakeFiles/anole_core.dir/artifact.cpp.o"
  "CMakeFiles/anole_core.dir/artifact.cpp.o.d"
  "CMakeFiles/anole_core.dir/decision_model.cpp.o"
  "CMakeFiles/anole_core.dir/decision_model.cpp.o.d"
  "CMakeFiles/anole_core.dir/engine.cpp.o"
  "CMakeFiles/anole_core.dir/engine.cpp.o.d"
  "CMakeFiles/anole_core.dir/model_cache.cpp.o"
  "CMakeFiles/anole_core.dir/model_cache.cpp.o.d"
  "CMakeFiles/anole_core.dir/profiler.cpp.o"
  "CMakeFiles/anole_core.dir/profiler.cpp.o.d"
  "CMakeFiles/anole_core.dir/repository.cpp.o"
  "CMakeFiles/anole_core.dir/repository.cpp.o.d"
  "CMakeFiles/anole_core.dir/scene_encoder.cpp.o"
  "CMakeFiles/anole_core.dir/scene_encoder.cpp.o.d"
  "CMakeFiles/anole_core.dir/semantic_scenes.cpp.o"
  "CMakeFiles/anole_core.dir/semantic_scenes.cpp.o.d"
  "libanole_core.a"
  "libanole_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
