file(REMOVE_RECURSE
  "libanole_core.a"
)
