
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/artifact.cpp" "src/core/CMakeFiles/anole_core.dir/artifact.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/artifact.cpp.o.d"
  "/root/repo/src/core/decision_model.cpp" "src/core/CMakeFiles/anole_core.dir/decision_model.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/decision_model.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/anole_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/model_cache.cpp" "src/core/CMakeFiles/anole_core.dir/model_cache.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/model_cache.cpp.o.d"
  "/root/repo/src/core/profiler.cpp" "src/core/CMakeFiles/anole_core.dir/profiler.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/profiler.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "src/core/CMakeFiles/anole_core.dir/repository.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/repository.cpp.o.d"
  "/root/repo/src/core/scene_encoder.cpp" "src/core/CMakeFiles/anole_core.dir/scene_encoder.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/scene_encoder.cpp.o.d"
  "/root/repo/src/core/semantic_scenes.cpp" "src/core/CMakeFiles/anole_core.dir/semantic_scenes.cpp.o" "gcc" "src/core/CMakeFiles/anole_core.dir/semantic_scenes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/anole_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/anole_world.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/anole_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/anole_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/anole_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/anole_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anole_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
