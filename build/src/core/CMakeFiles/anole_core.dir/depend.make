# Empty dependencies file for anole_core.
# This may be replaced when dependencies are built.
