file(REMOVE_RECURSE
  "CMakeFiles/anole_world.dir/attributes.cpp.o"
  "CMakeFiles/anole_world.dir/attributes.cpp.o.d"
  "CMakeFiles/anole_world.dir/featurizer.cpp.o"
  "CMakeFiles/anole_world.dir/featurizer.cpp.o.d"
  "CMakeFiles/anole_world.dir/frame.cpp.o"
  "CMakeFiles/anole_world.dir/frame.cpp.o.d"
  "CMakeFiles/anole_world.dir/frame_generator.cpp.o"
  "CMakeFiles/anole_world.dir/frame_generator.cpp.o.d"
  "CMakeFiles/anole_world.dir/scene_style.cpp.o"
  "CMakeFiles/anole_world.dir/scene_style.cpp.o.d"
  "CMakeFiles/anole_world.dir/world.cpp.o"
  "CMakeFiles/anole_world.dir/world.cpp.o.d"
  "libanole_world.a"
  "libanole_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
