
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/attributes.cpp" "src/world/CMakeFiles/anole_world.dir/attributes.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/attributes.cpp.o.d"
  "/root/repo/src/world/featurizer.cpp" "src/world/CMakeFiles/anole_world.dir/featurizer.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/featurizer.cpp.o.d"
  "/root/repo/src/world/frame.cpp" "src/world/CMakeFiles/anole_world.dir/frame.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/frame.cpp.o.d"
  "/root/repo/src/world/frame_generator.cpp" "src/world/CMakeFiles/anole_world.dir/frame_generator.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/frame_generator.cpp.o.d"
  "/root/repo/src/world/scene_style.cpp" "src/world/CMakeFiles/anole_world.dir/scene_style.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/scene_style.cpp.o.d"
  "/root/repo/src/world/world.cpp" "src/world/CMakeFiles/anole_world.dir/world.cpp.o" "gcc" "src/world/CMakeFiles/anole_world.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/anole_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anole_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
