file(REMOVE_RECURSE
  "libanole_world.a"
)
