# Empty dependencies file for anole_world.
# This may be replaced when dependencies are built.
