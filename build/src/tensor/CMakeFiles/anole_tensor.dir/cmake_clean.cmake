file(REMOVE_RECURSE
  "CMakeFiles/anole_tensor.dir/tensor.cpp.o"
  "CMakeFiles/anole_tensor.dir/tensor.cpp.o.d"
  "libanole_tensor.a"
  "libanole_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
