file(REMOVE_RECURSE
  "libanole_tensor.a"
)
