# Empty compiler generated dependencies file for anole_tensor.
# This may be replaced when dependencies are built.
