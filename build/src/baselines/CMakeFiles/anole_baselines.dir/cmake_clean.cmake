file(REMOVE_RECURSE
  "CMakeFiles/anole_baselines.dir/methods.cpp.o"
  "CMakeFiles/anole_baselines.dir/methods.cpp.o.d"
  "libanole_baselines.a"
  "libanole_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
