file(REMOVE_RECURSE
  "libanole_baselines.a"
)
