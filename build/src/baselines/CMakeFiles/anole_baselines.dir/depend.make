# Empty dependencies file for anole_baselines.
# This may be replaced when dependencies are built.
