# Empty dependencies file for anole_device.
# This may be replaced when dependencies are built.
