file(REMOVE_RECURSE
  "libanole_device.a"
)
