file(REMOVE_RECURSE
  "CMakeFiles/anole_device.dir/profile.cpp.o"
  "CMakeFiles/anole_device.dir/profile.cpp.o.d"
  "CMakeFiles/anole_device.dir/session.cpp.o"
  "CMakeFiles/anole_device.dir/session.cpp.o.d"
  "libanole_device.a"
  "libanole_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
