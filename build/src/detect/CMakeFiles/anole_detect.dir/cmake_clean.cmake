file(REMOVE_RECURSE
  "CMakeFiles/anole_detect.dir/detection.cpp.o"
  "CMakeFiles/anole_detect.dir/detection.cpp.o.d"
  "CMakeFiles/anole_detect.dir/detector_trainer.cpp.o"
  "CMakeFiles/anole_detect.dir/detector_trainer.cpp.o.d"
  "CMakeFiles/anole_detect.dir/grid_detector.cpp.o"
  "CMakeFiles/anole_detect.dir/grid_detector.cpp.o.d"
  "libanole_detect.a"
  "libanole_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
