# Empty dependencies file for anole_detect.
# This may be replaced when dependencies are built.
