
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/detection.cpp" "src/detect/CMakeFiles/anole_detect.dir/detection.cpp.o" "gcc" "src/detect/CMakeFiles/anole_detect.dir/detection.cpp.o.d"
  "/root/repo/src/detect/detector_trainer.cpp" "src/detect/CMakeFiles/anole_detect.dir/detector_trainer.cpp.o" "gcc" "src/detect/CMakeFiles/anole_detect.dir/detector_trainer.cpp.o.d"
  "/root/repo/src/detect/grid_detector.cpp" "src/detect/CMakeFiles/anole_detect.dir/grid_detector.cpp.o" "gcc" "src/detect/CMakeFiles/anole_detect.dir/grid_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/anole_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/anole_world.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/anole_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anole_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
