file(REMOVE_RECURSE
  "libanole_detect.a"
)
