file(REMOVE_RECURSE
  "libanole_util.a"
)
