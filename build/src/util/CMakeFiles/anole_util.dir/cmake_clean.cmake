file(REMOVE_RECURSE
  "CMakeFiles/anole_util.dir/log.cpp.o"
  "CMakeFiles/anole_util.dir/log.cpp.o.d"
  "CMakeFiles/anole_util.dir/rng.cpp.o"
  "CMakeFiles/anole_util.dir/rng.cpp.o.d"
  "CMakeFiles/anole_util.dir/stats.cpp.o"
  "CMakeFiles/anole_util.dir/stats.cpp.o.d"
  "CMakeFiles/anole_util.dir/table.cpp.o"
  "CMakeFiles/anole_util.dir/table.cpp.o.d"
  "libanole_util.a"
  "libanole_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
