# Empty dependencies file for anole_util.
# This may be replaced when dependencies are built.
