file(REMOVE_RECURSE
  "CMakeFiles/anole_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/anole_cluster.dir/kmeans.cpp.o.d"
  "libanole_cluster.a"
  "libanole_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anole_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
