# Empty dependencies file for anole_cluster.
# This may be replaced when dependencies are built.
