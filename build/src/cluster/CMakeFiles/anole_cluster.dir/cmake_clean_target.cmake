file(REMOVE_RECURSE
  "libanole_cluster.a"
)
