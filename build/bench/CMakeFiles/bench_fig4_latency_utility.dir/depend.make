# Empty dependencies file for bench_fig4_latency_utility.
# This may be replaced when dependencies are built.
