file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_latency_utility.dir/bench_fig4_latency_utility.cpp.o"
  "CMakeFiles/bench_fig4_latency_utility.dir/bench_fig4_latency_utility.cpp.o.d"
  "bench_fig4_latency_utility"
  "bench_fig4_latency_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_latency_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
