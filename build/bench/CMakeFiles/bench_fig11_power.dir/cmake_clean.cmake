file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_power.dir/bench_fig11_power.cpp.o"
  "CMakeFiles/bench_fig11_power.dir/bench_fig11_power.cpp.o.d"
  "bench_fig11_power"
  "bench_fig11_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
