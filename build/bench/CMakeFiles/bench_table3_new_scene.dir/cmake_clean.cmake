file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_new_scene.dir/bench_table3_new_scene.cpp.o"
  "CMakeFiles/bench_table3_new_scene.dir/bench_table3_new_scene.cpp.o.d"
  "bench_table3_new_scene"
  "bench_table3_new_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_new_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
