# Empty dependencies file for bench_table3_new_scene.
# This may be replaced when dependencies are built.
