# Empty dependencies file for bench_fig6_confusion.
# This may be replaced when dependencies are built.
