file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_confusion.dir/bench_fig6_confusion.cpp.o"
  "CMakeFiles/bench_fig6_confusion.dir/bench_fig6_confusion.cpp.o.d"
  "bench_fig6_confusion"
  "bench_fig6_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
