# Empty dependencies file for bench_fig8_cross_scene.
# This may be replaced when dependencies are built.
