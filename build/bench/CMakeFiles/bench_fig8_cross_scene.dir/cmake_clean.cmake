file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_cross_scene.dir/bench_fig8_cross_scene.cpp.o"
  "CMakeFiles/bench_fig8_cross_scene.dir/bench_fig8_cross_scene.cpp.o.d"
  "bench_fig8_cross_scene"
  "bench_fig8_cross_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_cross_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
