# Empty dependencies file for bench_fig3_sampling.
# This may be replaced when dependencies are built.
