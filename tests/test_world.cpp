#include "world/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "world/featurizer.hpp"

namespace anole::world {
namespace {

TEST(Attributes, SemanticIndexBijective) {
  std::set<std::size_t> seen;
  for (const auto& attrs : all_scene_attributes()) {
    const std::size_t index = attrs.semantic_index();
    EXPECT_LT(index, kSemanticSceneCount);
    EXPECT_TRUE(seen.insert(index).second);
    EXPECT_EQ(SceneAttributes::from_semantic_index(index), attrs);
  }
  EXPECT_EQ(seen.size(), kSemanticSceneCount);
}

TEST(Attributes, FromIndexRejectsOutOfRange) {
  EXPECT_THROW(SceneAttributes::from_semantic_index(kSemanticSceneCount),
               std::out_of_range);
}

TEST(Attributes, Labels) {
  const SceneAttributes attrs{Weather::kRainy, Location::kUrban,
                              TimeOfDay::kNight};
  EXPECT_EQ(attrs.label(), "rainy/urban/night");
  EXPECT_EQ(attrs.short_label(), "Ur., Ni.");
}

/// Style must be deterministic and in-range for every semantic scene.
class SceneStyleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SceneStyleTest, DeterministicAndBounded) {
  const auto attrs = SceneAttributes::from_semantic_index(GetParam());
  const SceneStyle a = SceneStyle::from_attributes(attrs, 7, 0.5);
  const SceneStyle b = SceneStyle::from_attributes(attrs, 7, 0.5);
  EXPECT_EQ(a.brightness, b.brightness);
  EXPECT_EQ(a.appearance_angle, b.appearance_angle);
  EXPECT_GE(a.brightness, 0.05);
  EXPECT_LE(a.brightness, 1.0);
  EXPECT_GE(a.contrast, 0.05);
  EXPECT_GE(a.noise, 0.01);
  EXPECT_GE(a.object_density, 0.5);
  EXPECT_GT(a.object_visibility(0.01), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SceneStyleTest,
                         ::testing::Range<std::size_t>(0,
                                                       kSemanticSceneCount));

TEST(SceneStyle, NightDarkerThanDay) {
  const SceneAttributes day{Weather::kClear, Location::kUrban,
                            TimeOfDay::kDaytime};
  const SceneAttributes night{Weather::kClear, Location::kUrban,
                              TimeOfDay::kNight};
  EXPECT_GT(SceneStyle::from_attributes(day).brightness,
            SceneStyle::from_attributes(night).brightness);
}

TEST(SceneStyle, JitterSeedChangesRendition) {
  const SceneAttributes attrs{Weather::kClear, Location::kUrban,
                              TimeOfDay::kDaytime};
  const SceneStyle a = SceneStyle::from_attributes(attrs, 1, 0.5);
  const SceneStyle b = SceneStyle::from_attributes(attrs, 2, 0.5);
  EXPECT_NE(a.brightness, b.brightness);
}

TEST(SceneStyle, FogReducesVisibility) {
  const SceneAttributes clear{Weather::kClear, Location::kHighway,
                              TimeOfDay::kDaytime};
  const SceneAttributes foggy{Weather::kFoggy, Location::kHighway,
                              TimeOfDay::kDaytime};
  EXPECT_GT(SceneStyle::from_attributes(clear).object_visibility(0.01),
            SceneStyle::from_attributes(foggy).object_visibility(0.01));
}

TEST(FrameGenerator, RendersExpectedShape) {
  Rng rng(3);
  FrameGenerator generator(10);
  const SceneAttributes attrs{Weather::kClear, Location::kUrban,
                              TimeOfDay::kDaytime};
  const auto style = SceneStyle::from_attributes(attrs);
  std::vector<ObjectInstance> objects = {generator.sample_object(style, rng)};
  const Frame frame = generator.render(style, attrs, objects, rng);
  EXPECT_EQ(frame.grid_size, 10u);
  EXPECT_EQ(frame.cells.rows(), 100u);
  EXPECT_EQ(frame.cells.cols(), kCellChannels);
  EXPECT_EQ(frame.objects.size(), 1u);
  EXPECT_GT(frame.brightness, 0.0);
  EXPECT_GT(frame.contrast, 0.0);
}

TEST(FrameGenerator, ObjectImprintsObjectBlock) {
  Rng rng(4);
  FrameGenerator generator(12);
  const SceneAttributes attrs{Weather::kClear, Location::kUrban,
                              TimeOfDay::kDaytime};
  auto style = SceneStyle::from_attributes(attrs);
  style.noise = 0.01;
  style.clutter = 0.0;
  ObjectInstance obj;
  obj.cx = 0.5;
  obj.cy = 0.5;
  obj.w = 0.15;
  obj.h = 0.15;
  obj.visibility = 1.5;
  const Frame with = generator.render(style, attrs, {obj}, rng);
  Rng rng2(4);
  const Frame without = generator.render(style, attrs, {}, rng2);
  // Object-block energy at the object's center cell must be much larger
  // with the object present.
  const std::size_t center = 6 * 12 + 6;
  double energy_with = 0.0;
  double energy_without = 0.0;
  for (std::size_t c = 2 * kBlockChannels; c < kCellChannels; ++c) {
    energy_with += std::abs(with.cells.at(center, c));
    energy_without += std::abs(without.cells.at(center, c));
  }
  EXPECT_GT(energy_with, energy_without + 0.5);
}

TEST(FrameGenerator, BrightnessTracksStyle) {
  Rng rng(5);
  FrameGenerator generator;
  const SceneAttributes day{Weather::kClear, Location::kUrban,
                            TimeOfDay::kDaytime};
  const SceneAttributes night{Weather::kClear, Location::kUrban,
                              TimeOfDay::kNight};
  const Frame day_frame = generator.render(SceneStyle::from_attributes(day),
                                           day, {}, rng);
  const Frame night_frame = generator.render(
      SceneStyle::from_attributes(night), night, {}, rng);
  EXPECT_GT(day_frame.brightness, night_frame.brightness);
}

TEST(ObjectDynamics, KeepsCentersInFrame) {
  Rng rng(6);
  FrameGenerator generator;
  const auto style = SceneStyle::from_attributes(
      {Weather::kClear, Location::kUrban, TimeOfDay::kDaytime});
  ObjectDynamics dynamics(generator, style, rng);
  for (int step = 0; step < 100; ++step) {
    for (const auto& obj : dynamics.step(rng)) {
      EXPECT_GE(obj.cx, 0.0);
      EXPECT_LE(obj.cx, 1.0);
      EXPECT_GE(obj.cy, 0.0);
      EXPECT_LE(obj.cy, 1.0);
      EXPECT_LE(obj.w, 0.26 + 1e-9);
      EXPECT_LE(obj.h, 0.26 + 1e-9);
    }
  }
}

TEST(Clip, SplitRolesAre622Contiguous) {
  Clip clip;
  clip.frames.resize(100);
  clip.seen = true;
  std::size_t train = 0;
  std::size_t val = 0;
  std::size_t test = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    switch (clip.split_role(i)) {
      case SplitRole::kTrain:
        ++train;
        EXPECT_LT(i, 60u);
        break;
      case SplitRole::kValidation:
        ++val;
        break;
      case SplitRole::kTest:
        ++test;
        EXPECT_GE(i, 80u);
        break;
      case SplitRole::kUnseen:
        FAIL();
    }
  }
  EXPECT_EQ(train, 60u);
  EXPECT_EQ(val, 20u);
  EXPECT_EQ(test, 20u);
}

TEST(Clip, UnseenClipsAreAllUnseen) {
  Clip clip;
  clip.frames.resize(10);
  clip.seen = false;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(clip.split_role(i), SplitRole::kUnseen);
  }
}

TEST(ClipGenerator, ProducesTemporallyCoherentFrames) {
  Rng rng(7);
  ClipGenerator generator;
  ClipSpec spec;
  spec.attributes = {Weather::kClear, Location::kHighway,
                     TimeOfDay::kDaytime};
  spec.length = 30;
  spec.clip_id = 3;
  spec.dataset_id = 1;
  const Clip clip = generator.generate(spec, rng);
  ASSERT_EQ(clip.size(), 30u);
  for (std::size_t i = 0; i < clip.frames.size(); ++i) {
    EXPECT_EQ(clip.frames[i].frame_index, i);
    EXPECT_EQ(clip.frames[i].clip_id, 3u);
    EXPECT_EQ(clip.frames[i].dataset_id, 1u);
    EXPECT_EQ(clip.frames[i].attributes, spec.attributes);
  }
  // Brightness flicker is small between adjacent frames.
  for (std::size_t i = 1; i < clip.frames.size(); ++i) {
    EXPECT_LT(std::abs(clip.frames[i].brightness -
                       clip.frames[i - 1].brightness),
              0.15);
  }
}

TEST(World, BenchmarkWorldMatchesPaperMix) {
  WorldConfig config;
  config.frames_per_clip = 10;
  const World w = make_benchmark_world(config);
  // 9+1 KITTI-like, 40+4 BDD-like, 9+1 SHD-like = 64 clips.
  EXPECT_EQ(w.clips.size(), 64u);
  EXPECT_EQ(w.dataset_names.size(), 3u);
  EXPECT_EQ(w.unseen_clips().size(), 6u);
  EXPECT_EQ(w.clips_of_dataset(0).size(), 10u);
  EXPECT_EQ(w.clips_of_dataset(1).size(), 44u);
  EXPECT_EQ(w.clips_of_dataset(2).size(), 10u);
  EXPECT_EQ(w.total_frames(), 640u);
}

TEST(World, ClipScaleShrinksWorld) {
  WorldConfig config;
  config.frames_per_clip = 5;
  config.clip_scale = 0.3;
  const World w = make_benchmark_world(config);
  EXPECT_LT(w.clips.size(), 30u);
  EXPECT_EQ(w.unseen_clips().size(), 6u);  // pinned unseen clips stay
}

TEST(World, RolesPartitionFrames) {
  WorldConfig config;
  config.frames_per_clip = 20;
  config.clip_scale = 0.2;
  const World w = make_benchmark_world(config);
  const std::size_t total =
      w.frames_with_role(SplitRole::kTrain).size() +
      w.frames_with_role(SplitRole::kValidation).size() +
      w.frames_with_role(SplitRole::kTest).size() +
      w.frames_with_role(SplitRole::kUnseen).size();
  EXPECT_EQ(total, w.total_frames());
}

TEST(World, DeterministicForSeed) {
  WorldConfig config;
  config.frames_per_clip = 8;
  config.clip_scale = 0.2;
  const World a = make_benchmark_world(config);
  const World b = make_benchmark_world(config);
  ASSERT_EQ(a.total_frames(), b.total_frames());
  EXPECT_TRUE(allclose(a.clips[0].frames[0].cells,
                       b.clips[0].frames[0].cells, 0.0f));
}

TEST(World, UnseenClipAttributesMatchTableIII) {
  WorldConfig config;
  config.frames_per_clip = 5;
  const World w = make_benchmark_world(config);
  const auto unseen = w.unseen_clips();
  ASSERT_EQ(unseen.size(), 6u);
  EXPECT_EQ(unseen[0]->attributes.location, Location::kResidential);
  EXPECT_EQ(unseen[0]->attributes.time, TimeOfDay::kDaytime);
  EXPECT_EQ(unseen[5]->attributes.location, Location::kTunnel);
  EXPECT_EQ(unseen[5]->attributes.time, TimeOfDay::kNight);
}

TEST(World, SynthesizedFastChangingClip) {
  WorldConfig config;
  config.frames_per_clip = 10;
  config.clip_scale = 0.2;
  const World w = make_benchmark_world(config);
  Rng rng(9);
  const Clip spliced = synthesize_fast_changing_clip(w, 5, 20, rng);
  EXPECT_EQ(spliced.size(), 100u);
  EXPECT_FALSE(spliced.seen);
  for (std::size_t i = 0; i < spliced.frames.size(); ++i) {
    EXPECT_EQ(spliced.frames[i].frame_index, i);
  }
}

TEST(Featurizer, DimensionsAndDeterminism) {
  Rng rng(11);
  FrameGenerator generator;
  const SceneAttributes attrs{Weather::kClear, Location::kUrban,
                              TimeOfDay::kDaytime};
  const auto style = SceneStyle::from_attributes(attrs);
  const Frame frame = generator.render(style, attrs, {}, rng);
  const FrameFeaturizer featurizer;
  const Tensor a = featurizer.featurize(frame);
  const Tensor b = featurizer.featurize(frame);
  EXPECT_EQ(a.cols(), FrameFeaturizer::feature_count());
  EXPECT_TRUE(allclose(a, b, 0.0f));
  // Histogram block sums to 1.
  float hist = 0.0f;
  for (std::size_t i = 2 * kCellChannels; i < a.cols(); ++i) hist += a[i];
  EXPECT_NEAR(hist, 1.0f, 1e-5f);
}

TEST(Featurizer, BatchMatchesSingle) {
  Rng rng(12);
  FrameGenerator generator;
  const SceneAttributes attrs{Weather::kRainy, Location::kHighway,
                              TimeOfDay::kNight};
  const auto style = SceneStyle::from_attributes(attrs);
  const Frame f1 = generator.render(style, attrs, {}, rng);
  const Frame f2 = generator.render(style, attrs, {}, rng);
  const FrameFeaturizer featurizer;
  const Tensor batch = featurizer.featurize_batch({&f1, &f2});
  EXPECT_EQ(batch.rows(), 2u);
  const Tensor single = featurizer.featurize(f2);
  for (std::size_t c = 0; c < batch.cols(); ++c) {
    EXPECT_EQ(batch.at(1, c), single.at(0, c));
  }
}

TEST(Featurizer, SeparatesDayFromNight) {
  Rng rng(13);
  FrameGenerator generator;
  const SceneAttributes day{Weather::kClear, Location::kUrban,
                            TimeOfDay::kDaytime};
  const SceneAttributes night{Weather::kClear, Location::kUrban,
                              TimeOfDay::kNight};
  const FrameFeaturizer featurizer;
  const Tensor fd = featurizer.featurize(
      generator.render(SceneStyle::from_attributes(day), day, {}, rng));
  const Tensor fn = featurizer.featurize(
      generator.render(SceneStyle::from_attributes(night), night, {}, rng));
  // First luminance channel mean differs strongly.
  EXPECT_GT(fd[0] - fn[0], 0.2f);
}

TEST(Frame, ObjectAreaRatio) {
  Frame frame;
  frame.objects.push_back({0.5, 0.5, 0.1, 0.2, 1.0});
  frame.objects.push_back({0.2, 0.2, 0.3, 0.1, 1.0});
  EXPECT_NEAR(frame.object_area_ratio(), 0.02 + 0.03, 1e-12);
}

}  // namespace
}  // namespace anole::world
