// End-to-end tests of the Anole core: scene index, encoder, Algorithm 1,
// ASS, decision model, and the online engine. The expensive offline
// profiling run is shared across tests through a suite-level fixture.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "nn/loss.hpp"
#include "util/log.hpp"

namespace anole::core {
namespace {

world::WorldConfig tiny_world_config() {
  world::WorldConfig config;
  config.frames_per_clip = 60;
  config.clip_scale = 0.15;
  config.seed = 99;
  return config;
}

ProfilerConfig tiny_profiler_config() {
  ProfilerConfig config;
  config.encoder.train.epochs = 20;
  config.repository.target_models = 8;
  config.repository.detector_train.epochs = 8;
  config.repository.min_training_frames = 30;
  config.repository.min_validation_frames = 6;
  config.sampling.budget = 400;
  config.decision.train.epochs = 30;
  return config;
}

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(tiny_world_config()));
    rng_ = std::make_unique<Rng>(7);
    report_ = std::make_unique<ProfilerReport>();
    OfflineProfiler profiler(tiny_profiler_config());
    system_ = std::make_unique<AnoleSystem>(
        profiler.run(*world_, *rng_, report_.get()));
  }

  static void TearDownTestSuite() {
    system_.reset();
    report_.reset();
    rng_.reset();
    world_.reset();
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
  static std::unique_ptr<ProfilerReport> report_;
  static std::unique_ptr<Rng> rng_;
};

std::unique_ptr<world::World> PipelineTest::world_;
std::unique_ptr<AnoleSystem> PipelineTest::system_;
std::unique_ptr<ProfilerReport> PipelineTest::report_;
std::unique_ptr<Rng> PipelineTest::rng_;

TEST(SemanticSceneIndex, BuildsDenseClasses) {
  world::Frame a;
  a.attributes = {world::Weather::kClear, world::Location::kUrban,
                  world::TimeOfDay::kDaytime};
  world::Frame b;
  b.attributes = {world::Weather::kRainy, world::Location::kHighway,
                  world::TimeOfDay::kNight};
  const auto index = SemanticSceneIndex::build({&a, &b, &a});
  EXPECT_EQ(index.class_count(), 2u);
  EXPECT_TRUE(index.class_of(a).has_value());
  EXPECT_TRUE(index.class_of(b).has_value());
  EXPECT_NE(*index.class_of(a), *index.class_of(b));
  EXPECT_EQ(index.semantic_of(*index.class_of(a)), a.semantic_scene_id());
  EXPECT_EQ(index.attributes_of(*index.class_of(b)), b.attributes);
}

TEST(SemanticSceneIndex, UnknownSceneIsNullopt) {
  world::Frame a;
  const auto index = SemanticSceneIndex::build({&a});
  EXPECT_FALSE(index.class_of(std::size_t{119}).has_value());
}

TEST(SemanticSceneIndex, LabelsThrowOnUnknownScene) {
  world::Frame a;
  world::Frame b;
  b.attributes = {world::Weather::kSnowy, world::Location::kTunnel,
                  world::TimeOfDay::kNight};
  const auto index = SemanticSceneIndex::build({&a});
  EXPECT_THROW((void)index.labels_of({&b}), std::invalid_argument);
  const auto labels = index.labels_of({&a, &a});
  EXPECT_EQ(labels, (std::vector<std::size_t>{0, 0}));
}

TEST_F(PipelineTest, EncoderLearnsSemanticScenes) {
  EXPECT_GT(report_->encoder_train_accuracy, 0.9);
  EXPECT_EQ(system_->encoder->class_count(),
            system_->scene_index.class_count());
}

TEST_F(PipelineTest, EncoderEmbeddingShape) {
  const world::FrameFeaturizer featurizer;
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  ASSERT_FALSE(frames.empty());
  const Tensor embeddings = system_->encoder->embed(
      featurizer.featurize_batch({frames[0], frames[1]}));
  EXPECT_EQ(embeddings.rows(), 2u);
  EXPECT_EQ(embeddings.cols(), system_->encoder->embedding_dim());
}

TEST_F(PipelineTest, EncoderTrunkCheaperThanFull) {
  EXPECT_LT(system_->encoder->trunk_flops_per_sample(),
            system_->encoder->flops_per_sample());
}

TEST_F(PipelineTest, RepositoryRespectsTargetAndCoverage) {
  EXPECT_GT(system_->repository.size(), 0u);
  EXPECT_LE(system_->repository.size(),
            tiny_profiler_config().repository.target_models);
  // Every model must have a detector, scenes, and training frames.
  std::set<std::size_t> covered;
  for (std::size_t m = 0; m < system_->repository.size(); ++m) {
    const SceneModel& model = system_->repository.model(m);
    EXPECT_NE(model.detector, nullptr);
    EXPECT_FALSE(model.scene_classes.empty());
    EXPECT_FALSE(model.training_frames.empty());
    for (std::size_t cls : model.scene_classes) covered.insert(cls);
  }
  EXPECT_GT(covered.size(), system_->scene_index.class_count() / 2);
}

TEST_F(PipelineTest, RepositoryTrainingSetSizes) {
  const auto sizes = system_->repository.training_set_sizes();
  ASSERT_EQ(sizes.size(), system_->repository.size());
  for (std::size_t m = 0; m < sizes.size(); ++m) {
    EXPECT_EQ(sizes[m], system_->repository.model(m).training_frames.size());
  }
}

TEST_F(PipelineTest, RepositoryModelsAreScoped) {
  // A model's training frames all come from its scene classes.
  for (std::size_t m = 0; m < system_->repository.size(); ++m) {
    const SceneModel& model = system_->repository.model(m);
    const std::set<std::size_t> classes(model.scene_classes.begin(),
                                        model.scene_classes.end());
    for (const world::Frame* frame : model.training_frames) {
      const auto cls = system_->scene_index.class_of(*frame);
      ASSERT_TRUE(cls.has_value());
      EXPECT_TRUE(classes.count(*cls)) << "model " << model.name;
    }
  }
}

TEST_F(PipelineTest, DecisionDatasetIsConsistent) {
  Rng rng(17);
  DecisionSamplingConfig config;
  config.budget = 150;
  const auto dataset =
      build_decision_dataset(system_->repository, config, rng);
  ASSERT_GT(dataset.features.rows(), 0u);
  EXPECT_EQ(dataset.features.rows(), dataset.targets.rows());
  EXPECT_EQ(dataset.targets.cols(), system_->repository.size());
  EXPECT_EQ(dataset.best_model.size(), dataset.features.rows());
  EXPECT_EQ(dataset.source_arm.size(), dataset.features.rows());
  EXPECT_EQ(dataset.semantic_scene.size(), dataset.features.rows());
  // Targets are distributions.
  for (std::size_t r = 0; r < dataset.targets.rows(); ++r) {
    float sum = 0.0f;
    for (float v : dataset.targets.row(r)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
  // Draws per model sum to the number of rounds that produced samples.
  double draws = 0.0;
  for (double d : dataset.draws_per_model) draws += d;
  EXPECT_GE(draws, static_cast<double>(dataset.features.rows()));
}

TEST_F(PipelineTest, DecisionDatasetRandomModeDiffers) {
  Rng rng(18);
  DecisionSamplingConfig config;
  config.budget = 200;
  config.adaptive = false;
  const auto dataset =
      build_decision_dataset(system_->repository, config, rng);
  EXPECT_EQ(dataset.features.rows(), 200u);
}

TEST_F(PipelineTest, DecisionSuitabilityIsDistribution) {
  const world::FrameFeaturizer featurizer;
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const Tensor probs =
      system_->decision->suitability(featurizer.featurize(*frames[0]));
  EXPECT_EQ(probs.cols(), system_->repository.size());
  float sum = 0.0f;
  for (float v : probs.row(0)) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST_F(PipelineTest, DecisionRankIsPermutation) {
  const world::FrameFeaturizer featurizer;
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const auto ranking =
      system_->decision->rank(featurizer.featurize(*frames[3]));
  ASSERT_EQ(ranking.size(), system_->repository.size());
  std::set<std::size_t> unique(ranking.begin(), ranking.end());
  EXPECT_EQ(unique.size(), ranking.size());
  // The ranking is sorted by suitability.
  const Tensor probs =
      system_->decision->suitability(featurizer.featurize(*frames[3]));
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(probs.at(0, ranking[i - 1]), probs.at(0, ranking[i]));
  }
}

TEST_F(PipelineTest, EngineProcessesFrames) {
  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(*system_, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  std::size_t switches = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(frames.size(), 60); ++i) {
    const auto result = engine.process(*frames[i]);
    EXPECT_LT(result.served_model, system_->repository.size());
    EXPECT_LT(result.top1_model, system_->repository.size());
    if (result.model_switched) ++switches;
  }
  EXPECT_EQ(engine.frames_processed(), 60u);
  EXPECT_EQ(engine.model_switches(), switches);
  std::size_t top1_total = 0;
  for (std::size_t c : engine.top1_counts()) top1_total += c;
  EXPECT_EQ(top1_total, 60u);
  EXPECT_LE(engine.cache().resident_models().size(), 3u);
}

TEST_F(PipelineTest, EngineBeatsBlindBaselineOnSeenData) {
  CacheConfig cache_config;
  cache_config.capacity = 5;
  AnoleEngine engine(*system_, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const double f1 = eval::overall_f1(
      [&](const world::Frame& f) { return engine.process(f).detections; },
      frames);
  EXPECT_GT(f1, 0.3);
}

TEST_F(PipelineTest, EngineRejectsEmptySystem) {
  AnoleSystem empty;
  CacheConfig cache_config;
  EXPECT_THROW(AnoleEngine(empty, cache_config), std::invalid_argument);
}

TEST_F(PipelineTest, ReportIsPopulated) {
  EXPECT_EQ(report_->models_trained, system_->repository.size());
  EXPECT_GT(report_->decision_samples, 0u);
}

TEST(Profiler, ThrowsOnEmptyWorld) {
  world::World empty;
  Rng rng(1);
  OfflineProfiler profiler;
  EXPECT_THROW((void)profiler.run(empty, rng), std::invalid_argument);
}

}  // namespace
}  // namespace anole::core
