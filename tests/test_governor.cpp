// RuntimeGovernor (core/governor.hpp): the overload state machine in
// isolation, and the closed loop it forms with AnoleEngine, ModelCache,
// and DeviceSession — including bitwise-identical decision traces across
// reruns and thread counts, and exact ANOLE_GOVERNOR=0 equivalence.
#include "core/governor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/profiler.hpp"
#include "device/session.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace anole {
namespace {

/// Saves/restores an environment variable around a test body.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* saved = std::getenv(name);
    had_value_ = saved != nullptr;
    if (had_value_) saved_ = saved;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_value_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_value_ = false;
  std::string saved_;
};

}  // namespace
}  // namespace anole

namespace anole::core {
namespace {

/// Small, fast-moving controller for the unit tests.
GovernorConfig tiny_config() {
  GovernorConfig config;
  config.window = 8;
  config.throttle_enter_rate = 0.25;
  config.throttle_exit_rate = 0.05;
  config.shed_enter_rate = 0.75;
  config.shed_exit_rate = 0.10;
  config.min_dwell = 4;
  config.recovery_dwell = 16;
  config.ranking_refresh_period = 4;
  config.shed_period = 3;
  return config;
}

/// Drives `count` frames whose overrun flag comes from `overrun(i)`;
/// dropped frames are not observed (they never executed).
template <typename OverrunFn>
void drive(RuntimeGovernor& governor, std::size_t count, OverrunFn overrun) {
  for (std::size_t i = 0; i < count; ++i) {
    const GovernorDirective directive = governor.plan();
    if (directive.drop_frame) continue;
    governor.observe(10.0, overrun(i));
  }
}

TEST(Governor, StateNamesAndEnvGate) {
  EXPECT_STREQ(to_string(GovernorState::kNormal), "normal");
  EXPECT_STREQ(to_string(GovernorState::kThrottled), "throttled");
  EXPECT_STREQ(to_string(GovernorState::kShedding), "shedding");
  {
    ScopedEnv env("ANOLE_GOVERNOR", nullptr);
    EXPECT_TRUE(governor_enabled_from_env());
  }
  {
    ScopedEnv env("ANOLE_GOVERNOR", "0");
    EXPECT_FALSE(governor_enabled_from_env());
  }
  {
    ScopedEnv env("ANOLE_GOVERNOR", "1");
    EXPECT_TRUE(governor_enabled_from_env());
  }
}

TEST(Governor, ConfigValidation) {
  GovernorConfig config = tiny_config();
  config.window = 0;
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
  config = tiny_config();
  config.shed_period = 1;  // would drop every frame
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
  config = tiny_config();
  config.ranking_refresh_period = 0;
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
  config = tiny_config();
  config.throttle_exit_rate = config.throttle_enter_rate + 0.1;
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
  config = tiny_config();
  config.shed_exit_rate = config.shed_enter_rate + 0.1;
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
  config = tiny_config();
  config.shed_enter_rate = config.throttle_enter_rate / 2.0;
  EXPECT_THROW(RuntimeGovernor{config}, ContractViolation);
}

TEST(Governor, NormalUntilWindowFillsThenEscalates) {
  RuntimeGovernor governor(tiny_config());
  // 7 observations (window is 8): never transitions, whatever the rate.
  drive(governor, 7, [](std::size_t) { return true; });
  EXPECT_EQ(governor.state(), GovernorState::kNormal);
  EXPECT_EQ(governor.transitions(), 0u);
  // The 8th fills the window at rate 1.0 >= shed_enter: Normal may jump
  // straight to Shedding once min_dwell planned frames have elapsed.
  drive(governor, 1, [](std::size_t) { return true; });
  EXPECT_EQ(governor.state(), GovernorState::kShedding);
  EXPECT_EQ(governor.transitions(), 1u);
}

TEST(Governor, ModerateOverloadThrottlesNotSheds) {
  RuntimeGovernor governor(tiny_config());
  // Every other frame overruns: rate 0.5 in [0.25, 0.75).
  drive(governor, 8, [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(governor.state(), GovernorState::kThrottled);
  // A throttled directive suppresses swaps and refreshes the ranking
  // only every ranking_refresh_period-th frame.
  std::size_t refreshes = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const GovernorDirective directive = governor.plan();
    EXPECT_EQ(directive.state, GovernorState::kThrottled);
    EXPECT_FALSE(directive.drop_frame);
    EXPECT_FALSE(directive.allow_swap);
    if (directive.refresh_ranking) ++refreshes;
    governor.observe(10.0, i % 2 == 0);  // keep the rate at 0.5
  }
  EXPECT_EQ(refreshes, 2u);  // every 4th of 8 frames
}

TEST(Governor, SheddingDropsEveryKthFrameAndRecordsIt) {
  GovernorConfig config = tiny_config();
  RuntimeGovernor governor(config);
  drive(governor, 8, [](std::size_t) { return true; });
  ASSERT_EQ(governor.state(), GovernorState::kShedding);
  const std::uint64_t planned_before = governor.frames_planned();
  std::size_t drops = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const GovernorDirective directive = governor.plan();
    EXPECT_FALSE(directive.allow_swap);
    if (directive.drop_frame) {
      ++drops;
      continue;  // dropped frames never execute, so never observe
    }
    governor.observe(50.0, true);
  }
  EXPECT_EQ(drops, 30u / config.shed_period);
  EXPECT_EQ(governor.dropped_frames(), drops);
  EXPECT_EQ(governor.frames_planned(), planned_before + 30);
  // Every drop is in the trace, flagged as a drop, not a transition.
  std::size_t trace_drops = 0;
  for (const GovernorEvent& event : governor.trace()) {
    if (event.dropped) {
      ++trace_drops;
      EXPECT_EQ(event.from, GovernorState::kShedding);
      EXPECT_EQ(event.to, GovernorState::kShedding);
    }
  }
  EXPECT_EQ(trace_drops, drops);
}

TEST(Governor, RecoveryIsSlowerThanEscalation) {
  GovernorConfig config = tiny_config();
  RuntimeGovernor governor(config);
  drive(governor, 8, [](std::size_t) { return true; });
  ASSERT_EQ(governor.state(), GovernorState::kShedding);

  // All-clear traffic: the window drains within 8 observed frames, but
  // de-escalation waits for recovery_dwell planned frames per step.
  std::size_t frames_to_throttled = 0;
  while (governor.state() == GovernorState::kShedding) {
    drive(governor, 1, [](std::size_t) { return false; });
    ++frames_to_throttled;
    ASSERT_LE(frames_to_throttled, 1000u);
  }
  EXPECT_EQ(governor.state(), GovernorState::kThrottled);
  EXPECT_GE(frames_to_throttled, config.recovery_dwell - config.window);

  std::size_t frames_to_normal = 0;
  while (governor.state() == GovernorState::kThrottled) {
    drive(governor, 1, [](std::size_t) { return false; });
    ++frames_to_normal;
    ASSERT_LE(frames_to_normal, 1000u);
  }
  EXPECT_EQ(governor.state(), GovernorState::kNormal);
  EXPECT_GE(frames_to_normal, config.recovery_dwell);
  // Back to normal: swaps allowed, nothing dropped.
  const GovernorDirective directive = governor.plan();
  EXPECT_TRUE(directive.allow_swap);
  EXPECT_TRUE(directive.refresh_ranking);
  EXPECT_FALSE(directive.drop_frame);
}

TEST(Governor, TraceIsDeterministicAndResetReplays) {
  const auto scenario = [](RuntimeGovernor& governor) {
    drive(governor, 400, [](std::size_t i) {
      // Burst pattern: heavy overruns in [50, 150) and [250, 300).
      return (i >= 50 && i < 150) || (i >= 250 && i < 300);
    });
  };
  RuntimeGovernor a(tiny_config());
  RuntimeGovernor b(tiny_config());
  scenario(a);
  scenario(b);
  EXPECT_GT(a.transitions(), 0u);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_EQ(a.dropped_frames(), b.dropped_frames());

  const std::uint64_t hash = a.trace_hash();
  a.reset();
  EXPECT_EQ(a.state(), GovernorState::kNormal);
  EXPECT_EQ(a.frames_planned(), 0u);
  EXPECT_EQ(a.trace().size(), 0u);
  scenario(a);
  EXPECT_EQ(a.trace_hash(), hash);
}

}  // namespace
}  // namespace anole::core

namespace anole::core {
namespace {

using device::DeviceProfile;
using device::DeviceSession;
using device::FrameCost;
using core::GovernorConfig;
using core::GovernorState;
using device::MemoryModel;
using core::RuntimeGovernor;

/// Engine-level governor tests share one trained system. Slightly larger
/// than the fault-ladder fixture (8 models, richer decision training):
/// the decision model must actually switch top-1 across scenes, or no
/// swap pressure ever builds for the governor to relieve.
class GovernorEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 50;
    world_config.clip_scale = 0.2;
    world_config.seed = 77;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    ProfilerConfig config;
    config.encoder.train.epochs = 15;
    config.repository.target_models = 8;
    config.repository.detector_train.epochs = 6;
    config.repository.min_training_frames = 20;
    config.repository.min_validation_frames = 4;
    config.sampling.budget = 400;
    config.decision.train.epochs = 25;
    Rng rng(3);
    OfflineProfiler profiler(config);
    system_ = std::make_unique<AnoleSystem>(profiler.run(*world_, rng));
  }

  static void TearDownTestSuite() {
    system_.reset();
    world_.reset();
  }

  static std::vector<const world::Frame*> frame_stream(std::size_t count) {
    const auto base = world_->frames_with_role(world::SplitRole::kTest);
    std::vector<const world::Frame*> frames;
    frames.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      frames.push_back(base[i % base.size()]);
    }
    return frames;
  }

  /// Fast-changing spliced stream (5-frame scene segments): the overload
  /// scenario, forcing frequent top-1 changes and thus model loads.
  /// Deterministic from the fixed seed. The clip outlives the pointers
  /// (owned by the fixture).
  static std::vector<const world::Frame*> spliced_stream(
      std::size_t segments) {
    Rng rng(91);
    spliced_ = std::make_unique<world::Clip>(
        world::synthesize_fast_changing_clip(*world_, segments, 5, rng));
    std::vector<const world::Frame*> frames;
    frames.reserve(spliced_->frames.size());
    for (const auto& frame : spliced_->frames) frames.push_back(&frame);
    return frames;
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
  static std::unique_ptr<world::Clip> spliced_;
};

std::unique_ptr<world::World> GovernorEngineTest::world_;
std::unique_ptr<AnoleSystem> GovernorEngineTest::system_;
std::unique_ptr<world::Clip> GovernorEngineTest::spliced_;

constexpr double kDeadlineMs = 33.3;  // 30 FPS budget

struct LoopOutcome {
  std::vector<std::size_t> served;
  std::size_t overruns = 0;
  std::size_t dropped = 0;
  std::size_t swap_suppressed = 0;
  std::size_t reused_rankings = 0;
  std::uint64_t governor_transitions = 0;
  std::uint64_t governor_hash = 0;
  std::size_t executed_frames = 0;
};

/// One closed-loop pass: engine -> FrameCost -> simulated device ->
/// governor feedback. Dropped frames never reach the device (they were
/// shed before execution).
LoopOutcome run_loop(AnoleSystem& system,
                     const std::vector<const world::Frame*>& frames,
                     EngineConfig config, const GovernorConfig* governed) {
  std::unique_ptr<RuntimeGovernor> governor;
  if (governed != nullptr) {
    governor = std::make_unique<RuntimeGovernor>(*governed);
    config.governor = governor.get();
  }
  AnoleEngine engine(system, config);
  const auto profile = DeviceProfile::jetson_tx2_nx(
      system.repository.detector(0).flops_per_frame());
  const MemoryModel memory(system.repository.detector(0).weight_bytes());
  const std::uint64_t decision_flops = system.decision->flops_per_sample();
  DeviceSession session(profile, 1.0, config.faults.get(), governor.get());

  LoopOutcome outcome;
  for (const world::Frame* frame : frames) {
    const EngineResult result = engine.process(*frame);
    outcome.served.push_back(result.served_model);
    if (result.health.frame_dropped) continue;
    FrameCost cost;
    // A reused ranking skipped the decision model entirely.
    cost.decision_flops = result.ranking_reused ? 0 : decision_flops;
    cost.detector_flops =
        system.repository.detector(result.served_model).flops_per_frame();
    const double weight_mb = memory.load_mb(
        system.repository.detector(result.served_model).weight_bytes());
    cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
    const std::size_t failed_attempts =
        result.health.load_attempts - (result.model_loaded ? 1 : 0);
    cost.retried_weight_mb = static_cast<double>(failed_attempts) * weight_mb;
    cost.deadline_ms = kDeadlineMs;
    (void)session.process(cost);
  }
  outcome.overruns = session.deadline_overruns();
  outcome.dropped = engine.dropped_frames();
  outcome.swap_suppressed = engine.swap_suppressed_frames();
  outcome.reused_rankings = engine.reused_ranking_frames();
  outcome.executed_frames = session.frames();
  if (governor != nullptr) {
    outcome.governor_transitions = governor->transitions();
    outcome.governor_hash = governor->trace_hash();
  }
  return outcome;
}

EngineConfig small_cache_config() {
  EngineConfig config;
  config.cache.capacity = 2;  // 2 of 6 models resident: misses are common
  return config;
}

TEST_F(GovernorEngineTest, GovernorReducesOverrunsUnderMissPressure) {
  ScopedEnv env("ANOLE_GOVERNOR", nullptr);
  const auto frames = spliced_stream(240);  // 1200 fast-changing frames
  const LoopOutcome ungoverned =
      run_loop(*system_, frames, small_cache_config(), nullptr);
  const GovernorConfig governed_config;  // defaults
  const LoopOutcome governed =
      run_loop(*system_, frames, small_cache_config(), &governed_config);

  // Every model load streams ~560 ms of weights against a 33 ms deadline,
  // so a tight cache overruns on every swap; the governor suppresses
  // swaps once its window trips.
  EXPECT_GT(ungoverned.overruns, 0u);
  EXPECT_LT(governed.overruns, ungoverned.overruns);
  EXPECT_GT(governed.governor_transitions, 0u);
  EXPECT_GT(governed.swap_suppressed, 0u);
  EXPECT_GT(governed.reused_rankings, 0u);
  // Shedding is a last resort; the drop rate stays small.
  EXPECT_LE(governed.dropped, frames.size() / 20);  // <= 5%
  EXPECT_EQ(governed.executed_frames + governed.dropped, frames.size());
}

TEST_F(GovernorEngineTest, GovernorEnvZeroReproducesUngovernedExactly) {
  const auto frames = frame_stream(400);
  LoopOutcome baseline;
  {
    ScopedEnv env("ANOLE_GOVERNOR", nullptr);
    baseline = run_loop(*system_, frames, small_cache_config(), nullptr);
  }
  // Same run with a governor wired in but disabled by ANOLE_GOVERNOR=0:
  // the engine and session must never consult it.
  const GovernorConfig governed_config;
  LoopOutcome disabled;
  {
    ScopedEnv env("ANOLE_GOVERNOR", "0");
    disabled = run_loop(*system_, frames, small_cache_config(),
                        &governed_config);
  }
  EXPECT_EQ(disabled.served, baseline.served);
  EXPECT_EQ(disabled.overruns, baseline.overruns);
  EXPECT_EQ(disabled.dropped, 0u);
  EXPECT_EQ(disabled.swap_suppressed, 0u);
  EXPECT_EQ(disabled.reused_rankings, 0u);
  EXPECT_EQ(disabled.governor_transitions, 0u);
  // An untouched governor has an empty trace: the FNV-1a offset basis.
  RuntimeGovernor untouched{GovernorConfig{}};
  EXPECT_EQ(disabled.governor_hash, untouched.trace_hash());
}

TEST_F(GovernorEngineTest, GovernorTraceIsThreadCountAndRerunInvariant) {
  ScopedEnv env("ANOLE_GOVERNOR", nullptr);
  const auto frames = spliced_stream(160);  // 800 fast-changing frames
  const GovernorConfig governed_config;
  const std::size_t saved_threads = par::thread_count();

  // The closed loop is inherently sequential (each frame's decision
  // depends on the previous frame's latency), so serial process() drives
  // both runs; the thread count only changes matmul internals, which are
  // bitwise thread-count-invariant.
  par::set_thread_count(1);
  const LoopOutcome serial =
      run_loop(*system_, frames, small_cache_config(), &governed_config);
  par::set_thread_count(4);
  const LoopOutcome threaded =
      run_loop(*system_, frames, small_cache_config(), &governed_config);
  // Rerun at the same thread count: bitwise replay.
  const LoopOutcome rerun =
      run_loop(*system_, frames, small_cache_config(), &governed_config);
  par::set_thread_count(saved_threads);

  EXPECT_GT(serial.governor_transitions, 0u);
  EXPECT_EQ(serial.governor_hash, threaded.governor_hash);
  EXPECT_EQ(serial.governor_hash, rerun.governor_hash);
  EXPECT_EQ(serial.dropped, threaded.dropped);
  EXPECT_EQ(serial.served, threaded.served);
  EXPECT_EQ(serial.served, rerun.served);
  EXPECT_EQ(serial.overruns, threaded.overruns);
}

TEST_F(GovernorEngineTest, GovernorSoakBoundedDropsUnderFaults) {
  // Soak for check.sh stage 7: a long governed session under injected
  // I/O spikes and memory pressure must serve or explicitly shed every
  // frame with zero contract violations and a bounded drop rate.
  // ANOLE_SOAK_FRAMES scales the stream (check.sh uses 10000).
  std::size_t frame_count = 2000;
  if (const char* soak = std::getenv("ANOLE_SOAK_FRAMES")) {
    frame_count = static_cast<std::size_t>(std::strtoull(soak, nullptr, 10));
    ASSERT_GE(frame_count, 1u) << "bad ANOLE_SOAK_FRAMES";
  }
  ScopedEnv env("ANOLE_GOVERNOR", nullptr);
  EngineConfig config = small_cache_config();
  config.faults = std::make_shared<fault::FaultInjector>(std::string(
      "seed=2033,load_latency_spike=0.01x8,memory_pressure=0.003x2"));
  // A real byte budget so memory-pressure faults have something to
  // shrink: room for ~3 full models.
  config.cache.capacity = 3;
  std::uint64_t max_bytes = 0;
  for (std::size_t m = 0; m < system_->repository.size(); ++m) {
    max_bytes =
        std::max(max_bytes, system_->repository.detector(m).weight_bytes());
  }
  config.cache.memory_budget_bytes = 3 * max_bytes;

  const auto frames = frame_stream(frame_count);
  const GovernorConfig governed_config;
  const LoopOutcome outcome =
      run_loop(*system_, frames, config, &governed_config);

  EXPECT_EQ(outcome.served.size(), frame_count);
  EXPECT_EQ(outcome.executed_frames + outcome.dropped, frame_count);
  for (const std::size_t model : outcome.served) {
    ASSERT_LT(model, system_->repository.size());
  }
  // Bounded shedding: at most 5% of the stream.
  EXPECT_LE(outcome.dropped, frame_count / 20);
}

TEST_F(GovernorEngineTest, MemoryPressureUnderGovernorStaysReplayable) {
  // Governor x fault interaction: memory_pressure armed while the
  // governor escalates into throttled/shedding. Both trace hashes must
  // replay bitwise across reruns, and a shed frame must never be
  // double-charged — it reaches neither the cache (no load attempts) nor
  // the detector nor the device session.
  ScopedEnv env("ANOLE_GOVERNOR", nullptr);
  const auto frames = spliced_stream(200);  // 1000 fast-changing frames

  struct Replay {
    std::vector<std::size_t> served;
    std::size_t dropped = 0;
    std::size_t executed = 0;
    bool saw_throttled = false;
    bool saw_shedding = false;
    std::uint64_t governor_hash = 0;
    std::uint64_t fault_hash = 0;
  };
  const auto run_once = [&]() {
    EngineConfig config = small_cache_config();
    config.faults = std::make_shared<fault::FaultInjector>(
        std::string("seed=2033,memory_pressure=0.02x2"));
    std::uint64_t max_bytes = 0;
    for (std::size_t m = 0; m < system_->repository.size(); ++m) {
      max_bytes = std::max(
          max_bytes, system_->repository.detector(m).weight_bytes());
    }
    config.cache.memory_budget_bytes = 2 * max_bytes;
    RuntimeGovernor governor{GovernorConfig{}};
    config.governor = &governor;
    AnoleEngine engine(*system_, config);
    const auto profile = DeviceProfile::jetson_tx2_nx(
        system_->repository.detector(0).flops_per_frame());
    const MemoryModel memory(system_->repository.detector(0).weight_bytes());
    const std::uint64_t decision_flops =
        system_->decision->flops_per_sample();
    DeviceSession session(profile, 1.0, config.faults.get(), &governor);

    Replay replay;
    for (const world::Frame* frame : frames) {
      const EngineResult result = engine.process(*frame);
      replay.served.push_back(result.served_model);
      replay.saw_throttled |= governor.state() == GovernorState::kThrottled;
      replay.saw_shedding |= governor.state() == GovernorState::kShedding;
      if (result.health.frame_dropped) {
        // A shed frame was decided before any chargeable work: no cache
        // load attempts, no detector output, no device execution.
        EXPECT_EQ(result.health.load_attempts, 0u);
        EXPECT_FALSE(result.model_loaded);
        EXPECT_TRUE(result.detections.empty());
        ++replay.dropped;
        continue;
      }
      FrameCost cost;
      cost.decision_flops = result.ranking_reused ? 0 : decision_flops;
      cost.detector_flops =
          system_->repository.detector(result.served_model)
              .flops_per_frame();
      const double weight_mb = memory.load_mb(
          system_->repository.detector(result.served_model).weight_bytes());
      cost.loaded_weight_mb = result.model_loaded ? weight_mb : 0.0;
      const std::size_t failed_attempts =
          result.health.load_attempts - (result.model_loaded ? 1 : 0);
      cost.retried_weight_mb =
          static_cast<double>(failed_attempts) * weight_mb;
      cost.deadline_ms = kDeadlineMs;
      (void)session.process(cost);
    }
    replay.executed = session.frames();
    replay.governor_hash = governor.trace_hash();
    replay.fault_hash = config.faults->trace_hash();
    EXPECT_EQ(engine.dropped_frames(), replay.dropped);
    EXPECT_EQ(replay.executed + replay.dropped, frames.size());
    return replay;
  };

  const Replay first = run_once();
  const Replay second = run_once();
  // The fixture must actually exercise the interaction, not idle in
  // kNormal with the fault stream silent.
  EXPECT_TRUE(first.saw_throttled);
  EXPECT_NE(first.fault_hash, fault::FaultInjector("seed=2033").trace_hash());
  EXPECT_EQ(first.served, second.served);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.governor_hash, second.governor_hash);
  EXPECT_EQ(first.fault_hash, second.fault_hash);
}

}  // namespace
}  // namespace anole::core
