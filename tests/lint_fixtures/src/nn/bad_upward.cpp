// layering-dag: nn (layer 2) reaching into core (layer 4) is an upward
// include — the module DAG only allows includes down the stack.
#include "core/decision_model.hpp"  // FIXTURE: fires

namespace anole::nn {

int upward_dependency() { return 1; }

}  // namespace anole::nn
