// Lexer gap regression: line-continuation backslashes. A // comment
// ending in a backslash swallows the next physical line (translation
// phase 2), so code "hidden" there must not fire; code after the
// comment resumes normal scanning with correct line numbers.

namespace anole::core {

int spliced_comment() {
  // this comment continues onto the next line \
     int* hidden = new int(1); delete hidden;
  return 0;  // no findings above: both lines are one comment
}

#define FIXTURE_MACRO(x) \
  do {                   \
    (void)(x);           \
  } while (false)

int spliced_identifier() {
  // An identifier split by a continuation lexes as one token: "de" +
  // "lete" must not produce a `delete` keyword... but a real delete
  // after the splice region must fire at its own line.
  int dele\
te_me = 3;
  FIXTURE_MACRO(dele\
te_me);
  int* p = nullptr;
  delete p;  // FIXTURE: no-naked-new (delete) fires
  return 0;
}

}  // namespace anole::core
