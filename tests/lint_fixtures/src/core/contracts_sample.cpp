// contract-coverage fixture: exactly two covered and two uncovered
// public functions (plus definitions the scanner must exclude).
#include <cstddef>

#define ANOLE_CHECK(cond, ...) ((void)(cond))
#define ANOLE_CHECK_GE(a, b, ...) ((void)((a) >= (b)))

namespace anole::core {

namespace {
int anon_helper(int x) { return x; }  // excluded: anonymous namespace
}  // namespace

static int static_helper(int x) { return x; }  // excluded: static

class Widget {
 public:
  Widget(std::size_t capacity);
  std::size_t covered_method(std::size_t index) const;
  std::size_t uncovered_method() const;

 private:
  std::size_t capacity_ = 0;
};

Widget::Widget(std::size_t capacity) : capacity_(capacity) {
  ANOLE_CHECK_GE(capacity, 1u, "fixture");  // covered (ctor, init list)
}

std::size_t Widget::covered_method(std::size_t index) const {
  ANOLE_CHECK(index < capacity_, "fixture");
  return index;
}

std::size_t Widget::uncovered_method() const {
  return capacity_ + anon_helper(0) +
         static_cast<std::size_t>(static_helper(0));
}

int covered_free_function(int value) {
  ANOLE_CHECK(value >= 0, "fixture");
  return value * 2;
}

int uncovered_free_function(int value) {
  int total = 0;
  for (int i = 0; i < value; ++i) total += i;
  return total;
}

int late_check_is_not_prologue(int value) {
  int a = value + 1;
  int b = a * 2;
  int c = b - 3;
  int d = c * c;
  int e = d + a;
  int f = e - b;
  int g = f + c;
  int h = g * 2;
  int k = h - d;
  ANOLE_CHECK(k != 0, "fixture");  // after 9 statements: NOT covered
  return k;
}

}  // namespace anole::core

int main() { return 0; }  // excluded: main
