// no-throw-omi-hot-path: this path matches the protected file list.
namespace anole::core {

int hot_path_abort(int frame) {
  if (frame < 0) {
    throw frame;  // FIXTURE: fires
  }
  return frame;
}

}  // namespace anole::core
