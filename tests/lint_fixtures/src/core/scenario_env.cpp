// env-var-registry: ANOLE_SCENARIO is a *required* knob — this getenv
// site satisfies the required-registration check (and the fixture README
// documents it). ANOLE_DRIFT is deliberately absent from the fixture
// tree, so the required-var finding fires at README.md:1.
#include <cstdlib>

namespace anole::core {

bool scenario_armed() {
  return std::getenv("ANOLE_SCENARIO") != nullptr;  // ok: documented row
}

}  // namespace anole::core
