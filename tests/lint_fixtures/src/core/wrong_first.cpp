// own-header-first: a module .cpp must include its own header first.
#include "util/clean.hpp"  // FIXTURE: fires
#include "core/wrong_first.hpp"

namespace anole::core {

int wrong_first_helper() { return 2; }

}  // namespace anole::core
