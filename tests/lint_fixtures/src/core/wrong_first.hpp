#pragma once

namespace anole::core {

int wrong_first_helper();

}  // namespace anole::core
