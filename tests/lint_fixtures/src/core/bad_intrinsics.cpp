// no-naked-intrinsics: vendor SIMD headers and _mm*/__m* identifiers
// are banned outside src/tensor/simd.* — raw intrinsics bypass the
// ANOLE_SIMD runtime dispatch level.
#include <immintrin.h>  // FIXTURE: fires

namespace anole::core {

float sums_with_raw_avx(const float* a, const float* b) {
  __m256 va = _mm256_loadu_ps(a);        // FIXTURE: fires (twice)
  __m256 vb = _mm256_loadu_ps(b);        // FIXTURE: fires (twice)
  __m256 sum = _mm256_add_ps(va, vb);    // FIXTURE: fires (twice)
  float out[8];
  _mm256_storeu_ps(out, sum);            // FIXTURE: fires
  return out[0];
}

float plain_math_is_fine(float x) {
  return x * 2.0f;  // no finding: no intrinsics
}

}  // namespace anole::core
