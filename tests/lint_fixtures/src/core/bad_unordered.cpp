// no-unordered-iteration: iteration fires, point lookups do not.
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

namespace anole::core {

std::size_t iterate_map(const std::unordered_map<int, int>& scores) {
  std::size_t total = 0;
  for (const auto& entry : scores) {  // FIXTURE: range-for fires
    total += static_cast<std::size_t>(entry.second);
  }
  return total;
}

std::size_t iterate_set(std::unordered_set<int>& pool) {
  std::size_t hits = 0;
  for (auto it = pool.begin(); it != pool.end(); ++it) {  // fires
    ++hits;
  }
  return hits;
}

bool point_lookups_are_fine(const std::unordered_map<int, int>& scores,
                            std::unordered_set<int>& pool) {
  // find/count/contains never observe bucket order: no findings here.
  return scores.find(3) != scores.end() && scores.count(4) > 0 &&
         pool.contains(5);
}

}  // namespace anole::core
