// env-var-registry: every getenv("ANOLE_*") must have a README row.
#include <cstdlib>

namespace anole::core {

bool documented_knob() {
  return std::getenv("ANOLE_DOCUMENTED") != nullptr;  // ok: in the table
}

bool rogue_knob() {
  return std::getenv("ANOLE_ROGUE") != nullptr;  // FIXTURE: fires
}

bool non_anole_vars_ignored() {
  return std::getenv("HOME") != nullptr;  // no finding: not ANOLE_*
}

}  // namespace anole::core
