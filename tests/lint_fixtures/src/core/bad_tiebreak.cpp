// no-unstable-tiebreak: projected-key comparators must tie-break.
#include <algorithm>
#include <cstddef>
#include <vector>

namespace anole::core {

struct Scored {
  double score = 0.0;
};

void unstable_member_sort(std::vector<Scored>& items) {
  std::sort(items.begin(), items.end(),  // FIXTURE: fires
            [](const Scored& a, const Scored& b) {
              return a.score > b.score;
            });
}

void unstable_subscript_sort(std::vector<std::size_t>& order,
                             const std::vector<float>& key) {
  std::sort(order.begin(), order.end(),  // FIXTURE: fires
            [&](std::size_t a, std::size_t b) { return key[a] > key[b]; });
}

void stable_two_stage_sort(std::vector<std::size_t>& order,
                           const std::vector<float>& key) {
  // The documented idiom: no finding.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (key[a] != key[b]) return key[a] > key[b];
    return a < b;  // deterministic tie-break
  });
}

void bare_value_sort(std::vector<double>& values) {
  // Comparing the elements themselves is a total order: no finding.
  std::sort(values.begin(), values.end(),
            [](double a, double b) { return a > b; });
}

}  // namespace anole::core
