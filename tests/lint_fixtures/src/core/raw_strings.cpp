// Lexer gap regression: raw string literals. The old line scanner
// documented these as unsupported; banned spellings inside them must
// never fire, while real code after them still must.
#include <string>

namespace anole::core {

std::string raw_literal_contents_are_opaque() {
  // Everything inside is literal text, not code: no findings from it.
  return R"(std::cout << new int; throw rand(); /* " unbalanced)";
}

std::string delimited_raw_with_quotes() {
  return R"delim(quote " close-paren )" still inside; std::thread t;)delim";
}

std::string multiline_raw() {
  return R"(line one
line two with throw and delete
line three)";
}

int real_code_after_raw_strings() {
  int* leak = new int(7);  // FIXTURE: no-naked-new fires
  return *leak;
}

}  // namespace anole::core
