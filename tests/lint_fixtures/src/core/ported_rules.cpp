// One compact file exercising the ported token rules.
#include <cstdlib>
#include <future>
#include <iostream>
#include <thread>

namespace anole::core {

int c_prng() {
  std::srand(7);                          // FIXTURE: no-c-prng
  return std::rand();                     // FIXTURE: no-c-prng
}

struct WithRand;  // declared elsewhere; has a member spelled rand()

int member_rand_ok(const WithRand& source) {
  return source.rand();  // no finding: member function
}

void logging() {
  std::cout << "hi\n";                    // FIXTURE: no-cout
}

void threads() {
  std::thread worker([] {});              // FIXTURE: no-raw-thread
  worker.join();
  auto f = std::async([] { return 1; });  // FIXTURE: no-raw-thread
  (void)f;
}

int casts(const unsigned char* bytes) {
  // FIXTURE: no-reinterpret-cast
  return *reinterpret_cast<const int*>(bytes);
}

int allocation() {
  int* p = new int(3);                    // FIXTURE: no-naked-new
  delete p;                               // FIXTURE: no-naked-new
  return 0;
}

struct NotCopyable {
  NotCopyable(const NotCopyable&) = delete;  // no finding: deleted fn
};

}  // namespace anole::core
