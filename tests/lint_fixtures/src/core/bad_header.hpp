// no-using-namespace: banned in headers (leaks into every includer).
#pragma once

#include <vector>

using namespace std;  // FIXTURE: fires

namespace anole::core {

inline int header_helper() { return 1; }

}  // namespace anole::core
