// no-wallclock: every wall-clock spelling is banned under src/, not
// just the *_clock::now() forms the old regex caught.
#include <chrono>
#include <ctime>

namespace anole::core {

struct Stopwatch {
  double time(int scale) const { return 0.5 * scale; }  // member: ok
};

long legacy_time_call() {
  return ::time(nullptr);  // FIXTURE: fires
}

long libc_clock_gettime() {
  struct timespec ts;
  clock_gettime(0, &ts);  // FIXTURE: fires
  return ts.tv_sec;
}

double clock_type_alias() {
  using clock = std::chrono::steady_clock;  // FIXTURE: fires
  return 0.0;
}

std::chrono::system_clock::time_point member_alias() {  // fires
  return {};
}

double member_time_is_fine(const Stopwatch& watch) {
  return watch.time(3);  // no finding: member function
}

}  // namespace anole::core
