#pragma once

#include "core/cycle_a.hpp"

namespace anole::core {

inline int cycle_b() { return 2; }

}  // namespace anole::core
