// File-level include cycle (a -> b -> a): both files share one module,
// so only the file-cycle pass can see it.
#pragma once

#include "core/cycle_b.hpp"  // FIXTURE: layering-dag cycle

namespace anole::core {

inline int cycle_a() { return 1; }

}  // namespace anole::core
