// no-naked-intrinsics: the src/tensor/simd* prefix is the sanctioned
// home for vendor intrinsics — nothing here may fire.
#include <immintrin.h>  // ok: inside the dispatch module

namespace anole::tensor::simd {

float sanctioned_kernel(const float* a, const float* b) {
  __m128 va = _mm_loadu_ps(a);  // ok
  __m128 vb = _mm_loadu_ps(b);  // ok
  float out[4];
  _mm_storeu_ps(out, _mm_add_ps(va, vb));  // ok
  return out[0];
}

}  // namespace anole::tensor::simd
