// src/tensor may use new/delete for its aligned-buffer internals.
namespace anole::tensor {

float* tensor_alloc(unsigned long n) {
  return new float[n];  // no finding: tensor internals are exempt
}

void tensor_free(const float* p) {
  delete[] p;  // no finding
}

}  // namespace anole::tensor
