// Iterating an unordered container OUTSIDE trace-affecting code is
// allowed: src/world is not in the ordered-iteration prefix set.
#include <unordered_map>

namespace anole::world {

int world_iteration_is_allowed(const std::unordered_map<int, int>& tally) {
  int total = 0;
  for (const auto& entry : tally) total += entry.second;
  return total;
}

}  // namespace anole::world
