// no-unordered-iteration also guards src/util/fault.* (fault schedules
// feed the replayable trace).
#include <unordered_map>

namespace anole::util {

int fault_order_scan(const std::unordered_map<int, double>& sites) {
  int armed = 0;
  for (const auto& site : sites) {  // FIXTURE: fires
    if (site.second > 0.0) ++armed;
  }
  return armed;
}

}  // namespace anole::util
