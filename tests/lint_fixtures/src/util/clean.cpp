#include "util/clean.hpp"

namespace anole::util {

std::size_t clean_sum(const std::vector<std::size_t>& values) {
  std::size_t total = 0;
  for (const std::size_t v : values) total += v;
  return total;
}

}  // namespace anole::util
