// A fully clean header: the self-test asserts zero findings here.
#pragma once

#include <cstddef>
#include <vector>

namespace anole::util {

std::size_t clean_sum(const std::vector<std::size_t>& values);

}  // namespace anole::util
