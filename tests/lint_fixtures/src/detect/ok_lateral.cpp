// Lateral include inside layer 3 (detect -> world): allowed while the
// module graph stays acyclic, so no finding here.
#include "world/frame.hpp"

namespace anole::detect {

int lateral_dependency() { return 1; }

}  // namespace anole::detect
