#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace anole::nn {
namespace {

/// Scalar objective: 0.5 * sum(output^2). Its gradient wrt the output is
/// the output itself, making finite-difference checks straightforward.
float objective(Module& module, const Tensor& input) {
  const Tensor out = module.forward(input);
  float sum = 0.0f;
  for (float v : out.data()) sum += 0.5f * v * v;
  return sum;
}

/// Checks the analytic input gradient of `module` at `input` against
/// central finite differences.
void check_input_gradient(Module& module, Tensor input, float tol = 2e-2f) {
  const Tensor out = module.forward(input);
  module.zero_grad();
  const Tensor grad_input = module.backward(out);  // dL/dout = out

  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const float saved = input[i];
    input[i] = saved + epsilon;
    const float up = objective(module, input);
    input[i] = saved - epsilon;
    const float down = objective(module, input);
    input[i] = saved;
    const float numeric = (up - down) / (2.0f * epsilon);
    EXPECT_NEAR(grad_input[i], numeric, tol) << "input index " << i;
  }
}

/// Checks analytic parameter gradients against finite differences.
void check_parameter_gradients(Module& module, const Tensor& input,
                               float tol = 2e-2f) {
  const Tensor out = module.forward(input);
  module.zero_grad();
  (void)module.backward(out);
  const float epsilon = 1e-3f;
  for (Parameter* param : module.parameters()) {
    for (std::size_t i = 0; i < param->value.size(); ++i) {
      const float saved = param->value[i];
      param->value[i] = saved + epsilon;
      const float up = objective(module, input);
      param->value[i] = saved - epsilon;
      const float down = objective(module, input);
      param->value[i] = saved;
      const float numeric = (up - down) / (2.0f * epsilon);
      EXPECT_NEAR(param->grad[i], numeric, tol) << "param index " << i;
    }
  }
}

Tensor random_input(std::size_t batch, std::size_t features, Rng& rng) {
  Tensor t = Tensor::matrix(batch, features);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  layer.bias().value[0] = 1.0f;
  layer.bias().value[1] = -1.0f;
  const Tensor zero = Tensor::matrix(2, 3);
  const Tensor out = layer.forward(zero);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_EQ(out.at(0, 0), 1.0f);
  EXPECT_EQ(out.at(1, 1), -1.0f);
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(1);
  Linear layer(3, 2, rng);
  EXPECT_THROW((void)layer.forward(Tensor::matrix(1, 4)),
               std::invalid_argument);
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(2);
  Linear layer(4, 3, rng);
  check_input_gradient(layer, random_input(2, 4, rng));
  check_parameter_gradients(layer, random_input(2, 4, rng));
}

TEST(Linear, FlopsAndParameterCount) {
  Rng rng(3);
  Linear layer(10, 5, rng);
  EXPECT_EQ(layer.parameter_count(), 55u);
  EXPECT_EQ(layer.flops_per_sample(), 2u * 10 * 5 + 5);
}

TEST(ReLU, ForwardClampsNegatives) {
  ReLU relu;
  const Tensor in(Shape{1, 4}, std::vector<float>{-1, 0, 2, -3});
  const Tensor out = relu.forward(in);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  EXPECT_EQ(out[2], 2.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(ReLU, BackwardMasksNegatives) {
  ReLU relu;
  const Tensor in(Shape{1, 3}, std::vector<float>{-1, 1, 2});
  (void)relu.forward(in);
  const Tensor grad(Shape{1, 3}, std::vector<float>{5, 5, 5});
  const Tensor gin = relu.backward(grad);
  EXPECT_EQ(gin[0], 0.0f);
  EXPECT_EQ(gin[1], 5.0f);
  EXPECT_EQ(gin[2], 5.0f);
}

TEST(LeakyReLU, NegativeSlope) {
  LeakyReLU leaky(0.1f);
  const Tensor in(Shape{1, 2}, std::vector<float>{-10, 10});
  const Tensor out = leaky.forward(in);
  EXPECT_FLOAT_EQ(out[0], -1.0f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  Rng rng(4);
  check_input_gradient(leaky, random_input(2, 3, rng));
}

TEST(Sigmoid, ValuesAndGradient) {
  Sigmoid sigmoid;
  const Tensor in(Shape{1, 1}, std::vector<float>{0.0f});
  EXPECT_FLOAT_EQ(sigmoid.forward(in)[0], 0.5f);
  Rng rng(5);
  check_input_gradient(sigmoid, random_input(2, 3, rng));
}

TEST(Tanh, ValuesAndGradient) {
  Tanh tanh_layer;
  const Tensor in(Shape{1, 1}, std::vector<float>{0.0f});
  EXPECT_FLOAT_EQ(tanh_layer.forward(in)[0], 0.0f);
  Rng rng(6);
  check_input_gradient(tanh_layer, random_input(2, 3, rng));
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout dropout(0.5f, 42);
  dropout.set_training(false);
  Rng rng(7);
  const Tensor in = random_input(3, 5, rng);
  EXPECT_TRUE(allclose(dropout.forward(in), in));
}

TEST(Dropout, TrainingZeroesAndRescales) {
  Dropout dropout(0.5f, 42);
  dropout.set_training(true);
  const Tensor in = Tensor::matrix(10, 100, 1.0f);
  const Tensor out = dropout.forward(in);
  std::size_t zeros = 0;
  for (float v : out.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(v, 2.0f);  // inverted dropout scale 1/(1-0.5)
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.size(), 0.5, 0.05);
}

TEST(Dropout, RejectsInvalidRate) {
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm norm(4);
  const Tensor in(Shape{1, 4}, std::vector<float>{1, 2, 3, 4});
  const Tensor out = norm.forward(in);
  float mean = 0.0f;
  for (float v : out.data()) mean += v;
  EXPECT_NEAR(mean / 4.0f, 0.0f, 1e-5f);
  float var = 0.0f;
  for (float v : out.data()) var += v * v;
  EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
}

TEST(LayerNorm, GradientsMatchFiniteDifferences) {
  LayerNorm norm(5);
  Rng rng(8);
  check_input_gradient(norm, random_input(2, 5, rng), 5e-2f);
  check_parameter_gradients(norm, random_input(2, 5, rng), 5e-2f);
}

TEST(Sequential, ChainsLayers) {
  Rng rng(9);
  Sequential net;
  net.emplace<Linear>(3, 4, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(4, 2, rng);
  const Tensor out = net.forward(random_input(5, 3, rng));
  EXPECT_EQ(out.rows(), 5u);
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_EQ(net.size(), 3u);
  EXPECT_EQ(net.parameters().size(), 4u);
}

TEST(Sequential, GradientsMatchFiniteDifferences) {
  Rng rng(10);
  Sequential net;
  net.emplace<Linear>(3, 6, rng);
  net.emplace<Tanh>();
  net.emplace<Linear>(6, 2, rng);
  check_input_gradient(net, random_input(2, 3, rng));
  check_parameter_gradients(net, random_input(2, 3, rng));
}

TEST(Sequential, FlopsAccumulate) {
  Rng rng(11);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net.flops_per_sample(), (2u * 4 * 8 + 8) + (2u * 8 * 2 + 2));
}

TEST(Sequential, SetTrainingPropagates) {
  Rng rng(12);
  Sequential net;
  net.emplace<Dropout>(0.5f, 1);
  net.set_training(false);
  const Tensor in = Tensor::matrix(2, 3, 1.0f);
  EXPECT_TRUE(allclose(net.forward(in), in));
}

TEST(MakeMlp, BuildsExpectedArchitecture) {
  Rng rng(13);
  auto net = make_mlp({5, 8, 3}, rng);
  // Linear, ReLU, Linear.
  EXPECT_EQ(net->size(), 3u);
  const Tensor out = net->forward(Tensor::matrix(1, 5));
  EXPECT_EQ(out.cols(), 3u);
  EXPECT_THROW((void)make_mlp({4}, rng), std::invalid_argument);
}

TEST(MakeMlp, DropoutVariant) {
  Rng rng(14);
  auto net = make_mlp({5, 8, 8, 3}, rng, 0.2f);
  // Linear ReLU Dropout Linear ReLU Dropout Linear.
  EXPECT_EQ(net->size(), 7u);
}

}  // namespace
}  // namespace anole::nn
