// Deployment-artifact round trips and the engine extensions (confidence
// fallback, suitability smoothing), sharing one trained system.
#include "core/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "core/profiler.hpp"
#include "core/quantize.hpp"
#include "nn/quantize.hpp"
#include "eval/f1_series.hpp"
#include "nn/serialize.hpp"
#include "util/log.hpp"

namespace anole::core {
namespace {

class ArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 50;
    world_config.clip_scale = 0.12;
    world_config.seed = 77;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    ProfilerConfig config;
    config.encoder.train.epochs = 15;
    config.repository.target_models = 6;
    config.repository.detector_train.epochs = 6;
    config.repository.min_training_frames = 20;
    config.repository.min_validation_frames = 4;
    config.sampling.budget = 150;
    config.decision.train.epochs = 15;
    Rng rng(3);
    OfflineProfiler profiler(config);
    system_ = std::make_unique<AnoleSystem>(profiler.run(*world_, rng));
  }

  static void TearDownTestSuite() {
    system_.reset();
    world_.reset();
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
};

std::unique_ptr<world::World> ArtifactTest::world_;
std::unique_ptr<AnoleSystem> ArtifactTest::system_;

TEST_F(ArtifactTest, RoundTripPreservesStructure) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  EXPECT_EQ(loaded.model_count(), system_->model_count());
  EXPECT_EQ(loaded.scene_index.class_count(),
            system_->scene_index.class_count());
  EXPECT_EQ(loaded.encoder->embedding_dim(),
            system_->encoder->embedding_dim());
  EXPECT_EQ(loaded.decision->model_count(),
            system_->decision->model_count());
  for (std::size_t m = 0; m < loaded.model_count(); ++m) {
    EXPECT_EQ(loaded.repository.model(m).name,
              system_->repository.model(m).name);
    EXPECT_EQ(loaded.repository.model(m).scene_classes,
              system_->repository.model(m).scene_classes);
    EXPECT_DOUBLE_EQ(loaded.repository.model(m).validation_f1,
                     system_->repository.model(m).validation_f1);
    // Deployment artifacts ship no training data.
    EXPECT_TRUE(loaded.repository.model(m).training_frames.empty());
  }
}

TEST_F(ArtifactTest, RoundTripPreservesInference) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  ASSERT_GE(frames.size(), 10u);
  const world::FrameFeaturizer featurizer;
  for (std::size_t i = 0; i < 10; ++i) {
    // Identical decision rankings.
    EXPECT_EQ(loaded.decision->rank(featurizer.featurize(*frames[i])),
              system_->decision->rank(featurizer.featurize(*frames[i])));
    // Identical detections from every model.
    for (std::size_t m = 0; m < loaded.model_count(); ++m) {
      const auto a = loaded.repository.detector(m).detect(*frames[i]);
      const auto b = system_->repository.detector(m).detect(*frames[i]);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t d = 0; d < a.size(); ++d) {
        EXPECT_DOUBLE_EQ(a[d].confidence, b[d].confidence);
        EXPECT_DOUBLE_EQ(a[d].cx, b[d].cx);
      }
    }
  }
}

TEST_F(ArtifactTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/anole_system.bin";
  save_system_to_file(*system_, path);
  AnoleSystem loaded = load_system_from_file(path);
  EXPECT_EQ(loaded.model_count(), system_->model_count());
  std::remove(path.c_str());
}

TEST_F(ArtifactTest, ArtifactSizeMatchesStream) {
  std::stringstream stream;
  save_system(*system_, stream);
  EXPECT_EQ(system_artifact_bytes(*system_), stream.str().size());
}

TEST_F(ArtifactTest, RejectsGarbage) {
  std::stringstream garbage("definitely not an artifact");
  EXPECT_THROW((void)load_system(garbage), std::runtime_error);
}

TEST_F(ArtifactTest, RejectsTruncationInVitalRegion) {
  // A cut before the vital sections (scene index, encoder, decision) are
  // complete is unrecoverable; only tail (model-section) damage heals.
  std::stringstream stream;
  save_system(*system_, stream);
  std::string data = stream.str();
  data.resize(30);  // mid first section header
  std::stringstream truncated(data);
  EXPECT_THROW((void)load_system(truncated), std::runtime_error);
}

TEST_F(ArtifactTest, IncompleteSystemRejected) {
  AnoleSystem incomplete;
  std::stringstream stream;
  EXPECT_THROW(save_system(incomplete, stream), std::runtime_error);
}

TEST_F(ArtifactTest, LoadedSystemDrivesEngine) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(loaded, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NO_THROW((void)engine.process(*frames[i]));
  }
  EXPECT_EQ(engine.frames_processed(), 20u);
}

TEST_F(ArtifactTest, ConfidenceFloorRoutesToFallback) {
  EngineConfig config;
  config.cache.capacity = 4;
  config.confidence_floor = 1.1;  // impossible: every frame is low-confidence
  AnoleEngine engine(*system_, config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 15; ++i) {
    const auto result = engine.process(*frames[i]);
    EXPECT_TRUE(result.low_confidence);
    EXPECT_EQ(result.served_model, engine.fallback_model());
  }
  EXPECT_EQ(engine.low_confidence_frames(), 15u);
  // The fallback is the broadest model.
  const auto& fallback = system_->repository.model(engine.fallback_model());
  for (std::size_t m = 0; m < system_->model_count(); ++m) {
    EXPECT_GE(fallback.scene_classes.size(),
              system_->repository.model(m).scene_classes.size());
  }
}

TEST_F(ArtifactTest, ZeroFloorNeverTriggersFallback) {
  EngineConfig config;
  config.cache.capacity = 4;
  config.confidence_floor = 0.0;
  AnoleEngine engine(*system_, config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_FALSE(engine.process(*frames[i]).low_confidence);
  }
  EXPECT_EQ(engine.low_confidence_frames(), 0u);
}

TEST_F(ArtifactTest, SmoothingReducesModelSwitches) {
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  EngineConfig raw;
  raw.cache.capacity = 8;
  AnoleEngine per_frame(*system_, raw);
  EngineConfig smoothed = raw;
  smoothed.suitability_smoothing = 0.8;
  AnoleEngine damped(*system_, smoothed);
  for (const world::Frame* frame : frames) {
    (void)per_frame.process(*frame);
    (void)damped.process(*frame);
  }
  EXPECT_LE(damped.model_switches(), per_frame.model_switches());
}

TEST_F(ArtifactTest, InvalidSmoothingRejected) {
  EngineConfig config;
  config.suitability_smoothing = 1.0;
  EXPECT_THROW(AnoleEngine(*system_, config), std::invalid_argument);
  config.suitability_smoothing = -0.1;
  EXPECT_THROW(AnoleEngine(*system_, config), std::invalid_argument);
}

TEST_F(ArtifactTest, Top1ConfidenceReported) {
  CacheConfig cache_config;
  cache_config.capacity = 4;
  AnoleEngine engine(*system_, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const auto result = engine.process(*frames[0]);
  EXPECT_GT(result.top1_confidence, 0.0);
  EXPECT_LE(result.top1_confidence, 1.0);
}

// --- v2 self-healing artifact layout ---

/// One v2 section as laid out in the blob: u32 tag, u64 size, u32 CRC,
/// payload. The fixed header before the section table is 8 (magic) +
/// 4 (version) + 4 (model count) + 4 (section count) = 20 bytes.
struct SectionInfo {
  std::uint32_t tag = 0;
  std::size_t payload_offset = 0;
  std::size_t payload_size = 0;
};

constexpr std::uint32_t kModelSectionTag = 4;
constexpr std::size_t kBlobHeaderBytes = 20;
constexpr std::size_t kSectionHeaderBytes = 16;

std::vector<SectionInfo> parse_sections(const std::string& blob) {
  std::vector<SectionInfo> sections;
  std::size_t offset = kBlobHeaderBytes;
  while (offset + kSectionHeaderBytes <= blob.size()) {
    SectionInfo info;
    std::uint64_t size = 0;
    std::memcpy(&info.tag, blob.data() + offset, sizeof(info.tag));
    std::memcpy(&size, blob.data() + offset + 4, sizeof(size));
    info.payload_offset = offset + kSectionHeaderBytes;
    info.payload_size = static_cast<std::size_t>(size);
    sections.push_back(info);
    offset = info.payload_offset + info.payload_size;
  }
  return sections;
}

std::string serialized_blob(AnoleSystem& system) {
  std::stringstream stream;
  save_system(system, stream);
  return stream.str();
}

/// Serialized detector weights of model `m` — the bit-identity witness.
std::string model_weights(AnoleSystem& system, std::size_t m) {
  std::ostringstream out(std::ios::binary);
  nn::save_parameters(system.repository.detector(m).network(), out);
  return out.str();
}

TEST_F(ArtifactTest, V2SingleBitFlipAlwaysDetected) {
  const std::string clean = serialized_blob(*system_);
  const auto sections = parse_sections(clean);
  ASSERT_EQ(sections.size(), 3 + system_->model_count());
  std::size_t model_index = 0;
  for (const SectionInfo& section : sections) {
    ASSERT_GT(section.payload_size, 0u);
    // Sample the first, middle, and last bit of the payload; CRC-32
    // detects every single-bit flip, wherever it lands.
    const std::size_t bits = section.payload_size * 8;
    for (const std::size_t bit : {std::size_t{0}, bits / 2, bits - 1}) {
      std::string blob = clean;
      blob[section.payload_offset + bit / 8] = static_cast<char>(
          static_cast<unsigned char>(blob[section.payload_offset + bit / 8]) ^
          (1u << (bit % 8)));
      std::stringstream stream(blob);
      if (section.tag == kModelSectionTag) {
        const AnoleSystem loaded = load_system(stream);
        ASSERT_EQ(loaded.damaged_models.size(), 1u) << "bit " << bit;
        EXPECT_EQ(loaded.damaged_models[0], model_index);
      } else {
        EXPECT_THROW((void)load_system(stream), std::runtime_error)
            << "vital tag " << section.tag << " bit " << bit;
      }
    }
    if (section.tag == kModelSectionTag) ++model_index;
  }
}

TEST_F(ArtifactTest, CorruptModelKeepsOthersBitIdentical) {
  const std::string clean = serialized_blob(*system_);
  const auto sections = parse_sections(clean);
  // Corrupt the second model's section.
  std::size_t target_section = 0;
  std::size_t seen_models = 0;
  for (std::size_t s = 0; s < sections.size(); ++s) {
    if (sections[s].tag == kModelSectionTag && seen_models++ == 1) {
      target_section = s;
      break;
    }
  }
  std::string blob = clean;
  const std::size_t flip_at = sections[target_section].payload_offset + 5;
  blob[flip_at] = static_cast<char>(
      static_cast<unsigned char>(blob[flip_at]) ^ 0x10u);
  std::stringstream damaged_stream(blob);
  AnoleSystem damaged = load_system(damaged_stream);
  std::stringstream clean_stream(clean);
  AnoleSystem reference = load_system(clean_stream);

  ASSERT_EQ(damaged.damaged_models, std::vector<std::size_t>{1});
  ASSERT_EQ(damaged.model_count(), reference.model_count());
  EXPECT_EQ(damaged.repository.model(1).name, "damaged-1");
  for (std::size_t m = 0; m < damaged.model_count(); ++m) {
    if (m == 1) continue;
    EXPECT_EQ(damaged.repository.model(m).name,
              reference.repository.model(m).name);
    EXPECT_EQ(model_weights(damaged, m), model_weights(reference, m));
  }
}

TEST_F(ArtifactTest, TruncatedTailQuarantinesTrailingModels) {
  const std::string clean = serialized_blob(*system_);
  const auto sections = parse_sections(clean);
  const SectionInfo& last = sections.back();
  ASSERT_EQ(last.tag, kModelSectionTag);

  // Cut mid-payload of the final model section: that model (and only it)
  // is damaged, and the system still boots.
  std::string blob = clean;
  blob.resize(last.payload_offset + last.payload_size / 2);
  std::stringstream stream(blob);
  AnoleSystem loaded = load_system(stream);
  const std::size_t last_model = loaded.model_count() - 1;
  EXPECT_EQ(loaded.damaged_models, std::vector<std::size_t>{last_model});

  // Cut two whole sections off the tail: both trailing models are damaged.
  std::string shorter = clean;
  shorter.resize(sections[sections.size() - 2].payload_offset -
                 kSectionHeaderBytes);
  std::stringstream short_stream(shorter);
  AnoleSystem two_missing = load_system(short_stream);
  EXPECT_EQ(two_missing.damaged_models,
            (std::vector<std::size_t>{last_model - 1, last_model}));
  EXPECT_EQ(two_missing.model_count(), system_->model_count());
}

TEST_F(ArtifactTest, AllModelSectionsDamagedThrows) {
  const std::string clean = serialized_blob(*system_);
  std::string blob = clean;
  for (const SectionInfo& section : parse_sections(clean)) {
    if (section.tag == kModelSectionTag) {
      blob[section.payload_offset] = static_cast<char>(
          static_cast<unsigned char>(blob[section.payload_offset]) ^ 0x01u);
    }
  }
  std::stringstream stream(blob);
  EXPECT_THROW((void)load_system(stream), std::runtime_error);
}

TEST_F(ArtifactTest, DamagedSystemDrivesEngineWithoutServingDamaged) {
  const std::string clean = serialized_blob(*system_);
  const auto sections = parse_sections(clean);
  std::string blob = clean;
  blob[sections[3].payload_offset] = static_cast<char>(  // first model
      static_cast<unsigned char>(blob[sections[3].payload_offset]) ^ 0x01u);
  std::stringstream stream(blob);
  AnoleSystem loaded = load_system(stream);
  ASSERT_EQ(loaded.damaged_models, std::vector<std::size_t>{0});

  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(loaded, cache_config);
  EXPECT_NE(engine.fallback_model(), 0u);
  EXPECT_TRUE(engine.cache().is_quarantined(0));
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 30; ++i) {
    const auto result = engine.process(*frames[i]);
    EXPECT_NE(result.served_model, 0u) << "frame " << i;
  }
}

TEST_F(ArtifactTest, InjectedSectionCorruptionIsDeterministic) {
  const std::string clean = serialized_blob(*system_);
  const auto load_under_injection = [&clean]() {
    fault::FaultInjector injector(321);
    injector.arm(fault::Site::kArtifactSection, 0.5);
    std::stringstream stream(clean);
    try {
      const AnoleSystem loaded = load_system(stream, &injector);
      return std::make_pair(false, loaded.damaged_models);
    } catch (const std::runtime_error&) {
      return std::make_pair(true, std::vector<std::size_t>{});
    }
  };
  const auto first = load_under_injection();
  const auto second = load_under_injection();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST_F(ArtifactTest, V1FormatStillRoundTrips) {
  std::stringstream stream;
  save_system(*system_, stream, 1);
  AnoleSystem loaded = load_system(stream);
  EXPECT_TRUE(loaded.damaged_models.empty());
  ASSERT_EQ(loaded.model_count(), system_->model_count());
  for (std::size_t m = 0; m < loaded.model_count(); ++m) {
    EXPECT_EQ(loaded.repository.model(m).name,
              system_->repository.model(m).name);
    EXPECT_EQ(model_weights(loaded, m), model_weights(*system_, m));
  }
  // v1 carries no checksums, so it is strictly smaller than v2 (the
  // default v3 can be smaller than v1: its fp32 payloads drop the
  // per-parameter ANOLEWTS headers).
  std::stringstream v2_stream;
  save_system(*system_, v2_stream, 2);
  EXPECT_LT(stream.str().size(), v2_stream.str().size());
}

TEST_F(ArtifactTest, UnsupportedVersionRejected) {
  std::stringstream stream;
  EXPECT_THROW(save_system(*system_, stream, 4), std::runtime_error);
}

// --- v3 quantized sections ---

/// Round-trips the shared system through an artifact, giving each test a
/// private copy it may quantize without disturbing the fixture.
AnoleSystem private_copy(AnoleSystem& system) {
  std::stringstream stream;
  save_system(system, stream);
  return load_system(stream);
}

/// Reattaches the cloud-side validation pools (artifacts strip them), so
/// quantize_system runs the repository's δ guard rather than the probe
/// guard.
void attach_validation_pools(AnoleSystem& copy, AnoleSystem& source) {
  for (std::size_t m = 0; m < copy.model_count(); ++m) {
    copy.repository.model(m).validation_frames =
        source.repository.model(m).validation_frames;
  }
}

TEST_F(ArtifactTest, V3QuantizedRoundTripBitIdentical) {
  AnoleSystem quantized = private_copy(*system_);
  attach_validation_pools(quantized, *system_);
  const QuantizeReport report = quantize_system(quantized);
  ASSERT_GT(report.quantized_detectors, 0u);
  ASSERT_TRUE(system_is_quantized(quantized));

  std::stringstream stream;
  save_system(quantized, stream);  // default version: v3
  AnoleSystem loaded = load_system(stream);
  EXPECT_TRUE(system_is_quantized(loaded));
  EXPECT_TRUE(loaded.damaged_models.empty());
  ASSERT_EQ(loaded.model_count(), quantized.model_count());

  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const world::FrameFeaturizer featurizer;
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded.decision->rank(featurizer.featurize(*frames[i])),
              quantized.decision->rank(featurizer.featurize(*frames[i])));
    for (std::size_t m = 0; m < loaded.model_count(); ++m) {
      const auto a = loaded.repository.detector(m).detect(*frames[i]);
      const auto b = quantized.repository.detector(m).detect(*frames[i]);
      ASSERT_EQ(a.size(), b.size()) << "model " << m << " frame " << i;
      for (std::size_t d = 0; d < a.size(); ++d) {
        EXPECT_DOUBLE_EQ(a[d].confidence, b[d].confidence);
        EXPECT_DOUBLE_EQ(a[d].cx, b[d].cx);
      }
    }
  }
}

TEST_F(ArtifactTest, QuantizedModelSectionsShrink) {
  AnoleSystem quantized = private_copy(*system_);
  attach_validation_pools(quantized, *system_);
  const QuantizeReport report = quantize_system(quantized);
  if (report.rejected_detectors != 0) {
    GTEST_SKIP() << "a detector failed its guard; size ratio not comparable";
  }
  std::stringstream fp32_stream;
  save_system(*system_, fp32_stream, 2);
  const std::string fp32_blob = fp32_stream.str();
  const std::string quant_blob = serialized_blob(quantized);

  const auto sum_model_bytes = [](const std::string& blob) {
    std::size_t total = 0;
    for (const SectionInfo& section : parse_sections(blob)) {
      if (section.tag == kModelSectionTag) total += section.payload_size;
    }
    return total;
  };
  const double fp32_bytes =
      static_cast<double>(sum_model_bytes(fp32_blob));
  const double quant_bytes =
      static_cast<double>(sum_model_bytes(quant_blob));
  ASSERT_GT(quant_bytes, 0.0);
  // The headline artifact-v3 claim: quantized model sections stream at
  // least 3.5x fewer bytes than their fp32 v2 counterparts.
  EXPECT_GE(fp32_bytes / quant_bytes, 3.5);
  EXPECT_LT(quant_blob.size(), fp32_blob.size());

  // ModelCache / DeviceSession accounting shrinks with them.
  for (std::size_t m = 0; m < quantized.model_count(); ++m) {
    EXPECT_LT(quantized.repository.detector(m).weight_bytes() * 3,
              system_->repository.detector(m).weight_bytes());
  }
  EXPECT_LT(quantized.decision->head_weight_bytes(),
            system_->decision->head_weight_bytes());
}

TEST_F(ArtifactTest, LegacyVersionsRejectQuantizedSystems) {
  AnoleSystem quantized = private_copy(*system_);
  (void)quantize_system(quantized);
  ASSERT_TRUE(system_is_quantized(quantized));
  std::stringstream stream;
  EXPECT_THROW(save_system(quantized, stream, 1), std::runtime_error);
  EXPECT_THROW(save_system(quantized, stream, 2), std::runtime_error);
}

TEST_F(ArtifactTest, QuantEnvZeroLoadsFp32) {
  AnoleSystem quantized = private_copy(*system_);
  attach_validation_pools(quantized, *system_);
  const QuantizeReport report = quantize_system(quantized);
  ASSERT_GT(report.quantized_detectors, 0u);
  std::stringstream stream;
  save_system(quantized, stream);

  ::setenv("ANOLE_QUANT", "0", 1);
  AnoleSystem fp32_loaded = load_system(stream);
  ::unsetenv("ANOLE_QUANT");
  EXPECT_FALSE(system_is_quantized(fp32_loaded));

  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(fp32_loaded, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(engine.process(*frames[i]).health.served_quantized);
  }
  EXPECT_EQ(engine.quantized_frames(), 0u);
}

TEST_F(ArtifactTest, EngineReportsActivePrecision) {
  AnoleSystem quantized = private_copy(*system_);
  attach_validation_pools(quantized, *system_);
  const QuantizeReport report = quantize_system(quantized);
  ASSERT_GT(report.quantized_detectors, 0u);

  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(quantized, cache_config);
  EXPECT_EQ(engine.decision_quantized(), report.decision_quantized);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  std::size_t served_quantized = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    const auto result = engine.process(*frames[i]);
    EXPECT_EQ(result.health.served_quantized,
              engine.model_quantized(result.served_model));
    if (result.health.served_quantized) ++served_quantized;
  }
  EXPECT_EQ(engine.quantized_frames(), served_quantized);
  if (report.rejected_detectors == 0) {
    EXPECT_EQ(served_quantized, 20u);
  }
}

}  // namespace
}  // namespace anole::core
