// Deployment-artifact round trips and the engine extensions (confidence
// fallback, suitability smoothing), sharing one trained system.
#include "core/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"

namespace anole::core {
namespace {

class ArtifactTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 50;
    world_config.clip_scale = 0.12;
    world_config.seed = 77;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    ProfilerConfig config;
    config.encoder.train.epochs = 15;
    config.repository.target_models = 6;
    config.repository.detector_train.epochs = 6;
    config.repository.min_training_frames = 20;
    config.repository.min_validation_frames = 4;
    config.sampling.budget = 150;
    config.decision.train.epochs = 15;
    Rng rng(3);
    OfflineProfiler profiler(config);
    system_ = std::make_unique<AnoleSystem>(profiler.run(*world_, rng));
  }

  static void TearDownTestSuite() {
    system_.reset();
    world_.reset();
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
};

std::unique_ptr<world::World> ArtifactTest::world_;
std::unique_ptr<AnoleSystem> ArtifactTest::system_;

TEST_F(ArtifactTest, RoundTripPreservesStructure) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  EXPECT_EQ(loaded.model_count(), system_->model_count());
  EXPECT_EQ(loaded.scene_index.class_count(),
            system_->scene_index.class_count());
  EXPECT_EQ(loaded.encoder->embedding_dim(),
            system_->encoder->embedding_dim());
  EXPECT_EQ(loaded.decision->model_count(),
            system_->decision->model_count());
  for (std::size_t m = 0; m < loaded.model_count(); ++m) {
    EXPECT_EQ(loaded.repository.model(m).name,
              system_->repository.model(m).name);
    EXPECT_EQ(loaded.repository.model(m).scene_classes,
              system_->repository.model(m).scene_classes);
    EXPECT_DOUBLE_EQ(loaded.repository.model(m).validation_f1,
                     system_->repository.model(m).validation_f1);
    // Deployment artifacts ship no training data.
    EXPECT_TRUE(loaded.repository.model(m).training_frames.empty());
  }
}

TEST_F(ArtifactTest, RoundTripPreservesInference) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  ASSERT_GE(frames.size(), 10u);
  const world::FrameFeaturizer featurizer;
  for (std::size_t i = 0; i < 10; ++i) {
    // Identical decision rankings.
    EXPECT_EQ(loaded.decision->rank(featurizer.featurize(*frames[i])),
              system_->decision->rank(featurizer.featurize(*frames[i])));
    // Identical detections from every model.
    for (std::size_t m = 0; m < loaded.model_count(); ++m) {
      const auto a = loaded.repository.detector(m).detect(*frames[i]);
      const auto b = system_->repository.detector(m).detect(*frames[i]);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t d = 0; d < a.size(); ++d) {
        EXPECT_DOUBLE_EQ(a[d].confidence, b[d].confidence);
        EXPECT_DOUBLE_EQ(a[d].cx, b[d].cx);
      }
    }
  }
}

TEST_F(ArtifactTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/anole_system.bin";
  save_system_to_file(*system_, path);
  AnoleSystem loaded = load_system_from_file(path);
  EXPECT_EQ(loaded.model_count(), system_->model_count());
  std::remove(path.c_str());
}

TEST_F(ArtifactTest, ArtifactSizeMatchesStream) {
  std::stringstream stream;
  save_system(*system_, stream);
  EXPECT_EQ(system_artifact_bytes(*system_), stream.str().size());
}

TEST_F(ArtifactTest, RejectsGarbage) {
  std::stringstream garbage("definitely not an artifact");
  EXPECT_THROW((void)load_system(garbage), std::runtime_error);
}

TEST_F(ArtifactTest, RejectsTruncation) {
  std::stringstream stream;
  save_system(*system_, stream);
  std::string data = stream.str();
  data.resize(data.size() / 3);
  std::stringstream truncated(data);
  EXPECT_THROW((void)load_system(truncated), std::runtime_error);
}

TEST_F(ArtifactTest, IncompleteSystemRejected) {
  AnoleSystem incomplete;
  std::stringstream stream;
  EXPECT_THROW(save_system(incomplete, stream), std::runtime_error);
}

TEST_F(ArtifactTest, LoadedSystemDrivesEngine) {
  std::stringstream stream;
  save_system(*system_, stream);
  AnoleSystem loaded = load_system(stream);
  CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleEngine engine(loaded, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NO_THROW((void)engine.process(*frames[i]));
  }
  EXPECT_EQ(engine.frames_processed(), 20u);
}

TEST_F(ArtifactTest, ConfidenceFloorRoutesToFallback) {
  EngineConfig config;
  config.cache.capacity = 4;
  config.confidence_floor = 1.1;  // impossible: every frame is low-confidence
  AnoleEngine engine(*system_, config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 15; ++i) {
    const auto result = engine.process(*frames[i]);
    EXPECT_TRUE(result.low_confidence);
    EXPECT_EQ(result.served_model, engine.fallback_model());
  }
  EXPECT_EQ(engine.low_confidence_frames(), 15u);
  // The fallback is the broadest model.
  const auto& fallback = system_->repository.model(engine.fallback_model());
  for (std::size_t m = 0; m < system_->model_count(); ++m) {
    EXPECT_GE(fallback.scene_classes.size(),
              system_->repository.model(m).scene_classes.size());
  }
}

TEST_F(ArtifactTest, ZeroFloorNeverTriggersFallback) {
  EngineConfig config;
  config.cache.capacity = 4;
  config.confidence_floor = 0.0;
  AnoleEngine engine(*system_, config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  for (std::size_t i = 0; i < 15; ++i) {
    EXPECT_FALSE(engine.process(*frames[i]).low_confidence);
  }
  EXPECT_EQ(engine.low_confidence_frames(), 0u);
}

TEST_F(ArtifactTest, SmoothingReducesModelSwitches) {
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  EngineConfig raw;
  raw.cache.capacity = 8;
  AnoleEngine per_frame(*system_, raw);
  EngineConfig smoothed = raw;
  smoothed.suitability_smoothing = 0.8;
  AnoleEngine damped(*system_, smoothed);
  for (const world::Frame* frame : frames) {
    (void)per_frame.process(*frame);
    (void)damped.process(*frame);
  }
  EXPECT_LE(damped.model_switches(), per_frame.model_switches());
}

TEST_F(ArtifactTest, InvalidSmoothingRejected) {
  EngineConfig config;
  config.suitability_smoothing = 1.0;
  EXPECT_THROW(AnoleEngine(*system_, config), std::invalid_argument);
  config.suitability_smoothing = -0.1;
  EXPECT_THROW(AnoleEngine(*system_, config), std::invalid_argument);
}

TEST_F(ArtifactTest, Top1ConfidenceReported) {
  CacheConfig cache_config;
  cache_config.capacity = 4;
  AnoleEngine engine(*system_, cache_config);
  const auto frames = world_->frames_with_role(world::SplitRole::kTest);
  const auto result = engine.process(*frames[0]);
  EXPECT_GT(result.top1_confidence, 0.0);
  EXPECT_LE(result.top1_confidence, 1.0);
}

}  // namespace
}  // namespace anole::core
