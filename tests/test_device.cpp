#include "device/session.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace anole::device {
namespace {

constexpr std::uint64_t kTinyFlops = 100000;   // one tiny unit
constexpr std::uint64_t kDeepFlops = 1180000;  // the paper's 11.8x spread

TEST(DeviceProfile, LatencyIsAffineInFlops) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const double l1 = tx2.inference_latency_ms(kTinyFlops);
  const double l2 = tx2.inference_latency_ms(2 * kTinyFlops);
  const double l3 = tx2.inference_latency_ms(3 * kTinyFlops);
  EXPECT_NEAR(l3 - l2, l2 - l1, 1e-9);
  EXPECT_GT(l1, tx2.inference_overhead_ms);
}

TEST(DeviceProfile, TableIvLatencyShape) {
  // Tiny and deep latencies must reproduce Table IV's ordering and rough
  // magnitudes per device.
  const auto nano = DeviceProfile::jetson_nano(kTinyFlops);
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const auto laptop = DeviceProfile::laptop(kTinyFlops);
  const double nano_tiny = nano.inference_latency_ms(kTinyFlops);
  const double tx2_tiny = tx2.inference_latency_ms(kTinyFlops);
  const double laptop_tiny = laptop.inference_latency_ms(kTinyFlops);
  EXPECT_NEAR(nano_tiny, 37.8, 2.0);
  EXPECT_NEAR(tx2_tiny, 10.8, 1.0);
  EXPECT_NEAR(laptop_tiny, 32.2, 2.0);
  const double nano_deep = nano.inference_latency_ms(kDeepFlops);
  const double tx2_deep = tx2.inference_latency_ms(kDeepFlops);
  const double laptop_deep = laptop.inference_latency_ms(kDeepFlops);
  EXPECT_NEAR(nano_deep, 313.8, 16.0);
  EXPECT_NEAR(tx2_deep, 42.9, 3.0);
  EXPECT_NEAR(laptop_deep, 62.2, 4.0);
  // TX2 NX with TensorRT is the fastest device in the paper.
  EXPECT_LT(tx2_tiny, laptop_tiny);
  EXPECT_LT(tx2_tiny, nano_tiny);
}

TEST(DeviceProfile, ThroughputScaleSlowsCompute) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  EXPECT_GT(tx2.inference_latency_ms(kTinyFlops, 0.5),
            tx2.inference_latency_ms(kTinyFlops, 1.0));
  EXPECT_THROW((void)tx2.inference_latency_ms(kTinyFlops, 0.0),
               std::invalid_argument);
}

TEST(DeviceProfile, FirstLoadPaysFrameworkInit) {
  const auto nano = DeviceProfile::jetson_nano(kTinyFlops);
  const double first = nano.load_latency_ms(40.0, true);
  const double later = nano.load_latency_ms(40.0, false);
  EXPECT_GT(first, later + 1000.0);
  EXPECT_NEAR(first - later, nano.framework_init_ms, 1e-9);
}

TEST(DeviceProfile, PowerCappedAtBudget) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  ASSERT_FALSE(tx2.power_modes.empty());
  const auto& mode = tx2.power_modes.back();
  // Absurd load: power must clamp to the mode budget.
  EXPECT_DOUBLE_EQ(tx2.power_watts(kDeepFlops * 100, 1000.0, mode),
                   mode.budget_watts);
  // Light load: above idle, below budget.
  const double light = tx2.power_watts(kTinyFlops, 10.0, mode);
  EXPECT_GT(light, tx2.idle_watts);
  EXPECT_LT(light, mode.budget_watts);
}

TEST(DeviceProfile, DeepModelDrawsMorePower) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const auto& mode = tx2.power_modes.back();
  EXPECT_GT(tx2.power_watts(kDeepFlops, 20.0, mode),
            tx2.power_watts(kTinyFlops, 20.0, mode));
}

TEST(DeviceProfile, MaxFpsInverseOfLatency) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const auto& mode = tx2.power_modes.back();
  const double fps = tx2.max_fps(kTinyFlops, mode);
  EXPECT_NEAR(fps, 1000.0 / tx2.inference_latency_ms(kTinyFlops), 1e-6);
  // The paper reports > 30 FPS for Anole's compressed models on TX2 NX.
  EXPECT_GT(fps, 30.0);
}

TEST(DeviceProfile, AllDevicesPresent) {
  const auto devices = DeviceProfile::all_devices(kTinyFlops);
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_EQ(devices[0].name, "Jetson Nano");
  EXPECT_EQ(devices[1].name, "Jetson TX2 NX");
  EXPECT_EQ(devices[2].name, "Laptop");
}

TEST(MemoryModel, TinyModelMapsToFortyMb) {
  MemoryModel memory(3500);
  EXPECT_NEAR(memory.load_mb(3500), 40.0, 1e-9);
  EXPECT_NEAR(memory.load_mb(7000), 80.0, 1e-9);
}

TEST(MemoryModel, ExecutionCostsMatchTableIvShape) {
  MemoryModel memory(3500);
  // Tiny detector: ~1120 MB execution in Table IV.
  EXPECT_NEAR(memory.execution_mb(3500, true), 1000.0 + 2.9 * 40.0, 1.0);
  // Classifier stack is much lighter (~584 MB).
  EXPECT_LT(memory.execution_mb(3500, false),
            memory.execution_mb(3500, true));
}

TEST(MemoryModel, RejectsZeroReference) {
  EXPECT_THROW(MemoryModel(0), std::invalid_argument);
}

TEST(DeviceSession, AccumulatesLatencies) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost cost;
  cost.detector_flops = kTinyFlops;
  const double l1 = session.process(cost);
  const double l2 = session.process(cost);
  EXPECT_DOUBLE_EQ(l1, l2);
  EXPECT_EQ(session.frames(), 2u);
  EXPECT_NEAR(session.total_ms(), l1 + l2, 1e-9);
  EXPECT_NEAR(session.mean_latency_ms(), l1, 1e-9);
  EXPECT_NEAR(session.fps(), 1000.0 / l1, 1e-6);
}

TEST(DeviceSession, FirstFrameLoadSpike) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost first;
  first.detector_flops = kTinyFlops;
  first.loaded_weight_mb = 40.0;
  FrameCost later;
  later.detector_flops = kTinyFlops;
  const double spike = session.process(first);
  const double steady = session.process(later);
  // The Fig. 4(a) shape: first frame dominated by load + framework init.
  EXPECT_GT(spike, 10.0 * steady);
  // A later load has no framework init.
  FrameCost reload = first;
  const double second_load = session.process(reload);
  EXPECT_LT(second_load, spike - tx2.framework_init_ms + 1.0);
  EXPECT_GT(second_load, steady);
}

TEST(DeviceSession, DecisionFlopsAddLatency) {
  const auto nano = DeviceProfile::jetson_nano(kTinyFlops);
  DeviceSession plain(nano);
  DeviceSession routed(nano);
  FrameCost detector_only;
  detector_only.detector_flops = kTinyFlops;
  FrameCost with_decision = detector_only;
  with_decision.decision_flops = kTinyFlops / 10;
  EXPECT_GT(routed.process(with_decision), plain.process(detector_only));
}

TEST(DeviceSession, EmptySessionStats) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const DeviceSession session(tx2);
  EXPECT_EQ(session.frames(), 0u);
  EXPECT_DOUBLE_EQ(session.mean_latency_ms(), 0.0);
  EXPECT_DOUBLE_EQ(session.fps(), 0.0);
  EXPECT_DOUBLE_EQ(session.p95_latency_ms(), 0.0);
  EXPECT_EQ(session.deadline_overruns(), 0u);
}

TEST(DeviceSession, FpsConventionInfiniteForFreeFrames) {
  // Documented convention: frames that cost 0 ms mean "instant", not
  // "stalled" — fps reports +infinity rather than 0.
  DeviceProfile free_profile;
  free_profile.inference_overhead_ms = 0.0;
  free_profile.ms_per_tiny_unit = 0.0;
  DeviceSession session(free_profile);
  (void)session.process(FrameCost{});
  EXPECT_EQ(session.frames(), 1u);
  EXPECT_DOUBLE_EQ(session.total_ms(), 0.0);
  EXPECT_TRUE(std::isinf(session.fps()));
  EXPECT_GT(session.fps(), 0.0);
}

TEST(DeviceSession, P95IsNearestRankPercentile) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    FrameCost cost;
    cost.detector_flops = i * kTinyFlops;
    (void)session.process(cost);
  }
  // Nearest rank over 20 ascending latencies: ceil(0.95 * 20) = 19th
  // smallest = the 19-unit frame.
  EXPECT_DOUBLE_EQ(session.p95_latency_ms(),
                   tx2.inference_latency_ms(19 * kTinyFlops));
  EXPECT_GT(session.p95_latency_ms(), session.mean_latency_ms());
}

TEST(DeviceSession, DeadlineOverrunsCounted) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost relaxed;
  relaxed.detector_flops = kTinyFlops;
  relaxed.deadline_ms = 1e9;
  FrameCost tight = relaxed;
  tight.deadline_ms = 0.5;
  FrameCost unbounded;
  unbounded.detector_flops = kTinyFlops;  // deadline_ms = 0 disables
  (void)session.process(relaxed);
  (void)session.process(tight);
  (void)session.process(unbounded);
  EXPECT_EQ(session.deadline_overruns(), 1u);
}

TEST(DeviceSession, RetriedWeightChargesStreamingTime) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession clean(tx2);
  DeviceSession retried(tx2);
  FrameCost cost;
  cost.detector_flops = kTinyFlops;
  cost.loaded_weight_mb = 40.0;
  const double clean_ms = clean.process(cost);
  cost.retried_weight_mb = 80.0;  // two failed attempts re-streamed
  const double retried_ms = retried.process(cost);
  EXPECT_NEAR(retried_ms - clean_ms, 80.0 * tx2.load_ms_per_mb, 1e-9);
}

TEST(DeviceSession, InjectedLoadSpikeMultipliesLoadLatency) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  fault::FaultInjector injector;
  injector.arm(fault::Site::kLoadLatencySpike, 1.0, 25.0);
  DeviceSession clean(tx2);
  DeviceSession spiked(tx2, 1.0, &injector);
  FrameCost load_frame;
  load_frame.loaded_weight_mb = 40.0;
  FrameCost compute_frame;
  compute_frame.detector_flops = kTinyFlops;
  const double clean_load = clean.process(load_frame);
  const double spiked_load = spiked.process(load_frame);
  // Only the load stalls: the fixed dispatch overhead (charged even at
  // zero FLOPs) is not multiplied.
  EXPECT_NEAR(spiked_load,
              25.0 * tx2.load_latency_ms(40.0, true) +
                  tx2.inference_latency_ms(0),
              1e-6);
  EXPECT_GT(spiked_load, 20.0 * clean_load);
  EXPECT_EQ(spiked.latency_spikes(), 1u);
  // Frames that stream no weights never consult the injector.
  (void)clean.process(compute_frame);
  (void)spiked.process(compute_frame);
  EXPECT_EQ(spiked.latency_spikes(), 1u);
  EXPECT_EQ(injector.checks(fault::Site::kLoadLatencySpike), 1u);
}

TEST(DeviceSession, P95WithOneFrameIsThatFrame) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost cost;
  cost.detector_flops = kTinyFlops;
  const double latency = session.process(cost);
  // Regression: nearest-rank with n = 1 must clamp to rank 1 (the only
  // frame), not underflow to rank 0.
  EXPECT_DOUBLE_EQ(session.p95_latency_ms(), latency);
}

TEST(DeviceSession, WindowedMeanCoversLastNFrames) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost cheap;
  cheap.detector_flops = kTinyFlops;
  FrameCost costly;
  costly.detector_flops = 10 * kTinyFlops;
  double cheap_ms = 0.0;
  double costly_ms = 0.0;
  for (int i = 0; i < 10; ++i) cheap_ms = session.process(cheap);
  for (int i = 0; i < 10; ++i) costly_ms = session.process(costly);
  EXPECT_DOUBLE_EQ(session.recent_mean_latency_ms(10), costly_ms);
  EXPECT_NEAR(session.recent_mean_latency_ms(20),
              (cheap_ms + costly_ms) / 2.0, 1e-9);
  // A window larger than the session clamps to every frame.
  EXPECT_NEAR(session.recent_mean_latency_ms(1000),
              session.mean_latency_ms(), 1e-9);
  EXPECT_THROW((void)session.recent_mean_latency_ms(0),
               std::invalid_argument);
}

TEST(DeviceSession, WindowedAccessorsOnEmptySession) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const DeviceSession session(tx2);
  EXPECT_DOUBLE_EQ(session.recent_mean_latency_ms(8), 0.0);
  EXPECT_DOUBLE_EQ(session.recent_overrun_rate(8), 0.0);
}

TEST(DeviceSession, WindowedOverrunRateTracksRecentFrames) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  DeviceSession session(tx2);
  FrameCost tight;
  tight.detector_flops = kTinyFlops;
  tight.deadline_ms = 0.5;
  FrameCost relaxed = tight;
  relaxed.deadline_ms = 1e9;
  for (int i = 0; i < 4; ++i) (void)session.process(tight);
  for (int i = 0; i < 4; ++i) (void)session.process(relaxed);
  EXPECT_DOUBLE_EQ(session.recent_overrun_rate(4), 0.0);
  EXPECT_DOUBLE_EQ(session.recent_overrun_rate(8), 0.5);
  EXPECT_DOUBLE_EQ(session.recent_overrun_rate(100), 0.5);
  EXPECT_THROW((void)session.recent_overrun_rate(0), std::invalid_argument);
}

TEST(DeviceSession, FeedsObservationsToGovernor) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  core::RuntimeGovernor governor;
  DeviceSession session(tx2, 1.0, nullptr, &governor);
  FrameCost tight;
  tight.detector_flops = kTinyFlops;
  tight.deadline_ms = 0.5;  // every frame overruns
  for (std::size_t i = 0; i < governor.config().window; ++i) {
    (void)governor.plan();
    (void)session.process(tight);
  }
  // The session forwarded every overrun verdict: the window saturates and
  // the governor escalates out of kNormal.
  EXPECT_DOUBLE_EQ(governor.window_overrun_rate(), 1.0);
  EXPECT_NE(governor.state(), core::GovernorState::kNormal);
  EXPECT_GE(governor.transitions(), 1u);
}

/// Power-mode sweep: higher budgets give higher throughput (Fig. 11).
class PowerModeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PowerModeTest, ThroughputIncreasesWithBudget) {
  const auto tx2 = DeviceProfile::jetson_tx2_nx(kTinyFlops);
  const std::size_t index = GetParam();
  ASSERT_LT(index, tx2.power_modes.size());
  if (index == 0) return;
  EXPECT_GT(tx2.max_fps(kTinyFlops, tx2.power_modes[index]),
            tx2.max_fps(kTinyFlops, tx2.power_modes[index - 1]));
}

INSTANTIATE_TEST_SUITE_P(Modes, PowerModeTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace anole::device
