#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace anole::nn {
namespace {

/// A single scalar parameter module for hand-checkable updates.
struct ScalarParam : Module {
  Parameter p{Tensor(Shape{1}, 1.0f)};
  Tensor forward(const Tensor& input) override { return input; }
  Tensor infer(const Tensor& input) const override { return input; }
  Tensor backward(const Tensor& grad) override { return grad; }
  std::vector<Parameter*> parameters() override { return {&p}; }
  std::string name() const override { return "scalar"; }
};

TEST(Sgd, PlainStep) {
  ScalarParam m;
  Sgd sgd(m.parameters(), 0.1, /*momentum=*/0.0);
  m.p.grad[0] = 2.0f;
  sgd.step();
  EXPECT_NEAR(m.p.value[0], 1.0f - 0.1f * 2.0f, 1e-6f);
  // step() clears the gradient.
  EXPECT_EQ(m.p.grad[0], 0.0f);
}

TEST(Sgd, MomentumAccumulates) {
  ScalarParam m;
  Sgd sgd(m.parameters(), 0.1, /*momentum=*/0.5);
  m.p.grad[0] = 1.0f;
  sgd.step();  // v = 1, value = 1 - 0.1
  EXPECT_NEAR(m.p.value[0], 0.9f, 1e-6f);
  m.p.grad[0] = 1.0f;
  sgd.step();  // v = 0.5 + 1 = 1.5, value = 0.9 - 0.15
  EXPECT_NEAR(m.p.value[0], 0.75f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  ScalarParam m;
  Sgd sgd(m.parameters(), 0.1, 0.0, /*weight_decay=*/1.0);
  m.p.grad[0] = 0.0f;
  sgd.step();
  EXPECT_NEAR(m.p.value[0], 1.0f - 0.1f * 1.0f, 1e-6f);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  ScalarParam m;
  Adam adam(m.parameters(), 0.01);
  m.p.grad[0] = 3.7f;  // any gradient: bias-corrected first step = lr
  adam.step();
  EXPECT_NEAR(m.p.value[0], 1.0f - 0.01f, 1e-4f);
}

TEST(Adam, ConvergesOnQuadratic) {
  ScalarParam m;
  Adam adam(m.parameters(), 0.05);
  // Minimize (x - 3)^2 by feeding grad = 2 (x - 3).
  for (int i = 0; i < 500; ++i) {
    m.p.grad[0] = 2.0f * (m.p.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(m.p.value[0], 3.0f, 0.05f);
}

TEST(Optimizer, ZeroGradClears) {
  ScalarParam m;
  Sgd sgd(m.parameters(), 0.1);
  m.p.grad[0] = 5.0f;
  sgd.zero_grad();
  EXPECT_EQ(m.p.grad[0], 0.0f);
}

TEST(Optimizer, LearningRateMutable) {
  ScalarParam m;
  Sgd sgd(m.parameters(), 0.1);
  sgd.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.5);
}

/// End-to-end sanity: both optimizers fit a small nonlinear classifier.
class OptimizerFitTest : public ::testing::TestWithParam<bool> {};

TEST_P(OptimizerFitTest, FitsXorLikeProblem) {
  const bool use_adam = GetParam();
  Rng rng(71);
  Sequential net;
  net.emplace<Linear>(2, 16, rng);
  net.emplace<Tanh>();
  net.emplace<Linear>(16, 2, rng);

  // XOR-ish dataset.
  Tensor inputs = Tensor::matrix(4, 2);
  inputs.at(1, 1) = 1.0f;
  inputs.at(2, 0) = 1.0f;
  inputs.at(3, 0) = 1.0f;
  inputs.at(3, 1) = 1.0f;
  const std::vector<std::size_t> labels = {0, 1, 1, 0};

  std::unique_ptr<Optimizer> optimizer;
  if (use_adam) {
    optimizer = std::make_unique<Adam>(net.parameters(), 0.02);
  } else {
    optimizer = std::make_unique<Sgd>(net.parameters(), 0.2, 0.9);
  }
  for (int epoch = 0; epoch < 400; ++epoch) {
    Tensor grad;
    const Tensor logits = net.forward(inputs);
    (void)softmax_cross_entropy(logits, labels, grad);
    net.backward(grad);
    optimizer->step();
  }
  EXPECT_EQ(accuracy(net.forward(inputs), labels), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Both, OptimizerFitTest, ::testing::Bool());

}  // namespace
}  // namespace anole::nn
