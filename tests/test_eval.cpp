#include "eval/confusion.hpp"
#include "eval/f1_series.hpp"

#include <gtest/gtest.h>

#include "util/table.hpp"
#include "world/frame_generator.hpp"

namespace anole::eval {
namespace {

TEST(ConfusionMatrix, RejectsZeroClasses) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrix, AddAndCount) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.count(0, 0), 1u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_EQ(cm.total(), 3u);
  EXPECT_THROW(cm.add(3, 0), std::out_of_range);
}

TEST(ConfusionMatrix, Accuracy) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, NormalizedRows) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(0, 1);
  EXPECT_NEAR(cm.normalized(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.normalized(0, 1), 2.0 / 3.0, 1e-12);
  // Empty row normalizes to zero.
  EXPECT_DOUBLE_EQ(cm.normalized(1, 0), 0.0);
}

TEST(ConfusionMatrix, BalancedAccuracyIgnoresEmptyRows) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 0);
  cm.add(1, 1);
  // Class 0 recall 1.0, class 1 recall 0.5, class 2 empty.
  EXPECT_DOUBLE_EQ(cm.balanced_accuracy(), 0.75);
  const auto recalls = cm.per_class_recall();
  EXPECT_DOUBLE_EQ(recalls[0], 1.0);
  EXPECT_DOUBLE_EQ(recalls[1], 0.5);
}

TEST(ConfusionMatrix, TableRendering) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  const std::string table = cm.to_table({"day", "night"});
  EXPECT_NE(table.find("day"), std::string::npos);
  EXPECT_NE(table.find("1.00"), std::string::npos);
}

world::Frame frame_with_object(Rng& rng) {
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  world::ObjectInstance obj;
  obj.cx = 0.5;
  obj.cy = 0.5;
  obj.w = 0.2;
  obj.h = 0.2;
  return generator.render(style, attrs, {obj}, rng);
}

TEST(F1Series, PerfectOracleGetsOne) {
  Rng rng(3);
  std::vector<world::Frame> frames;
  for (int i = 0; i < 25; ++i) frames.push_back(frame_with_object(rng));
  std::vector<const world::Frame*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);
  // An oracle that returns the ground truth as detections.
  const InferFn oracle = [](const world::Frame& frame) {
    std::vector<detect::Detection> dets;
    for (const auto& obj : frame.objects) {
      dets.push_back({obj.cx, obj.cy, obj.w, obj.h, 1.0});
    }
    return dets;
  };
  const auto series = windowed_f1(oracle, ptrs, 10);
  // 25 frames at window 10 -> windows of 10, 10, 5.
  ASSERT_EQ(series.size(), 3u);
  for (double f1 : series) EXPECT_DOUBLE_EQ(f1, 1.0);
  EXPECT_DOUBLE_EQ(overall_f1(oracle, ptrs), 1.0);
}

TEST(F1Series, BlindDetectorGetsZero) {
  Rng rng(4);
  std::vector<world::Frame> frames;
  for (int i = 0; i < 10; ++i) frames.push_back(frame_with_object(rng));
  std::vector<const world::Frame*> ptrs;
  for (const auto& f : frames) ptrs.push_back(&f);
  const InferFn blind = [](const world::Frame&) {
    return std::vector<detect::Detection>{};
  };
  EXPECT_DOUBLE_EQ(overall_f1(blind, ptrs), 0.0);
}

TEST(F1Series, ZeroWindowTreatedAsOne) {
  Rng rng(5);
  std::vector<world::Frame> frames = {frame_with_object(rng)};
  std::vector<const world::Frame*> ptrs = {&frames[0]};
  const InferFn blind = [](const world::Frame&) {
    return std::vector<detect::Detection>{};
  };
  EXPECT_EQ(windowed_f1(blind, ptrs, 0).size(), 1u);
}

TEST(F1Series, EmptyFramesEmptySeries) {
  const InferFn blind = [](const world::Frame&) {
    return std::vector<detect::Detection>{};
  };
  EXPECT_TRUE(windowed_f1(blind, {}, 10).empty());
  EXPECT_DOUBLE_EQ(overall_f1(blind, {}), 0.0);
}

TEST(TablePrinter, AlignsAndRenders) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row_numeric("beta", {2.5, 3.0}, 1);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, CsvQuotesSpecials) {
  TablePrinter table({"a", "b"});
  table.add_row({"x,y", "he said \"hi\""});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Formatting, PercentAndDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_percent(0.451), "45.1%");
}

}  // namespace
}  // namespace anole::eval
