// Hostile-world scenario packs (world/scenario.hpp): spec parsing,
// deterministic composition, per-pack stream independence, and the
// physical effects each pack is supposed to have on the frames.
#include "world/scenario.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "util/check.hpp"
#include "world/world.hpp"

namespace anole::world {
namespace {

World small_world() {
  WorldConfig config;
  config.frames_per_clip = 10;
  config.clip_scale = 0.2;
  return make_benchmark_world(config);
}

bool frames_equal(const Frame& a, const Frame& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t i = 0; i < a.cell_count(); ++i) {
    auto ra = a.cells.row(i);
    auto rb = b.cells.row(i);
    for (std::size_t c = 0; c < kCellChannels; ++c) {
      if (ra[c] != rb[c]) return false;
    }
  }
  return a.brightness == b.brightness && a.contrast == b.contrast;
}

TEST(Scenario, PackNamesRoundTrip) {
  for (std::size_t i = 0; i < kScenarioPackCount; ++i) {
    const auto pack = static_cast<ScenarioPack>(i);
    const auto parsed = pack_from_name(to_string(pack));
    ASSERT_TRUE(parsed.has_value()) << to_string(pack);
    EXPECT_EQ(*parsed, pack);
  }
  EXPECT_FALSE(pack_from_name("locusts").has_value());
}

TEST(Scenario, SpecParsesSeedIntensityMagnitude) {
  const ScenarioConfig config =
      ScenarioConfig::parse("seed=7, drift=1.0, degrade=0.6x2, bursts=0.03x6");
  EXPECT_EQ(config.seed, 7u);
  EXPECT_DOUBLE_EQ(config.intensity(ScenarioPack::kDrift), 1.0);
  EXPECT_DOUBLE_EQ(config.magnitude(ScenarioPack::kDrift), 1.0);
  EXPECT_DOUBLE_EQ(config.intensity(ScenarioPack::kDegrade), 0.6);
  EXPECT_DOUBLE_EQ(config.magnitude(ScenarioPack::kDegrade), 2.0);
  EXPECT_DOUBLE_EQ(config.intensity(ScenarioPack::kBursts), 0.03);
  EXPECT_DOUBLE_EQ(config.magnitude(ScenarioPack::kBursts), 6.0);
  EXPECT_DOUBLE_EQ(config.intensity(ScenarioPack::kDiurnal), 0.0);
  EXPECT_TRUE(config.armed());
  EXPECT_FALSE(ScenarioConfig::parse("").armed());
  EXPECT_EQ(ScenarioConfig::parse("").seed, ScenarioConfig::kDefaultSeed);
}

TEST(Scenario, SpecRejectsMalformedTokens) {
  EXPECT_THROW(ScenarioConfig::parse("locusts=0.5"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift=1.5"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift=nan"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift=0.5junk"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift=0.5x0"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("drift=0.5xinf"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("seed=-1"), ContractViolation);
  EXPECT_THROW(ScenarioConfig::parse("=0.5"), ContractViolation);
}

TEST(Scenario, SpecErrorNamesOffendingToken) {
  try {
    ScenarioConfig::parse("drift=0.5,locusts=1");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("locusts"), std::string::npos) << message;
    EXPECT_NE(message.find("ANOLE_SCENARIO"), std::string::npos) << message;
  }
}

TEST(Scenario, FromEnvHonorsVariable) {
  const char* saved = std::getenv("ANOLE_SCENARIO");
  const std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("ANOLE_SCENARIO");
  EXPECT_FALSE(ScenarioConfig::from_env().has_value());
  ::setenv("ANOLE_SCENARIO", "", 1);
  EXPECT_FALSE(ScenarioConfig::from_env().has_value());
  ::setenv("ANOLE_SCENARIO", "seed=9,diurnal=0.75", 1);
  const auto config = ScenarioConfig::from_env();
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->seed, 9u);
  EXPECT_DOUBLE_EQ(config->intensity(ScenarioPack::kDiurnal), 0.75);

  if (saved == nullptr) {
    ::unsetenv("ANOLE_SCENARIO");
  } else {
    ::setenv("ANOLE_SCENARIO", saved_value.c_str(), 1);
  }
}

TEST(Scenario, CompositionIsBitwiseDeterministic) {
  const World world = small_world();
  const ScenarioConfig config =
      ScenarioConfig::parse("seed=11,drift=1.0,degrade=0.5,bursts=0.05");
  const ScenarioStream a = compose_scenario(world, config, 120);
  const ScenarioStream b = compose_scenario(world, config, 120);
  ASSERT_EQ(a.clip.size(), 120u);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  for (std::size_t i = 0; i < a.clip.size(); ++i) {
    EXPECT_TRUE(frames_equal(a.clip.frames[i], b.clip.frames[i])) << i;
  }
  // A different seed reschedules the whole stream.
  ScenarioConfig reseeded = config;
  reseeded.seed = 12;
  EXPECT_NE(compose_scenario(world, reseeded, 120).trace_hash(),
            a.trace_hash());
}

TEST(Scenario, ArmingOnePackDoesNotPerturbAnother) {
  // Per-pack Rng streams: adding bursts must not move a single drift
  // event (same frames, same scene choices), mirroring the fault
  // injector's per-site stream independence.
  const World world = small_world();
  const ScenarioStream drift_only = compose_scenario(
      world, ScenarioConfig::parse("seed=3,drift=1.0"), 180);
  const ScenarioStream both = compose_scenario(
      world, ScenarioConfig::parse("seed=3,drift=1.0,bursts=0.05"), 180);
  std::vector<ScenarioEvent> drift_a;
  std::vector<ScenarioEvent> drift_b;
  for (const auto& e : drift_only.events) {
    if (e.pack == ScenarioPack::kDrift) drift_a.push_back(e);
  }
  for (const auto& e : both.events) {
    if (e.pack == ScenarioPack::kDrift) drift_b.push_back(e);
  }
  ASSERT_EQ(drift_a.size(), drift_b.size());
  for (std::size_t i = 0; i < drift_a.size(); ++i) {
    EXPECT_EQ(drift_a[i].frame, drift_b[i].frame);
    EXPECT_EQ(drift_a[i].detail, drift_b[i].detail);
  }
}

TEST(Scenario, DegradePreservesScheduleAndDamagesFrames) {
  // The degrade pack only touches rendered features: the ground-truth
  // object schedule is frame-for-frame identical to the clean stream
  // (paired-stream evaluation), while the late cells diverge and wash out.
  const World world = small_world();
  ScenarioConfig clean;
  clean.seed = 21;
  ScenarioConfig degraded = clean;
  degraded.arm(ScenarioPack::kDegrade, 1.0, 2.0);
  const ScenarioStream a = compose_scenario(world, clean, 90);
  const ScenarioStream b = compose_scenario(world, degraded, 90);
  ASSERT_EQ(a.clip.size(), b.clip.size());
  for (std::size_t i = 0; i < a.clip.size(); ++i) {
    ASSERT_EQ(a.clip.frames[i].objects.size(),
              b.clip.frames[i].objects.size())
        << i;
    for (std::size_t o = 0; o < a.clip.frames[i].objects.size(); ++o) {
      EXPECT_DOUBLE_EQ(a.clip.frames[i].objects[o].cx,
                       b.clip.frames[i].objects[o].cx);
      EXPECT_DOUBLE_EQ(a.clip.frames[i].objects[o].cy,
                       b.clip.frames[i].objects[o].cy);
    }
  }
  // Frame 0 has ramp 0 (identical); the last frame must differ.
  EXPECT_TRUE(frames_equal(a.clip.frames.front(), b.clip.frames.front()));
  EXPECT_FALSE(frames_equal(a.clip.frames.back(), b.clip.frames.back()));
  // Stats stay consistent with the damaged cells.
  const Frame& last = b.clip.frames.back();
  double sum = 0.0;
  for (std::size_t i = 0; i < last.cell_count(); ++i) {
    auto cell = last.cells.row(i);
    for (std::size_t c = 0; c < kBlockChannels; ++c) sum += cell[c];
  }
  const double mean =
      sum / static_cast<double>(last.cell_count() * kBlockChannels);
  EXPECT_NEAR(last.brightness, mean, 1e-9);
}

TEST(Scenario, BurstsCrushBrightnessAndPairEntryExit) {
  const World world = small_world();
  ScenarioConfig clean;
  clean.seed = 5;
  ScenarioConfig bursty = clean;
  bursty.arm(ScenarioPack::kBursts, 0.08, 6.0);
  const ScenarioStream a = compose_scenario(world, clean, 240);
  const ScenarioStream b = compose_scenario(world, bursty, 240);
  std::size_t entries = 0;
  std::size_t exits = 0;
  for (const auto& event : b.events) {
    if (event.pack != ScenarioPack::kBursts) continue;
    if (event.detail == 1) {
      ++entries;
      // Entry frame: lighting crushed well below the clean rendition.
      const std::size_t f = event.frame;
      EXPECT_LT(b.clip.frames[f].brightness,
                a.clip.frames[f].brightness - 0.05)
          << f;
    } else {
      ++exits;
    }
  }
  ASSERT_GE(entries, 1u);
  EXPECT_GE(entries, exits);
  EXPECT_LE(entries - exits, 1u);  // at most one burst still open at EOF
}

TEST(Scenario, DriftShiftsMixTowardHostileScenes) {
  const World world = small_world();
  ScenarioConfig config;
  config.seed = 17;
  config.arm(ScenarioPack::kDrift, 1.0);
  const ScenarioStream stream = compose_scenario(world, config, 600);
  std::size_t early_hostile = 0;
  std::size_t early = 0;
  std::size_t late_hostile = 0;
  std::size_t late = 0;
  for (const auto& event : stream.events) {
    if (event.pack != ScenarioPack::kDrift) continue;
    const bool hostile = (event.detail >> 32) & 1;
    if (event.frame < 300) {
      ++early;
      early_hostile += hostile ? 1 : 0;
    } else {
      ++late;
      late_hostile += hostile ? 1 : 0;
    }
  }
  ASSERT_GE(early, 1u);
  ASSERT_GE(late, 1u);
  const double early_rate =
      static_cast<double>(early_hostile) / static_cast<double>(early);
  const double late_rate =
      static_cast<double>(late_hostile) / static_cast<double>(late);
  EXPECT_GT(late_rate, early_rate + 0.25);
}

TEST(Scenario, DiurnalSweepsTimeOfDay) {
  const World world = small_world();
  ScenarioConfig config;
  config.seed = 2;
  config.arm(ScenarioPack::kDiurnal, 1.0);
  const ScenarioStream stream = compose_scenario(world, config, 600);
  bool saw_day = false;
  bool saw_dawn_dusk = false;
  bool saw_night = false;
  for (const auto& event : stream.events) {
    if (event.pack != ScenarioPack::kDiurnal) continue;
    switch (static_cast<TimeOfDay>(event.detail & 0x3)) {
      case TimeOfDay::kDaytime: saw_day = true; break;
      case TimeOfDay::kDawnDusk: saw_dawn_dusk = true; break;
      case TimeOfDay::kNight: saw_night = true; break;
    }
  }
  EXPECT_TRUE(saw_day);
  EXPECT_TRUE(saw_dawn_dusk);
  EXPECT_TRUE(saw_night);
}

TEST(Scenario, RejectsDegenerateInputs) {
  const World world = small_world();
  ScenarioConfig config;
  EXPECT_THROW(compose_scenario(world, config, 0), ContractViolation);
  World empty;
  empty.config = world.config;
  EXPECT_THROW(compose_scenario(empty, config, 10), ContractViolation);
  EXPECT_THROW(config.arm(ScenarioPack::kDrift, 1.5), ContractViolation);
  EXPECT_THROW(config.arm(ScenarioPack::kDrift, 0.5, 0.0),
               ContractViolation);
}

TEST(Scenario, ProvenanceFieldsAreSequential) {
  const World world = small_world();
  ScenarioConfig config;
  config.arm(ScenarioPack::kDrift, 0.5);
  const ScenarioStream stream = compose_scenario(world, config, 70);
  EXPECT_EQ(stream.clip.clip_id, world.clips.size());
  EXPECT_FALSE(stream.clip.seen);
  for (std::size_t i = 0; i < stream.clip.size(); ++i) {
    EXPECT_EQ(stream.clip.frames[i].frame_index, i);
    EXPECT_EQ(stream.clip.frames[i].clip_id, stream.clip.clip_id);
  }
}

}  // namespace
}  // namespace anole::world
