#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <set>

namespace anole::cluster {
namespace {

/// `blobs` well-separated Gaussian clusters of `per_blob` points each.
Tensor make_blobs(std::size_t blobs, std::size_t per_blob, Rng& rng) {
  Tensor points = Tensor::matrix(blobs * per_blob, 2);
  for (std::size_t b = 0; b < blobs; ++b) {
    const double cx = 10.0 * static_cast<double>(b);
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = b * per_blob + i;
      points.at(row, 0) = static_cast<float>(rng.normal(cx, 0.3));
      points.at(row, 1) = static_cast<float>(rng.normal(-cx, 0.3));
    }
  }
  return points;
}

TEST(KMeans, RecoversSeparableBlobs) {
  Rng rng(3);
  const Tensor points = make_blobs(3, 30, rng);
  KMeansConfig config;
  config.clusters = 3;
  const auto result = kmeans(points, config, rng);
  // Every blob's points share one label, and labels differ across blobs.
  std::set<std::size_t> blob_labels;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t label = result.assignments[b * 30];
    for (std::size_t i = 0; i < 30; ++i) {
      EXPECT_EQ(result.assignments[b * 30 + i], label);
    }
    blob_labels.insert(label);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
  EXPECT_LT(result.inertia, 100.0);
}

TEST(KMeans, SingleClusterCentroidIsMean) {
  Rng rng(4);
  Tensor points(Shape{4, 1}, std::vector<float>{0.0f, 2.0f, 4.0f, 6.0f});
  KMeansConfig config;
  config.clusters = 1;
  const auto result = kmeans(points, config, rng);
  EXPECT_NEAR(result.centroids.at(0, 0), 3.0f, 1e-5f);
}

TEST(KMeans, ClusterSizesSumToN) {
  Rng rng(5);
  const Tensor points = make_blobs(4, 25, rng);
  KMeansConfig config;
  config.clusters = 4;
  const auto result = kmeans(points, config, rng);
  const auto sizes = result.cluster_sizes();
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  EXPECT_EQ(total, 100u);
}

TEST(KMeans, RejectsTooFewPoints) {
  Rng rng(6);
  const Tensor points = Tensor::matrix(2, 3);
  KMeansConfig config;
  config.clusters = 5;
  EXPECT_THROW((void)kmeans(points, config, rng), std::invalid_argument);
  config.clusters = 0;
  EXPECT_THROW((void)kmeans(points, config, rng), std::invalid_argument);
}

TEST(KMeans, RejectsNonMatrix) {
  Rng rng(7);
  const Tensor points(Shape{10});
  KMeansConfig config;
  EXPECT_THROW((void)kmeans(points, config, rng), std::invalid_argument);
}

TEST(KMeans, HandlesDuplicatePoints) {
  Rng rng(8);
  const Tensor points = Tensor::matrix(10, 2, 1.0f);  // all identical
  KMeansConfig config;
  config.clusters = 3;
  const auto result = kmeans(points, config, rng);
  EXPECT_EQ(result.assignments.size(), 10u);
  EXPECT_LE(result.inertia, 1e-6);
}

TEST(KMeans, InertiaNonIncreasingInK) {
  Rng rng(9);
  const Tensor points = make_blobs(5, 20, rng);
  double previous = 1e18;
  for (std::size_t k = 1; k <= 6; ++k) {
    KMeansConfig config;
    config.clusters = k;
    // Best of 3 seedings to smooth out k-means++ randomness.
    double best = 1e18;
    for (int attempt = 0; attempt < 3; ++attempt) {
      best = std::min(best, kmeans(points, config, rng).inertia);
    }
    EXPECT_LE(best, previous * 1.01) << "k=" << k;
    previous = best;
  }
}

TEST(NearestCentroid, PicksClosest) {
  Tensor centroids(Shape{3, 2},
                   std::vector<float>{0, 0, 10, 0, 0, 10});
  const std::vector<float> point = {7.0f, 1.0f};
  EXPECT_EQ(nearest_centroid(centroids, point), 1u);
}

TEST(SquaredDistance, KnownValue) {
  const std::vector<float> a = {0.0f, 3.0f};
  const std::vector<float> b = {4.0f, 0.0f};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

/// Assignments must always point at the nearest centroid on convergence.
class KMeansInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansInvariantTest, AssignmentsAreNearestCentroid) {
  Rng rng(GetParam());
  const Tensor points = make_blobs(3, 20, rng);
  KMeansConfig config;
  config.clusters = 3;
  const auto result = kmeans(points, config, rng);
  for (std::size_t i = 0; i < points.rows(); ++i) {
    EXPECT_EQ(result.assignments[i],
              nearest_centroid(result.centroids, points.row(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansInvariantTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace anole::cluster
