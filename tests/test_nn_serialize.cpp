#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/sequential.hpp"

namespace anole::nn {
namespace {

std::unique_ptr<Sequential> make_net(std::uint64_t seed) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>();
  net->emplace<Linear>(4, 6, rng);
  net->emplace<ReLU>();
  net->emplace<Linear>(6, 2, rng);
  return net;
}

TEST(Serialize, RoundTripRestoresWeights) {
  auto source = make_net(1);
  auto target = make_net(2);
  // Different seeds -> different weights.
  ASSERT_FALSE(allclose(source->parameters()[0]->value,
                        target->parameters()[0]->value));

  std::stringstream stream;
  save_parameters(*source, stream);
  load_parameters(*target, stream);

  const auto src_params = source->parameters();
  const auto dst_params = target->parameters();
  ASSERT_EQ(src_params.size(), dst_params.size());
  for (std::size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_TRUE(allclose(src_params[i]->value, dst_params[i]->value, 0.0f));
  }
}

TEST(Serialize, RoundTripPreservesOutputs) {
  auto source = make_net(3);
  auto target = make_net(4);
  std::stringstream stream;
  save_parameters(*source, stream);
  load_parameters(*target, stream);
  Rng rng(5);
  Tensor input = Tensor::matrix(3, 4);
  for (auto& v : input.data()) v = static_cast<float>(rng.normal());
  EXPECT_TRUE(allclose(source->forward(input), target->forward(input)));
}

TEST(Serialize, RejectsBadMagic) {
  auto net = make_net(6);
  std::stringstream stream("NOTMAGIC plus some junk data here");
  EXPECT_THROW(load_parameters(*net, stream), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  auto net = make_net(7);
  std::stringstream stream;
  save_parameters(*net, stream);
  std::string data = stream.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(load_parameters(*net, truncated), std::runtime_error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  auto source = make_net(8);
  Rng rng(9);
  Sequential different;
  different.emplace<Linear>(4, 5, rng);  // different width
  std::stringstream stream;
  save_parameters(*source, stream);
  EXPECT_THROW(load_parameters(different, stream), std::runtime_error);
}

TEST(Serialize, SizeMatchesStream) {
  auto net = make_net(10);
  std::stringstream stream;
  save_parameters(*net, stream);
  EXPECT_EQ(serialized_size_bytes(*net), stream.str().size());
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/anole_weights.bin";
  auto source = make_net(11);
  auto target = make_net(12);
  save_parameters_to_file(*source, path);
  load_parameters_from_file(*target, path);
  EXPECT_TRUE(allclose(source->parameters()[0]->value,
                       target->parameters()[0]->value, 0.0f));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  auto net = make_net(13);
  EXPECT_THROW(load_parameters_from_file(*net, "/nonexistent/dir/w.bin"),
               std::runtime_error);
}

}  // namespace
}  // namespace anole::nn
