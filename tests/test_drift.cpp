// DriftDetector (core/drift.hpp): CUSUM change detection over the
// decision-confidence stream, the serving response it produces, and the
// engine/session wiring — including the ANOLE_DRIFT=0 detach path that
// must reproduce the unadapted timeline exactly.
#include "core/drift.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/profiler.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "world/scenario.hpp"

namespace anole::core {
namespace {

DriftConfig tight_config() {
  DriftConfig config;
  config.window = 16;
  config.baseline_window = 16;
  config.cusum_slack = 0.05;
  config.cusum_threshold = 0.5;
  config.min_separation = 8;
  return config;
}

TEST(DriftDetector, EnabledFromEnvHonorsVariable) {
  const char* saved = std::getenv("ANOLE_DRIFT");
  const std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("ANOLE_DRIFT");
  EXPECT_TRUE(drift_enabled_from_env());
  ::setenv("ANOLE_DRIFT", "1", 1);
  EXPECT_TRUE(drift_enabled_from_env());
  ::setenv("ANOLE_DRIFT", "0", 1);
  EXPECT_FALSE(drift_enabled_from_env());

  if (saved == nullptr) {
    ::unsetenv("ANOLE_DRIFT");
  } else {
    ::setenv("ANOLE_DRIFT", saved_value.c_str(), 1);
  }
}

TEST(DriftDetector, StationaryStreamNeverFires) {
  DriftDetector detector(tight_config());
  for (int i = 0; i < 500; ++i) {
    detector.observe_confidence(0.8, false, 0);
  }
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_FALSE(detector.response_pending());
  EXPECT_NEAR(detector.baseline_mean(), 0.8, 1e-9);
}

TEST(DriftDetector, DetectsConfidenceCollapse) {
  DriftDetector detector(tight_config());
  for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
  ASSERT_EQ(detector.detections(), 0u);
  int fired_after = -1;
  for (int i = 0; i < 50; ++i) {
    detector.observe_confidence(0.3, true, 1);
    if (detector.detections() > 0) {
      fired_after = i;
      break;
    }
  }
  // 0.8 - 0.3 - 0.05 slack = 0.45 per observation: two collapse frames
  // cross the 0.5 threshold.
  ASSERT_GE(fired_after, 0);
  EXPECT_LE(fired_after, 3);
  ASSERT_TRUE(detector.response_pending());
  const DriftResponse response = detector.take_response();
  EXPECT_FALSE(detector.response_pending());
  // Floor recalibrates into the new regime: below the collapsed
  // confidence, not the clean one.
  EXPECT_GT(response.recalibrated_floor, 0.0);
  EXPECT_LT(response.recalibrated_floor, 0.3);
  EXPECT_DOUBLE_EQ(response.smoothing_scale, 0.5);
}

TEST(DriftDetector, RebaselinesAndDecaysPerDetection) {
  DriftDetector detector(tight_config());
  for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
  for (int i = 0; i < 60; ++i) detector.observe_confidence(0.4, true, 0);
  ASSERT_EQ(detector.detections(), 1u);
  (void)detector.take_response();
  // The detector re-baselined on the 0.4 regime: staying there is quiet…
  for (int i = 0; i < 100; ++i) detector.observe_confidence(0.4, true, 0);
  EXPECT_EQ(detector.detections(), 1u);
  // …and a second collapse fires a second, further-decayed response.
  for (int i = 0; i < 60; ++i) detector.observe_confidence(0.05, true, 0);
  ASSERT_EQ(detector.detections(), 2u);
  EXPECT_DOUBLE_EQ(detector.take_response().smoothing_scale, 0.25);
}

TEST(DriftDetector, FlagsStaleModels) {
  DriftDetector detector(tight_config());
  // Baseline and the older window half served by model 0; the collapse
  // regime is served by model 1 — model 0 is the stale one.
  for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
  for (int i = 0; i < 60 && detector.detections() == 0; ++i) {
    detector.observe_confidence(0.3, true, 1);
  }
  // The two-frame collapse window keeps plenty of model-0 history in the
  // older half; force more model-1 evidence before inspecting.
  DriftDetector slow(DriftConfig{.window = 16,
                                 .baseline_window = 16,
                                 .cusum_slack = 0.05,
                                 .cusum_threshold = 4.0,
                                 .min_separation = 8});
  for (int i = 0; i < 16; ++i) slow.observe_confidence(0.8, false, 0);
  for (int i = 0; i < 100 && slow.detections() == 0; ++i) {
    slow.observe_confidence(0.3, true, 1);
  }
  ASSERT_EQ(slow.detections(), 1u);
  const DriftResponse response = slow.take_response();
  // By detection time the window's newer half is all model 1; model 0
  // only survives in the older half (if at all). Either the stale list
  // names model 0 or the window has fully turned over — never model 1.
  for (const std::size_t model : response.stale_models) {
    EXPECT_EQ(model, 0u);
  }
}

TEST(DriftDetector, LatencyShiftIsInformationalOnly) {
  DriftDetector detector(tight_config());
  for (int i = 0; i < 16; ++i) detector.observe_latency(10.0, false);
  for (int i = 0; i < 50; ++i) detector.observe_latency(40.0, true);
  EXPECT_GE(detector.latency_detections(), 1u);
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_FALSE(detector.response_pending());
}

TEST(DriftDetector, TraceHashIsReplayableAndSensitive) {
  const auto feed = [](DriftDetector& detector, double late) {
    for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
    for (int i = 0; i < 80; ++i) detector.observe_confidence(late, true, 1);
  };
  DriftDetector a(tight_config());
  DriftDetector b(tight_config());
  DriftDetector c(tight_config());
  feed(a, 0.3);
  feed(b, 0.3);
  feed(c, 0.2);
  EXPECT_GE(a.detections(), 1u);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_NE(a.trace_hash(), c.trace_hash());
  a.reset();
  EXPECT_EQ(a.detections(), 0u);
  EXPECT_EQ(a.trace().size(), 0u);
  EXPECT_FALSE(a.response_pending());
}

TEST(DriftDetector, ContractChecks) {
  DriftDetector detector;
  EXPECT_THROW(detector.take_response(), ContractViolation);
  DriftConfig bad;
  bad.window = 1;
  EXPECT_THROW(DriftDetector{bad}, ContractViolation);
  bad = DriftConfig{};
  bad.cusum_threshold = 0.0;
  EXPECT_THROW(DriftDetector{bad}, ContractViolation);
  bad = DriftConfig{};
  bad.smoothing_decay = 0.0;
  EXPECT_THROW(DriftDetector{bad}, ContractViolation);
}

/// Engine-level drift tests share one trained system (same scale as the
/// engine fault tests: a small world, 6 compressed models).
class EngineDriftTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 50;
    world_config.clip_scale = 0.12;
    world_config.seed = 77;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    ProfilerConfig config;
    config.encoder.train.epochs = 15;
    config.repository.target_models = 6;
    config.repository.detector_train.epochs = 6;
    config.repository.min_training_frames = 20;
    config.repository.min_validation_frames = 4;
    config.sampling.budget = 150;
    config.decision.train.epochs = 15;
    Rng rng(3);
    OfflineProfiler profiler(config);
    system_ = std::make_unique<AnoleSystem>(profiler.run(*world_, rng));

    // A drift-pack stream: the scene mix shifts toward hostile scenes
    // the decision model barely saw.
    world::ScenarioConfig scenario;
    scenario.seed = 40;
    scenario.arm(world::ScenarioPack::kDrift, 1.0);
    stream_ = std::make_unique<world::ScenarioStream>(
        world::compose_scenario(*world_, scenario, 600));
  }

  static void TearDownTestSuite() {
    stream_.reset();
    system_.reset();
    world_.reset();
  }

  /// A frozen-baseline engine config: heavy smoothing plus a fixed
  /// confidence floor calibrated for the clean mix (what drifts badly).
  static EngineConfig frozen_config() {
    EngineConfig config;
    config.cache.capacity = 3;
    config.suitability_smoothing = 0.9;
    config.confidence_floor = 0.35;
    return config;
  }

  static std::vector<const world::Frame*> stream_frames() {
    std::vector<const world::Frame*> frames;
    frames.reserve(stream_->clip.size());
    for (const world::Frame& frame : stream_->clip.frames) {
      frames.push_back(&frame);
    }
    return frames;
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
  static std::unique_ptr<world::ScenarioStream> stream_;
};

std::unique_ptr<world::World> EngineDriftTest::world_;
std::unique_ptr<AnoleSystem> EngineDriftTest::system_;
std::unique_ptr<world::ScenarioStream> EngineDriftTest::stream_;

/// Drives the detector into a pending response (a confidence collapse of
/// the kind the bench reproduces organically at full scale — at this
/// fixture's size the 6-model decision head saturates near 1.0, so the
/// collapse is injected) and verifies the engine consumes and applies it
/// on the next planned frame.
TEST_F(EngineDriftTest, ResponderAppliesPendingResponse) {
  DriftDetector detector(tight_config());
  for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
  for (int i = 0; i < 8; ++i) detector.observe_confidence(0.1, true, 1);
  ASSERT_EQ(detector.detections(), 1u);
  ASSERT_TRUE(detector.response_pending());
  const std::size_t prior_obs = detector.confidence_observations();

  EngineConfig config = frozen_config();
  config.drift = &detector;
  AnoleEngine engine(*system_, config);
  ASSERT_EQ(engine.drift(), &detector);
  const EngineResult first = engine.process(stream_->clip.frames[0]);
  EXPECT_TRUE(first.health.drift_detected);
  EXPECT_TRUE(first.health.drift_recalibrated);
  EXPECT_EQ(engine.drift_responses(), 1u);
  EXPECT_EQ(engine.drift_recalibrations(), 1u);
  EXPECT_FALSE(detector.response_pending());
  // The floor recalibrated into the collapsed regime and the smoothing
  // alpha decayed by the configured factor.
  EXPECT_GT(engine.effective_confidence_floor(), 0.0);
  EXPECT_LT(engine.effective_confidence_floor(), 0.35);
  EXPECT_DOUBLE_EQ(engine.effective_smoothing(), 0.9 * 0.5);

  // The engine keeps feeding the detector: one observation per fresh
  // ranking, and response accounting stays consistent frame over frame.
  std::size_t response_frames = 1;
  for (std::size_t i = 1; i < 50; ++i) {
    const EngineResult result = engine.process(stream_->clip.frames[i]);
    if (result.health.drift_detected) ++response_frames;
  }
  EXPECT_EQ(engine.drift_responses(), response_frames);
  EXPECT_EQ(detector.confidence_observations(), prior_obs + 50);
}

TEST_F(EngineDriftTest, BatchMatchesSerialWithDriftAttached) {
  const auto prime = [](DriftDetector& detector) {
    for (int i = 0; i < 16; ++i) detector.observe_confidence(0.8, false, 0);
    for (int i = 0; i < 8; ++i) detector.observe_confidence(0.1, true, 1);
  };
  DriftDetector serial_detector(tight_config());
  DriftDetector batch_detector(tight_config());
  prime(serial_detector);
  prime(batch_detector);
  ASSERT_TRUE(serial_detector.response_pending());
  EngineConfig serial_config = frozen_config();
  serial_config.drift = &serial_detector;
  EngineConfig batch_config = frozen_config();
  batch_config.drift = &batch_detector;
  AnoleEngine serial(*system_, serial_config);
  AnoleEngine batch(*system_, batch_config);

  std::vector<EngineResult> serial_results;
  for (const world::Frame& frame : stream_->clip.frames) {
    serial_results.push_back(serial.process(frame));
  }
  const std::vector<EngineResult> batch_results =
      batch.process_batch(stream_frames());

  ASSERT_EQ(serial_results.size(), batch_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(serial_results[i].served_model, batch_results[i].served_model)
        << i;
    EXPECT_EQ(serial_results[i].health.drift_detected,
              batch_results[i].health.drift_detected)
        << i;
  }
  EXPECT_EQ(serial_detector.trace_hash(), batch_detector.trace_hash());
  EXPECT_GE(serial_detector.detections(), 1u);
  EXPECT_GE(serial.drift_responses(), 1u);
  EXPECT_EQ(serial.drift_responses(), batch.drift_responses());
}

TEST_F(EngineDriftTest, AnoleDrift0DetachesExactly) {
  const char* saved = std::getenv("ANOLE_DRIFT");
  const std::string saved_value = saved == nullptr ? "" : saved;

  // Baseline: no detector configured at all.
  EngineConfig plain_config = frozen_config();
  AnoleEngine plain(*system_, plain_config);
  std::vector<std::size_t> plain_served;
  for (const world::Frame& frame : stream_->clip.frames) {
    plain_served.push_back(plain.process(frame).served_model);
  }

  // Detector wired but detached by ANOLE_DRIFT=0: the unadapted timeline
  // must reproduce exactly, and the detector must never be consulted.
  ::setenv("ANOLE_DRIFT", "0", 1);
  DriftDetector detector;
  EngineConfig detached_config = frozen_config();
  detached_config.drift = &detector;
  AnoleEngine detached(*system_, detached_config);
  EXPECT_EQ(detached.drift(), nullptr);
  for (std::size_t i = 0; i < stream_->clip.size(); ++i) {
    const EngineResult result = detached.process(stream_->clip.frames[i]);
    ASSERT_EQ(result.served_model, plain_served[i]) << i;
    EXPECT_FALSE(result.health.drift_detected);
  }
  EXPECT_EQ(detector.confidence_observations(), 0u);
  EXPECT_EQ(detached.drift_responses(), 0u);
  EXPECT_DOUBLE_EQ(detached.effective_confidence_floor(), 0.35);

  if (saved == nullptr) {
    ::unsetenv("ANOLE_DRIFT");
  } else {
    ::setenv("ANOLE_DRIFT", saved_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace anole::core
