// Tests for the ANOLE_CHECK* contract macros (src/util/check.hpp) and for
// representative contract enforcement at public API boundaries.
#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/model_cache.hpp"
#include "tensor/tensor.hpp"

namespace anole {
namespace {

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(ANOLE_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(ANOLE_CHECK(true, "never shown"));
}

TEST(Check, FailingConditionThrowsContractViolation) {
  EXPECT_THROW(ANOLE_CHECK(false), ContractViolation);
  // ContractViolation must remain catchable as std::invalid_argument so
  // pre-existing callers keep working.
  EXPECT_THROW(ANOLE_CHECK(false), std::invalid_argument);
}

TEST(Check, MessageCarriesFileLineExpressionAndDetail) {
  try {
    const int answer = 41;
    ANOLE_CHECK(answer == 42, "expected the answer, got ", answer);
    FAIL() << "ANOLE_CHECK did not throw";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("test_check.cpp"), std::string::npos) << message;
    EXPECT_NE(message.find("ANOLE_CHECK failed"), std::string::npos)
        << message;
    EXPECT_NE(message.find("answer == 42"), std::string::npos) << message;
    EXPECT_NE(message.find("expected the answer, got 41"), std::string::npos)
        << message;
  }
}

TEST(Check, ComparisonMacrosReportBothOperands) {
  try {
    ANOLE_CHECK_EQ(2 + 2, 5, "arithmetic drifted");
    FAIL() << "ANOLE_CHECK_EQ did not throw";
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("ANOLE_CHECK_EQ failed"), std::string::npos)
        << message;
    EXPECT_NE(message.find("(4 vs 5)"), std::string::npos) << message;
    EXPECT_NE(message.find("arithmetic drifted"), std::string::npos)
        << message;
  }
  EXPECT_NO_THROW(ANOLE_CHECK_EQ(3, 3));
  EXPECT_NO_THROW(ANOLE_CHECK_LT(1, 2));
  EXPECT_THROW(ANOLE_CHECK_LT(2, 1), ContractViolation);
  EXPECT_NO_THROW(ANOLE_CHECK_GE(2, 2));
  EXPECT_THROW(ANOLE_CHECK_GE(1, 2), ContractViolation);
  EXPECT_NO_THROW(ANOLE_CHECK_NE(1, 2));
  EXPECT_THROW(ANOLE_CHECK_NE(2, 2), ContractViolation);
}

TEST(Check, ComparisonOperandsEvaluateExactlyOnce) {
  int evaluations = 0;
  auto count = [&evaluations] { return ++evaluations; };
  ANOLE_CHECK_GE(count(), 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(Check, RangeThrowsBoundsViolation) {
  const std::size_t size = 3;
  EXPECT_NO_THROW(ANOLE_CHECK_RANGE(std::size_t{2}, size));
  EXPECT_THROW(ANOLE_CHECK_RANGE(std::size_t{3}, size), BoundsViolation);
  // BoundsViolation must remain catchable as std::out_of_range.
  EXPECT_THROW(ANOLE_CHECK_RANGE(std::size_t{9}, size), std::out_of_range);
  try {
    ANOLE_CHECK_RANGE(std::size_t{7}, size, "SomeClass::at");
    FAIL() << "ANOLE_CHECK_RANGE did not throw";
  } catch (const BoundsViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("(index 7, size 3)"), std::string::npos)
        << message;
    EXPECT_NE(message.find("SomeClass::at"), std::string::npos) << message;
  }
}

TEST(Check, NotNullAcceptsLivePointerRejectsNull) {
  int value = 7;
  int* live = &value;
  int* null = nullptr;
  EXPECT_NO_THROW(ANOLE_CHECK_NOTNULL(live));
  EXPECT_THROW(ANOLE_CHECK_NOTNULL(null, "handle required"),
               ContractViolation);
}

TEST(Check, UnreachableAlwaysThrows) {
  auto hit = [] { ANOLE_UNREACHABLE("unhandled enum value ", 99); };
  EXPECT_THROW(hit(), ContractViolation);
  try {
    hit();
  } catch (const ContractViolation& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("ANOLE_UNREACHABLE"), std::string::npos)
        << message;
    EXPECT_NE(message.find("unhandled enum value 99"), std::string::npos)
        << message;
  }
}

TEST(Check, DcheckMatchesBuildMode) {
#ifdef NDEBUG
  // Compiled out in Release: the condition must not even be evaluated.
  bool evaluated = false;
  auto probe = [&evaluated] {
    evaluated = true;
    return false;
  };
  ANOLE_DCHECK(probe(), "never thrown in Release");
  EXPECT_FALSE(evaluated);
  EXPECT_NO_THROW(ANOLE_DCHECK_RANGE(std::size_t{5}, std::size_t{3}));
  (void)probe;
#else
  EXPECT_THROW(ANOLE_DCHECK(false), ContractViolation);
  EXPECT_THROW(ANOLE_DCHECK_RANGE(std::size_t{5}, std::size_t{3}),
               BoundsViolation);
#endif
  EXPECT_NO_THROW(ANOLE_DCHECK(true));
}

// --- Contract enforcement at representative API boundaries ---

TEST(CheckBoundaries, TensorShapeMismatchMentionsShapes) {
  Tensor a = Tensor::matrix(2, 3);
  Tensor b = Tensor::matrix(3, 2);
  try {
    a.add_scaled(b, 1.0f);
    FAIL() << "Tensor::add_scaled accepted mismatched shapes";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("[2, 3]"), std::string::npos) << message;
    EXPECT_NE(message.find("[3, 2]"), std::string::npos) << message;
  }
}

TEST(CheckBoundaries, TensorConstructorRejectsDataShapeMismatch) {
  EXPECT_THROW(Tensor(Shape{2, 2}, {1.0f, 2.0f, 3.0f}),
               std::invalid_argument);
}

TEST(CheckBoundaries, TensorRowOutOfRangeThrows) {
  Tensor t = Tensor::matrix(2, 2);
  EXPECT_THROW((void)t.row(2), std::invalid_argument);
}

TEST(CheckBoundaries, ModelCacheRejectsZeroCapacityAndZeroModels) {
  EXPECT_THROW(core::ModelCache(0, core::CacheConfig{}),
               std::invalid_argument);
  core::CacheConfig zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(core::ModelCache(4, zero_capacity), std::invalid_argument);
}

TEST(CheckBoundaries, ModelCacheRejectsUnknownModelInRanking) {
  core::CacheConfig config;
  config.capacity = 2;
  core::ModelCache cache(/*model_count=*/3, config);
  // Model id 3 does not exist in a 3-model repository; before the guard
  // this wrote past the end of the internal use-count table.
  EXPECT_THROW((void)cache.admit({0, 3}), std::out_of_range);
  const std::vector<std::size_t> bad_preload = {5};
  EXPECT_THROW(cache.preload(bad_preload), std::out_of_range);
  EXPECT_NO_THROW((void)cache.admit({0, 1, 2}));
}

}  // namespace
}  // namespace anole
