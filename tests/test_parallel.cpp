// Tests of the deterministic parallel execution layer: the primitives
// themselves (parallel_for / parallel_reduce semantics), and the
// determinism contract end to end — matmul kernels, k-means, the full
// offline profiler, and the batch engine path must produce bitwise
// identical results at 1 and 4 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include <thread>

#include "cluster/kmeans.hpp"
#include "core/profiler.hpp"
#include "tensor/simd.hpp"
#include "tensor/tensor.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace anole {
namespace {

/// Restores the default pool size when a test returns.
struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

/// Pins the SIMD dispatch level for a scope.
struct SimdLevelGuard {
  explicit SimdLevelGuard(simd::Level level) { simd::set_level(level); }
  ~SimdLevelGuard() { simd::reset_level(); }
};

/// Every dispatch level this host can actually run.
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kSSE2) {
    levels.push_back(simd::Level::kSSE2);
  }
  if (simd::detected_level() >= simd::Level::kAVX2) {
    levels.push_back(simd::Level::kAVX2);
  }
  return levels;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t = Tensor::matrix(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Reference ikj matmul with the same per-element accumulation order (kk
/// ascending) and the same zero-skip as the blocked kernel.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

Tensor naive_matmul_transpose_a(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t kk = 0; kk < a.rows(); ++kk) {
      const float aik = a.at(kk, i);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

/// Same accumulate-and-zero-skip form as the other references: since the
/// unified kernel, matmul_transpose_b materializes transpose(b) and runs
/// the shared blocked loop, so its float contract is identical to
/// matmul's (kk ascending, aik == 0 terms skipped), not the dot form.
Tensor naive_matmul_transpose_b(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.rows(); ++j) {
        c.at(i, j) += aik * b.at(j, kk);
      }
    }
  }
  return c;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  par::parallel_for(0, kN, 7, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyAndReversedRangesRunNothing) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  std::atomic<int> calls{0};
  par::parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
  par::parallel_for(9, 3, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NestedCallsRunInlineAndStillCover) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<int> hits(kOuter * kInner, 0);
  std::atomic<int> nested_parallel{0};
  par::parallel_for(0, kOuter, 1, [&](std::size_t o) {
    if (par::in_parallel_region()) {
      // The nested call below must take the inline path.
      par::parallel_for(0, kInner, 4, [&](std::size_t i) {
        if (par::in_parallel_region()) ++hits[o * kInner + i];
      });
    } else {
      // The caller thread also participates; it is marked as in-region
      // for the duration of its chunks too.
      ++nested_parallel;
    }
  });
  // Every outer index ran with in_parallel_region() true.
  EXPECT_EQ(nested_parallel.load(), 0);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, PropagatesExceptionsAndStaysUsable) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  EXPECT_THROW(par::parallel_for(0, 100, 1,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed job.
  std::vector<int> hits(50, 0);
  par::parallel_for(0, 50, 3, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelFor, ChunkBoundariesMatchGrain) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  par::parallel_for_chunks(3, 25, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{3, 13}));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>{13, 23}));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>{23, 25}));
}

TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(42);
  std::vector<float> values(100'000);
  for (float& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto chunked_sum = [&]() {
    return par::parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{4096}, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
          float partial = 0.0f;
          for (std::size_t i = lo; i < hi; ++i) partial += values[i];
          return partial;
        },
        [](float acc, float partial) { return acc + partial; });
  };

  par::set_thread_count(1);
  const float serial = chunked_sum();
  par::set_thread_count(4);
  const float parallel = chunked_sum();
  // Bitwise, not approximate: the combine order is fixed by the chunking.
  EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(float)), 0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  const int result = par::parallel_reduce(
      std::size_t{10}, std::size_t{10}, std::size_t{1}, -5,
      [](std::size_t, std::size_t) { return 1; },
      [](int acc, int partial) { return acc + partial; });
  EXPECT_EQ(result, -5);
}

TEST(ThreadCount, SetAndRestore) {
  ThreadCountGuard guard;
  par::set_thread_count(3);
  EXPECT_EQ(par::thread_count(), 3u);
  par::set_thread_count(1);
  EXPECT_EQ(par::thread_count(), 1u);
  par::set_thread_count(0);
  EXPECT_GE(par::thread_count(), 1u);
}

TEST(TensorUninitialized, HasShapeAndAcceptsWrites) {
  Tensor t = Tensor::uninitialized(Shape{17, 5});
  EXPECT_EQ(t.rows(), 17u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.size(), 85u);
  t.fill(2.5f);
  EXPECT_EQ(t.at(16, 4), 2.5f);
}

/// The fp32 dispatch contract (tensor/simd.hpp): scalar and SSE2 match
/// the mul+add reference bitwise; AVX2 contracts each multiply-add into
/// an FMA, so it gets an error envelope instead. Every level must be
/// bitwise identical to itself across thread counts.
TEST(TensorParallel, MatmulMatchesNaiveBitwiseAtAnyThreadCount) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Odd sizes so the j/k blocks and the row grain all have ragged tails.
  const Tensor a = random_matrix(37, 111, rng);
  const Tensor b = random_matrix(111, 70, rng);
  const Tensor reference = naive_matmul(a, b);

  for (const simd::Level level : available_levels()) {
    SimdLevelGuard simd_guard(level);
    par::set_thread_count(1);
    const Tensor serial = matmul(a, b);
    par::set_thread_count(4);
    const Tensor parallel = matmul(a, b);

    // Thread-count invariance holds at every level.
    EXPECT_TRUE(bitwise_equal(serial, parallel))
        << simd::level_name(level);
    if (level != simd::Level::kAVX2) {
      EXPECT_TRUE(bitwise_equal(serial, reference))
          << simd::level_name(level);
      continue;
    }
    // AVX2 ULP policy: fusing a*b+c drops one rounding per partial sum,
    // so each output may drift from the reference by at most one extra
    // rounding per accumulation step: |Δ| ≤ k·ε·Σ|a_ik·b_kj|.
    constexpr double kEps = 1.1920928955078125e-7;  // 2^-23
    for (std::size_t i = 0; i < a.rows(); ++i) {
      for (std::size_t j = 0; j < b.cols(); ++j) {
        double abs_sum = 0.0;
        for (std::size_t kk = 0; kk < a.cols(); ++kk) {
          abs_sum += std::abs(static_cast<double>(a.at(i, kk)) *
                              static_cast<double>(b.at(kk, j)));
        }
        const double tolerance =
            static_cast<double>(a.cols()) * kEps * abs_sum + 1e-30;
        EXPECT_NEAR(serial.at(i, j), reference.at(i, j), tolerance)
            << "i=" << i << " j=" << j;
      }
    }
  }
}

TEST(TensorParallel, MatmulTransposeAMatchesNaiveBitwise) {
  ThreadCountGuard guard;
  Rng rng(8);
  const Tensor a = random_matrix(90, 33, rng);
  const Tensor b = random_matrix(90, 41, rng);
  const Tensor reference = naive_matmul_transpose_a(a, b);

  for (const simd::Level level : available_levels()) {
    SimdLevelGuard simd_guard(level);
    par::set_thread_count(1);
    const Tensor serial = matmul_transpose_a(a, b);
    par::set_thread_count(4);
    const Tensor parallel = matmul_transpose_a(a, b);

    EXPECT_TRUE(bitwise_equal(serial, parallel))
        << simd::level_name(level);
    if (level != simd::Level::kAVX2) {
      EXPECT_TRUE(bitwise_equal(serial, reference))
          << simd::level_name(level);
    }
  }
}

TEST(TensorParallel, MatmulTransposeBMatchesNaiveBitwise) {
  ThreadCountGuard guard;
  Rng rng(9);
  const Tensor a = random_matrix(45, 65, rng);
  const Tensor b = random_matrix(52, 65, rng);
  const Tensor reference = naive_matmul_transpose_b(a, b);

  for (const simd::Level level : available_levels()) {
    SimdLevelGuard simd_guard(level);
    par::set_thread_count(1);
    const Tensor serial = matmul_transpose_b(a, b);
    par::set_thread_count(4);
    const Tensor parallel = matmul_transpose_b(a, b);

    EXPECT_TRUE(bitwise_equal(serial, parallel))
        << simd::level_name(level);
    if (level != simd::Level::kAVX2) {
      EXPECT_TRUE(bitwise_equal(serial, reference))
          << simd::level_name(level);
    }
  }
}

TEST(TensorParallel, ReductionsAreThreadCountInvariant) {
  ThreadCountGuard guard;
  Rng rng(10);
  const Tensor t = random_matrix(300, 200, rng);

  par::set_thread_count(1);
  const float sum1 = t.sum();
  const float norm1 = t.l2_norm();
  const float max1 = t.abs_max();
  par::set_thread_count(4);
  const float sum4 = t.sum();
  const float norm4 = t.l2_norm();
  const float max4 = t.abs_max();

  EXPECT_EQ(std::memcmp(&sum1, &sum4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&norm1, &norm4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&max1, &max4, sizeof(float)), 0);
}

TEST(KMeansParallel, IdenticalAtOneAndFourThreads) {
  ThreadCountGuard guard;
  Rng data_rng(11);
  const Tensor points = random_matrix(200, 16, data_rng);
  cluster::KMeansConfig config;
  config.clusters = 7;

  par::set_thread_count(1);
  Rng rng_a(123);
  const auto serial = cluster::kmeans(points, config, rng_a);
  par::set_thread_count(4);
  Rng rng_b(123);
  const auto parallel = cluster::kmeans(points, config, rng_b);

  EXPECT_EQ(serial.assignments, parallel.assignments);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_TRUE(bitwise_equal(serial.centroids, parallel.centroids));
  EXPECT_EQ(std::memcmp(&serial.inertia, &parallel.inertia, sizeof(double)),
            0);
}

TEST(KMeansParallel, IdenticalAtEveryDispatchLevel) {
  // The distance kernel accumulates each centroid lane in ascending
  // dimension order with separate mul+add at every level, so the whole
  // clustering is bitwise level-invariant (tensor/simd.hpp).
  ThreadCountGuard guard;
  par::set_thread_count(4);
  Rng data_rng(21);
  const Tensor points = random_matrix(300, 24, data_rng);
  cluster::KMeansConfig config;
  config.clusters = 6;

  cluster::KMeansResult reference;
  bool have_reference = false;
  for (const simd::Level level : available_levels()) {
    SimdLevelGuard simd_guard(level);
    Rng rng(321);
    const auto result = cluster::kmeans(points, config, rng);
    if (!have_reference) {
      reference = result;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(result.assignments, reference.assignments)
        << simd::level_name(level);
    EXPECT_EQ(result.iterations, reference.iterations)
        << simd::level_name(level);
    EXPECT_TRUE(bitwise_equal(result.centroids, reference.centroids))
        << simd::level_name(level);
    EXPECT_EQ(std::memcmp(&result.inertia, &reference.inertia,
                          sizeof(double)),
              0)
        << simd::level_name(level);
  }
}

// --- SIMD dispatch plumbing ----------------------------------------------

TEST(SimdDispatch, ActiveLevelNeverExceedsDetected) {
  EXPECT_LE(simd::active_level(), simd::detected_level());
  SimdLevelGuard guard(simd::Level::kScalar);
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
}

TEST(SimdDispatch, SetLevelClampsToDetected) {
  SimdLevelGuard guard(simd::Level::kAVX2);
  EXPECT_LE(simd::active_level(), simd::detected_level());
  EXPECT_EQ(simd::active_level(),
            std::min(simd::Level::kAVX2, simd::detected_level()));
}

TEST(SimdDispatch, LevelNamesAreStable) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kSSE2), "sse2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAVX2), "avx2");
}

TEST(SimdDispatch, SigmoidTermsMatchLibmWithinEnvelope) {
  // Inputs cover both signs, the origin, sigmoid saturation, and the
  // exp clamp region, plus a pseudo-random spread.
  std::vector<float> z = {0.0f,  -0.0f, 1e-6f, -1e-6f, 0.5f,  -0.5f,
                          4.0f,  -4.0f, 17.0f, -17.0f, 30.0f, -30.0f,
                          88.0f, -88.0f, 95.0f, -95.0f};
  Rng rng(77);
  for (int i = 0; i < 240; ++i) {
    z.push_back(static_cast<float>(rng.normal(0.0, 6.0)));
  }
  const std::size_t n = z.size();
  std::vector<float> p_ref(n);
  std::vector<float> l_ref(n);
  simd::sigmoid_terms(simd::Level::kScalar, z.data(), n, p_ref.data(),
                      l_ref.data());
  for (std::size_t i = 0; i < n; ++i) {
    // The scalar level is the exact libm loop.
    const double zd = static_cast<double>(z[i]);
    EXPECT_NEAR(p_ref[i], 1.0 / (1.0 + std::exp(-zd)), 1e-6) << z[i];
    EXPECT_NEAR(l_ref[i], std::log1p(std::exp(-std::abs(zd))), 1e-6) << z[i];
  }
  for (const simd::Level level : available_levels()) {
    std::vector<float> p(n);
    std::vector<float> l(n);
    simd::sigmoid_terms(level, z.data(), n, p.data(), l.data());
    std::vector<float> p_again(n);
    simd::sigmoid_terms(level, z.data(), n, p_again.data(), nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      if (level == simd::Level::kAVX2) {
        // Documented polynomial envelope: a few ULP relative, plus an
        // absolute floor for the clamped saturation tail.
        EXPECT_NEAR(p[i], p_ref[i], 1e-6f * std::abs(p_ref[i]) + 2e-7f)
            << "z=" << z[i];
        EXPECT_NEAR(l[i], l_ref[i], 1e-5f * std::abs(l_ref[i]) + 1.2e-38f)
            << "z=" << z[i];
      } else {
        // Scalar and SSE2 share the libm path bitwise.
        EXPECT_EQ(std::memcmp(p.data(), p_ref.data(), n * sizeof(float)), 0);
        EXPECT_EQ(std::memcmp(l.data(), l_ref.data(), n * sizeof(float)), 0);
      }
    }
    // The sigmoid-only entry point (null log_term) matches, and a
    // repeated call is bitwise stable at every level.
    EXPECT_EQ(std::memcmp(p.data(), p_again.data(), n * sizeof(float)), 0)
        << simd::level_name(level);
  }
}

TEST(SimdDispatch, SigmoidTermsSupportInPlace) {
  std::vector<float> z = {-3.0f, -1.0f, 0.0f, 0.25f, 2.0f, 5.0f, -9.0f};
  for (const simd::Level level : available_levels()) {
    std::vector<float> expected(z.size());
    simd::sigmoid_terms(level, z.data(), z.size(), expected.data(), nullptr);
    std::vector<float> buf = z;
    simd::sigmoid_terms(level, buf.data(), buf.size(), buf.data(), nullptr);
    EXPECT_EQ(
        std::memcmp(buf.data(), expected.data(), buf.size() * sizeof(float)),
        0)
        << simd::level_name(level);
  }
}

// --- serial cutoff --------------------------------------------------------

TEST(SerialCutoff, BoundarySemanticsAreExact) {
  const std::size_t cutoff = par::serial_cutoff();
  ASSERT_GT(cutoff, 1u);
  // Strictly-below comparison: n * wpi == cutoff stays parallel.
  EXPECT_TRUE(par::detail::below_serial_cutoff(cutoff - 1, 1));
  EXPECT_FALSE(par::detail::below_serial_cutoff(cutoff, 1));
  EXPECT_FALSE(par::detail::below_serial_cutoff(1, cutoff));
  EXPECT_TRUE(par::detail::below_serial_cutoff(1, cutoff - 1));
  // Zero-length ranges are trivially below; zero hints count as 1 op.
  EXPECT_TRUE(par::detail::below_serial_cutoff(0, 0));
  EXPECT_EQ(par::detail::below_serial_cutoff(cutoff - 1, 0),
            par::detail::below_serial_cutoff(cutoff - 1, 1));
  // Products that would overflow size_t must land on the parallel side.
  EXPECT_FALSE(par::detail::below_serial_cutoff(
      std::numeric_limits<std::size_t>::max() / 2, 3));
  // The sentinel used by unhinted overloads is never below the cutoff.
  EXPECT_FALSE(par::detail::below_serial_cutoff(1, par::detail::kNoWorkHint));
}

TEST(SerialCutoff, WorkGrainDerivesFromPerIndexCost) {
  const std::size_t cutoff = par::serial_cutoff();
  EXPECT_EQ(par::work_grain(16, 1), std::max<std::size_t>(16, cutoff));
  EXPECT_EQ(par::work_grain(16, cutoff), 16u);
  EXPECT_EQ(par::work_grain(16, 0), par::work_grain(16, 1));
  EXPECT_GE(par::work_grain(1, cutoff / 8), 8u);
}

TEST(SerialCutoff, HintedLoopBelowCutoffRunsOnCallingThread) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  const auto caller = std::this_thread::get_id();
  const std::size_t n = 64;
  ASSERT_TRUE(par::detail::below_serial_cutoff(n, 1));
  std::vector<std::remove_const_t<decltype(caller)>> ran_on(n);
  par::parallel_for(0, n, 4, 1, [&](std::size_t i) {
    ran_on[i] = std::this_thread::get_id();
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(ran_on[i], caller) << i;
}

TEST(SerialCutoff, HintedAndUnhintedChunkingMatchBitwise) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  Rng rng(33);
  std::vector<float> values(5000);
  for (float& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto sum_with_hint = [&](std::size_t work_per_index) {
    return par::parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{256}, work_per_index,
        0.0f,
        [&](std::size_t lo, std::size_t hi) {
          float partial = 0.0f;
          for (std::size_t i = lo; i < hi; ++i) partial += values[i];
          return partial;
        },
        [](float acc, float partial) { return acc + partial; });
  };
  // 5000 * 1 ops is below the cutoff (inline), 5000 * big is above
  // (pool); the chunking is identical, so the sums are bitwise equal.
  const float inline_sum = sum_with_hint(1);
  const float pooled_sum = sum_with_hint(par::serial_cutoff());
  const float unhinted_sum = par::parallel_reduce(
      std::size_t{0}, values.size(), std::size_t{256}, 0.0f,
      [&](std::size_t lo, std::size_t hi) {
        float partial = 0.0f;
        for (std::size_t i = lo; i < hi; ++i) partial += values[i];
        return partial;
      },
      [](float acc, float partial) { return acc + partial; });
  EXPECT_EQ(std::memcmp(&inline_sum, &pooled_sum, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&inline_sum, &unhinted_sum, sizeof(float)), 0);
}

// --- Full-pipeline determinism -------------------------------------------

world::WorldConfig micro_world_config() {
  world::WorldConfig config;
  config.frames_per_clip = 40;
  config.clip_scale = 0.12;
  config.seed = 99;
  return config;
}

core::ProfilerConfig micro_profiler_config() {
  core::ProfilerConfig config;
  config.encoder.train.epochs = 10;
  config.repository.target_models = 5;
  config.repository.detector_train.epochs = 4;
  config.repository.min_training_frames = 20;
  config.repository.min_validation_frames = 4;
  config.sampling.budget = 120;
  config.decision.train.epochs = 10;
  return config;
}

/// Everything observable about a profiler run that determinism must pin:
/// repository structure, validation scores, decision-model outputs, and
/// the engine's frame-by-frame behaviour (sequential and batch paths).
struct RunSnapshot {
  std::vector<std::string> model_names;
  std::vector<double> validation_f1;
  std::vector<std::size_t> cluster_k;
  std::vector<std::vector<std::size_t>> scene_classes;
  double encoder_accuracy = 0.0;
  std::size_t decision_samples = 0;
  std::vector<float> suitability;
  std::vector<std::size_t> served_sequence;
  std::vector<std::size_t> batch_served_sequence;
  std::vector<double> confidence_sequence;
  std::vector<double> batch_confidence_sequence;
  std::size_t detection_count = 0;
  std::size_t batch_detection_count = 0;
};

RunSnapshot run_profiler_snapshot(std::size_t threads) {
  par::set_thread_count(threads);
  world::World world = world::make_benchmark_world(micro_world_config());
  Rng rng(7);
  core::ProfilerReport report;
  core::OfflineProfiler profiler(micro_profiler_config());
  core::AnoleSystem system = profiler.run(world, rng, &report);

  RunSnapshot snap;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    const core::SceneModel& model = system.repository.model(m);
    snap.model_names.push_back(model.name);
    snap.validation_f1.push_back(model.validation_f1);
    snap.cluster_k.push_back(model.cluster_k);
    snap.scene_classes.push_back(model.scene_classes);
  }
  snap.encoder_accuracy = report.encoder_train_accuracy;
  snap.decision_samples = report.decision_samples;

  const auto frames = world.frames_with_role(world::SplitRole::kTest);
  const std::size_t n_frames = std::min<std::size_t>(frames.size(), 30);
  const std::vector<const world::Frame*> sample(frames.begin(),
                                                frames.begin() + n_frames);

  const world::FrameFeaturizer featurizer;
  const Tensor probs =
      system.decision->suitability(featurizer.featurize_batch(sample));
  snap.suitability.assign(probs.data().begin(), probs.data().end());

  core::EngineConfig engine_config;
  engine_config.cache.capacity = 3;
  engine_config.suitability_smoothing = 0.3;
  core::AnoleEngine sequential_engine(system, engine_config);
  for (const world::Frame* frame : sample) {
    const auto result = sequential_engine.process(*frame);
    snap.served_sequence.push_back(result.served_model);
    snap.confidence_sequence.push_back(result.top1_confidence);
    snap.detection_count += result.detections.size();
  }
  core::AnoleEngine batch_engine(system, engine_config);
  for (const auto& result : batch_engine.process_batch(sample)) {
    snap.batch_served_sequence.push_back(result.served_model);
    snap.batch_confidence_sequence.push_back(result.top1_confidence);
    snap.batch_detection_count += result.detections.size();
  }
  return snap;
}

TEST(PipelineDeterminism, ProfilerAndEngineIdenticalAtOneAndFourThreads) {
  ThreadCountGuard guard;
  set_log_level(LogLevel::kError);
  const RunSnapshot serial = run_profiler_snapshot(1);
  const RunSnapshot parallel = run_profiler_snapshot(4);

  ASSERT_FALSE(serial.model_names.empty());
  EXPECT_EQ(serial.model_names, parallel.model_names);
  EXPECT_EQ(serial.validation_f1, parallel.validation_f1);
  EXPECT_EQ(serial.cluster_k, parallel.cluster_k);
  EXPECT_EQ(serial.scene_classes, parallel.scene_classes);
  EXPECT_EQ(serial.encoder_accuracy, parallel.encoder_accuracy);
  EXPECT_EQ(serial.decision_samples, parallel.decision_samples);
  EXPECT_EQ(serial.suitability, parallel.suitability);
  EXPECT_EQ(serial.served_sequence, parallel.served_sequence);
  EXPECT_EQ(serial.confidence_sequence, parallel.confidence_sequence);
  EXPECT_EQ(serial.detection_count, parallel.detection_count);

  // Batch processing must match sequential processing exactly, at both
  // thread counts.
  EXPECT_EQ(serial.served_sequence, serial.batch_served_sequence);
  EXPECT_EQ(serial.confidence_sequence, serial.batch_confidence_sequence);
  EXPECT_EQ(serial.detection_count, serial.batch_detection_count);
  EXPECT_EQ(parallel.served_sequence, parallel.batch_served_sequence);
  EXPECT_EQ(parallel.confidence_sequence,
            parallel.batch_confidence_sequence);
  EXPECT_EQ(parallel.detection_count, parallel.batch_detection_count);
}

}  // namespace
}  // namespace anole
