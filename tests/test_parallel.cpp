// Tests of the deterministic parallel execution layer: the primitives
// themselves (parallel_for / parallel_reduce semantics), and the
// determinism contract end to end — matmul kernels, k-means, the full
// offline profiler, and the batch engine path must produce bitwise
// identical results at 1 and 4 threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/kmeans.hpp"
#include "core/profiler.hpp"
#include "tensor/tensor.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace anole {
namespace {

/// Restores the default pool size when a test returns.
struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t = Tensor::matrix(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  return t;
}

/// Reference ikj matmul with the same per-element accumulation order (kk
/// ascending) and the same zero-skip as the blocked kernel.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

Tensor naive_matmul_transpose_a(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t kk = 0; kk < a.rows(); ++kk) {
      const float aik = a.at(kk, i);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

/// Same accumulate-and-zero-skip form as the other references: since the
/// unified kernel, matmul_transpose_b materializes transpose(b) and runs
/// the shared blocked loop, so its float contract is identical to
/// matmul's (kk ascending, aik == 0 terms skipped), not the dot form.
Tensor naive_matmul_transpose_b(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.rows(); ++j) {
        c.at(i, j) += aik * b.at(j, kk);
      }
    }
  }
  return c;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  constexpr std::size_t kN = 1000;
  std::vector<int> hits(kN, 0);
  par::parallel_for(0, kN, 7, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, EmptyAndReversedRangesRunNothing) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  std::atomic<int> calls{0};
  par::parallel_for(5, 5, 1, [&](std::size_t) { ++calls; });
  par::parallel_for(9, 3, 1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, NestedCallsRunInlineAndStillCover) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<int> hits(kOuter * kInner, 0);
  std::atomic<int> nested_parallel{0};
  par::parallel_for(0, kOuter, 1, [&](std::size_t o) {
    if (par::in_parallel_region()) {
      // The nested call below must take the inline path.
      par::parallel_for(0, kInner, 4, [&](std::size_t i) {
        if (par::in_parallel_region()) ++hits[o * kInner + i];
      });
    } else {
      // The caller thread also participates; it is marked as in-region
      // for the duration of its chunks too.
      ++nested_parallel;
    }
  });
  // Every outer index ran with in_parallel_region() true.
  EXPECT_EQ(nested_parallel.load(), 0);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, PropagatesExceptionsAndStaysUsable) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  EXPECT_THROW(par::parallel_for(0, 100, 1,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed job.
  std::vector<int> hits(50, 0);
  par::parallel_for(0, 50, 3, [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

TEST(ParallelFor, ChunkBoundariesMatchGrain) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  par::parallel_for_chunks(3, 25, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0], (std::pair<std::size_t, std::size_t>{3, 13}));
  EXPECT_EQ(chunks[1], (std::pair<std::size_t, std::size_t>{13, 23}));
  EXPECT_EQ(chunks[2], (std::pair<std::size_t, std::size_t>{23, 25}));
}

TEST(ParallelReduce, BitwiseIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(42);
  std::vector<float> values(100'000);
  for (float& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const auto chunked_sum = [&]() {
    return par::parallel_reduce(
        std::size_t{0}, values.size(), std::size_t{4096}, 0.0f,
        [&](std::size_t lo, std::size_t hi) {
          float partial = 0.0f;
          for (std::size_t i = lo; i < hi; ++i) partial += values[i];
          return partial;
        },
        [](float acc, float partial) { return acc + partial; });
  };

  par::set_thread_count(1);
  const float serial = chunked_sum();
  par::set_thread_count(4);
  const float parallel = chunked_sum();
  // Bitwise, not approximate: the combine order is fixed by the chunking.
  EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(float)), 0);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  ThreadCountGuard guard;
  par::set_thread_count(4);
  const int result = par::parallel_reduce(
      std::size_t{10}, std::size_t{10}, std::size_t{1}, -5,
      [](std::size_t, std::size_t) { return 1; },
      [](int acc, int partial) { return acc + partial; });
  EXPECT_EQ(result, -5);
}

TEST(ThreadCount, SetAndRestore) {
  ThreadCountGuard guard;
  par::set_thread_count(3);
  EXPECT_EQ(par::thread_count(), 3u);
  par::set_thread_count(1);
  EXPECT_EQ(par::thread_count(), 1u);
  par::set_thread_count(0);
  EXPECT_GE(par::thread_count(), 1u);
}

TEST(TensorUninitialized, HasShapeAndAcceptsWrites) {
  Tensor t = Tensor::uninitialized(Shape{17, 5});
  EXPECT_EQ(t.rows(), 17u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.size(), 85u);
  t.fill(2.5f);
  EXPECT_EQ(t.at(16, 4), 2.5f);
}

TEST(TensorParallel, MatmulMatchesNaiveBitwiseAtAnyThreadCount) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Odd sizes so the j/k blocks and the row grain all have ragged tails.
  const Tensor a = random_matrix(37, 111, rng);
  const Tensor b = random_matrix(111, 70, rng);
  const Tensor reference = naive_matmul(a, b);

  par::set_thread_count(1);
  const Tensor serial = matmul(a, b);
  par::set_thread_count(4);
  const Tensor parallel = matmul(a, b);

  EXPECT_TRUE(bitwise_equal(serial, reference));
  EXPECT_TRUE(bitwise_equal(parallel, reference));
}

TEST(TensorParallel, MatmulTransposeAMatchesNaiveBitwise) {
  ThreadCountGuard guard;
  Rng rng(8);
  const Tensor a = random_matrix(90, 33, rng);
  const Tensor b = random_matrix(90, 41, rng);
  const Tensor reference = naive_matmul_transpose_a(a, b);

  par::set_thread_count(1);
  const Tensor serial = matmul_transpose_a(a, b);
  par::set_thread_count(4);
  const Tensor parallel = matmul_transpose_a(a, b);

  EXPECT_TRUE(bitwise_equal(serial, reference));
  EXPECT_TRUE(bitwise_equal(parallel, reference));
}

TEST(TensorParallel, MatmulTransposeBMatchesNaiveBitwise) {
  ThreadCountGuard guard;
  Rng rng(9);
  const Tensor a = random_matrix(45, 65, rng);
  const Tensor b = random_matrix(52, 65, rng);
  const Tensor reference = naive_matmul_transpose_b(a, b);

  par::set_thread_count(1);
  const Tensor serial = matmul_transpose_b(a, b);
  par::set_thread_count(4);
  const Tensor parallel = matmul_transpose_b(a, b);

  EXPECT_TRUE(bitwise_equal(serial, reference));
  EXPECT_TRUE(bitwise_equal(parallel, reference));
}

TEST(TensorParallel, ReductionsAreThreadCountInvariant) {
  ThreadCountGuard guard;
  Rng rng(10);
  const Tensor t = random_matrix(300, 200, rng);

  par::set_thread_count(1);
  const float sum1 = t.sum();
  const float norm1 = t.l2_norm();
  const float max1 = t.abs_max();
  par::set_thread_count(4);
  const float sum4 = t.sum();
  const float norm4 = t.l2_norm();
  const float max4 = t.abs_max();

  EXPECT_EQ(std::memcmp(&sum1, &sum4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&norm1, &norm4, sizeof(float)), 0);
  EXPECT_EQ(std::memcmp(&max1, &max4, sizeof(float)), 0);
}

TEST(KMeansParallel, IdenticalAtOneAndFourThreads) {
  ThreadCountGuard guard;
  Rng data_rng(11);
  const Tensor points = random_matrix(200, 16, data_rng);
  cluster::KMeansConfig config;
  config.clusters = 7;

  par::set_thread_count(1);
  Rng rng_a(123);
  const auto serial = cluster::kmeans(points, config, rng_a);
  par::set_thread_count(4);
  Rng rng_b(123);
  const auto parallel = cluster::kmeans(points, config, rng_b);

  EXPECT_EQ(serial.assignments, parallel.assignments);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_TRUE(bitwise_equal(serial.centroids, parallel.centroids));
  EXPECT_EQ(std::memcmp(&serial.inertia, &parallel.inertia, sizeof(double)),
            0);
}

// --- Full-pipeline determinism -------------------------------------------

world::WorldConfig micro_world_config() {
  world::WorldConfig config;
  config.frames_per_clip = 40;
  config.clip_scale = 0.12;
  config.seed = 99;
  return config;
}

core::ProfilerConfig micro_profiler_config() {
  core::ProfilerConfig config;
  config.encoder.train.epochs = 10;
  config.repository.target_models = 5;
  config.repository.detector_train.epochs = 4;
  config.repository.min_training_frames = 20;
  config.repository.min_validation_frames = 4;
  config.sampling.budget = 120;
  config.decision.train.epochs = 10;
  return config;
}

/// Everything observable about a profiler run that determinism must pin:
/// repository structure, validation scores, decision-model outputs, and
/// the engine's frame-by-frame behaviour (sequential and batch paths).
struct RunSnapshot {
  std::vector<std::string> model_names;
  std::vector<double> validation_f1;
  std::vector<std::size_t> cluster_k;
  std::vector<std::vector<std::size_t>> scene_classes;
  double encoder_accuracy = 0.0;
  std::size_t decision_samples = 0;
  std::vector<float> suitability;
  std::vector<std::size_t> served_sequence;
  std::vector<std::size_t> batch_served_sequence;
  std::vector<double> confidence_sequence;
  std::vector<double> batch_confidence_sequence;
  std::size_t detection_count = 0;
  std::size_t batch_detection_count = 0;
};

RunSnapshot run_profiler_snapshot(std::size_t threads) {
  par::set_thread_count(threads);
  world::World world = world::make_benchmark_world(micro_world_config());
  Rng rng(7);
  core::ProfilerReport report;
  core::OfflineProfiler profiler(micro_profiler_config());
  core::AnoleSystem system = profiler.run(world, rng, &report);

  RunSnapshot snap;
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    const core::SceneModel& model = system.repository.model(m);
    snap.model_names.push_back(model.name);
    snap.validation_f1.push_back(model.validation_f1);
    snap.cluster_k.push_back(model.cluster_k);
    snap.scene_classes.push_back(model.scene_classes);
  }
  snap.encoder_accuracy = report.encoder_train_accuracy;
  snap.decision_samples = report.decision_samples;

  const auto frames = world.frames_with_role(world::SplitRole::kTest);
  const std::size_t n_frames = std::min<std::size_t>(frames.size(), 30);
  const std::vector<const world::Frame*> sample(frames.begin(),
                                                frames.begin() + n_frames);

  const world::FrameFeaturizer featurizer;
  const Tensor probs =
      system.decision->suitability(featurizer.featurize_batch(sample));
  snap.suitability.assign(probs.data().begin(), probs.data().end());

  core::EngineConfig engine_config;
  engine_config.cache.capacity = 3;
  engine_config.suitability_smoothing = 0.3;
  core::AnoleEngine sequential_engine(system, engine_config);
  for (const world::Frame* frame : sample) {
    const auto result = sequential_engine.process(*frame);
    snap.served_sequence.push_back(result.served_model);
    snap.confidence_sequence.push_back(result.top1_confidence);
    snap.detection_count += result.detections.size();
  }
  core::AnoleEngine batch_engine(system, engine_config);
  for (const auto& result : batch_engine.process_batch(sample)) {
    snap.batch_served_sequence.push_back(result.served_model);
    snap.batch_confidence_sequence.push_back(result.top1_confidence);
    snap.batch_detection_count += result.detections.size();
  }
  return snap;
}

TEST(PipelineDeterminism, ProfilerAndEngineIdenticalAtOneAndFourThreads) {
  ThreadCountGuard guard;
  set_log_level(LogLevel::kError);
  const RunSnapshot serial = run_profiler_snapshot(1);
  const RunSnapshot parallel = run_profiler_snapshot(4);

  ASSERT_FALSE(serial.model_names.empty());
  EXPECT_EQ(serial.model_names, parallel.model_names);
  EXPECT_EQ(serial.validation_f1, parallel.validation_f1);
  EXPECT_EQ(serial.cluster_k, parallel.cluster_k);
  EXPECT_EQ(serial.scene_classes, parallel.scene_classes);
  EXPECT_EQ(serial.encoder_accuracy, parallel.encoder_accuracy);
  EXPECT_EQ(serial.decision_samples, parallel.decision_samples);
  EXPECT_EQ(serial.suitability, parallel.suitability);
  EXPECT_EQ(serial.served_sequence, parallel.served_sequence);
  EXPECT_EQ(serial.confidence_sequence, parallel.confidence_sequence);
  EXPECT_EQ(serial.detection_count, parallel.detection_count);

  // Batch processing must match sequential processing exactly, at both
  // thread counts.
  EXPECT_EQ(serial.served_sequence, serial.batch_served_sequence);
  EXPECT_EQ(serial.confidence_sequence, serial.batch_confidence_sequence);
  EXPECT_EQ(serial.detection_count, serial.batch_detection_count);
  EXPECT_EQ(parallel.served_sequence, parallel.batch_served_sequence);
  EXPECT_EQ(parallel.confidence_sequence,
            parallel.batch_confidence_sequence);
  EXPECT_EQ(parallel.detection_count, parallel.batch_detection_count);
}

}  // namespace
}  // namespace anole
