// Deterministic fault injection (util/fault.hpp) and the degradation
// ladder it drives: cache retry/quarantine, engine health records, and
// bitwise-identical fault schedules across runs and thread counts.
#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/profiler.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"

namespace anole::fault {
namespace {

TEST(FaultInjector, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    const Site site = static_cast<Site>(i);
    const auto parsed = site_from_name(to_string(site));
    ASSERT_TRUE(parsed.has_value()) << to_string(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(site_from_name("gamma_ray").has_value());
}

TEST(FaultInjector, SpecParsesSeedProbabilityMagnitude) {
  const FaultInjector injector(
      "seed=42, model_load=0.25, load_latency_spike=0.5x25");
  EXPECT_EQ(injector.seed(), 42u);
  EXPECT_DOUBLE_EQ(injector.probability(Site::kModelLoad), 0.25);
  EXPECT_DOUBLE_EQ(injector.magnitude(Site::kModelLoad), 1.0);
  EXPECT_DOUBLE_EQ(injector.probability(Site::kLoadLatencySpike), 0.5);
  EXPECT_DOUBLE_EQ(injector.magnitude(Site::kLoadLatencySpike), 25.0);
  EXPECT_DOUBLE_EQ(injector.probability(Site::kFramePayload), 0.0);
  EXPECT_TRUE(injector.armed());
}

TEST(FaultInjector, EmptySpecArmsNothing) {
  const FaultInjector injector(std::string{});
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.seed(), FaultInjector::kDefaultSeed);
}

TEST(FaultInjector, SpecRejectsMalformedTokens) {
  EXPECT_THROW(FaultInjector("gamma_ray=0.5"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=1.5"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=abc"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.5x0"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.5xfast"), ContractViolation);
  EXPECT_THROW(FaultInjector("seed=12junk"), ContractViolation);
  EXPECT_THROW(FaultInjector("=0.5"), ContractViolation);
}

TEST(FaultInjector, SpecRejectsNonFiniteAndSignedValues) {
  // The hardened parser refuses everything std::stod used to let through:
  // non-finite rates/magnitudes and signed "unsigned" seeds.
  EXPECT_THROW(FaultInjector("model_load=nan"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=inf"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=-0.25"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.5xnan"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.5xinf"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.5x-2"), ContractViolation);
  EXPECT_THROW(FaultInjector("seed=-1"), ContractViolation);
  EXPECT_THROW(FaultInjector("seed=+3"), ContractViolation);
  EXPECT_THROW(FaultInjector("seed=0x10"), ContractViolation);
  EXPECT_THROW(FaultInjector("model_load=0.25trailing"), ContractViolation);
}

TEST(FaultInjector, SpecErrorNamesOffendingToken) {
  // Fail-fast diagnostics must name the environment variable and the
  // offending token, not just report "bad spec".
  try {
    FaultInjector injector("model_load=0.25,gamma_ray=0.5");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("gamma_ray"), std::string::npos) << message;
    EXPECT_NE(message.find("ANOLE_FAULTS"), std::string::npos) << message;
  }
  try {
    FaultInjector injector("model_load=0.5x-3");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("model_load"), std::string::npos) << message;
  }
}

TEST(FaultInjector, FromEnvHonorsVariable) {
  const char* saved = std::getenv("ANOLE_FAULTS");
  const std::string saved_value = saved == nullptr ? "" : saved;

  ::unsetenv("ANOLE_FAULTS");
  EXPECT_EQ(FaultInjector::from_env(), nullptr);
  ::setenv("ANOLE_FAULTS", "", 1);
  EXPECT_EQ(FaultInjector::from_env(), nullptr);
  ::setenv("ANOLE_FAULTS", "seed=9,frame_payload=0.125", 1);
  const auto injector = FaultInjector::from_env();
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(injector->seed(), 9u);
  EXPECT_DOUBLE_EQ(injector->probability(Site::kFramePayload), 0.125);

  if (saved == nullptr) {
    ::unsetenv("ANOLE_FAULTS");
  } else {
    ::setenv("ANOLE_FAULTS", saved_value.c_str(), 1);
  }
}

TEST(FaultInjector, ZeroNeverFiresOneAlwaysFires) {
  FaultInjector injector;
  injector.arm(Site::kModelLoad, 1.0);
  injector.arm(Site::kFramePayload, 0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.should_fail(Site::kModelLoad));
    EXPECT_FALSE(injector.should_fail(Site::kFramePayload));
  }
  EXPECT_EQ(injector.injected(Site::kModelLoad), 100u);
  EXPECT_EQ(injector.checks(Site::kModelLoad), 100u);
  EXPECT_EQ(injector.checks(Site::kFramePayload), 0u);
}

TEST(FaultInjector, UnarmedSiteDoesNotAdvanceItsStream) {
  // Consulting an unarmed site must not move its stream: the schedule a
  // site produces once armed is independent of earlier clean traffic.
  FaultInjector consulted(11);
  consulted.arm(Site::kModelLoad, 0.5);
  for (int i = 0; i < 500; ++i) {
    (void)consulted.should_fail(Site::kFramePayload);  // unarmed
  }
  consulted.arm(Site::kFramePayload, 0.5);
  FaultInjector fresh(11);
  fresh.arm(Site::kFramePayload, 0.5);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(consulted.should_fail(Site::kFramePayload),
              fresh.should_fail(Site::kFramePayload));
  }
}

TEST(FaultInjector, SameSeedSameScheduleDifferentSeedDiverges) {
  const std::string spec = "seed=1234,model_load=0.5,frame_payload=0.25";
  FaultInjector a(spec);
  FaultInjector b(spec);
  FaultInjector c("seed=4321,model_load=0.5,frame_payload=0.25");
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_fail(Site::kModelLoad, i),
              b.should_fail(Site::kModelLoad, i));
    EXPECT_EQ(a.should_fail(Site::kFramePayload, i),
              b.should_fail(Site::kFramePayload, i));
    (void)c.should_fail(Site::kModelLoad, i);
    (void)c.should_fail(Site::kFramePayload, i);
  }
  EXPECT_GT(a.injected_total(), 0u);
  EXPECT_EQ(a.trace_hash(), b.trace_hash());
  EXPECT_NE(a.trace_hash(), c.trace_hash());
}

TEST(FaultInjector, ResetReplaysTheSchedule) {
  FaultInjector injector(77);
  injector.arm(Site::kDecisionOutput, 0.3);
  std::vector<bool> first;
  for (std::uint64_t i = 0; i < 300; ++i) {
    first.push_back(injector.should_fail(Site::kDecisionOutput, i));
  }
  const std::uint64_t hash = injector.trace_hash();
  injector.reset();
  EXPECT_EQ(injector.injected_total(), 0u);
  EXPECT_EQ(injector.checks(Site::kDecisionOutput), 0u);
  for (std::uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(injector.should_fail(Site::kDecisionOutput, i), first[i]);
  }
  EXPECT_EQ(injector.trace_hash(), hash);
}

TEST(FaultInjector, DrawIndexDeterministicAndInRange) {
  FaultInjector a(5);
  FaultInjector b(5);
  for (int i = 0; i < 200; ++i) {
    const std::size_t index = a.draw_index(Site::kDecisionOutput, 7);
    EXPECT_LT(index, 7u);
    EXPECT_EQ(index, b.draw_index(Site::kDecisionOutput, 7));
  }
  EXPECT_THROW((void)a.draw_index(Site::kDecisionOutput, 0),
               ContractViolation);
}

TEST(FaultInjector, TraceRecordsSitePayloadAndOrder) {
  FaultInjector injector;
  injector.arm(Site::kModelLoad, 1.0);
  (void)injector.should_fail(Site::kModelLoad, 40);
  (void)injector.should_fail(Site::kModelLoad, 41);
  const auto trace = injector.trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].site, Site::kModelLoad);
  EXPECT_EQ(trace[0].check_index, 0u);
  EXPECT_EQ(trace[0].payload, 40u);
  EXPECT_EQ(trace[1].check_index, 1u);
  EXPECT_EQ(trace[1].payload, 41u);
}

}  // namespace
}  // namespace anole::fault

namespace anole::core {
namespace {

using fault::FaultInjector;
using fault::Site;

CacheConfig ladder_config() {
  CacheConfig config;
  config.capacity = 2;
  config.max_load_attempts = 2;
  config.quarantine_after = 2;
  config.quarantine_frames = 4;
  return config;
}

TEST(CacheLadder, RetrySucceedsWithinOneAdmission) {
  // Hunt a seed whose model_load stream starts fail-then-succeed, so the
  // retry (not the first attempt) lands the load. Deterministic: the same
  // seed always produces the same stream.
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 0; candidate < 200; ++candidate) {
    FaultInjector probe(candidate);
    probe.arm(Site::kModelLoad, 0.5);
    if (probe.should_fail(Site::kModelLoad) &&
        !probe.should_fail(Site::kModelLoad)) {
      seed = candidate;
      break;
    }
    ASSERT_NE(candidate, 199u) << "no fail-then-succeed seed in range";
  }
  FaultInjector injector(seed);
  injector.arm(Site::kModelLoad, 0.5);
  ModelCache cache(3, ladder_config());
  cache.set_fault_injector(&injector);
  const auto admission = cache.admit({1, 0, 2});
  EXPECT_EQ(admission.load_attempts, 2u);
  EXPECT_FALSE(admission.load_abandoned);
  EXPECT_EQ(admission.loaded, 1u);
  EXPECT_EQ(admission.served_model, 1u);
  EXPECT_EQ(cache.load_failures(), 1u);
  EXPECT_EQ(cache.abandoned_loads(), 0u);
}

TEST(CacheLadder, QuarantineAfterRepeatedAbandonmentThenDecays) {
  FaultInjector injector;
  injector.arm(Site::kModelLoad, 1.0);  // every load fails
  ModelCache cache(3, ladder_config());
  cache.set_fault_injector(&injector);
  cache.set_pinned_fallback(0);

  // First abandonment: cold cache, so the pinned fallback serves.
  auto admission = cache.admit({1});
  EXPECT_TRUE(admission.load_abandoned);
  EXPECT_EQ(admission.load_attempts, 2u);
  EXPECT_FALSE(admission.quarantined.has_value());
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_FALSE(cache.is_quarantined(1));

  // Second consecutive abandonment trips the quarantine.
  admission = cache.admit({1});
  EXPECT_TRUE(admission.load_abandoned);
  EXPECT_EQ(admission.quarantined, 1u);
  EXPECT_TRUE(cache.is_quarantined(1));
  EXPECT_EQ(cache.quarantined_models(), std::vector<std::size_t>{1});
  EXPECT_EQ(cache.quarantine_events(), 1u);

  // While quarantined, model 1 is skipped: the ranking degrades to the
  // next admissible model with no load attempt.
  admission = cache.admit({1, 0});
  EXPECT_TRUE(admission.hit);
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_EQ(admission.load_attempts, 0u);

  // Decayed re-admission: the cooldown is quarantine_frames admissions
  // (one was just spent above).
  std::size_t waited = 1;
  while (cache.is_quarantined(1)) {
    (void)cache.admit({0});
    ++waited;
    ASSERT_LE(waited, 64u);
  }
  EXPECT_EQ(waited, 4u);

  // Re-offend: the second quarantine's cooldown is doubled.
  (void)cache.admit({1, 0});
  admission = cache.admit({1, 0});
  EXPECT_EQ(admission.quarantined, 1u);
  waited = 0;
  while (cache.is_quarantined(1)) {
    (void)cache.admit({0});
    ++waited;
    ASSERT_LE(waited, 64u);
  }
  EXPECT_EQ(waited, 8u);
  EXPECT_EQ(cache.quarantine_events(), 2u);
}

TEST(CacheLadder, PinnedFallbackLoadBypassesInjection) {
  FaultInjector injector;
  injector.arm(Site::kModelLoad, 1.0);
  ModelCache cache(3, ladder_config());
  cache.set_fault_injector(&injector);
  cache.set_pinned_fallback(2);
  const auto admission = cache.admit({});
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_EQ(admission.served_model, 2u);
  EXPECT_TRUE(cache.contains(2));
  EXPECT_EQ(cache.degraded_serves(), 1u);
}

TEST(CacheLadder, QuarantineForeverNeverReadmits) {
  ModelCache cache(3, ladder_config());
  cache.set_pinned_fallback(0);
  cache.quarantine_forever(1);
  for (int i = 0; i < 100; ++i) {
    const auto admission = cache.admit({1, 2});
    EXPECT_NE(admission.served_model, 1u);
  }
  EXPECT_TRUE(cache.is_quarantined(1));
  // The pinned fallback cannot be exiled: it is the last line of defence.
  EXPECT_THROW(cache.quarantine_forever(0), ContractViolation);
}

/// Engine-level ladder tests share one trained system (same scale as the
/// artifact tests: a small world, 6 compressed models).
class EngineFaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 50;
    world_config.clip_scale = 0.12;
    world_config.seed = 77;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    ProfilerConfig config;
    config.encoder.train.epochs = 15;
    config.repository.target_models = 6;
    config.repository.detector_train.epochs = 6;
    config.repository.min_training_frames = 20;
    config.repository.min_validation_frames = 4;
    config.sampling.budget = 150;
    config.decision.train.epochs = 15;
    Rng rng(3);
    OfflineProfiler profiler(config);
    system_ = std::make_unique<AnoleSystem>(profiler.run(*world_, rng));
  }

  static void TearDownTestSuite() {
    system_.reset();
    world_.reset();
  }

  /// The test-split frames cycled out to `count` entries.
  static std::vector<const world::Frame*> frame_stream(std::size_t count) {
    const auto base = world_->frames_with_role(world::SplitRole::kTest);
    std::vector<const world::Frame*> frames;
    frames.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      frames.push_back(base[i % base.size()]);
    }
    return frames;
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<AnoleSystem> system_;
};

std::unique_ptr<world::World> EngineFaultTest::world_;
std::unique_ptr<AnoleSystem> EngineFaultTest::system_;

EngineConfig faulty_engine_config(const std::string& spec) {
  EngineConfig config;
  config.cache.capacity = 3;
  config.faults = std::make_shared<FaultInjector>(spec);
  return config;
}

TEST_F(EngineFaultTest, SurvivesSustainedFaultsAtEverySite) {
  // >= 1% at every engine-visible site over 2000 frames: the engine must
  // complete with zero uncaught exceptions and serve every frame either
  // by an admissible ranked model or by the pinned fallback.
  // model_load is consulted only on cache misses, which a settled LFU
  // cache makes rare — a tight capacity and a high probability keep the
  // retry/quarantine path exercised within the stream.
  EngineConfig config = faulty_engine_config(
      "seed=97,model_load=0.35,decision_output=0.02,frame_payload=0.02");
  config.cache.capacity = 2;
  AnoleEngine engine(*system_, config);
  const auto frames = frame_stream(2000);
  const std::size_t n = system_->repository.size();
  for (const world::Frame* frame : frames) {
    const EngineResult result = engine.process(*frame);
    ASSERT_LT(result.served_model, n);
    if (result.health.served_degraded) {
      EXPECT_EQ(result.served_model, engine.fallback_model());
    }
    if (result.health.payload_corrupt) {
      EXPECT_TRUE(result.detections.empty());
    }
  }
  EXPECT_EQ(engine.frames_processed(), 2000u);
  const FaultInjector& faults = *engine.faults();
  EXPECT_GT(faults.checks(Site::kModelLoad), 0u);
  EXPECT_GT(faults.injected(Site::kModelLoad), 0u);
  EXPECT_GT(faults.injected(Site::kDecisionOutput), 0u);
  EXPECT_GT(faults.injected(Site::kFramePayload), 0u);
  EXPECT_GT(engine.nonfinite_frames(), 0u);
  EXPECT_GT(engine.payload_corrupt_frames(), 0u);
  EXPECT_GT(engine.cache().load_failures(), 0u);
  // The ladder is accounting, not behavior change: the suitability guard
  // and retries kept the stream flowing.
  EXPECT_EQ(engine.nonfinite_frames(),
            faults.injected(Site::kDecisionOutput));
  EXPECT_EQ(engine.payload_corrupt_frames(),
            faults.injected(Site::kFramePayload));
}

TEST_F(EngineFaultTest, FaultScheduleIsThreadCountInvariant) {
  const std::string spec =
      "seed=1337,model_load=0.08,decision_output=0.03,frame_payload=0.02";
  const auto frames = frame_stream(600);
  const std::size_t saved_threads = par::thread_count();

  par::set_thread_count(1);
  AnoleEngine serial(*system_, faulty_engine_config(spec));
  std::vector<EngineResult> serial_results;
  serial_results.reserve(frames.size());
  for (const world::Frame* frame : frames) {
    serial_results.push_back(serial.process(*frame));
  }

  par::set_thread_count(4);
  AnoleEngine threaded(*system_, faulty_engine_config(spec));
  std::vector<EngineResult> threaded_results;
  for (std::size_t begin = 0; begin < frames.size(); begin += 128) {
    const std::size_t end = std::min(frames.size(), begin + 128);
    std::vector<const world::Frame*> batch(frames.begin() + begin,
                                           frames.begin() + end);
    auto results = threaded.process_batch(batch);
    threaded_results.insert(threaded_results.end(),
                            std::make_move_iterator(results.begin()),
                            std::make_move_iterator(results.end()));
  }
  par::set_thread_count(saved_threads);

  ASSERT_EQ(serial_results.size(), threaded_results.size());
  for (std::size_t i = 0; i < serial_results.size(); ++i) {
    EXPECT_EQ(serial_results[i].served_model,
              threaded_results[i].served_model) << "frame " << i;
    EXPECT_EQ(serial_results[i].health.payload_corrupt,
              threaded_results[i].health.payload_corrupt) << "frame " << i;
    EXPECT_EQ(serial_results[i].detections.size(),
              threaded_results[i].detections.size()) << "frame " << i;
  }
  // The bitwise guarantee: identical fault schedules, event for event.
  EXPECT_EQ(serial.faults()->trace_hash(), threaded.faults()->trace_hash());
  EXPECT_GT(serial.faults()->injected_total(), 0u);
}

TEST_F(EngineFaultTest, CleanEngineWithoutEnvHasNoInjector) {
  const char* saved = std::getenv("ANOLE_FAULTS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  ::unsetenv("ANOLE_FAULTS");
  {
    AnoleEngine engine(*system_, CacheConfig{});
    EXPECT_EQ(engine.faults(), nullptr);
    (void)engine.process(*frame_stream(1)[0]);
    EXPECT_EQ(engine.nonfinite_frames(), 0u);
    EXPECT_EQ(engine.degraded_frames(), 0u);
  }
  if (saved != nullptr) {
    ::setenv("ANOLE_FAULTS", saved_value.c_str(), 1);
  }
}

TEST_F(EngineFaultTest, EngineReadsAnoleFaultsEnv) {
  const char* saved = std::getenv("ANOLE_FAULTS");
  const std::string saved_value = saved == nullptr ? "" : saved;
  ::setenv("ANOLE_FAULTS", "seed=5,frame_payload=1", 1);
  {
    AnoleEngine engine(*system_, CacheConfig{});
    ASSERT_NE(engine.faults(), nullptr);
    EXPECT_DOUBLE_EQ(engine.faults()->probability(Site::kFramePayload), 1.0);
    const EngineResult result = engine.process(*frame_stream(1)[0]);
    EXPECT_TRUE(result.health.payload_corrupt);
    EXPECT_TRUE(result.detections.empty());
  }
  if (saved == nullptr) {
    ::unsetenv("ANOLE_FAULTS");
  } else {
    ::setenv("ANOLE_FAULTS", saved_value.c_str(), 1);
  }
}

}  // namespace
}  // namespace anole::core
