// Int8 quantized inference fast path: fp16 scale encoding, per-channel
// weight quantization, the qgemm kernel (exact against a scalar integer
// reference, tolerant against fp32, bitwise deterministic across thread
// counts), QuantizedLinear, the Sequential quantization pass, the compact
// precision-tagged network wire format, and edge shapes for every GEMM
// entry point.
#include "tensor/qgemm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "tensor/simd.hpp"
#include "tensor/tensor.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace anole {
namespace {

struct ThreadCountGuard {
  ~ThreadCountGuard() { par::set_thread_count(0); }
};

/// Pins the SIMD dispatch level for a scope.
struct SimdLevelGuard {
  explicit SimdLevelGuard(simd::Level level) { simd::set_level(level); }
  ~SimdLevelGuard() { simd::reset_level(); }
};

/// Every dispatch level this host can actually run.
std::vector<simd::Level> available_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::detected_level() >= simd::Level::kSSE2) {
    levels.push_back(simd::Level::kSSE2);
  }
  if (simd::detected_level() >= simd::Level::kAVX2) {
    levels.push_back(simd::Level::kAVX2);
  }
  return levels;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  if (a.size() == 0) return true;
  return std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t = Tensor::matrix(rows, cols);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal());
  }
  return t;
}

/// Scalar integer reference for qgemm: same quantizers (via the public
/// int8 row helper), exact int32 accumulation, and the kernel's exact
/// dequant formula float(acc) * (row_scale * channel_scale) + bias.
Tensor reference_qgemm(const Tensor& x, const QuantizedMatrix& w,
                       const std::vector<float>& bias) {
  Tensor y = Tensor::matrix(x.rows(), w.channels);
  std::vector<std::int8_t> codes(x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float row_scale = quantize_row_int8(x.row(i), codes);
    for (std::size_t j = 0; j < w.channels; ++j) {
      std::int32_t acc = 0;
      for (std::size_t kk = 0; kk < w.depth; ++kk) {
        acc += static_cast<std::int32_t>(codes[kk]) *
               static_cast<std::int32_t>(w.data[j * w.depth + kk]);
      }
      float value = static_cast<float>(acc) * (row_scale * w.scales[j]);
      if (!bias.empty()) value += bias[j];
      y.at(i, j) = value;
    }
  }
  return y;
}

// --- fp16 helpers ---

TEST(Fp16, RoundTripsRepresentableValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 65504.0f, -65504.0f, 0.25f,
                  1.5f, 2048.0f}) {
    EXPECT_EQ(half_to_float(float_to_half(v)), v) << v;
  }
}

TEST(Fp16, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // nearest-even resolves downward to 1.0.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1p-11f)), 1.0f);
  // Just above the halfway point rounds up.
  EXPECT_EQ(half_to_float(float_to_half(1.0f + 0x1.2p-11f)), 1.0f + 0x1p-10f);
}

TEST(Fp16, HandlesSpecials) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(half_to_float(float_to_half(inf)), inf);
  EXPECT_EQ(half_to_float(float_to_half(-inf)), -inf);
  EXPECT_TRUE(std::isnan(half_to_float(float_to_half(
      std::numeric_limits<float>::quiet_NaN()))));
  // Overflow saturates to inf; tiny values flush toward zero/denormals.
  EXPECT_EQ(half_to_float(float_to_half(1e6f)), inf);
  EXPECT_EQ(half_to_float(float_to_half(1e-10f)), 0.0f);
  // Smallest fp16 denormal survives.
  EXPECT_EQ(half_to_float(float_to_half(0x1p-24f)), 0x1p-24f);
}

TEST(Fp16, SnappingIsIdempotent) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.normal());
    const std::uint16_t h = float_to_half(v);
    const float snapped = half_to_float(h);
    EXPECT_EQ(float_to_half(snapped), h);
    EXPECT_EQ(half_to_float(float_to_half(snapped)), snapped);
  }
}

// --- weight quantization ---

TEST(QuantizeWeights, ScalesAreFp16SnappedAndCodesBounded) {
  Rng rng(5);
  const Tensor w = random_matrix(42, 16, rng);
  const QuantizedMatrix q = quantize_weights(w);
  EXPECT_EQ(q.depth, 42u);
  EXPECT_EQ(q.channels, 16u);
  ASSERT_EQ(q.scales.size(), 16u);
  ASSERT_EQ(q.data.size(), 42u * 16u);
  for (float scale : q.scales) {
    EXPECT_GT(scale, 0.0f);
    EXPECT_EQ(half_to_float(float_to_half(scale)), scale)
        << "scale not fp16-representable";
  }
  for (std::int8_t code : q.data) {
    EXPECT_GE(code, -127);
    EXPECT_LE(code, 127);
  }
}

TEST(QuantizeWeights, DequantizeReconstructsWithinScale) {
  Rng rng(6);
  const Tensor w = random_matrix(30, 8, rng);
  const QuantizedMatrix q = quantize_weights(w);
  const Tensor back = dequantize_weights(q);
  ASSERT_EQ(back.rows(), w.rows());
  ASSERT_EQ(back.cols(), w.cols());
  for (std::size_t c = 0; c < q.channels; ++c) {
    // Max representation error of symmetric rounding is half a step.
    const float tolerance = q.scales[c] * 0.5f + 1e-6f;
    for (std::size_t d = 0; d < q.depth; ++d) {
      EXPECT_NEAR(back.at(d, c), w.at(d, c), tolerance)
          << "d=" << d << " c=" << c;
    }
  }
}

TEST(QuantizeWeights, ZeroChannelGetsUnitScaleAndZeroCodes) {
  Tensor w = Tensor::matrix(4, 2);
  w.at(0, 1) = 3.0f;  // channel 1 non-zero, channel 0 all zero
  const QuantizedMatrix q = quantize_weights(w);
  EXPECT_EQ(q.scales[0], 1.0f);
  for (std::size_t d = 0; d < 4; ++d) EXPECT_EQ(q.data[0 * 4 + d], 0);
}

TEST(QuantizeRowInt8, CodesMatchSymmetricRule) {
  const std::vector<float> row = {1.0f, -1.0f, 0.5f, 0.0f, -0.25f};
  std::vector<std::int8_t> codes(row.size());
  const float scale = quantize_row_int8(
      std::span<const float>(row), std::span<std::int8_t>(codes));
  EXPECT_FLOAT_EQ(scale, 1.0f / 127.0f);
  EXPECT_EQ(codes[0], 127);
  EXPECT_EQ(codes[1], -127);
  EXPECT_EQ(codes[3], 0);
  // Round-to-nearest-even at 0.5 * 127 = 63.5 -> 64.
  EXPECT_EQ(codes[2], 64);
}

// --- the kernel ---

TEST(Qgemm, MatchesIntegerReferenceExactly) {
  Rng rng(7);
  for (const auto& [m, k, n] :
       std::vector<std::array<std::size_t, 3>>{{1, 1, 1},
                                               {3, 5, 7},
                                               {16, 42, 16},
                                               {33, 48, 5},
                                               {144, 42, 16},
                                               {2, 64, 64},
                                               {5, 7, 130}}) {
    const Tensor x = random_matrix(m, k, rng);
    const Tensor w = random_matrix(k, n, rng);
    std::vector<float> bias(n);
    for (auto& v : bias) v = static_cast<float>(rng.normal());
    const QuantizedMatrix q = quantize_weights(w);
    const Tensor got = qgemm(x, q, bias);
    const Tensor want = reference_qgemm(x, q, bias);
    ASSERT_TRUE(bitwise_equal(got, want)) << m << "x" << k << "x" << n;
    // And without bias.
    ASSERT_TRUE(bitwise_equal(qgemm(x, q), reference_qgemm(x, q, {})))
        << m << "x" << k << "x" << n << " (no bias)";
  }
}

TEST(Qgemm, ApproximatesFp32Matmul) {
  Rng rng(8);
  const Tensor x = random_matrix(64, 42, rng);
  const Tensor w = random_matrix(42, 16, rng);
  const QuantizedMatrix q = quantize_weights(w);
  const Tensor exact = matmul(x, w);
  const Tensor quantized = qgemm(x, q);
  double worst = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, std::fabs(static_cast<double>(exact[i]) -
                                      static_cast<double>(quantized[i])));
    scale = std::max(scale, std::fabs(static_cast<double>(exact[i])));
  }
  // Relative error of a 42-deep int8 dot stays well under 2%.
  EXPECT_LT(worst, 0.02 * scale);
}

TEST(Qgemm, BitwiseDeterministicAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(9);
  const Tensor x = random_matrix(150, 42, rng);
  const Tensor w = random_matrix(42, 70, rng);
  std::vector<float> bias(70);
  for (auto& v : bias) v = static_cast<float>(rng.normal());
  const QuantizedMatrix q = quantize_weights(w);
  par::set_thread_count(1);
  const Tensor serial = qgemm(x, q, bias);
  par::set_thread_count(4);
  const Tensor parallel = qgemm(x, q, bias);
  EXPECT_TRUE(bitwise_equal(serial, parallel));
}

TEST(Qgemm, BitwiseIdenticalAtEveryDispatchLevel) {
  // The int8 contract (tensor/simd.hpp): int32 accumulation is exact and
  // the fused dequant is one rounding per element at every level, so
  // SSE2 and AVX2 must match the scalar kernel bit for bit — at any
  // thread count.
  ThreadCountGuard guard;
  Rng rng(22);
  for (const auto& [m, k, n] :
       std::vector<std::array<std::size_t, 3>>{{3, 5, 7},
                                               {144, 42, 16},
                                               {17, 130, 33}}) {
    const Tensor x = random_matrix(m, k, rng);
    const Tensor w = random_matrix(k, n, rng);
    std::vector<float> bias(n);
    for (auto& v : bias) v = static_cast<float>(rng.normal());
    const QuantizedMatrix q = quantize_weights(w);

    Tensor reference;
    {
      SimdLevelGuard simd_guard(simd::Level::kScalar);
      par::set_thread_count(1);
      reference = qgemm(x, q, bias);
    }
    ASSERT_TRUE(bitwise_equal(reference, reference_qgemm(x, q, bias)))
        << m << "x" << k << "x" << n;
    for (const simd::Level level : available_levels()) {
      SimdLevelGuard simd_guard(level);
      par::set_thread_count(1);
      const Tensor serial = qgemm(x, q, bias);
      par::set_thread_count(4);
      const Tensor parallel = qgemm(x, q, bias);
      EXPECT_TRUE(bitwise_equal(serial, reference))
          << simd::level_name(level) << " " << m << "x" << k << "x" << n;
      EXPECT_TRUE(bitwise_equal(parallel, reference))
          << simd::level_name(level) << " " << m << "x" << k << "x" << n
          << " (4 threads)";
    }
  }
}

TEST(Qgemm, RejectsBadShapes) {
  Rng rng(10);
  const Tensor w = random_matrix(8, 4, rng);
  QuantizedMatrix q = quantize_weights(w);
  const Tensor wrong_depth = random_matrix(3, 7, rng);
  EXPECT_THROW((void)qgemm(wrong_depth, q), std::invalid_argument);
  std::vector<float> bad_bias(5);
  const Tensor x = random_matrix(3, 8, rng);
  EXPECT_THROW((void)qgemm(x, q, bad_bias), std::invalid_argument);
  QuantizedMatrix unprepared = q;
  unprepared.exec.clear();
  EXPECT_THROW((void)qgemm(x, unprepared), std::invalid_argument);
}

// --- edge shapes for every GEMM entry point ---

/// fp32 references in the shared kernel's accumulation form.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::matrix(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t kk = 0; kk < a.cols(); ++kk) {
      const float aik = a.at(i, kk);
      if (aik == 0.0f) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(kk, j);
      }
    }
  }
  return c;
}

TEST(GemmEdgeShapes, RowVectorColumnVectorAndK1) {
  Rng rng(12);
  // (1 x k)(k x n), (m x k)(k x 1), k = 1, and 1x1x1. The fp32 kernels
  // run under every exact (non-FMA) dispatch level — scalar and SSE2
  // share the naive reference's rounding bit for bit; the int8 path is
  // exact at every level including AVX2.
  for (const auto& [m, k, n] :
       std::vector<std::array<std::size_t, 3>>{
           {1, 17, 9}, {9, 17, 1}, {6, 1, 6}, {1, 1, 1}}) {
    const Tensor a = random_matrix(m, k, rng);
    const Tensor b = random_matrix(k, n, rng);
    for (const simd::Level level : available_levels()) {
      SimdLevelGuard simd_guard(level);
      if (level != simd::Level::kAVX2) {
        EXPECT_TRUE(bitwise_equal(matmul(a, b), naive_matmul(a, b)))
            << "matmul " << m << "x" << k << "x" << n << " "
            << simd::level_name(level);

        const Tensor at = transpose(a);
        EXPECT_TRUE(
            bitwise_equal(matmul_transpose_a(at, b), naive_matmul(a, b)))
            << "transpose_a " << m << "x" << k << "x" << n << " "
            << simd::level_name(level);

        const Tensor bt = transpose(b);
        EXPECT_TRUE(
            bitwise_equal(matmul_transpose_b(a, bt), naive_matmul(a, b)))
            << "transpose_b " << m << "x" << k << "x" << n << " "
            << simd::level_name(level);
      }

      const QuantizedMatrix q = quantize_weights(b);
      EXPECT_TRUE(bitwise_equal(qgemm(a, q), reference_qgemm(a, q, {})))
          << "qgemm " << m << "x" << k << "x" << n << " "
          << simd::level_name(level);
    }
  }
}

TEST(GemmEdgeShapes, EmptyDimensionsProduceZeroFilledOutputs) {
  Rng rng(13);
  // m = 0: no rows.
  {
    const Tensor a = Tensor::matrix(0, 4);
    const Tensor b = random_matrix(4, 3, rng);
    EXPECT_EQ(matmul(a, b).rows(), 0u);
    EXPECT_EQ(qgemm(a, quantize_weights(b)).rows(), 0u);
  }
  // k = 0: the contraction is empty; every output must be exactly zero
  // (+ bias for qgemm), not uninitialized memory.
  {
    const Tensor a = Tensor::matrix(3, 0);
    const Tensor b = Tensor::matrix(0, 5);
    const Tensor c = matmul(a, b);
    ASSERT_EQ(c.rows(), 3u);
    ASSERT_EQ(c.cols(), 5u);
    for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 0.0f);

    const Tensor ct = matmul_transpose_a(transpose(a), b);
    for (std::size_t i = 0; i < ct.size(); ++i) EXPECT_EQ(ct[i], 0.0f);
    const Tensor cb = matmul_transpose_b(a, transpose(b));
    for (std::size_t i = 0; i < cb.size(); ++i) EXPECT_EQ(cb[i], 0.0f);

    std::vector<float> bias = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
    const Tensor cq = qgemm(a, quantize_weights(b), bias);
    ASSERT_EQ(cq.cols(), 5u);
    for (std::size_t i = 0; i < cq.rows(); ++i) {
      for (std::size_t j = 0; j < cq.cols(); ++j) {
        EXPECT_EQ(cq.at(i, j), bias[j]);
      }
    }
  }
  // n = 0: no output columns.
  {
    const Tensor a = random_matrix(3, 4, rng);
    const Tensor b = Tensor::matrix(4, 0);
    EXPECT_EQ(matmul(a, b).cols(), 0u);
    EXPECT_EQ(qgemm(a, quantize_weights(b)).cols(), 0u);
  }
}

// --- QuantizedLinear and the Sequential pass ---

TEST(QuantizedLinear, ForwardMatchesQgemmAndBackwardThrows) {
  Rng rng(14);
  nn::Linear linear(42, 16, rng);
  nn::QuantizedLinear quantized(linear);
  const Tensor x = random_matrix(10, 42, rng);

  // The layer's forward is exactly qgemm with the snapped bias fused.
  std::vector<float> bias(16);
  for (std::size_t j = 0; j < 16; ++j) {
    bias[j] = quantized.bias()[j];
    EXPECT_EQ(half_to_float(float_to_half(bias[j])), bias[j])
        << "bias not fp16-snapped";
  }
  EXPECT_TRUE(bitwise_equal(
      quantized.forward(x),
      qgemm(x, quantized.quantized_weights(), bias)));

  EXPECT_EQ(quantized.flops_per_sample(), linear.flops_per_sample());
  EXPECT_THROW((void)quantized.backward(x), std::invalid_argument);
}

TEST(QuantizePass, ConvertsRestoresAndDequantizes) {
  Rng rng(15);
  auto net = nn::make_mlp({42, 16, 5}, rng);
  const Tensor x = random_matrix(6, 42, rng);
  const Tensor fp32_out = net->forward(x);
  EXPECT_FALSE(nn::is_quantized(*net));

  auto displaced = nn::quantize_linear_layers(*net);
  EXPECT_EQ(displaced.size(), 2u);
  EXPECT_TRUE(nn::is_quantized(*net));
  const Tensor int8_out = net->forward(x);
  // Quantization is lossy but close.
  for (std::size_t i = 0; i < fp32_out.size(); ++i) {
    EXPECT_NEAR(int8_out[i], fp32_out[i], 0.15f);
  }

  // Restoring the displaced originals recovers fp32 bit-identically.
  for (auto& [index, original] : displaced) {
    (void)net->replace(index, std::move(original));
  }
  EXPECT_FALSE(nn::is_quantized(*net));
  EXPECT_TRUE(bitwise_equal(net->forward(x), fp32_out));

  // Dequantization after a fresh pass keeps the quantized function.
  (void)nn::quantize_linear_layers(*net);
  const Tensor quant_out = net->forward(x);
  EXPECT_EQ(nn::dequantize_linear_layers(*net), 2u);
  EXPECT_FALSE(nn::is_quantized(*net));
  const Tensor dequant_out = net->forward(x);
  // fp32-on-dequantized-weights differs from int8 execution only by the
  // activation quantization error.
  for (std::size_t i = 0; i < quant_out.size(); ++i) {
    EXPECT_NEAR(dequant_out[i], quant_out[i], 0.15f);
  }
}

TEST(QuantizePass, IdempotentOnQuantizedNetworks) {
  Rng rng(16);
  auto net = nn::make_mlp({8, 4}, rng);
  EXPECT_EQ(nn::quantize_linear_layers(*net).size(), 1u);
  EXPECT_TRUE(nn::quantize_linear_layers(*net).empty());
}

// --- the compact precision-tagged wire format ---

TEST(NetworkWire, QuantizedRoundTripIsBitIdentical) {
  ThreadCountGuard guard;
  Rng rng(17);
  auto net = nn::make_mlp({42, 16, 5}, rng);
  (void)nn::quantize_linear_layers(*net);
  const Tensor x = random_matrix(9, 42, rng);
  const Tensor before = net->forward(x);

  std::stringstream stream;
  nn::save_network(*net, stream);
  EXPECT_EQ(nn::network_wire_bytes(*net),
            static_cast<std::uint64_t>(stream.str().size()));

  Rng reload_rng(0);
  auto fresh = nn::make_mlp({42, 16, 5}, reload_rng);
  nn::load_network(*fresh, stream);
  EXPECT_TRUE(nn::is_quantized(*fresh));
  // The wire carries the exact codes/scales, so inference is bitwise
  // reproducible across the artifact hop — at any thread count.
  par::set_thread_count(4);
  EXPECT_TRUE(bitwise_equal(fresh->forward(x), before));
}

TEST(NetworkWire, Fp32RoundTripIsBitIdentical) {
  Rng rng(18);
  auto net = nn::make_mlp({12, 7, 3}, rng);
  const Tensor x = random_matrix(4, 12, rng);
  const Tensor before = net->forward(x);
  std::stringstream stream;
  nn::save_network(*net, stream);
  Rng reload_rng(1);
  auto fresh = nn::make_mlp({12, 7, 3}, reload_rng);
  nn::load_network(*fresh, stream);
  EXPECT_FALSE(nn::is_quantized(*fresh));
  EXPECT_TRUE(bitwise_equal(fresh->forward(x), before));
}

TEST(NetworkWire, QuantizedLayersShrinkStreamedBytes) {
  Rng rng(19);
  auto net = nn::make_mlp({42, 16, 5}, rng);
  const std::uint64_t fp32_bytes = nn::streamed_weight_bytes(*net);
  EXPECT_EQ(fp32_bytes, nn::serialized_size_bytes(*net));
  (void)nn::quantize_linear_layers(*net);
  const std::uint64_t int8_bytes = nn::streamed_weight_bytes(*net);
  EXPECT_EQ(int8_bytes, nn::network_wire_bytes(*net));
  // The acceptance bar for artifact v3 model payloads.
  EXPECT_GE(static_cast<double>(fp32_bytes) /
                static_cast<double>(int8_bytes),
            3.5);
}

TEST(NetworkWire, MalformedStreamsRejected) {
  Rng rng(20);
  auto net = nn::make_mlp({6, 4}, rng);
  std::stringstream stream;
  nn::save_network(*net, stream);
  std::string blob = stream.str();
  blob[0] = 2;  // unknown precision tag
  std::stringstream bad(blob);
  Rng reload_rng(2);
  auto fresh = nn::make_mlp({6, 4}, reload_rng);
  EXPECT_THROW(nn::load_network(*fresh, bad), std::runtime_error);

  std::stringstream truncated(stream.str().substr(0, 10));
  Rng reload_rng2(3);
  auto fresh2 = nn::make_mlp({6, 4}, reload_rng2);
  EXPECT_THROW(nn::load_network(*fresh2, truncated), std::runtime_error);
}

}  // namespace
}  // namespace anole
