#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace anole {
namespace {

TEST(Stats, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, VarianceUnbiased) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(variance(v), 4.571428, 1e-5);
}

TEST(Stats, VarianceOfConstantIsZero) {
  const std::vector<double> v(10, 3.3);
  EXPECT_DOUBLE_EQ(variance(v), 0.0);
  EXPECT_DOUBLE_EQ(stddev(v), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
}

TEST(Stats, BoxplotSummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(static_cast<double>(i));
  const auto box = boxplot_summary(v);
  EXPECT_DOUBLE_EQ(box.min, 1.0);
  EXPECT_DOUBLE_EQ(box.max, 101.0);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q1, 26.0);
  EXPECT_DOUBLE_EQ(box.q3, 76.0);
  EXPECT_DOUBLE_EQ(box.mean, 51.0);
  EXPECT_EQ(box.count, 101u);
}

TEST(Stats, EmpiricalCdfMonotonic) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.normal());
  const auto cdf = empirical_cdf(v, 32);
  ASSERT_EQ(cdf.size(), 32u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].cumulative_probability,
              cdf[i].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
}

TEST(Stats, EmpiricalCdfSmallInput) {
  const std::vector<double> v = {5.0};
  const auto cdf = empirical_cdf(v, 10);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 5.0);
  EXPECT_DOUBLE_EQ(cdf[0].cumulative_probability, 1.0);
}

TEST(Stats, HistogramCountsAndClamping) {
  const std::vector<double> v = {-10.0, 0.1, 0.5, 0.9, 10.0};
  const auto h = make_histogram(v, 0.0, 1.0, 4);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts[0], 2u);  // -10 clamped + 0.1
  EXPECT_EQ(h.counts[3], 2u);  // 0.9 + 10 clamped
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Stats, CorrelationPerfect) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(x, neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationUndefinedIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(correlation(x, y), 0.0);
}

TEST(Stats, NormalizeSumsToOne) {
  const std::vector<double> v = {1.0, 3.0};
  const auto n = normalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[1], 0.75);
}

TEST(Stats, NormalizeZeroSum) {
  const std::vector<double> v = {0.0, 0.0};
  const auto n = normalize(v);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.0);
}

TEST(Stats, CoefficientOfVariation) {
  const std::vector<double> balanced(8, 5.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation(balanced), 0.0);
  const std::vector<double> skewed = {1.0, 9.0};
  EXPECT_GT(coefficient_of_variation(skewed), 1.0);
}

/// Percentile must be monotone in q over random data.
class PercentileMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotoneTest, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.normal(0.0, 5.0));
  double previous = percentile(v, 0.0);
  for (double q = 5.0; q <= 100.0; q += 5.0) {
    const double current = percentile(v, q);
    EXPECT_GE(current, previous) << "q=" << q;
    previous = current;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotoneTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace anole
