// Tests of the paper's candidate methods (SDM/SSM/CDG/DMM) and the Anole
// adapter, on a shared tiny world.
#include "baselines/methods.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.hpp"
#include "eval/f1_series.hpp"
#include "util/log.hpp"

namespace anole::baselines {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    set_log_level(LogLevel::kError);
    world::WorldConfig world_config;
    world_config.frames_per_clip = 60;
    world_config.clip_scale = 0.15;
    world_config.seed = 55;
    world_ = std::make_unique<world::World>(
        world::make_benchmark_world(world_config));
    rng_ = std::make_unique<Rng>(5);
    config_ = std::make_unique<BaselineConfig>();
    config_->detector_train.epochs = 12;
    config_->cdg_clusters = 4;
    sdm_ = train_sdm(*world_, *config_, *rng_);
    ssm_ = train_ssm(*world_, *config_, *rng_);
    cdg_ = train_cdg(*world_, *config_, *rng_);
    dmm_ = train_dmm(*world_, *config_, *rng_);
  }

  static void TearDownTestSuite() {
    sdm_.reset();
    ssm_.reset();
    cdg_.reset();
    dmm_.reset();
    config_.reset();
    rng_.reset();
    world_.reset();
  }

  static std::unique_ptr<world::World> world_;
  static std::unique_ptr<Rng> rng_;
  static std::unique_ptr<BaselineConfig> config_;
  static std::unique_ptr<SingleModelMethod> sdm_;
  static std::unique_ptr<SingleModelMethod> ssm_;
  static std::unique_ptr<CdgMethod> cdg_;
  static std::unique_ptr<DmmMethod> dmm_;
};

std::unique_ptr<world::World> BaselineTest::world_;
std::unique_ptr<Rng> BaselineTest::rng_;
std::unique_ptr<BaselineConfig> BaselineTest::config_;
std::unique_ptr<SingleModelMethod> BaselineTest::sdm_;
std::unique_ptr<SingleModelMethod> BaselineTest::ssm_;
std::unique_ptr<CdgMethod> BaselineTest::cdg_;
std::unique_ptr<DmmMethod> BaselineTest::dmm_;

TEST_F(BaselineTest, NamesAreStable) {
  EXPECT_EQ(sdm_->name(), "SDM");
  EXPECT_EQ(ssm_->name(), "SSM");
  EXPECT_EQ(cdg_->name(), "CDG");
  EXPECT_EQ(dmm_->name(), "DMM");
}

TEST_F(BaselineTest, SdmIsHeavierThanSsm) {
  EXPECT_GT(sdm_->detector_flops(), 8 * ssm_->detector_flops());
  EXPECT_GT(sdm_->weight_bytes(), ssm_->weight_bytes());
  EXPECT_EQ(sdm_->decision_flops(), 0u);
  EXPECT_EQ(ssm_->decision_flops(), 0u);
}

TEST_F(BaselineTest, MethodsProduceReasonableF1) {
  const auto test = world_->frames_with_role(world::SplitRole::kTest);
  // At this miniature scale absolute accuracies are low; the strong deep
  // model must clearly work, every method must be valid, and at least half
  // of them should be non-trivial.
  std::size_t nontrivial = 0;
  for (InferenceMethod* method : std::vector<InferenceMethod*>{
           sdm_.get(), ssm_.get(), cdg_.get(), dmm_.get()}) {
    const double f1 = eval::overall_f1(
        [&](const world::Frame& f) { return method->infer(f); }, test);
    EXPECT_GE(f1, 0.0) << method->name();
    EXPECT_LE(f1, 1.0) << method->name();
    if (f1 > 0.15) ++nontrivial;
  }
  EXPECT_GE(nontrivial, 2u);
  const double sdm_f1 = eval::overall_f1(
      [&](const world::Frame& f) { return sdm_->infer(f); }, test);
  EXPECT_GT(sdm_f1, 0.3);
}

TEST_F(BaselineTest, CdgClusterSelectionIsDeterministic) {
  const auto test = world_->frames_with_role(world::SplitRole::kTest);
  ASSERT_FALSE(test.empty());
  const std::size_t a = cdg_->select_cluster(*test[0]);
  const std::size_t b = cdg_->select_cluster(*test[0]);
  EXPECT_EQ(a, b);
  EXPECT_LT(a, config_->cdg_clusters);
  EXPECT_GT(cdg_->decision_flops(), 0u);
}

TEST_F(BaselineTest, CdgCarriesOneDetectorPerCluster) {
  EXPECT_EQ(cdg_->weight_bytes(),
            config_->cdg_clusters * ssm_->weight_bytes());
}

TEST_F(BaselineTest, DmmRoutesByDatasetId) {
  const auto test = world_->frames_with_role(world::SplitRole::kTest);
  ASSERT_FALSE(test.empty());
  // All frames carry valid dataset ids; inference must not throw.
  EXPECT_NO_THROW((void)dmm_->infer(*test[0]));
  world::Frame bogus = *test[0];
  bogus.dataset_id = 99;
  EXPECT_THROW((void)dmm_->infer(bogus), std::out_of_range);
}

TEST_F(BaselineTest, DmmHoldsOneModelPerDataset) {
  EXPECT_EQ(dmm_->weight_bytes(),
            world_->dataset_names.size() * ssm_->weight_bytes());
}

TEST_F(BaselineTest, AnoleAdapterWorksEndToEnd) {
  core::ProfilerConfig profiler_config;
  profiler_config.encoder.train.epochs = 15;
  profiler_config.repository.target_models = 6;
  profiler_config.repository.detector_train.epochs = 6;
  profiler_config.repository.min_training_frames = 20;
  profiler_config.repository.min_validation_frames = 4;
  profiler_config.sampling.budget = 200;
  profiler_config.decision.train.epochs = 20;
  core::OfflineProfiler profiler(profiler_config);
  Rng rng(9);
  core::AnoleSystem system = profiler.run(*world_, rng);
  core::CacheConfig cache_config;
  cache_config.capacity = 3;
  AnoleMethod anole(system, cache_config);
  EXPECT_EQ(anole.name(), "Anole");
  EXPECT_GT(anole.decision_flops(), 0u);
  EXPECT_GT(anole.weight_bytes(), 0u);
  const auto test = world_->frames_with_role(world::SplitRole::kTest);
  const double f1 = eval::overall_f1(
      [&](const world::Frame& f) { return anole.infer(f); }, test);
  EXPECT_GT(f1, 0.15);
  EXPECT_GT(anole.engine().frames_processed(), 0u);
}

TEST(BaselineErrors, EmptyWorldThrows) {
  world::World empty;
  Rng rng(1);
  BaselineConfig config;
  EXPECT_THROW((void)train_sdm(empty, config, rng), std::invalid_argument);
  EXPECT_THROW((void)train_cdg(empty, config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace anole::baselines
