#include "core/model_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace anole::core {
namespace {

CacheConfig make_config(std::size_t capacity, EvictionPolicy policy) {
  CacheConfig config;
  config.capacity = capacity;
  config.policy = policy;
  return config;
}

TEST(ModelCache, RejectsZeroCapacity) {
  EXPECT_THROW(ModelCache(3, make_config(0, EvictionPolicy::kLfu)),
               std::invalid_argument);
}

TEST(ModelCache, RejectsEmptyRankingWithoutPinnedFallback) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  EXPECT_THROW((void)cache.admit({}), std::invalid_argument);
}

TEST(ModelCache, EmptyRankingServedByPinnedFallback) {
  // The defined degradation for an empty ranking: the pinned fallback
  // serves and the frame counts as a miss.
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  cache.set_pinned_fallback(2);
  EXPECT_EQ(cache.pinned_fallback(), 2u);
  const auto admission = cache.admit({});
  EXPECT_EQ(admission.served_model, 2u);
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.degraded_serves(), 1u);
  EXPECT_TRUE(cache.contains(2));
  // Once resident it keeps serving without reloading.
  const auto again = cache.admit({});
  EXPECT_EQ(again.served_model, 2u);
  EXPECT_FALSE(again.loaded.has_value());
}

TEST(ModelCache, SetPinnedFallbackRejectsUnknownModel) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  EXPECT_THROW(cache.set_pinned_fallback(3), std::out_of_range);
}

TEST(ModelCache, ColdStartLoadsTopOne) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> ranking = {1, 0, 2};
  const auto admission = cache.admit(ranking);
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(admission.served_model, 1u);
  EXPECT_EQ(admission.loaded, 1u);
  EXPECT_FALSE(admission.evicted.has_value());
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ModelCache, HitOnResidentTopOne) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> ranking = {1, 0, 2};
  (void)cache.admit(ranking);
  const auto second = cache.admit(ranking);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.served_model, 1u);
  EXPECT_FALSE(second.loaded.has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.lookups(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(ModelCache, MissServesBestRankedResident) {
  ModelCache cache(4, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2, 3});
  (void)cache.admit({1, 0, 2, 3});
  // Cache now holds {0, 1}. Top-1 = 3 is absent; best resident in ranking
  // order {3, 1, 0, 2} is 1.
  const auto admission = cache.admit({3, 1, 0, 2});
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(admission.served_model, 1u);
  EXPECT_EQ(admission.loaded, 3u);
  // Capacity 2: loading 3 evicts the LFU entry. Model 0 served two frames
  // (frequency 2) while 1 served one (frequency 1), so 1 is evicted right
  // after serving.
  EXPECT_TRUE(admission.evicted.has_value());
  EXPECT_EQ(*admission.evicted, 1u);
}

TEST(ModelCache, LfuEvictsLeastFrequentlyUsed) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});  // model 0 used 3x
  (void)cache.admit({1, 0, 2});  // load 1, used 1x
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 1u);  // 1 is least frequently used
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
}

TEST(ModelCache, LruEvictsLeastRecentlyUsed) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLru));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({1, 0, 2});  // 1 loaded and most recent
  (void)cache.admit({0, 1, 2});  // 0 most recent again
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 1u);
}

TEST(ModelCache, FifoEvictsOldestLoad) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kFifo));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({1, 0, 2});
  // Keep using 0 so LFU/LRU would evict 1; FIFO must still evict 0.
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 0u);
}

TEST(ModelCache, PreloadDoesNotCountMisses) {
  ModelCache cache(4, make_config(3, EvictionPolicy::kLfu));
  const std::vector<std::size_t> models = {0, 1, 2};
  cache.preload(models);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.lookups(), 0u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  const auto admission = cache.admit({2, 1, 0});
  EXPECT_TRUE(admission.hit);
}

TEST(ModelCache, PreloadIsIdempotent) {
  ModelCache cache(4, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> models = {0, 0, 0};
  cache.preload(models);
  EXPECT_EQ(cache.resident_models().size(), 1u);
}

TEST(ModelCache, UseCountsTrackServedModel) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  // Top-1 = 1 misses; the resident model 0 serves the frame while 1 loads.
  (void)cache.admit({1, 0, 2});
  const auto& counts = cache.use_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(ModelCache, CapacityOneAlwaysServesSomething) {
  ModelCache cache(5, make_config(1, EvictionPolicy::kLfu));
  for (std::size_t target = 0; target < 5; ++target) {
    std::vector<std::size_t> ranking;
    for (std::size_t m = 0; m < 5; ++m) ranking.push_back((target + m) % 5);
    const auto admission = cache.admit(ranking);
    EXPECT_LT(admission.served_model, 5u);
    EXPECT_EQ(cache.resident_models().size(), 1u);
  }
}

TEST(ModelCache, NeverExceedsCapacity) {
  ModelCache cache(10, make_config(3, EvictionPolicy::kLfu));
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::size_t> ranking = random_permutation(10, rng);
    (void)cache.admit(ranking);
    EXPECT_LE(cache.resident_models().size(), 3u);
  }
}

TEST(ModelCache, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::kLfu), "LFU");
  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "LRU");
  EXPECT_STREQ(to_string(EvictionPolicy::kFifo), "FIFO");
}

/// Skewed rankings: with a power-law top-1 distribution a small LFU cache
/// must reach a low miss rate (the paper's Fig. 7b premise).
class CacheMissRateTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheMissRateTest, SmallCacheHandlesPowerLawRankings) {
  const std::size_t capacity = GetParam();
  const std::size_t models = 19;
  ModelCache cache(models, make_config(capacity, EvictionPolicy::kLfu));
  Rng rng(11);
  // Zipf-like top-1 choice.
  std::vector<double> weights;
  for (std::size_t m = 1; m <= models; ++m) weights.push_back(1.0 / (m * m));
  for (int i = 0; i < 2000; ++i) {
    const std::size_t top = rng.weighted_index(weights);
    std::vector<std::size_t> ranking = {top};
    for (std::size_t m = 0; m < models; ++m) {
      if (m != top) ranking.push_back(m);
    }
    (void)cache.admit(ranking);
  }
  if (capacity >= 5) {
    EXPECT_LT(cache.miss_rate(), 0.12) << "capacity=" << capacity;
  }
  if (capacity >= 2) {
    EXPECT_LT(cache.miss_rate(), 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheMissRateTest,
                         ::testing::Values(2, 3, 5, 8, 12));

}  // namespace
}  // namespace anole::core
