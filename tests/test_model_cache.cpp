#include "core/model_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace anole::core {
namespace {

CacheConfig make_config(std::size_t capacity, EvictionPolicy policy) {
  CacheConfig config;
  config.capacity = capacity;
  config.policy = policy;
  return config;
}

TEST(ModelCache, RejectsZeroCapacity) {
  EXPECT_THROW(ModelCache(3, make_config(0, EvictionPolicy::kLfu)),
               std::invalid_argument);
}

TEST(ModelCache, RejectsEmptyRankingWithoutPinnedFallback) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  EXPECT_THROW((void)cache.admit({}), std::invalid_argument);
}

TEST(ModelCache, EmptyRankingServedByPinnedFallback) {
  // The defined degradation for an empty ranking: the pinned fallback
  // serves and the frame counts as a miss.
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  cache.set_pinned_fallback(2);
  EXPECT_EQ(cache.pinned_fallback(), 2u);
  const auto admission = cache.admit({});
  EXPECT_EQ(admission.served_model, 2u);
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.degraded_serves(), 1u);
  EXPECT_TRUE(cache.contains(2));
  // Once resident it keeps serving without reloading.
  const auto again = cache.admit({});
  EXPECT_EQ(again.served_model, 2u);
  EXPECT_FALSE(again.loaded.has_value());
}

TEST(ModelCache, SetPinnedFallbackRejectsUnknownModel) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  EXPECT_THROW(cache.set_pinned_fallback(3), std::out_of_range);
}

TEST(ModelCache, ColdStartLoadsTopOne) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> ranking = {1, 0, 2};
  const auto admission = cache.admit(ranking);
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(admission.served_model, 1u);
  EXPECT_EQ(admission.loaded, 1u);
  EXPECT_FALSE(admission.evicted.has_value());
  EXPECT_TRUE(cache.contains(1));
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ModelCache, HitOnResidentTopOne) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> ranking = {1, 0, 2};
  (void)cache.admit(ranking);
  const auto second = cache.admit(ranking);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.served_model, 1u);
  EXPECT_FALSE(second.loaded.has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.lookups(), 2u);
  EXPECT_DOUBLE_EQ(cache.miss_rate(), 0.5);
}

TEST(ModelCache, MissServesBestRankedResident) {
  ModelCache cache(4, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2, 3});
  (void)cache.admit({1, 0, 2, 3});
  // Cache now holds {0, 1}. Top-1 = 3 is absent; best resident in ranking
  // order {3, 1, 0, 2} is 1.
  const auto admission = cache.admit({3, 1, 0, 2});
  EXPECT_FALSE(admission.hit);
  EXPECT_EQ(admission.served_model, 1u);
  EXPECT_EQ(admission.loaded, 3u);
  // Capacity 2: loading 3 evicts the LFU entry. Model 0 served two frames
  // (frequency 2) while 1 served one (frequency 1), so 1 is evicted right
  // after serving.
  EXPECT_TRUE(admission.evicted.has_value());
  EXPECT_EQ(*admission.evicted, 1u);
}

TEST(ModelCache, LfuEvictsLeastFrequentlyUsed) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});  // model 0 used 3x
  (void)cache.admit({1, 0, 2});  // load 1, used 1x
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 1u);  // 1 is least frequently used
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
}

TEST(ModelCache, LruEvictsLeastRecentlyUsed) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLru));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({1, 0, 2});  // 1 loaded and most recent
  (void)cache.admit({0, 1, 2});  // 0 most recent again
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 1u);
}

TEST(ModelCache, FifoEvictsOldestLoad) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kFifo));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({1, 0, 2});
  // Keep using 0 so LFU/LRU would evict 1; FIFO must still evict 0.
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  const auto admission = cache.admit({2, 0, 1});
  EXPECT_EQ(*admission.evicted, 0u);
}

TEST(ModelCache, PreloadDoesNotCountMisses) {
  ModelCache cache(4, make_config(3, EvictionPolicy::kLfu));
  const std::vector<std::size_t> models = {0, 1, 2};
  cache.preload(models);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.lookups(), 0u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  const auto admission = cache.admit({2, 1, 0});
  EXPECT_TRUE(admission.hit);
}

TEST(ModelCache, PreloadIsIdempotent) {
  ModelCache cache(4, make_config(2, EvictionPolicy::kLfu));
  const std::vector<std::size_t> models = {0, 0, 0};
  cache.preload(models);
  EXPECT_EQ(cache.resident_models().size(), 1u);
}

TEST(ModelCache, UseCountsTrackServedModel) {
  ModelCache cache(3, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2});
  (void)cache.admit({0, 1, 2});
  // Top-1 = 1 misses; the resident model 0 serves the frame while 1 loads.
  (void)cache.admit({1, 0, 2});
  const auto& counts = cache.use_counts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(ModelCache, CapacityOneAlwaysServesSomething) {
  ModelCache cache(5, make_config(1, EvictionPolicy::kLfu));
  for (std::size_t target = 0; target < 5; ++target) {
    std::vector<std::size_t> ranking;
    for (std::size_t m = 0; m < 5; ++m) ranking.push_back((target + m) % 5);
    const auto admission = cache.admit(ranking);
    EXPECT_LT(admission.served_model, 5u);
    EXPECT_EQ(cache.resident_models().size(), 1u);
  }
}

TEST(ModelCache, NeverExceedsCapacity) {
  ModelCache cache(10, make_config(3, EvictionPolicy::kLfu));
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::size_t> ranking = random_permutation(10, rng);
    (void)cache.admit(ranking);
    EXPECT_LE(cache.resident_models().size(), 3u);
  }
}

TEST(ModelCache, PolicyNames) {
  EXPECT_STREQ(to_string(EvictionPolicy::kLfu), "LFU");
  EXPECT_STREQ(to_string(EvictionPolicy::kLru), "LRU");
  EXPECT_STREQ(to_string(EvictionPolicy::kFifo), "FIFO");
}

/// Skewed rankings: with a power-law top-1 distribution a small LFU cache
/// must reach a low miss rate (the paper's Fig. 7b premise).
class CacheMissRateTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheMissRateTest, SmallCacheHandlesPowerLawRankings) {
  const std::size_t capacity = GetParam();
  const std::size_t models = 19;
  ModelCache cache(models, make_config(capacity, EvictionPolicy::kLfu));
  Rng rng(11);
  // Zipf-like top-1 choice.
  std::vector<double> weights;
  for (std::size_t m = 1; m <= models; ++m) weights.push_back(1.0 / (m * m));
  for (int i = 0; i < 2000; ++i) {
    const std::size_t top = rng.weighted_index(weights);
    std::vector<std::size_t> ranking = {top};
    for (std::size_t m = 0; m < models; ++m) {
      if (m != top) ranking.push_back(m);
    }
    (void)cache.admit(ranking);
  }
  if (capacity >= 5) {
    EXPECT_LT(cache.miss_rate(), 0.12) << "capacity=" << capacity;
  }
  if (capacity >= 2) {
    EXPECT_LT(cache.miss_rate(), 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheMissRateTest,
                         ::testing::Values(2, 3, 5, 8, 12));

/// --- preload vs the quarantine ladder (regressions) ---

TEST(ModelCachePreload, SkipsPermanentlyQuarantinedModels) {
  ModelCache cache(3, make_config(3, EvictionPolicy::kLfu));
  cache.set_pinned_fallback(0);
  cache.quarantine_forever(1);
  const std::vector<std::size_t> models = {1, 2};
  cache.preload(models);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.contains(2));
  // Preload must not resurrect a permanently exiled model, ever.
  cache.preload(models);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_TRUE(cache.is_quarantined(1));
  const auto admission = cache.admit({1, 2});
  EXPECT_EQ(admission.served_model, 2u);
}

TEST(ModelCachePreload, CannotResurrectEvictedQuarantinedResident) {
  ModelCache cache(3, make_config(3, EvictionPolicy::kLfu));
  cache.set_pinned_fallback(0);
  const std::vector<std::size_t> models = {1};
  cache.preload(models);
  ASSERT_TRUE(cache.contains(1));
  // quarantine_forever evicts the resident copy; a later preload of the
  // same id must stay a no-op.
  cache.quarantine_forever(1);
  EXPECT_FALSE(cache.contains(1));
  cache.preload(models);
  EXPECT_FALSE(cache.contains(1));
}

TEST(ModelCacheLadder, CooldownDoublingIsCapped) {
  // Each repeat offence doubles the cooldown, capped at 2^6 base frames:
  // 1, 2, 4, ..., 64, 64, 64 for quarantine_frames = 1.
  CacheConfig config = make_config(2, EvictionPolicy::kLfu);
  config.max_load_attempts = 1;
  config.quarantine_after = 1;
  config.quarantine_frames = 1;
  fault::FaultInjector injector;
  injector.arm(fault::Site::kModelLoad, 1.0);  // every load fails
  ModelCache cache(3, config);
  cache.set_fault_injector(&injector);
  cache.set_pinned_fallback(0);

  std::vector<std::size_t> cooldowns;
  for (int offence = 0; offence < 9; ++offence) {
    const auto admission = cache.admit({1, 0});
    ASSERT_EQ(admission.quarantined, 1u) << "offence " << offence;
    std::size_t waited = 0;
    while (cache.is_quarantined(1)) {
      (void)cache.admit({0});
      ++waited;
      ASSERT_LE(waited, 200u);
    }
    cooldowns.push_back(waited);
  }
  const std::vector<std::size_t> expected = {1, 2, 4, 8, 16, 32, 64, 64, 64};
  EXPECT_EQ(cooldowns, expected);
}

/// --- byte budget (DESIGN.md §11) ---

CacheConfig budget_config(std::size_t capacity, std::uint64_t budget) {
  CacheConfig config = make_config(capacity, EvictionPolicy::kLfu);
  config.memory_budget_bytes = budget;
  return config;
}

TEST(ModelCacheBudget, EvictsBytesToFitNotOneSlot) {
  // Three 30-byte residents; loading a 90-byte model under a 100-byte
  // budget must displace all three, not just the one slot-eviction.
  ModelCache cache(4, budget_config(5, 100));
  const std::vector<std::uint64_t> bytes = {30, 30, 30, 90};
  cache.set_model_bytes(bytes);
  (void)cache.admit({0, 1, 2, 3});
  (void)cache.admit({1, 0, 2, 3});
  (void)cache.admit({2, 0, 1, 3});
  EXPECT_EQ(cache.resident_bytes(), 90u);
  const auto admission = cache.admit({3, 2, 1, 0});
  EXPECT_EQ(admission.loaded, 3u);
  EXPECT_EQ(admission.evicted_count, 3u);
  EXPECT_EQ(cache.resident_models(), std::vector<std::size_t>{3});
  EXPECT_EQ(cache.resident_bytes(), 90u);
  EXPECT_GE(cache.budget_evictions(), 3u);
}

TEST(ModelCacheBudget, OversizedLoadRefusedServesBestResident) {
  ModelCache cache(4, budget_config(5, 100));
  const std::vector<std::uint64_t> bytes = {40, 40, 40, 150};
  cache.set_model_bytes(bytes);
  (void)cache.admit({0, 1, 2, 3});
  // Model 3 exceeds the whole budget: the load is refused outright (no
  // retry, no quarantine — the model is healthy, the budget is not) and
  // the best resident serves.
  const auto admission = cache.admit({3, 0, 1, 2});
  EXPECT_TRUE(admission.load_refused_oversized);
  EXPECT_FALSE(admission.loaded.has_value());
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_FALSE(cache.contains(3));
  EXPECT_FALSE(cache.is_quarantined(3));
  EXPECT_EQ(cache.oversized_rejections(), 1u);
  EXPECT_EQ(cache.load_failures(), 0u);
  EXPECT_EQ(cache.abandoned_loads(), 0u);
}

TEST(ModelCacheBudget, OversizedColdStartDegradesToPinned) {
  ModelCache cache(3, budget_config(3, 100));
  const std::vector<std::uint64_t> bytes = {40, 40, 150};
  cache.set_model_bytes(bytes);
  cache.set_pinned_fallback(0);
  const auto admission = cache.admit({2});
  EXPECT_TRUE(admission.load_refused_oversized);
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_FALSE(cache.contains(2));
}

TEST(ModelCacheBudget, ZeroBudgetDisablesByteAccounting) {
  // budget 0 = today's behavior: sizes are tracked but never constrain.
  ModelCache cache(4, make_config(3, EvictionPolicy::kLfu));
  const std::vector<std::uint64_t> bytes = {1000, 1000, 1000, 1000};
  cache.set_model_bytes(bytes);
  (void)cache.admit({0, 1, 2, 3});
  (void)cache.admit({1, 0, 2, 3});
  (void)cache.admit({2, 0, 1, 3});
  EXPECT_EQ(cache.resident_models().size(), 3u);
  EXPECT_EQ(cache.resident_bytes(), 3000u);
  EXPECT_EQ(cache.effective_budget_bytes(), 0u);
  EXPECT_EQ(cache.budget_evictions(), 0u);
  EXPECT_EQ(cache.oversized_rejections(), 0u);
}

TEST(ModelCacheBudget, SetModelBytesValidatesCount) {
  ModelCache cache(3, budget_config(3, 100));
  const std::vector<std::uint64_t> wrong = {10, 10};
  EXPECT_THROW(cache.set_model_bytes(wrong), std::invalid_argument);
}

TEST(ModelCacheBudget, ShrinkingBudgetEvictsImmediately) {
  ModelCache cache(3, budget_config(3, 120));
  const std::vector<std::uint64_t> bytes = {50, 50, 50};
  cache.set_model_bytes(bytes);
  const std::vector<std::size_t> models = {0, 1};
  cache.preload(models);
  EXPECT_EQ(cache.resident_bytes(), 100u);
  cache.set_memory_budget_bytes(60);
  EXPECT_EQ(cache.resident_models().size(), 1u);
  EXPECT_LE(cache.resident_bytes(), 60u);
  EXPECT_GE(cache.budget_evictions(), 1u);
}

TEST(ModelCacheBudget, PreloadRespectsBudget) {
  ModelCache cache(3, budget_config(3, 100));
  const std::vector<std::uint64_t> bytes = {40, 40, 150};
  cache.set_model_bytes(bytes);
  const std::vector<std::size_t> models = {2, 0, 1};
  cache.preload(models);
  // The oversized model is skipped; the rest fill up to the budget.
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_TRUE(cache.contains(1));
  EXPECT_LE(cache.resident_bytes(), 100u);
}

TEST(ModelCacheBudget, MemoryPressureShrinksBudgetForAWindow) {
  CacheConfig config = budget_config(3, 120);
  config.pressure_window = 4;
  ModelCache cache(3, config);
  const std::vector<std::uint64_t> bytes = {50, 50, 50};
  cache.set_model_bytes(bytes);
  const std::vector<std::size_t> models = {0, 1};
  cache.preload(models);
  ASSERT_EQ(cache.resident_bytes(), 100u);

  fault::FaultInjector injector;
  injector.arm(fault::Site::kMemoryPressure, 1.0, /*magnitude=*/2.0);
  cache.set_fault_injector(&injector);
  // The next admission fires the pressure fault: budget halves to 60 and
  // residents are evicted down to it immediately.
  (void)cache.admit({0, 1, 2});
  EXPECT_TRUE(cache.under_pressure());
  EXPECT_EQ(cache.effective_budget_bytes(), 60u);
  EXPECT_LE(cache.resident_bytes(), 60u);
  EXPECT_EQ(cache.pressure_events(), 1u);

  // Disarm and wait out the window: the full budget returns.
  injector.disarm(fault::Site::kMemoryPressure);
  for (int i = 0; i < 4; ++i) (void)cache.admit({0, 1, 2});
  EXPECT_FALSE(cache.under_pressure());
  EXPECT_EQ(cache.effective_budget_bytes(), 120u);
}

TEST(ModelCacheBudget, PinnedFallbackLoadIsExemptFromOversizedRefusal) {
  // The premodel is the last line of defence: even when it exceeds the
  // budget it loads (draining the cache first) rather than leaving the
  // frame unserved.
  ModelCache cache(3, budget_config(3, 100));
  const std::vector<std::uint64_t> bytes = {150, 40, 40};
  cache.set_model_bytes(bytes);
  cache.set_pinned_fallback(0);
  const auto admission = cache.admit({});
  EXPECT_TRUE(admission.served_pinned);
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_TRUE(cache.contains(0));
}

TEST(ModelCacheBudget, SuppressedSwapServesResidentWithoutLoading) {
  ModelCache cache(4, make_config(2, EvictionPolicy::kLfu));
  (void)cache.admit({0, 1, 2, 3});
  const AdmitOptions no_swap{.allow_load = false};
  const auto admission = cache.admit({3, 0, 1, 2}, no_swap);
  EXPECT_TRUE(admission.swap_suppressed);
  EXPECT_FALSE(admission.loaded.has_value());
  EXPECT_EQ(admission.served_model, 0u);
  EXPECT_FALSE(cache.contains(3));
  EXPECT_EQ(cache.misses(), 2u);  // still a miss, just not a load
  // A cold miss ignores the suppression: something must serve.
  ModelCache cold(4, make_config(2, EvictionPolicy::kLfu));
  const auto forced = cold.admit({3, 0, 1, 2}, no_swap);
  EXPECT_FALSE(forced.swap_suppressed);
  EXPECT_EQ(forced.loaded, 3u);
  EXPECT_EQ(forced.served_model, 3u);
}

}  // namespace
}  // namespace anole::core
