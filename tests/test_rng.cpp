#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace anole {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesRate) {
  Rng rng(9);
  for (double lambda : {0.5, 3.0, 12.0, 40.0}) {
    double sum = 0.0;
    const int n = 8000;
    for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, std::max(0.1, lambda * 0.06))
        << "lambda=" << lambda;
  }
}

TEST(Rng, PoissonZeroRate) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(17);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, RandomPermutationIsPermutation) {
  Rng rng(29);
  const auto perm = random_permutation(50, rng);
  std::set<std::size_t> unique(perm.begin(), perm.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

/// Beta moments across a grid of (alpha, beta) parameters.
class BetaMomentsTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(BetaMomentsTest, MeanMatchesClosedForm) {
  const auto [alpha, beta] = GetParam();
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.beta(alpha, beta);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, alpha / (alpha + beta), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BetaMomentsTest,
    ::testing::Values(std::make_pair(1.0, 1.0), std::make_pair(2.0, 5.0),
                      std::make_pair(5.0, 2.0), std::make_pair(0.5, 0.5),
                      std::make_pair(10.0, 10.0), std::make_pair(1.0, 9.0)));

/// Gamma mean equals shape for unit scale.
class GammaMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMomentsTest, MeanMatchesShape) {
  const double shape = GetParam();
  Rng rng(41);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(shape);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, shape, shape * 0.05 + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Grid, GammaMomentsTest,
                         ::testing::Values(0.3, 0.9, 1.0, 2.5, 7.0));

}  // namespace
}  // namespace anole
