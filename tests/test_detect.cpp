#include "detect/detector_trainer.hpp"

#include <gtest/gtest.h>

#include "world/world.hpp"

namespace anole::detect {
namespace {

TEST(Iou, IdenticalBoxesGiveOne) {
  EXPECT_NEAR(iou(0.5, 0.5, 0.2, 0.2, 0.5, 0.5, 0.2, 0.2), 1.0, 1e-9);
}

TEST(Iou, DisjointBoxesGiveZero) {
  EXPECT_DOUBLE_EQ(iou(0.2, 0.2, 0.1, 0.1, 0.8, 0.8, 0.1, 0.1), 0.0);
}

TEST(Iou, HalfOverlap) {
  // Two unit-width boxes offset by half a width: intersection 0.5, union 1.5.
  EXPECT_NEAR(iou(0.0, 0.0, 1.0, 1.0, 0.5, 0.0, 1.0, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(Iou, ZeroAreaIsZero) {
  EXPECT_DOUBLE_EQ(iou(0.5, 0.5, 0.0, 0.0, 0.5, 0.5, 0.0, 0.0), 0.0);
}

TEST(Nms, SuppressesOverlaps) {
  std::vector<Detection> dets = {
      {0.5, 0.5, 0.2, 0.2, 0.9},
      {0.51, 0.5, 0.2, 0.2, 0.8},  // heavy overlap with first
      {0.1, 0.1, 0.1, 0.1, 0.7},
  };
  const auto kept = non_maximum_suppression(dets, 0.3);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].confidence, 0.9);
  EXPECT_DOUBLE_EQ(kept[1].confidence, 0.7);
}

TEST(Nms, CenterDistanceSuppression) {
  std::vector<Detection> dets = {
      {0.50, 0.50, 0.05, 0.30, 0.9},
      {0.50, 0.56, 0.30, 0.05, 0.8},  // low IoU but nearly same center
  };
  EXPECT_EQ(non_maximum_suppression(dets, 0.3, 0.0).size(), 2u);
  EXPECT_EQ(non_maximum_suppression(dets, 0.3, 0.10).size(), 1u);
}

TEST(Nms, KeepsConfidenceOrder) {
  std::vector<Detection> dets = {
      {0.1, 0.1, 0.05, 0.05, 0.2},
      {0.9, 0.9, 0.05, 0.05, 0.95},
  };
  const auto kept = non_maximum_suppression(dets, 0.3);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_DOUBLE_EQ(kept[0].confidence, 0.95);
}

TEST(MatchCounts, PrecisionRecallF1) {
  MatchCounts counts;
  counts.true_positives = 6;
  counts.false_positives = 2;
  counts.false_negatives = 4;
  EXPECT_DOUBLE_EQ(counts.precision(), 0.75);
  EXPECT_DOUBLE_EQ(counts.recall(), 0.6);
  EXPECT_NEAR(counts.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
}

TEST(MatchCounts, EmptyIsZero) {
  MatchCounts counts;
  EXPECT_DOUBLE_EQ(counts.precision(), 0.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 0.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 0.0);
}

TEST(MatchCounts, Accumulate) {
  MatchCounts a;
  a.true_positives = 1;
  MatchCounts b;
  b.false_negatives = 2;
  a += b;
  EXPECT_EQ(a.true_positives, 1u);
  EXPECT_EQ(a.false_negatives, 2u);
}

TEST(Matching, PerfectDetection) {
  const std::vector<world::ObjectInstance> truth = {{0.5, 0.5, 0.2, 0.2, 1.0}};
  const std::vector<Detection> dets = {{0.5, 0.5, 0.2, 0.2, 0.9}};
  const auto counts = match_detections(dets, truth, 0.5);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 0u);
  EXPECT_EQ(counts.false_negatives, 0u);
}

TEST(Matching, GreedyPrefersConfident) {
  const std::vector<world::ObjectInstance> truth = {{0.5, 0.5, 0.2, 0.2, 1.0}};
  // Both detections overlap the single truth; only one may match.
  const std::vector<Detection> dets = {{0.5, 0.5, 0.2, 0.2, 0.6},
                                       {0.52, 0.5, 0.2, 0.2, 0.9}};
  const auto counts = match_detections(dets, truth, 0.3);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 1u);
}

TEST(Matching, MissedObjectsAreFalseNegatives) {
  const std::vector<world::ObjectInstance> truth = {
      {0.2, 0.2, 0.1, 0.1, 1.0}, {0.8, 0.8, 0.1, 0.1, 1.0}};
  const auto counts = match_detections({}, truth);
  EXPECT_EQ(counts.false_negatives, 2u);
}

TEST(GridDetector, PresetCapacityOrdering) {
  Rng rng(1);
  GridDetector tiny(GridDetectorConfig::compressed(), rng);
  GridDetector deep(GridDetectorConfig::large(), rng);
  EXPECT_GT(deep.flops_per_frame(), 8 * tiny.flops_per_frame());
  EXPECT_LT(deep.flops_per_frame(), 30 * tiny.flops_per_frame());
  EXPECT_GT(deep.weight_bytes(), tiny.weight_bytes());
}

TEST(GridDetector, BuildInputsShape) {
  Rng rng(2);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  const auto frame = generator.render(style, attrs, {}, rng);
  const Tensor inputs = GridDetector::build_inputs(frame);
  EXPECT_EQ(inputs.rows(), frame.cell_count());
  EXPECT_EQ(inputs.cols(), GridDetector::input_features());
}

TEST(GridDetector, TargetsMarkCenterCell) {
  Rng rng(3);
  world::FrameGenerator generator(10);
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  world::ObjectInstance obj;
  obj.cx = 0.55;
  obj.cy = 0.35;
  obj.w = 0.1;
  obj.h = 0.12;
  const auto frame = generator.render(style, attrs, {obj}, rng);
  const auto targets = GridDetector::build_targets(frame);
  // Center cell (x=5, y=3) on a 10-grid.
  const std::size_t cell = 3 * 10 + 5;
  EXPECT_EQ(targets.objectness.at(cell, 0), 1.0f);
  EXPECT_NEAR(targets.boxes.at(cell, 0), 0.5f, 1e-5f);  // dx within cell
  EXPECT_NEAR(targets.boxes.at(cell, 2), 0.1f, 1e-5f);  // width
  EXPECT_EQ(targets.box_mask.at(cell, 3), 1.0f);
  // All other cells negative.
  float total = targets.objectness.sum();
  EXPECT_EQ(total, 1.0f);
}

TEST(GridDetector, ConfidenceThresholdControlsOutput) {
  Rng rng(4);
  GridDetectorConfig config = GridDetectorConfig::compressed();
  config.confidence_threshold = 1.1;  // impossible
  GridDetector detector(config, rng);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto frame =
      generator.render(world::SceneStyle::from_attributes(attrs), attrs, {},
                       rng);
  EXPECT_TRUE(detector.detect(frame).empty());
}

TEST(DetectorTrainConfig, EffectiveEpochsScaling) {
  DetectorTrainConfig config;
  config.epochs = 10;
  config.reference_frames = 0;
  EXPECT_EQ(config.effective_epochs(50), 10u);
  config.reference_frames = 1000;
  EXPECT_EQ(config.effective_epochs(1000), 10u);
  EXPECT_EQ(config.effective_epochs(500), 20u);
  EXPECT_EQ(config.effective_epochs(10), 60u);  // capped at 6x
  EXPECT_EQ(config.effective_epochs(0), 10u);
}

TEST(DetectorTraining, LearnsASingleScene) {
  Rng rng(5);
  world::ClipGenerator generator;
  world::ClipSpec spec;
  spec.attributes = {world::Weather::kClear, world::Location::kUrban,
                     world::TimeOfDay::kDaytime};
  spec.length = 120;
  const auto clip = generator.generate(spec, rng);
  std::vector<const world::Frame*> train;
  std::vector<const world::Frame*> test;
  for (std::size_t i = 0; i < 100; ++i) train.push_back(&clip.frames[i]);
  for (std::size_t i = 100; i < 120; ++i) test.push_back(&clip.frames[i]);

  GridDetector detector(GridDetectorConfig::compressed(), rng);
  const double before = evaluate_f1(detector, test);
  DetectorTrainConfig config;
  config.epochs = 16;
  const auto result = train_detector(detector, train, config, rng);
  const double after = evaluate_f1(detector, test);
  EXPECT_EQ(result.frames_seen, 100u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.35);
}

TEST(DetectorTraining, EmptyFrameListIsNoop) {
  Rng rng(6);
  GridDetector detector(GridDetectorConfig::compressed(), rng);
  DetectorTrainConfig config;
  const auto result = train_detector(detector, {}, config, rng);
  EXPECT_EQ(result.frames_seen, 0u);
  EXPECT_TRUE(result.epoch_losses.empty());
}

}  // namespace
}  // namespace anole::detect
