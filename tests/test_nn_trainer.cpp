#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace anole::nn {
namespace {

/// Two well-separated Gaussian blobs per class.
void make_blobs(std::size_t per_class, std::size_t classes, Tensor& inputs,
                std::vector<std::size_t>& labels, Rng& rng) {
  inputs = Tensor::matrix(per_class * classes, 2);
  labels.clear();
  for (std::size_t c = 0; c < classes; ++c) {
    const double cx = 4.0 * static_cast<double>(c);
    for (std::size_t i = 0; i < per_class; ++i) {
      const std::size_t row = c * per_class + i;
      inputs.at(row, 0) = static_cast<float>(rng.normal(cx, 0.5));
      inputs.at(row, 1) = static_cast<float>(rng.normal(-cx, 0.5));
      labels.push_back(c);
    }
  }
}

TEST(Trainer, LearnsSeparableBlobs) {
  Rng rng(21);
  Tensor inputs;
  std::vector<std::size_t> labels;
  make_blobs(40, 3, inputs, labels, rng);
  auto net = make_mlp({2, 16, 3}, rng);
  TrainConfig config;
  config.epochs = 30;
  config.learning_rate = 5e-3;
  const auto result = train_classifier(*net, inputs, labels, config, rng);
  EXPECT_GT(result.final_train_accuracy, 0.95);
  EXPECT_EQ(result.epochs_run, 30u);
  // Losses trend down.
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(Trainer, EarlyStoppingHonorsPatience) {
  Rng rng(22);
  Tensor inputs;
  std::vector<std::size_t> labels;
  make_blobs(40, 2, inputs, labels, rng);
  Tensor val_inputs;
  std::vector<std::size_t> val_labels;
  make_blobs(10, 2, val_inputs, val_labels, rng);
  auto net = make_mlp({2, 16, 2}, rng);
  TrainConfig config;
  config.epochs = 200;
  config.patience = 3;
  config.learning_rate = 5e-3;
  const auto result = train_classifier(*net, inputs, labels, config, rng,
                                       val_inputs, val_labels);
  // Separable blobs saturate quickly; patience must kick in well before 200.
  EXPECT_LT(result.epochs_run, 50u);
  EXPECT_GT(result.best_validation_accuracy, 0.8);
}

TEST(Trainer, RejectsMismatchedLabels) {
  Rng rng(23);
  auto net = make_mlp({2, 4, 2}, rng);
  const Tensor inputs = Tensor::matrix(3, 2);
  const std::vector<std::size_t> labels = {0, 1};
  TrainConfig config;
  EXPECT_THROW((void)train_classifier(*net, inputs, labels, config, rng),
               std::invalid_argument);
}

TEST(Trainer, RejectsEmptyTrainingSet) {
  Rng rng(24);
  auto net = make_mlp({2, 4, 2}, rng);
  const Tensor inputs = Tensor::matrix(0, 2);
  TrainConfig config;
  EXPECT_THROW((void)train_classifier(*net, inputs, {}, config, rng),
               std::invalid_argument);
}

TEST(Trainer, SoftTargetsLearnMixtures) {
  Rng rng(25);
  Tensor inputs;
  std::vector<std::size_t> labels;
  make_blobs(50, 2, inputs, labels, rng);
  Tensor targets = Tensor::matrix(inputs.rows(), 2);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Soft label biased 80/20 toward the true class.
    targets.at(i, labels[i]) = 0.8f;
    targets.at(i, 1 - labels[i]) = 0.2f;
  }
  auto net = make_mlp({2, 16, 2}, rng);
  TrainConfig config;
  config.epochs = 40;
  config.learning_rate = 5e-3;
  const auto result = train_soft_classifier(*net, inputs, targets, config,
                                            rng);
  EXPECT_GT(result.final_train_accuracy, 0.95);
  // With 0.8/0.2 targets the optimal CE is the target entropy, not 0.
  EXPECT_GT(result.epoch_losses.back(), 0.3);
}

TEST(GatherRows, SelectsRows) {
  const Tensor m(Shape{3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> idx = {2, 0};
  const Tensor g = gather_rows(m, idx);
  EXPECT_EQ(g.rows(), 2u);
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
}

}  // namespace
}  // namespace anole::nn
