#include "sampling/thompson.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace anole::sampling {
namespace {

TEST(RequiredSamples, MatchesClosedForm) {
  // N = 100, theta = 0.9:
  // log(1 - 0.9^(1/100)) / log(1 - 1/100).
  const double n = 100.0;
  const double expected =
      std::log(1.0 - std::pow(0.9, 1.0 / n)) / std::log(1.0 - 1.0 / n);
  EXPECT_NEAR(required_samples(100, 0.9), expected, 1e-9);
}

TEST(RequiredSamples, GrowsWithSetSize) {
  EXPECT_LT(required_samples(10, 0.9), required_samples(100, 0.9));
  EXPECT_LT(required_samples(100, 0.9), required_samples(1000, 0.9));
}

TEST(RequiredSamples, GrowsWithConfidence) {
  EXPECT_LT(required_samples(100, 0.5), required_samples(100, 0.99));
}

TEST(RequiredSamples, TrivialSet) {
  EXPECT_DOUBLE_EQ(required_samples(1, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(required_samples(0, 0.9), 1.0);
}

TEST(RequiredSamples, RejectsBadTheta) {
  EXPECT_THROW((void)required_samples(10, 0.0), std::invalid_argument);
  EXPECT_THROW((void)required_samples(10, 1.0), std::invalid_argument);
}

TEST(AdaptiveSampler, RejectsEmpty) {
  EXPECT_THROW(AdaptiveSceneSampler({}), std::invalid_argument);
}

TEST(AdaptiveSampler, RecordDrawBoundsChecked) {
  AdaptiveSceneSampler sampler({10, 10});
  EXPECT_THROW(sampler.record_draw(2), std::out_of_range);
}

TEST(AdaptiveSampler, DrawCountsTrackRecords) {
  AdaptiveSceneSampler sampler({50, 50, 50});
  sampler.record_draw(1);
  sampler.record_draw(1);
  sampler.record_draw(2);
  const auto counts = sampler.draw_counts();
  EXPECT_EQ(counts[0], 0.0);
  EXPECT_EQ(counts[1], 2.0);
  EXPECT_EQ(counts[2], 1.0);
}

TEST(AdaptiveSampler, WellSampledStopsArm) {
  // Tiny set: required_samples(2, 0.5) is small.
  AdaptiveSceneSampler sampler({2, 1000}, 0.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) sampler.record_draw(0);
  EXPECT_TRUE(sampler.well_sampled(0));
  EXPECT_FALSE(sampler.well_sampled(1));
  // next_arm never returns a well-sampled arm.
  for (int i = 0; i < 50; ++i) {
    const auto arm = sampler.next_arm(rng);
    ASSERT_TRUE(arm.has_value());
    EXPECT_EQ(*arm, 1u);
  }
}

TEST(AdaptiveSampler, AllWellSampledReturnsNullopt) {
  AdaptiveSceneSampler sampler({2}, 0.5);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) sampler.record_draw(0);
  EXPECT_TRUE(sampler.all_well_sampled());
  EXPECT_FALSE(sampler.next_arm(rng).has_value());
}

TEST(AdaptiveSampler, BalancesSkewedArms) {
  // Heavily skewed training-set sizes (as in the paper's Fig. 3 setting).
  std::vector<std::size_t> sizes = {2000, 100, 100, 100, 100, 100,
                                    100,  100, 100, 100, 100, 100,
                                    100,  100, 100, 100};
  AdaptiveSceneSampler adaptive(sizes, 0.9);
  RandomSceneSampler random(sizes);
  Rng rng(3);
  const std::size_t budget = 1600;
  for (std::size_t i = 0; i < budget; ++i) {
    const auto arm = adaptive.next_arm(rng);
    ASSERT_TRUE(arm.has_value());
    adaptive.record_draw(*arm);
    random.record_draw(random.next_arm(rng));
  }
  const double cv_adaptive = coefficient_of_variation(adaptive.draw_counts());
  const double cv_random = coefficient_of_variation(random.draw_counts());
  // Adaptive sampling must be far more balanced.
  EXPECT_LT(cv_adaptive, 0.2);
  EXPECT_GT(cv_random, 1.0);
  EXPECT_LT(cv_adaptive, cv_random / 3.0);
}

TEST(AdaptiveSampler, EveryArmGetsSamples) {
  std::vector<std::size_t> sizes(19, 500);
  sizes[0] = 5000;
  AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(4);
  for (int i = 0; i < 1200; ++i) {
    const auto arm = sampler.next_arm(rng);
    ASSERT_TRUE(arm.has_value());
    sampler.record_draw(*arm);
  }
  for (double count : sampler.draw_counts()) EXPECT_GT(count, 20.0);
}

TEST(RandomSampler, FollowsSetSizes) {
  RandomSceneSampler sampler({900, 100});
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) sampler.record_draw(sampler.next_arm(rng));
  const auto counts = sampler.draw_counts();
  EXPECT_NEAR(counts[0] / 5000.0, 0.9, 0.03);
}

TEST(RandomSampler, RejectsEmpty) {
  EXPECT_THROW(RandomSceneSampler({}), std::invalid_argument);
}

/// Balance property across seeds and arm counts.
class AdaptiveBalanceTest
    : public ::testing::TestWithParam<std::pair<int, std::size_t>> {};

TEST_P(AdaptiveBalanceTest, CoefficientOfVariationStaysLow) {
  const auto [seed, arms] = GetParam();
  std::vector<std::size_t> sizes(arms, 400);
  sizes[0] = 4000;  // one dominant training set
  AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(static_cast<std::uint64_t>(seed));
  for (std::size_t i = 0; i < arms * 60; ++i) {
    const auto arm = sampler.next_arm(rng);
    ASSERT_TRUE(arm.has_value());
    sampler.record_draw(*arm);
  }
  EXPECT_LT(coefficient_of_variation(sampler.draw_counts()), 0.25);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptiveBalanceTest,
    ::testing::Values(std::make_pair(1, std::size_t{8}),
                      std::make_pair(2, std::size_t{16}),
                      std::make_pair(3, std::size_t{19}),
                      std::make_pair(4, std::size_t{32})));

}  // namespace
}  // namespace anole::sampling
