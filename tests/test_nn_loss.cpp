#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace anole::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  const Tensor logits(Shape{2, 3}, std::vector<float>{1, 2, 3, -1, 0, 1});
  const Tensor probs = softmax_rows(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (float v : probs.row(r)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const Tensor logits(Shape{1, 2}, std::vector<float>{1000.0f, 998.0f});
  const Tensor probs = softmax_rows(logits);
  EXPECT_NEAR(probs[0], 1.0f / (1.0f + std::exp(-2.0f)), 1e-5f);
  EXPECT_FALSE(std::isnan(probs[0]));
}

TEST(CrossEntropy, UniformLogitsGiveLogC) {
  const Tensor logits = Tensor::matrix(4, 5);
  const std::vector<std::size_t> labels = {0, 1, 2, 3};
  Tensor grad;
  const float loss = softmax_cross_entropy(logits, labels, grad);
  EXPECT_NEAR(loss, std::log(5.0f), 1e-5f);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(3);
  Tensor logits = Tensor::matrix(3, 4);
  for (auto& v : logits.data()) v = static_cast<float>(rng.normal());
  const std::vector<std::size_t> labels = {1, 3, 0};
  Tensor grad;
  (void)softmax_cross_entropy(logits, labels, grad);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor up = logits;
    up[i] += epsilon;
    Tensor down = logits;
    down[i] -= epsilon;
    Tensor scratch;
    const float numeric = (softmax_cross_entropy(up, labels, scratch) -
                           softmax_cross_entropy(down, labels, scratch)) /
                          (2.0f * epsilon);
    EXPECT_NEAR(grad[i], numeric, 1e-3f);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  const Tensor logits = Tensor::matrix(1, 3);
  const std::vector<std::size_t> labels = {3};
  Tensor grad;
  EXPECT_THROW((void)softmax_cross_entropy(logits, labels, grad),
               std::invalid_argument);
}

TEST(SoftCrossEntropy, MatchesHardLabelsOnOneHot) {
  Rng rng(5);
  Tensor logits = Tensor::matrix(2, 3);
  for (auto& v : logits.data()) v = static_cast<float>(rng.normal());
  const std::vector<std::size_t> labels = {2, 0};
  Tensor one_hot = Tensor::matrix(2, 3);
  one_hot.at(0, 2) = 1.0f;
  one_hot.at(1, 0) = 1.0f;
  Tensor grad_hard;
  Tensor grad_soft;
  const float hard = softmax_cross_entropy(logits, labels, grad_hard);
  const float soft = softmax_cross_entropy_soft(logits, one_hot, grad_soft);
  EXPECT_NEAR(hard, soft, 1e-5f);
  EXPECT_TRUE(allclose(grad_hard, grad_soft, 1e-6f));
}

TEST(SoftCrossEntropy, GradientMatchesFiniteDifference) {
  Rng rng(7);
  Tensor logits = Tensor::matrix(2, 4);
  for (auto& v : logits.data()) v = static_cast<float>(rng.normal());
  Tensor targets(Shape{2, 4}, std::vector<float>{0.5f, 0.5f, 0.0f, 0.0f,
                                                 0.1f, 0.2f, 0.3f, 0.4f});
  Tensor grad;
  (void)softmax_cross_entropy_soft(logits, targets, grad);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor up = logits;
    up[i] += epsilon;
    Tensor down = logits;
    down[i] -= epsilon;
    Tensor scratch;
    const float numeric =
        (softmax_cross_entropy_soft(up, targets, scratch) -
         softmax_cross_entropy_soft(down, targets, scratch)) /
        (2.0f * epsilon);
    EXPECT_NEAR(grad[i], numeric, 1e-3f);
  }
}

TEST(BceWithLogits, KnownValue) {
  const Tensor logits(Shape{1, 1}, std::vector<float>{0.0f});
  const Tensor targets(Shape{1, 1}, std::vector<float>{1.0f});
  Tensor grad;
  const float loss = bce_with_logits(logits, targets, grad);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-5f);
  EXPECT_NEAR(grad[0], -0.5f, 1e-5f);
}

TEST(BceWithLogits, StableForExtremeLogits) {
  const Tensor logits(Shape{1, 2}, std::vector<float>{100.0f, -100.0f});
  const Tensor targets(Shape{1, 2}, std::vector<float>{1.0f, 0.0f});
  Tensor grad;
  const float loss = bce_with_logits(logits, targets, grad);
  EXPECT_NEAR(loss, 0.0f, 1e-5f);
  EXPECT_FALSE(std::isnan(loss));
}

TEST(BceWithLogits, PositiveWeightScalesPositives) {
  const Tensor logits(Shape{1, 2}, std::vector<float>{0.0f, 0.0f});
  const Tensor targets(Shape{1, 2}, std::vector<float>{1.0f, 0.0f});
  Tensor grad;
  (void)bce_with_logits(logits, targets, grad, 4.0f);
  EXPECT_NEAR(grad[0], 4.0f * (0.5f - 1.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(grad[1], (0.5f - 0.0f) / 2.0f, 1e-5f);
}

TEST(MseLoss, KnownValueAndGradient) {
  const Tensor pred(Shape{1, 2}, std::vector<float>{1.0f, 3.0f});
  const Tensor target(Shape{1, 2}, std::vector<float>{0.0f, 1.0f});
  Tensor grad;
  const float loss = mse_loss(pred, target, grad);
  EXPECT_NEAR(loss, (1.0f + 4.0f) / 2.0f, 1e-5f);
  EXPECT_NEAR(grad[0], 2.0f * 1.0f / 2.0f, 1e-5f);
  EXPECT_NEAR(grad[1], 2.0f * 2.0f / 2.0f, 1e-5f);
}

TEST(MseLoss, MaskGatesElements) {
  const Tensor pred(Shape{1, 2}, std::vector<float>{5.0f, 3.0f});
  const Tensor target = Tensor::matrix(1, 2);
  Tensor mask = Tensor::matrix(1, 2);
  mask.at(0, 1) = 1.0f;
  Tensor grad;
  const float loss = mse_loss(pred, target, grad, mask);
  EXPECT_NEAR(loss, 9.0f, 1e-5f);  // only the masked element counts
  EXPECT_EQ(grad[0], 0.0f);
  EXPECT_NEAR(grad[1], 6.0f, 1e-5f);
}

TEST(MseLoss, AllZeroMaskGivesZero) {
  const Tensor pred = Tensor::matrix(2, 2, 1.0f);
  const Tensor target = Tensor::matrix(2, 2);
  const Tensor mask = Tensor::matrix(2, 2);
  Tensor grad;
  EXPECT_EQ(mse_loss(pred, target, grad, mask), 0.0f);
}

TEST(Accuracy, CountsArgmaxMatches) {
  Tensor logits = Tensor::matrix(3, 2);
  logits.at(0, 1) = 1.0f;  // pred 1
  logits.at(1, 0) = 1.0f;  // pred 0
  logits.at(2, 1) = 1.0f;  // pred 1
  const std::vector<std::size_t> labels = {1, 0, 0};
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(ArgmaxRows, PicksLargest) {
  const Tensor m(Shape{2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  const auto idx = argmax_rows(m);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

}  // namespace
}  // namespace anole::nn
