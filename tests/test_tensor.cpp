#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace anole {
namespace {

Tensor random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Tensor t = Tensor::matrix(rows, cols);
  for (auto& v : t.data()) v = static_cast<float>(rng.normal());
  return t;
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t(Shape{4}, 2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_THROW(Tensor(Shape{2, 2}, FloatBuffer{1.0f}),
               std::invalid_argument);
}

TEST(Tensor, VectorFactory) {
  const Tensor v = Tensor::vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(v.rank(), 1u);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3.0f);
}

TEST(Tensor, RowsColsRequireRank2) {
  const Tensor v = Tensor::vector({1.0f});
  EXPECT_THROW((void)v.rows(), std::invalid_argument);
  const Tensor m = Tensor::matrix(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(Tensor, At2D) {
  Tensor m = Tensor::matrix(2, 3);
  m.at(1, 2) = 7.0f;
  EXPECT_EQ(m[5], 7.0f);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor m(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = m.reshaped(Shape{3, 2});
  EXPECT_EQ(r.rows(), 3u);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW((void)m.reshaped(Shape{5}), std::invalid_argument);
}

TEST(Tensor, ElementwiseOps) {
  Tensor a(Shape{3}, std::vector<float>{1, 2, 3});
  Tensor b(Shape{3}, std::vector<float>{4, 5, 6});
  const Tensor sum = a + b;
  EXPECT_EQ(sum[0], 5.0f);
  const Tensor diff = b - a;
  EXPECT_EQ(diff[2], 3.0f);
  const Tensor prod = a * b;
  EXPECT_EQ(prod[1], 10.0f);
  const Tensor scaled = a * 2.0f;
  EXPECT_EQ(scaled[2], 6.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  Tensor a(Shape{2}, std::vector<float>{1, 1});
  const Tensor b(Shape{2}, std::vector<float>{2, 4});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t(Shape{4}, std::vector<float>{1, -5, 3, 1});
  EXPECT_EQ(t.sum(), 0.0f);
  EXPECT_EQ(t.mean(), 0.0f);
  EXPECT_EQ(t.abs_max(), 5.0f);
  EXPECT_NEAR(t.l2_norm(), 6.0f, 1e-5f);
}

TEST(Tensor, MatmulKnownValues) {
  const Tensor a(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor b(Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(Tensor, MatmulShapeChecks) {
  const Tensor a = Tensor::matrix(2, 3);
  const Tensor b = Tensor::matrix(4, 2);
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

TEST(Tensor, TransposedMatmulsAgreeWithExplicitTranspose) {
  Rng rng(5);
  const Tensor a = random_matrix(4, 3, rng);
  const Tensor b = random_matrix(4, 5, rng);
  // A^T * B
  EXPECT_TRUE(allclose(matmul_transpose_a(a, b), matmul(transpose(a), b)));
  const Tensor c = random_matrix(6, 3, rng);
  const Tensor d = random_matrix(5, 3, rng);
  // C * D^T
  EXPECT_TRUE(allclose(matmul_transpose_b(c, d), matmul(c, transpose(d))));
}

TEST(Tensor, AddRowBroadcast) {
  Tensor m = Tensor::matrix(2, 3, 1.0f);
  const Tensor bias = Tensor::vector({1.0f, 2.0f, 3.0f});
  add_row_broadcast(m, bias);
  EXPECT_EQ(m.at(0, 0), 2.0f);
  EXPECT_EQ(m.at(1, 2), 4.0f);
}

TEST(Tensor, SumRows) {
  const Tensor m(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor s = sum_rows(m);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(s[1], 7.0f);
  EXPECT_EQ(s[2], 9.0f);
}

TEST(Tensor, TransposeInvolution) {
  Rng rng(9);
  const Tensor m = random_matrix(3, 7, rng);
  EXPECT_TRUE(allclose(transpose(transpose(m)), m));
}

TEST(Tensor, AllcloseDetectsDifference) {
  Tensor a = Tensor::matrix(2, 2, 1.0f);
  Tensor b = a;
  EXPECT_TRUE(allclose(a, b));
  b[3] += 1.0f;
  EXPECT_FALSE(allclose(a, b));
  EXPECT_FALSE(allclose(a, Tensor::matrix(2, 3, 1.0f)));
}

TEST(Tensor, RowSpanAccess) {
  Tensor m(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  auto row = m.row(1);
  EXPECT_EQ(row[0], 3.0f);
  row[1] = 9.0f;
  EXPECT_EQ(m.at(1, 1), 9.0f);
  EXPECT_THROW((void)m.row(2), std::invalid_argument);
}

TEST(Tensor, ShapeToString) {
  EXPECT_EQ(shape_to_string(Shape{2, 3}), "[2, 3]");
  EXPECT_EQ(shape_to_string(Shape{}), "[]");
}

/// Matmul associativity-style property: (A*B)*C == A*(B*C).
class MatmulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulPropertyTest, Associativity) {
  Rng rng(GetParam());
  const Tensor a = random_matrix(3, 4, rng);
  const Tensor b = random_matrix(4, 2, rng);
  const Tensor c = random_matrix(2, 5, rng);
  EXPECT_TRUE(
      allclose(matmul(matmul(a, b), c), matmul(a, matmul(b, c)), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatmulPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace anole
