// Table II: details of deployed models — role, FLOPs, serialized weights.
// The paper reports YOLOv3-tiny 5.56 BFLOPs / 34 MB, ResNet18 4.69 BFLOPs /
// 44 MB, MLP 3.6 MFLOPs / 935 KB, YOLOv3 65.86 BFLOPs / 237 MB; the shape
// to reproduce is the ~12x FLOPs gap between the deep and compressed
// detectors and the negligible decision-model cost.
#include "bench/common.hpp"
#include "device/profile.hpp"
#include "nn/serialize.hpp"

int main() {
  using namespace anole;
  bench::print_banner("Table II", "details of deployed models");

  Rng rng(3);
  detect::GridDetector tiny(detect::GridDetectorConfig::compressed(), rng);
  detect::GridDetector deep(detect::GridDetectorConfig::large(), rng);
  core::SceneEncoderConfig encoder_config;
  core::SceneEncoder encoder(/*class_count=*/24, encoder_config, rng);
  core::DecisionModelConfig decision_config;
  core::DecisionModel decision(encoder, /*model_count=*/19, decision_config,
                               rng);

  const device::MemoryModel memory(tiny.weight_bytes());
  auto paper_mb = [&](std::uint64_t bytes) {
    return format_double(memory.load_mb(bytes), 1) + " MB(eq)";
  };

  TablePrinter table({"Model", "Role", "FLOPs/frame", "Weights",
                      "Paper-equivalent"});
  table.add_row({"GridDetector-compressed", "Compressed model",
                 std::to_string(tiny.flops_per_frame()),
                 std::to_string(tiny.weight_bytes()) + " B",
                 paper_mb(tiny.weight_bytes())});
  table.add_row({"SceneEncoder (trunk+head)", "M_scene",
                 std::to_string(encoder.flops_per_sample()),
                 std::to_string(nn::serialized_size_bytes(encoder)) + " B",
                 paper_mb(nn::serialized_size_bytes(encoder))});
  table.add_row({"DecisionModel head", "M_decision",
                 std::to_string(decision.flops_per_sample()),
                 std::to_string(decision.head_weight_bytes()) + " B",
                 paper_mb(decision.head_weight_bytes())});
  table.add_row({"GridDetector-large", "Deep model",
                 std::to_string(deep.flops_per_frame()),
                 std::to_string(deep.weight_bytes()) + " B",
                 paper_mb(deep.weight_bytes())});
  std::printf("%s", table.to_string().c_str());

  const double ratio = static_cast<double>(deep.flops_per_frame()) /
                       static_cast<double>(tiny.flops_per_frame());
  std::printf("\ndeep/compressed FLOPs ratio: %.1fx (paper: 65.86/5.56 = 11.8x)\n",
              ratio);
  std::printf("decision/compressed FLOPs ratio: %.3f (paper: M_decision is "
              "negligible next to detection)\n",
              static_cast<double>(decision.flops_per_sample()) /
                  static_cast<double>(tiny.flops_per_frame()));
  return 0;
}
