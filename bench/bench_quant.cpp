// Quantized fast-path acceptance bench: fp32 vs int8 on the standard
// benchmark world, written to BENCH_quant.json.
//
// Trains the standard Anole stack, measures the fp32 arm (per-frame
// decision+detector inference latency, end-to-end engine F1 over the test
// split, artifact v2 bytes and model-section bytes, simulated cache-miss
// load time on TX2 NX), quantizes the system in place through the
// repository's accuracy guard, and repeats the measurements on the int8
// arm with artifact v3. The headline ratios the fast path must hold:
// per-frame inference speedup >= 2x at equal thread count, model sections
// >= 3.5x smaller, F1 within 0.01 of fp32 — plus bitwise-identical
// quantized detections at 1 vs 4 pool threads. The exit code reflects the
// determinism check only (the timing ratios are reported, not gated, so a
// noisy host cannot fail the suite spuriously).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/artifact.hpp"
#include "core/quantize.hpp"
#include "device/session.hpp"
#include "nn/quantize.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"

namespace {

using namespace anole;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Sum of kSectionModel payload bytes in a serialized artifact (blob
/// header 20 bytes, section header 16 bytes: u32 tag, u64 size, u32 CRC).
std::uint64_t model_section_bytes(const std::string& blob) {
  constexpr std::size_t kBlobHeaderBytes = 20;
  constexpr std::size_t kSectionHeaderBytes = 16;
  constexpr std::uint32_t kModelSectionTag = 4;
  std::uint64_t total = 0;
  std::size_t offset = kBlobHeaderBytes;
  while (offset + kSectionHeaderBytes <= blob.size()) {
    std::uint32_t tag = 0;
    std::uint64_t size = 0;
    std::memcpy(&tag, blob.data() + offset, sizeof(tag));
    std::memcpy(&size, blob.data() + offset + 4, sizeof(size));
    if (tag == kModelSectionTag) total += size;
    offset += kSectionHeaderBytes + static_cast<std::size_t>(size);
  }
  return total;
}

/// One precision arm's numbers. The timed unit is the per-frame serving
/// path the quantization touches — M_decision suitability plus the served
/// detector's forward — with featurization hoisted out (it is fp32 in
/// both arms and identical).
struct PrecisionSample {
  double frame_us = 0.0;
  double f1 = 0.0;
  std::uint64_t artifact_bytes = 0;
  std::uint64_t model_bytes = 0;
  double mean_miss_load_ms = 0.0;
  std::size_t miss_frames = 0;
  std::size_t quantized_loads = 0;
  std::size_t quantized_frames = 0;
};

PrecisionSample measure_arm(core::AnoleSystem& system,
                            const std::vector<const world::Frame*>& frames,
                            std::uint32_t artifact_version,
                            const device::MemoryModel& memory,
                            const device::DeviceProfile& profile) {
  PrecisionSample sample;

  // Engine pass: F1 over the test split, the served model per frame, and
  // the DeviceSession replay that prices every cache miss.
  core::AnoleEngine engine(system, bench::standard_cache_config());
  device::DeviceSession session(profile);
  std::vector<std::size_t> served;
  served.reserve(frames.size());
  double load_ms_sum = 0.0;
  std::vector<std::vector<detect::Detection>> detections;
  detections.reserve(frames.size());
  for (const world::Frame* frame : frames) {
    const core::EngineResult result = engine.process(*frame);
    served.push_back(result.served_model);
    detections.push_back(result.detections);
    device::FrameCost cost;
    cost.decision_flops = system.decision->flops_per_sample();
    cost.detector_flops =
        system.repository.detector(result.served_model).flops_per_frame();
    if (result.model_loaded) {
      cost.loaded_weight_mb = memory.load_mb(
          system.repository.detector(result.served_model).weight_bytes());
      cost.quantized = engine.model_quantized(result.served_model);
      load_ms_sum += cost.loaded_weight_mb * profile.load_ms_per_mb;
      ++sample.miss_frames;
    }
    session.process(cost);
  }
  sample.quantized_frames = engine.quantized_frames();
  sample.quantized_loads = session.quantized_loads();
  if (sample.miss_frames > 0) {
    sample.mean_miss_load_ms =
        load_ms_sum / static_cast<double>(sample.miss_frames);
  }
  // overall_f1 walks `frames` in order, so replay the recorded detections.
  std::size_t next = 0;
  sample.f1 = eval::overall_f1(
      [&](const world::Frame&) { return detections[next++]; }, frames);

  // Timed inference loop: featurize outside the timer, then decision
  // suitability + the recorded served detector per frame (best of reps).
  const world::FrameFeaturizer featurizer;
  std::vector<Tensor> descriptors;
  descriptors.reserve(frames.size());
  for (const world::Frame* frame : frames) {
    descriptors.push_back(featurizer.featurize(*frame));
  }
  double best = 1e30;
  volatile double sink = 0.0;  // keeps the timed loop observable
  for (int rep = 0; rep < 5; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      const Tensor probs = system.decision->suitability(descriptors[i]);
      const auto dets =
          system.repository.detector(served[i]).detect(*frames[i]);
      sink = sink + probs[0] + static_cast<double>(dets.size());
    }
    best = std::min(best, seconds_since(start));
  }
  sample.frame_us = best / static_cast<double>(frames.size()) * 1e6;

  std::ostringstream blob(std::ios::binary);
  core::save_system(system, blob, artifact_version);
  const std::string bytes = blob.str();
  sample.artifact_bytes = bytes.size();
  sample.model_bytes = model_section_bytes(bytes);
  return sample;
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  bench::print_banner("Quantized fast path",
                      "fp32 vs int8: latency, F1, artifact bytes, load time");

  auto stack = bench::train_standard_stack();
  const auto test_frames =
      stack.world.frames_with_role(world::SplitRole::kTest);

  // Shared device pricing, anchored on the fp32 compressed model so the
  // MB-equivalence mapping is identical for both arms.
  const std::uint64_t reference_flops =
      stack.system.repository.detector(0).flops_per_frame();
  const device::MemoryModel memory(
      stack.system.repository.detector(0).weight_bytes());
  const auto tx2 = device::DeviceProfile::jetson_tx2_nx(reference_flops);

  std::fprintf(stderr, "[bench_quant] fp32 arm over %zu test frames...\n",
               test_frames.size());
  const PrecisionSample fp32 =
      measure_arm(stack.system, test_frames, 2, memory, tx2);

  const auto quant_start = std::chrono::steady_clock::now();
  const core::QuantizeReport report = core::quantize_system(stack.system);
  const double quantize_seconds = seconds_since(quant_start);
  std::fprintf(stderr,
               "[bench_quant] quantized %zu detectors (%zu rejected by the "
               "guard) in %.2fs; int8 arm...\n",
               report.quantized_detectors, report.rejected_detectors,
               quantize_seconds);
  const PrecisionSample int8 = measure_arm(
      stack.system, test_frames, core::kArtifactVersion, memory, tx2);

  // Bitwise determinism of the quantized engine at 1 vs 4 pool threads.
  const std::size_t check_frames =
      std::min<std::size_t>(200, test_frames.size());
  auto run_detections = [&](std::size_t threads) {
    par::set_thread_count(threads);
    core::AnoleEngine engine(stack.system, bench::standard_cache_config());
    std::vector<detect::Detection> all;
    for (std::size_t i = 0; i < check_frames; ++i) {
      const auto result = engine.process(*test_frames[i]);
      all.insert(all.end(), result.detections.begin(),
                 result.detections.end());
    }
    return all;
  };
  const auto serial = run_detections(1);
  const auto parallel = run_detections(4);
  par::set_thread_count(0);
  const bool identical =
      serial.size() == parallel.size() &&
      (serial.empty() ||
       std::memcmp(serial.data(), parallel.data(),
                   serial.size() * sizeof(detect::Detection)) == 0);

  const double speedup = fp32.frame_us / int8.frame_us;
  const double section_ratio = static_cast<double>(fp32.model_bytes) /
                               static_cast<double>(int8.model_bytes);
  const double f1_delta = fp32.f1 - int8.f1;

  std::FILE* out = std::fopen("BENCH_quant.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_quant] cannot open BENCH_quant.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"test_frames\": %zu,\n", test_frames.size());
  std::fprintf(out, "  \"quantized_detectors\": %zu,\n",
               report.quantized_detectors);
  std::fprintf(out, "  \"rejected_detectors\": %zu,\n",
               report.rejected_detectors);
  std::fprintf(out, "  \"decision_quantized\": %s,\n",
               report.decision_quantized ? "true" : "false");
  std::fprintf(out, "  \"quantize_seconds\": %.4f,\n", quantize_seconds);
  std::fprintf(out, "  \"fp32\": {\n");
  std::fprintf(out, "    \"frame_inference_us\": %.3f,\n", fp32.frame_us);
  std::fprintf(out, "    \"overall_f1\": %.6f,\n", fp32.f1);
  std::fprintf(out, "    \"artifact_bytes\": %llu,\n",
               static_cast<unsigned long long>(fp32.artifact_bytes));
  std::fprintf(out, "    \"model_section_bytes\": %llu,\n",
               static_cast<unsigned long long>(fp32.model_bytes));
  std::fprintf(out, "    \"mean_cache_miss_load_ms\": %.4f,\n",
               fp32.mean_miss_load_ms);
  std::fprintf(out, "    \"cache_miss_frames\": %zu\n", fp32.miss_frames);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"int8\": {\n");
  std::fprintf(out, "    \"frame_inference_us\": %.3f,\n", int8.frame_us);
  std::fprintf(out, "    \"overall_f1\": %.6f,\n", int8.f1);
  std::fprintf(out, "    \"artifact_bytes\": %llu,\n",
               static_cast<unsigned long long>(int8.artifact_bytes));
  std::fprintf(out, "    \"model_section_bytes\": %llu,\n",
               static_cast<unsigned long long>(int8.model_bytes));
  std::fprintf(out, "    \"mean_cache_miss_load_ms\": %.4f,\n",
               int8.mean_miss_load_ms);
  std::fprintf(out, "    \"cache_miss_frames\": %zu,\n", int8.miss_frames);
  std::fprintf(out, "    \"quantized_frames\": %zu,\n",
               int8.quantized_frames);
  std::fprintf(out, "    \"quantized_loads\": %zu\n", int8.quantized_loads);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"frame_inference_speedup\": %.4f,\n", speedup);
  std::fprintf(out, "  \"model_section_ratio\": %.4f,\n", section_ratio);
  std::fprintf(out, "  \"f1_delta\": %.6f,\n", f1_delta);
  std::fprintf(out, "  \"deterministic_1_vs_4_threads\": %s\n",
               identical ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::printf(
      "fp32: %.1f us/frame, F1 %.3f, model sections %llu B, miss load "
      "%.2f ms\n"
      "int8: %.1f us/frame, F1 %.3f, model sections %llu B, miss load "
      "%.2f ms\n"
      "speedup %.2fx (bar: >= 2), section ratio %.2fx (bar: >= 3.5), "
      "F1 delta %+.4f (bar: |delta| <= 0.01), 1-vs-4-thread determinism "
      "%s\n",
      fp32.frame_us, fp32.f1,
      static_cast<unsigned long long>(fp32.model_bytes),
      fp32.mean_miss_load_ms, int8.frame_us, int8.f1,
      static_cast<unsigned long long>(int8.model_bytes),
      int8.mean_miss_load_ms, speedup, section_ratio, f1_delta,
      identical ? "OK" : "FAILED");
  return identical ? 0 : 1;
}
