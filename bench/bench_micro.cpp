// Micro-benchmarks of the hot paths.
//
// Default mode runs a deterministic timing suite over the parallel
// execution layer — matmul GFLOP/s, int8 qgemm vs fp32 matmul at a
// detector layer shape, k-means wall time, and OSP end-to-end wall time,
// each at 1 thread and at 4 threads — verifies that the results are
// identical at both thread counts, then times the post-training quantize/
// dequantize pass and fp32-v2 vs quantized-v3 artifact loads on the OSP
// system, and writes the numbers to BENCH_micro.json in the working
// directory.
//
// `bench_micro --gbench [google-benchmark flags]` instead runs the
// google-benchmark suite (tensor matmul, detector forward, featurization,
// k-means, Thompson sampling rounds, cache admission), which measures this
// host's actual per-operation cost and complements the calibrated device
// simulator used by the table/figure benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "bench/common.hpp"
#include "cluster/kmeans.hpp"
#include "core/artifact.hpp"
#include "core/model_cache.hpp"
#include "core/quantize.hpp"
#include "detect/grid_detector.hpp"
#include "sampling/thompson.hpp"
#include "tensor/qgemm.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"
#include "world/world.hpp"

namespace {

using namespace anole;

void BM_TensorMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

world::Frame make_frame(std::uint64_t seed) {
  Rng rng(seed);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  return generator.render(style, attrs, objects, rng);
}

void BM_DetectorCompressed(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::compressed(),
                                rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorCompressed);

void BM_DetectorLarge(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::large(), rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorLarge);

void BM_FrameFeaturize(benchmark::State& state) {
  const world::FrameFeaturizer featurizer;
  const auto frame = make_frame(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.featurize(frame));
  }
}
BENCHMARK(BM_FrameFeaturize);

void BM_FrameRender(benchmark::State& state) {
  Rng rng(5);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kRainy,
                                     world::Location::kHighway,
                                     world::TimeOfDay::kNight};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.render(style, attrs, objects, rng));
  }
}
BENCHMARK(BM_FrameRender);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 200;
  Tensor points = Tensor::matrix(n, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng inner(7);
    benchmark::DoNotOptimize(cluster::kmeans(points, config, inner));
  }
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(8)->Arg(16);

void BM_ThompsonRound(benchmark::State& state) {
  std::vector<std::size_t> sizes(19, 500);
  sampling::AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(8);
  for (auto _ : state) {
    const auto arm = sampler.next_arm(rng);
    if (arm) sampler.record_draw(*arm);
  }
}
BENCHMARK(BM_ThompsonRound);

void BM_CacheAdmit(benchmark::State& state) {
  core::CacheConfig config;
  config.capacity = 5;
  core::ModelCache cache(19, config);
  Rng rng(9);
  std::vector<std::size_t> ranking = random_permutation(19, rng);
  for (auto _ : state) {
    rng.shuffle(ranking);
    benchmark::DoNotOptimize(cache.admit(ranking));
  }
}
BENCHMARK(BM_CacheAdmit);

// --- Deterministic JSON suite --------------------------------------------

/// Thread count the parallel numbers are reported at.
constexpr std::size_t kBenchThreads = 4;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wall seconds for one 512x512 matmul (best of `reps`) plus a checksum
/// of the product for cross-thread-count comparison.
struct MatmulSample {
  double seconds = 0.0;
  double gflops = 0.0;
  float checksum = 0.0f;
};

MatmulSample time_matmul(std::size_t n, int reps) {
  Rng rng(21);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  MatmulSample sample;
  sample.seconds = 1e30;
  Tensor c;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    c = matmul(a, b);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
  }
  const double flop = 2.0 * static_cast<double>(n) * n * n;
  sample.gflops = flop / sample.seconds / 1e9;
  sample.checksum = c.sum();
  return sample;
}

/// fp32 matmul vs int8 qgemm microseconds per call at one layer shape
/// (best of `reps` timed batches of `iters` calls), plus the int8 product
/// for cross-thread-count bitwise comparison.
struct GemmSample {
  double fp32_us = 0.0;
  double int8_us = 0.0;
  Tensor int8_product;
};

GemmSample time_qgemm(std::size_t m, std::size_t k, std::size_t n, int reps,
                      int iters) {
  Rng rng(24);
  Tensor x = Tensor::matrix(m, k);
  Tensor w = Tensor::matrix(k, n);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  const QuantizedMatrix q = quantize_weights(w);
  GemmSample sample;
  double best_fp32 = 1e30;
  double best_int8 = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      Tensor c = matmul(x, w);
      benchmark::DoNotOptimize(c.data().data());
    }
    best_fp32 = std::min(best_fp32, seconds_since(start));
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      Tensor c = qgemm(x, q);
      benchmark::DoNotOptimize(c.data().data());
    }
    best_int8 = std::min(best_int8, seconds_since(start));
  }
  sample.fp32_us = best_fp32 / iters * 1e6;
  sample.int8_us = best_int8 / iters * 1e6;
  sample.int8_product = qgemm(x, q);
  return sample;
}

/// Quantize/dequantize pass wall time plus fp32-v2 vs quantized-v3
/// artifact bytes and load latency on the OSP-trained system.
struct QuantArtifactSample {
  double quantize_seconds = 0.0;
  double dequantize_seconds = 0.0;
  std::size_t quantized_detectors = 0;
  std::size_t rejected_detectors = 0;
  std::size_t v2_bytes = 0;
  std::size_t v3_bytes = 0;
  double v2_load_seconds = 0.0;
  double v3_load_seconds = 0.0;
};

double time_artifact_load(const std::string& blob, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    std::istringstream in(blob, std::ios::binary);
    const auto start = std::chrono::steady_clock::now();
    core::AnoleSystem loaded = core::load_system(in);
    best = std::min(best, seconds_since(start));
    benchmark::DoNotOptimize(loaded.model_count());
  }
  return best;
}

QuantArtifactSample time_quant_artifact(core::AnoleSystem& system) {
  QuantArtifactSample sample;
  std::ostringstream v2(std::ios::binary);
  core::save_system(system, v2, 2);
  const std::string v2_blob = v2.str();
  sample.v2_bytes = v2_blob.size();
  sample.v2_load_seconds = time_artifact_load(v2_blob, 3);

  auto start = std::chrono::steady_clock::now();
  const core::QuantizeReport report = core::quantize_system(system);
  sample.quantize_seconds = seconds_since(start);
  sample.quantized_detectors = report.quantized_detectors;
  sample.rejected_detectors = report.rejected_detectors;

  std::ostringstream v3(std::ios::binary);
  core::save_system(system, v3, core::kArtifactVersion);
  const std::string v3_blob = v3.str();
  sample.v3_bytes = v3_blob.size();
  sample.v3_load_seconds = time_artifact_load(v3_blob, 3);

  start = std::chrono::steady_clock::now();
  (void)core::dequantize_system(system);
  sample.dequantize_seconds = seconds_since(start);
  return sample;
}

struct KMeansSample {
  double seconds = 0.0;
  double inertia = 0.0;
};

KMeansSample time_kmeans(int reps) {
  Rng rng(22);
  Tensor points = Tensor::matrix(2000, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = 16;
  KMeansSample sample;
  sample.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    Rng inner(23);
    const auto start = std::chrono::steady_clock::now();
    const auto result = cluster::kmeans(points, config, inner);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
    sample.inertia = result.inertia;
  }
  return sample;
}

struct OspSample {
  double seconds = 0.0;
  std::size_t models = 0;
  double mean_f1 = 0.0;
};

/// The trained OSP output, kept alive for the artifact timing section.
/// The world must outlive the system: the repository's validation pools
/// hold frame pointers into it (moving the world relocates only the
/// top-level containers, so the pointers stay valid).
struct OspArtifacts {
  world::World world;
  core::AnoleSystem system;
};

/// End-to-end offline scene profiling on a reduced world (the standard
/// profiler on the full bench world takes minutes per run; this keeps the
/// 1-vs-N comparison to tens of seconds while exercising every stage).
/// When `keep` is non-null the trained world+system move out for the
/// artifact timing section.
OspSample time_osp(std::optional<OspArtifacts>* keep = nullptr) {
  world::WorldConfig world_config = bench::standard_world_config();
  world_config.frames_per_clip = 60;
  world_config.clip_scale = 0.2;
  world::World world = world::make_benchmark_world(world_config);

  core::ProfilerConfig profiler_config = bench::standard_profiler_config();
  profiler_config.repository.target_models = 8;
  profiler_config.sampling.budget = 400;

  Rng rng(7);
  core::OfflineProfiler profiler(profiler_config);
  const auto start = std::chrono::steady_clock::now();
  core::AnoleSystem system = profiler.run(world, rng);
  OspSample sample;
  sample.seconds = seconds_since(start);
  sample.models = system.repository.size();
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    sample.mean_f1 += system.repository.model(m).validation_f1;
  }
  if (sample.models > 0) sample.mean_f1 /= static_cast<double>(sample.models);
  if (keep != nullptr) {
    keep->emplace(OspArtifacts{std::move(world), std::move(system)});
  }
  return sample;
}

int run_json_suite() {
  set_log_level(LogLevel::kWarn);
  const std::size_t default_threads = par::thread_count();
  std::fprintf(stderr,
               "[bench_micro] deterministic suite: default pool threads=%zu, "
               "comparing 1 vs %zu pool threads\n",
               default_threads, kBenchThreads);

  /// Detector L1 shape at a full-batch row count: the layer the int8 fast
  /// path serves most often.
  constexpr std::size_t kQgemmM = 144, kQgemmK = 42, kQgemmN = 16;

  par::set_thread_count(1);
  const MatmulSample matmul_1t = time_matmul(512, 5);
  const GemmSample qgemm_1t = time_qgemm(kQgemmM, kQgemmK, kQgemmN, 5, 512);
  const KMeansSample kmeans_1t = time_kmeans(3);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at 1 thread...\n");
  const OspSample osp_1t = time_osp();

  par::set_thread_count(kBenchThreads);
  const MatmulSample matmul_nt = time_matmul(512, 5);
  const GemmSample qgemm_nt = time_qgemm(kQgemmM, kQgemmK, kQgemmN, 5, 512);
  const KMeansSample kmeans_nt = time_kmeans(3);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at %zu threads...\n",
               kBenchThreads);
  std::optional<OspArtifacts> osp_out;
  const OspSample osp_nt = time_osp(&osp_out);
  par::set_thread_count(0);

  std::fprintf(stderr,
               "[bench_micro] quantize pass + artifact v2/v3 loads...\n");
  const QuantArtifactSample quant = time_quant_artifact(osp_out->system);

  const bool matmul_identical =
      std::memcmp(&matmul_1t.checksum, &matmul_nt.checksum, sizeof(float)) ==
      0;
  const bool qgemm_identical =
      qgemm_1t.int8_product.size() == qgemm_nt.int8_product.size() &&
      std::memcmp(qgemm_1t.int8_product.data().data(),
                  qgemm_nt.int8_product.data().data(),
                  qgemm_1t.int8_product.size() * sizeof(float)) == 0;
  const bool kmeans_identical =
      std::memcmp(&kmeans_1t.inertia, &kmeans_nt.inertia, sizeof(double)) ==
      0;
  const bool osp_identical =
      osp_1t.models == osp_nt.models &&
      std::memcmp(&osp_1t.mean_f1, &osp_nt.mean_f1, sizeof(double)) == 0;

  std::FILE* out = std::fopen("BENCH_micro.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_micro] cannot open BENCH_micro.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"default_pool_threads\": %zu,\n", default_threads);
  std::fprintf(out, "  \"pool_threads\": %zu,\n", kBenchThreads);
  std::fprintf(out, "  \"matmul_512\": {\n");
  std::fprintf(out, "    \"gflops_threads_1\": %.4f,\n", matmul_1t.gflops);
  std::fprintf(out, "    \"gflops_threads_n\": %.4f,\n", matmul_nt.gflops);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               matmul_nt.gflops / matmul_1t.gflops);
  std::fprintf(out, "    \"identical_results\": %s\n",
               matmul_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"qgemm_144x42x16\": {\n");
  std::fprintf(out, "    \"fp32_us_threads_1\": %.4f,\n", qgemm_1t.fp32_us);
  std::fprintf(out, "    \"int8_us_threads_1\": %.4f,\n", qgemm_1t.int8_us);
  std::fprintf(out, "    \"fp32_us_threads_n\": %.4f,\n", qgemm_nt.fp32_us);
  std::fprintf(out, "    \"int8_us_threads_n\": %.4f,\n", qgemm_nt.int8_us);
  std::fprintf(out, "    \"int8_speedup_vs_fp32\": %.4f,\n",
               qgemm_1t.fp32_us / qgemm_1t.int8_us);
  std::fprintf(out, "    \"identical_results\": %s\n",
               qgemm_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"quantize_pass\": {\n");
  std::fprintf(out, "    \"quantize_seconds\": %.6f,\n",
               quant.quantize_seconds);
  std::fprintf(out, "    \"dequantize_seconds\": %.6f,\n",
               quant.dequantize_seconds);
  std::fprintf(out, "    \"quantized_detectors\": %zu,\n",
               quant.quantized_detectors);
  std::fprintf(out, "    \"rejected_detectors\": %zu\n",
               quant.rejected_detectors);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"artifact_load\": {\n");
  std::fprintf(out, "    \"v2_fp32_bytes\": %zu,\n", quant.v2_bytes);
  std::fprintf(out, "    \"v3_quantized_bytes\": %zu,\n", quant.v3_bytes);
  std::fprintf(out, "    \"bytes_ratio\": %.4f,\n",
               static_cast<double>(quant.v2_bytes) /
                   static_cast<double>(quant.v3_bytes));
  std::fprintf(out, "    \"v2_load_seconds\": %.6f,\n",
               quant.v2_load_seconds);
  std::fprintf(out, "    \"v3_load_seconds\": %.6f\n",
               quant.v3_load_seconds);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"kmeans_2000x48_k16\": {\n");
  std::fprintf(out, "    \"seconds_threads_1\": %.6f,\n", kmeans_1t.seconds);
  std::fprintf(out, "    \"seconds_threads_n\": %.6f,\n", kmeans_nt.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               kmeans_1t.seconds / kmeans_nt.seconds);
  std::fprintf(out, "    \"identical_results\": %s\n",
               kmeans_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"osp_end_to_end\": {\n");
  std::fprintf(out, "    \"seconds_threads_1\": %.3f,\n", osp_1t.seconds);
  std::fprintf(out, "    \"seconds_threads_n\": %.3f,\n", osp_nt.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               osp_1t.seconds / osp_nt.seconds);
  std::fprintf(out, "    \"models_trained\": %zu,\n", osp_1t.models);
  std::fprintf(out, "    \"identical_results\": %s\n",
               osp_identical ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  const bool all_identical = matmul_identical && qgemm_identical &&
                             kmeans_identical && osp_identical;
  std::fprintf(stderr,
               "[bench_micro] matmul %.2f -> %.2f GFLOP/s, qgemm int8 "
               "%.1fus vs fp32 %.1fus (%.2fx), kmeans %.3fs -> %.3fs, OSP "
               "%.1fs -> %.1fs, artifact v2 %zuB/%.3fs vs v3 %zuB/%.3fs; "
               "determinism %s; wrote BENCH_micro.json\n",
               matmul_1t.gflops, matmul_nt.gflops, qgemm_1t.int8_us,
               qgemm_1t.fp32_us, qgemm_1t.fp32_us / qgemm_1t.int8_us,
               kmeans_1t.seconds, kmeans_nt.seconds, osp_1t.seconds,
               osp_nt.seconds, quant.v2_bytes, quant.v2_load_seconds,
               quant.v3_bytes, quant.v3_load_seconds,
               all_identical ? "OK" : "FAILED");
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
    // Shift out the --gbench flag so google-benchmark sees its own flags.
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_json_suite();
}
