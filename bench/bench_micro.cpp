// Micro-benchmarks (google-benchmark) of the hot paths: tensor matmul,
// detector forward, frame featurization + decision ranking, k-means,
// Thompson sampling rounds, and cache admission. These measure this
// host's actual per-operation cost, complementing the calibrated device
// simulator used by the table/figure benches.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.hpp"
#include "core/model_cache.hpp"
#include "detect/grid_detector.hpp"
#include "sampling/thompson.hpp"
#include "world/featurizer.hpp"
#include "world/world.hpp"

namespace {

using namespace anole;

void BM_TensorMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

world::Frame make_frame(std::uint64_t seed) {
  Rng rng(seed);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  return generator.render(style, attrs, objects, rng);
}

void BM_DetectorCompressed(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::compressed(),
                                rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorCompressed);

void BM_DetectorLarge(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::large(), rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorLarge);

void BM_FrameFeaturize(benchmark::State& state) {
  const world::FrameFeaturizer featurizer;
  const auto frame = make_frame(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.featurize(frame));
  }
}
BENCHMARK(BM_FrameFeaturize);

void BM_FrameRender(benchmark::State& state) {
  Rng rng(5);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kRainy,
                                     world::Location::kHighway,
                                     world::TimeOfDay::kNight};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.render(style, attrs, objects, rng));
  }
}
BENCHMARK(BM_FrameRender);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 200;
  Tensor points = Tensor::matrix(n, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng inner(7);
    benchmark::DoNotOptimize(cluster::kmeans(points, config, inner));
  }
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(8)->Arg(16);

void BM_ThompsonRound(benchmark::State& state) {
  std::vector<std::size_t> sizes(19, 500);
  sampling::AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(8);
  for (auto _ : state) {
    const auto arm = sampler.next_arm(rng);
    if (arm) sampler.record_draw(*arm);
  }
}
BENCHMARK(BM_ThompsonRound);

void BM_CacheAdmit(benchmark::State& state) {
  core::CacheConfig config;
  config.capacity = 5;
  core::ModelCache cache(19, config);
  Rng rng(9);
  std::vector<std::size_t> ranking = random_permutation(19, rng);
  for (auto _ : state) {
    rng.shuffle(ranking);
    benchmark::DoNotOptimize(cache.admit(ranking));
  }
}
BENCHMARK(BM_CacheAdmit);

}  // namespace

BENCHMARK_MAIN();
