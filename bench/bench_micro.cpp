// Micro-benchmarks of the hot paths.
//
// Default mode runs a deterministic timing suite over the parallel
// execution layer — matmul GFLOP/s, k-means wall time, and OSP end-to-end
// wall time, each at 1 thread and at 4 threads — verifies that the
// results are identical at both thread counts, and writes the numbers to
// BENCH_micro.json in the working directory.
//
// `bench_micro --gbench [google-benchmark flags]` instead runs the
// google-benchmark suite (tensor matmul, detector forward, featurization,
// k-means, Thompson sampling rounds, cache admission), which measures this
// host's actual per-operation cost and complements the calibrated device
// simulator used by the table/figure benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/common.hpp"
#include "cluster/kmeans.hpp"
#include "core/model_cache.hpp"
#include "detect/grid_detector.hpp"
#include "sampling/thompson.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"
#include "world/world.hpp"

namespace {

using namespace anole;

void BM_TensorMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

world::Frame make_frame(std::uint64_t seed) {
  Rng rng(seed);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  return generator.render(style, attrs, objects, rng);
}

void BM_DetectorCompressed(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::compressed(),
                                rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorCompressed);

void BM_DetectorLarge(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::large(), rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorLarge);

void BM_FrameFeaturize(benchmark::State& state) {
  const world::FrameFeaturizer featurizer;
  const auto frame = make_frame(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.featurize(frame));
  }
}
BENCHMARK(BM_FrameFeaturize);

void BM_FrameRender(benchmark::State& state) {
  Rng rng(5);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kRainy,
                                     world::Location::kHighway,
                                     world::TimeOfDay::kNight};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.render(style, attrs, objects, rng));
  }
}
BENCHMARK(BM_FrameRender);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 200;
  Tensor points = Tensor::matrix(n, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng inner(7);
    benchmark::DoNotOptimize(cluster::kmeans(points, config, inner));
  }
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(8)->Arg(16);

void BM_ThompsonRound(benchmark::State& state) {
  std::vector<std::size_t> sizes(19, 500);
  sampling::AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(8);
  for (auto _ : state) {
    const auto arm = sampler.next_arm(rng);
    if (arm) sampler.record_draw(*arm);
  }
}
BENCHMARK(BM_ThompsonRound);

void BM_CacheAdmit(benchmark::State& state) {
  core::CacheConfig config;
  config.capacity = 5;
  core::ModelCache cache(19, config);
  Rng rng(9);
  std::vector<std::size_t> ranking = random_permutation(19, rng);
  for (auto _ : state) {
    rng.shuffle(ranking);
    benchmark::DoNotOptimize(cache.admit(ranking));
  }
}
BENCHMARK(BM_CacheAdmit);

// --- Deterministic JSON suite --------------------------------------------

/// Thread count the parallel numbers are reported at.
constexpr std::size_t kBenchThreads = 4;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wall seconds for one 512x512 matmul (best of `reps`) plus a checksum
/// of the product for cross-thread-count comparison.
struct MatmulSample {
  double seconds = 0.0;
  double gflops = 0.0;
  float checksum = 0.0f;
};

MatmulSample time_matmul(std::size_t n, int reps) {
  Rng rng(21);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  MatmulSample sample;
  sample.seconds = 1e30;
  Tensor c;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    c = matmul(a, b);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
  }
  const double flop = 2.0 * static_cast<double>(n) * n * n;
  sample.gflops = flop / sample.seconds / 1e9;
  sample.checksum = c.sum();
  return sample;
}

struct KMeansSample {
  double seconds = 0.0;
  double inertia = 0.0;
};

KMeansSample time_kmeans(int reps) {
  Rng rng(22);
  Tensor points = Tensor::matrix(2000, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = 16;
  KMeansSample sample;
  sample.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    Rng inner(23);
    const auto start = std::chrono::steady_clock::now();
    const auto result = cluster::kmeans(points, config, inner);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
    sample.inertia = result.inertia;
  }
  return sample;
}

struct OspSample {
  double seconds = 0.0;
  std::size_t models = 0;
  double mean_f1 = 0.0;
};

/// End-to-end offline scene profiling on a reduced world (the standard
/// profiler on the full bench world takes minutes per run; this keeps the
/// 1-vs-N comparison to tens of seconds while exercising every stage).
OspSample time_osp() {
  world::WorldConfig world_config = bench::standard_world_config();
  world_config.frames_per_clip = 60;
  world_config.clip_scale = 0.2;
  world::World world = world::make_benchmark_world(world_config);

  core::ProfilerConfig profiler_config = bench::standard_profiler_config();
  profiler_config.repository.target_models = 8;
  profiler_config.sampling.budget = 400;

  Rng rng(7);
  core::OfflineProfiler profiler(profiler_config);
  const auto start = std::chrono::steady_clock::now();
  const core::AnoleSystem system = profiler.run(world, rng);
  OspSample sample;
  sample.seconds = seconds_since(start);
  sample.models = system.repository.size();
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    sample.mean_f1 += system.repository.model(m).validation_f1;
  }
  if (sample.models > 0) sample.mean_f1 /= static_cast<double>(sample.models);
  return sample;
}

int run_json_suite() {
  set_log_level(LogLevel::kWarn);
  const std::size_t default_threads = par::thread_count();
  std::fprintf(stderr,
               "[bench_micro] deterministic suite: default pool threads=%zu, "
               "comparing 1 vs %zu pool threads\n",
               default_threads, kBenchThreads);

  par::set_thread_count(1);
  const MatmulSample matmul_1t = time_matmul(512, 5);
  const KMeansSample kmeans_1t = time_kmeans(3);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at 1 thread...\n");
  const OspSample osp_1t = time_osp();

  par::set_thread_count(kBenchThreads);
  const MatmulSample matmul_nt = time_matmul(512, 5);
  const KMeansSample kmeans_nt = time_kmeans(3);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at %zu threads...\n",
               kBenchThreads);
  const OspSample osp_nt = time_osp();
  par::set_thread_count(0);

  const bool matmul_identical =
      std::memcmp(&matmul_1t.checksum, &matmul_nt.checksum, sizeof(float)) ==
      0;
  const bool kmeans_identical =
      std::memcmp(&kmeans_1t.inertia, &kmeans_nt.inertia, sizeof(double)) ==
      0;
  const bool osp_identical =
      osp_1t.models == osp_nt.models &&
      std::memcmp(&osp_1t.mean_f1, &osp_nt.mean_f1, sizeof(double)) == 0;

  std::FILE* out = std::fopen("BENCH_micro.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_micro] cannot open BENCH_micro.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"default_pool_threads\": %zu,\n", default_threads);
  std::fprintf(out, "  \"pool_threads\": %zu,\n", kBenchThreads);
  std::fprintf(out, "  \"matmul_512\": {\n");
  std::fprintf(out, "    \"gflops_threads_1\": %.4f,\n", matmul_1t.gflops);
  std::fprintf(out, "    \"gflops_threads_n\": %.4f,\n", matmul_nt.gflops);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               matmul_nt.gflops / matmul_1t.gflops);
  std::fprintf(out, "    \"identical_results\": %s\n",
               matmul_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"kmeans_2000x48_k16\": {\n");
  std::fprintf(out, "    \"seconds_threads_1\": %.6f,\n", kmeans_1t.seconds);
  std::fprintf(out, "    \"seconds_threads_n\": %.6f,\n", kmeans_nt.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               kmeans_1t.seconds / kmeans_nt.seconds);
  std::fprintf(out, "    \"identical_results\": %s\n",
               kmeans_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"osp_end_to_end\": {\n");
  std::fprintf(out, "    \"seconds_threads_1\": %.3f,\n", osp_1t.seconds);
  std::fprintf(out, "    \"seconds_threads_n\": %.3f,\n", osp_nt.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n",
               osp_1t.seconds / osp_nt.seconds);
  std::fprintf(out, "    \"models_trained\": %zu,\n", osp_1t.models);
  std::fprintf(out, "    \"identical_results\": %s\n",
               osp_identical ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  std::fprintf(stderr,
               "[bench_micro] matmul %.2f -> %.2f GFLOP/s, kmeans %.3fs -> "
               "%.3fs, OSP %.1fs -> %.1fs; determinism %s; wrote "
               "BENCH_micro.json\n",
               matmul_1t.gflops, matmul_nt.gflops, kmeans_1t.seconds,
               kmeans_nt.seconds, osp_1t.seconds, osp_nt.seconds,
               (matmul_identical && kmeans_identical && osp_identical)
                   ? "OK"
                   : "FAILED");
  return (matmul_identical && kmeans_identical && osp_identical) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
    // Shift out the --gbench flag so google-benchmark sees its own flags.
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_json_suite();
}
