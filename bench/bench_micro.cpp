// Micro-benchmarks of the hot paths.
//
// Default mode runs a deterministic timing suite over the parallel +
// SIMD execution layers — matmul GFLOP/s, int8 qgemm vs fp32 matmul at
// a detector layer shape, k-means wall time, OSP end-to-end wall time,
// and engine batch throughput. Every kernel is timed against a pinned
// scalar 1-thread reference (the headline "speedup" is active dispatch
// level at 4 pool threads vs that reference) and at 1/2/4 pool threads
// at the active level (the "thread_scaling" sections). The suite
// verifies bitwise thread-count invariance per kernel, plus bitwise
// *level* invariance for the int8 and k-means paths, then times the
// post-training quantize/dequantize pass and fp32-v2 vs quantized-v3
// artifact loads on the OSP system, and writes the numbers (including
// the detected and active SIMD levels) to BENCH_micro.json in the
// working directory. Exit is non-zero on a determinism failure, on a
// k-means/qgemm 4-thread slowdown, or — when a vector level is active —
// on a speedup below the committed floors.
//
// `bench_micro --gbench [google-benchmark flags]` instead runs the
// google-benchmark suite (tensor matmul, detector forward, featurization,
// k-means, Thompson sampling rounds, cache admission), which measures this
// host's actual per-operation cost and complements the calibrated device
// simulator used by the table/figure benches.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <sstream>

#include "bench/common.hpp"
#include "cluster/kmeans.hpp"
#include "core/artifact.hpp"
#include "core/engine.hpp"
#include "core/model_cache.hpp"
#include "core/quantize.hpp"
#include "detect/grid_detector.hpp"
#include "sampling/thompson.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/simd.hpp"
#include "util/parallel.hpp"
#include "world/featurizer.hpp"
#include "world/world.hpp"

namespace {

using namespace anole;

void BM_TensorMatmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_TensorMatmul)->Arg(16)->Arg(64)->Arg(128)->Complexity();

world::Frame make_frame(std::uint64_t seed) {
  Rng rng(seed);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kClear,
                                     world::Location::kUrban,
                                     world::TimeOfDay::kDaytime};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  return generator.render(style, attrs, objects, rng);
}

void BM_DetectorCompressed(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::compressed(),
                                rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorCompressed);

void BM_DetectorLarge(benchmark::State& state) {
  Rng rng(2);
  detect::GridDetector detector(detect::GridDetectorConfig::large(), rng);
  const auto frame = make_frame(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.detect(frame));
  }
}
BENCHMARK(BM_DetectorLarge);

void BM_FrameFeaturize(benchmark::State& state) {
  const world::FrameFeaturizer featurizer;
  const auto frame = make_frame(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(featurizer.featurize(frame));
  }
}
BENCHMARK(BM_FrameFeaturize);

void BM_FrameRender(benchmark::State& state) {
  Rng rng(5);
  world::FrameGenerator generator;
  const world::SceneAttributes attrs{world::Weather::kRainy,
                                     world::Location::kHighway,
                                     world::TimeOfDay::kNight};
  const auto style = world::SceneStyle::from_attributes(attrs);
  std::vector<world::ObjectInstance> objects;
  for (int i = 0; i < 5; ++i) objects.push_back(generator.sample_object(style, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.render(style, attrs, objects, rng));
  }
}
BENCHMARK(BM_FrameRender);

void BM_KMeans(benchmark::State& state) {
  Rng rng(6);
  const std::size_t n = 200;
  Tensor points = Tensor::matrix(n, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng inner(7);
    benchmark::DoNotOptimize(cluster::kmeans(points, config, inner));
  }
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(8)->Arg(16);

void BM_ThompsonRound(benchmark::State& state) {
  std::vector<std::size_t> sizes(19, 500);
  sampling::AdaptiveSceneSampler sampler(sizes, 0.9);
  Rng rng(8);
  for (auto _ : state) {
    const auto arm = sampler.next_arm(rng);
    if (arm) sampler.record_draw(*arm);
  }
}
BENCHMARK(BM_ThompsonRound);

void BM_CacheAdmit(benchmark::State& state) {
  core::CacheConfig config;
  config.capacity = 5;
  core::ModelCache cache(19, config);
  Rng rng(9);
  std::vector<std::size_t> ranking = random_permutation(19, rng);
  for (auto _ : state) {
    rng.shuffle(ranking);
    benchmark::DoNotOptimize(cache.admit(ranking));
  }
}
BENCHMARK(BM_CacheAdmit);

// --- Deterministic JSON suite --------------------------------------------

/// Thread count the parallel numbers are reported at.
constexpr std::size_t kBenchThreads = 4;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Wall seconds for one 512x512 matmul (best of `reps`) plus a checksum
/// of the product for cross-thread-count comparison.
struct MatmulSample {
  double seconds = 0.0;
  double gflops = 0.0;
  float checksum = 0.0f;
};

MatmulSample time_matmul(std::size_t n, int reps) {
  Rng rng(21);
  Tensor a = Tensor::matrix(n, n);
  Tensor b = Tensor::matrix(n, n);
  for (auto& v : a.data()) v = static_cast<float>(rng.normal());
  for (auto& v : b.data()) v = static_cast<float>(rng.normal());
  MatmulSample sample;
  sample.seconds = 1e30;
  Tensor c;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    c = matmul(a, b);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
  }
  const double flop = 2.0 * static_cast<double>(n) * n * n;
  sample.gflops = flop / sample.seconds / 1e9;
  sample.checksum = c.sum();
  return sample;
}

/// fp32 matmul vs int8 qgemm microseconds per call at one layer shape
/// (best of `reps` timed batches of `iters` calls), plus the int8 product
/// for cross-thread-count bitwise comparison.
struct GemmSample {
  double fp32_us = 0.0;
  double int8_us = 0.0;
  Tensor int8_product;
};

GemmSample time_qgemm(std::size_t m, std::size_t k, std::size_t n, int reps,
                      int iters) {
  Rng rng(24);
  Tensor x = Tensor::matrix(m, k);
  Tensor w = Tensor::matrix(k, n);
  for (auto& v : x.data()) v = static_cast<float>(rng.normal());
  for (auto& v : w.data()) v = static_cast<float>(rng.normal());
  const QuantizedMatrix q = quantize_weights(w);
  GemmSample sample;
  double best_fp32 = 1e30;
  double best_int8 = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      Tensor c = matmul(x, w);
      benchmark::DoNotOptimize(c.data().data());
    }
    best_fp32 = std::min(best_fp32, seconds_since(start));
    start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      Tensor c = qgemm(x, q);
      benchmark::DoNotOptimize(c.data().data());
    }
    best_int8 = std::min(best_int8, seconds_since(start));
  }
  sample.fp32_us = best_fp32 / iters * 1e6;
  sample.int8_us = best_int8 / iters * 1e6;
  sample.int8_product = qgemm(x, q);
  return sample;
}

/// Quantize/dequantize pass wall time plus fp32-v2 vs quantized-v3
/// artifact bytes and load latency on the OSP-trained system.
struct QuantArtifactSample {
  double quantize_seconds = 0.0;
  double dequantize_seconds = 0.0;
  std::size_t quantized_detectors = 0;
  std::size_t rejected_detectors = 0;
  std::size_t v2_bytes = 0;
  std::size_t v3_bytes = 0;
  double v2_load_seconds = 0.0;
  double v3_load_seconds = 0.0;
};

double time_artifact_load(const std::string& blob, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    std::istringstream in(blob, std::ios::binary);
    const auto start = std::chrono::steady_clock::now();
    core::AnoleSystem loaded = core::load_system(in);
    best = std::min(best, seconds_since(start));
    benchmark::DoNotOptimize(loaded.model_count());
  }
  return best;
}

QuantArtifactSample time_quant_artifact(core::AnoleSystem& system) {
  QuantArtifactSample sample;
  std::ostringstream v2(std::ios::binary);
  core::save_system(system, v2, 2);
  const std::string v2_blob = v2.str();
  sample.v2_bytes = v2_blob.size();
  sample.v2_load_seconds = time_artifact_load(v2_blob, 3);

  auto start = std::chrono::steady_clock::now();
  const core::QuantizeReport report = core::quantize_system(system);
  sample.quantize_seconds = seconds_since(start);
  sample.quantized_detectors = report.quantized_detectors;
  sample.rejected_detectors = report.rejected_detectors;

  std::ostringstream v3(std::ios::binary);
  core::save_system(system, v3, core::kArtifactVersion);
  const std::string v3_blob = v3.str();
  sample.v3_bytes = v3_blob.size();
  sample.v3_load_seconds = time_artifact_load(v3_blob, 3);

  start = std::chrono::steady_clock::now();
  (void)core::dequantize_system(system);
  sample.dequantize_seconds = seconds_since(start);
  return sample;
}

struct KMeansSample {
  double seconds = 0.0;
  double inertia = 0.0;
};

KMeansSample time_kmeans(int reps) {
  Rng rng(22);
  Tensor points = Tensor::matrix(2000, 48);
  for (auto& v : points.data()) v = static_cast<float>(rng.normal());
  cluster::KMeansConfig config;
  config.clusters = 16;
  KMeansSample sample;
  sample.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    Rng inner(23);
    const auto start = std::chrono::steady_clock::now();
    const auto result = cluster::kmeans(points, config, inner);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
    sample.inertia = result.inertia;
  }
  return sample;
}

struct OspSample {
  double seconds = 0.0;
  std::size_t models = 0;
  double mean_f1 = 0.0;
};

/// The trained OSP output, kept alive for the artifact timing section.
/// The world must outlive the system: the repository's validation pools
/// hold frame pointers into it (moving the world relocates only the
/// top-level containers, so the pointers stay valid).
struct OspArtifacts {
  world::World world;
  core::AnoleSystem system;
};

/// End-to-end offline scene profiling on a reduced world (the standard
/// profiler on the full bench world takes minutes per run; this keeps the
/// 1-vs-N comparison to tens of seconds while exercising every stage).
/// When `keep` is non-null the trained world+system move out for the
/// artifact timing section.
OspSample time_osp(std::optional<OspArtifacts>* keep = nullptr) {
  world::WorldConfig world_config = bench::standard_world_config();
  world_config.frames_per_clip = 60;
  world_config.clip_scale = 0.2;
  world::World world = world::make_benchmark_world(world_config);

  core::ProfilerConfig profiler_config = bench::standard_profiler_config();
  profiler_config.repository.target_models = 8;
  profiler_config.sampling.budget = 400;

  Rng rng(7);
  core::OfflineProfiler profiler(profiler_config);
  const auto start = std::chrono::steady_clock::now();
  core::AnoleSystem system = profiler.run(world, rng);
  OspSample sample;
  sample.seconds = seconds_since(start);
  sample.models = system.repository.size();
  for (std::size_t m = 0; m < system.repository.size(); ++m) {
    sample.mean_f1 += system.repository.model(m).validation_f1;
  }
  if (sample.models > 0) sample.mean_f1 /= static_cast<double>(sample.models);
  if (keep != nullptr) {
    keep->emplace(OspArtifacts{std::move(world), std::move(system)});
  }
  return sample;
}

/// Batch inference throughput over the trained system's test frames.
struct EngineBatchSample {
  double seconds = 0.0;
  double fps = 0.0;
  std::size_t frames = 0;
  /// FNV-1a over served models, confidences, and detections for
  /// cross-thread-count bitwise comparison.
  std::uint64_t digest = 0;
};

std::uint64_t mix64(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFu;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

EngineBatchSample time_engine_batch(OspArtifacts& artifacts, int reps) {
  const std::vector<const world::Frame*> frames =
      artifacts.world.frames_with_role(world::SplitRole::kTest);
  EngineBatchSample sample;
  sample.frames = frames.size();
  sample.seconds = 1e30;
  for (int r = 0; r < reps; ++r) {
    // A fresh engine per rep: cache and smoothing state start identical,
    // so every rep (and every thread count) replays the same plan.
    core::AnoleEngine engine(artifacts.system,
                             core::CacheConfig{.capacity = 5});
    const auto start = std::chrono::steady_clock::now();
    const std::vector<core::EngineResult> results =
        engine.process_batch(frames);
    sample.seconds = std::min(sample.seconds, seconds_since(start));
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const core::EngineResult& result : results) {
      hash = mix64(hash, result.served_model);
      hash = mix64(hash, double_bits(result.top1_confidence));
      hash = mix64(hash, result.detections.size());
      for (const detect::Detection& d : result.detections) {
        hash = mix64(hash, double_bits(d.confidence));
      }
    }
    sample.digest = hash;
  }
  sample.fps = static_cast<double>(sample.frames) / sample.seconds;
  return sample;
}

/// One matmul+qgemm+kmeans measurement at the current dispatch level and
/// pool thread count.
struct KernelSet {
  MatmulSample matmul;
  GemmSample qgemm;
  KMeansSample kmeans;
};

KernelSet run_kernels(std::size_t m, std::size_t k, std::size_t n) {
  KernelSet set;
  set.matmul = time_matmul(512, 5);
  set.qgemm = time_qgemm(m, k, n, 5, 512);
  set.kmeans = time_kmeans(3);
  return set;
}

bool bitwise_equal_tensor(const Tensor& a, const Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     a.size() * sizeof(float)) == 0;
}

bool bitwise_equal_double(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

int run_json_suite() {
  set_log_level(LogLevel::kWarn);
  const std::size_t default_threads = par::thread_count();
  const simd::Level detected = simd::detected_level();
  const simd::Level active = simd::active_level();
  std::fprintf(stderr,
               "[bench_micro] deterministic suite: default pool threads=%zu, "
               "SIMD detected=%s active=%s, scalar 1T reference vs active at "
               "1/2/%zu pool threads\n",
               default_threads, simd::level_name(detected),
               simd::level_name(active), kBenchThreads);

  /// Detector L1 shape at a full-batch row count: the layer the int8 fast
  /// path serves most often.
  constexpr std::size_t kQgemmM = 144, kQgemmK = 42, kQgemmN = 16;

  // Scalar serial reference: the denominator of every headline speedup.
  simd::set_level(simd::Level::kScalar);
  par::set_thread_count(1);
  const KernelSet scalar_1t = run_kernels(kQgemmM, kQgemmK, kQgemmN);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end, scalar 1T reference"
               " (the slowest run of the suite)...\n");
  const OspSample osp_s1 = time_osp();
  simd::reset_level();

  // The active dispatch level at 1/2/4 pool threads.
  par::set_thread_count(1);
  const KernelSet active_1t = run_kernels(kQgemmM, kQgemmK, kQgemmN);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at 1 thread...\n");
  const OspSample osp_a1 = time_osp();
  par::set_thread_count(2);
  const KernelSet active_2t = run_kernels(kQgemmM, kQgemmK, kQgemmN);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at 2 threads...\n");
  const OspSample osp_a2 = time_osp();
  par::set_thread_count(kBenchThreads);
  const KernelSet active_4t = run_kernels(kQgemmM, kQgemmK, kQgemmN);
  std::fprintf(stderr, "[bench_micro] OSP end-to-end at %zu threads...\n",
               kBenchThreads);
  std::optional<OspArtifacts> osp_out;
  const OspSample osp_a4 = time_osp(&osp_out);

  std::fprintf(stderr,
               "[bench_micro] quantize pass + artifact v2/v3 loads...\n");
  const QuantArtifactSample quant = time_quant_artifact(osp_out->system);
  // time_quant_artifact leaves the system dequantized; re-quantize it
  // (untimed) so the engine bench serves the production int8 fast path
  // (ANOLE_QUANT defaults on). The int8 kernels are bitwise identical at
  // every dispatch level, so the digests below stay comparable.
  (void)core::quantize_system(osp_out->system);

  // Engine batch throughput over the same trained system at every thread
  // count (active level), plus the pinned scalar 1T reference.
  std::fprintf(stderr, "[bench_micro] engine batch throughput...\n");
  par::set_thread_count(1);
  const EngineBatchSample eng_a1 = time_engine_batch(*osp_out, 3);
  par::set_thread_count(2);
  const EngineBatchSample eng_a2 = time_engine_batch(*osp_out, 3);
  par::set_thread_count(kBenchThreads);
  const EngineBatchSample eng_a4 = time_engine_batch(*osp_out, 3);
  simd::set_level(simd::Level::kScalar);
  par::set_thread_count(1);
  const EngineBatchSample eng_s1 = time_engine_batch(*osp_out, 3);
  simd::reset_level();
  par::set_thread_count(0);

  // Bitwise thread-count invariance at the active level (1 vs 2 vs 4).
  const bool matmul_identical =
      std::memcmp(&active_1t.matmul.checksum, &active_2t.matmul.checksum,
                  sizeof(float)) == 0 &&
      std::memcmp(&active_1t.matmul.checksum, &active_4t.matmul.checksum,
                  sizeof(float)) == 0;
  const bool qgemm_identical =
      bitwise_equal_tensor(active_1t.qgemm.int8_product,
                           active_2t.qgemm.int8_product) &&
      bitwise_equal_tensor(active_1t.qgemm.int8_product,
                           active_4t.qgemm.int8_product);
  const bool kmeans_identical =
      bitwise_equal_double(active_1t.kmeans.inertia,
                           active_2t.kmeans.inertia) &&
      bitwise_equal_double(active_1t.kmeans.inertia,
                           active_4t.kmeans.inertia);
  const bool osp_identical =
      osp_a1.models == osp_a2.models && osp_a1.models == osp_a4.models &&
      bitwise_equal_double(osp_a1.mean_f1, osp_a2.mean_f1) &&
      bitwise_equal_double(osp_a1.mean_f1, osp_a4.mean_f1);
  const bool engine_identical =
      eng_a1.digest == eng_a2.digest && eng_a1.digest == eng_a4.digest;
  // Bitwise *level* invariance where the kernels promise it: the int8
  // path and the k-means distance kernel (fp32 GEMM at AVX2 uses FMA and
  // is exempt by contract — DESIGN.md §13).
  const bool qgemm_level_identical = bitwise_equal_tensor(
      scalar_1t.qgemm.int8_product, active_4t.qgemm.int8_product);
  const bool kmeans_level_identical = bitwise_equal_double(
      scalar_1t.kmeans.inertia, active_4t.kmeans.inertia);

  // Headline speedups: active level at 4 threads vs the scalar serial
  // reference.
  const double matmul_speedup =
      active_4t.matmul.gflops / scalar_1t.matmul.gflops;
  const double qgemm_speedup =
      scalar_1t.qgemm.int8_us / active_4t.qgemm.int8_us;
  const double kmeans_speedup =
      scalar_1t.kmeans.seconds / active_4t.kmeans.seconds;
  const double osp_speedup = osp_s1.seconds / osp_a4.seconds;
  const double engine_speedup = eng_s1.seconds / eng_a4.seconds;

  std::FILE* out = std::fopen("BENCH_micro.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[bench_micro] cannot open BENCH_micro.json\n");
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"default_pool_threads\": %zu,\n", default_threads);
  std::fprintf(out, "  \"pool_threads\": %zu,\n", kBenchThreads);
  std::fprintf(out, "  \"simd\": {\n");
  std::fprintf(out, "    \"detected\": \"%s\",\n", simd::level_name(detected));
  std::fprintf(out, "    \"active\": \"%s\"\n", simd::level_name(active));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"matmul_512\": {\n");
  std::fprintf(out, "    \"gflops_scalar_1t\": %.4f,\n",
               scalar_1t.matmul.gflops);
  std::fprintf(out, "    \"speedup\": %.4f,\n", matmul_speedup);
  std::fprintf(out, "    \"identical_results\": %s,\n",
               matmul_identical ? "true" : "false");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"gflops_1t\": %.4f,\n", active_1t.matmul.gflops);
  std::fprintf(out, "      \"gflops_2t\": %.4f,\n", active_2t.matmul.gflops);
  std::fprintf(out, "      \"gflops_4t\": %.4f\n", active_4t.matmul.gflops);
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"qgemm_144x42x16\": {\n");
  std::fprintf(out, "    \"fp32_us_1t\": %.4f,\n", active_1t.qgemm.fp32_us);
  std::fprintf(out, "    \"int8_us_scalar_1t\": %.4f,\n",
               scalar_1t.qgemm.int8_us);
  std::fprintf(out, "    \"int8_speedup_vs_fp32\": %.4f,\n",
               active_1t.qgemm.fp32_us / active_1t.qgemm.int8_us);
  std::fprintf(out, "    \"speedup\": %.4f,\n", qgemm_speedup);
  std::fprintf(out, "    \"identical_results\": %s,\n",
               qgemm_identical ? "true" : "false");
  std::fprintf(out, "    \"identical_across_levels\": %s,\n",
               qgemm_level_identical ? "true" : "false");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"int8_us_1t\": %.4f,\n", active_1t.qgemm.int8_us);
  std::fprintf(out, "      \"int8_us_2t\": %.4f,\n", active_2t.qgemm.int8_us);
  std::fprintf(out, "      \"int8_us_4t\": %.4f\n", active_4t.qgemm.int8_us);
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"quantize_pass\": {\n");
  std::fprintf(out, "    \"quantize_seconds\": %.6f,\n",
               quant.quantize_seconds);
  std::fprintf(out, "    \"dequantize_seconds\": %.6f,\n",
               quant.dequantize_seconds);
  std::fprintf(out, "    \"quantized_detectors\": %zu,\n",
               quant.quantized_detectors);
  std::fprintf(out, "    \"rejected_detectors\": %zu\n",
               quant.rejected_detectors);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"artifact_load\": {\n");
  std::fprintf(out, "    \"v2_fp32_bytes\": %zu,\n", quant.v2_bytes);
  std::fprintf(out, "    \"v3_quantized_bytes\": %zu,\n", quant.v3_bytes);
  std::fprintf(out, "    \"bytes_ratio\": %.4f,\n",
               static_cast<double>(quant.v2_bytes) /
                   static_cast<double>(quant.v3_bytes));
  std::fprintf(out, "    \"v2_load_seconds\": %.6f,\n",
               quant.v2_load_seconds);
  std::fprintf(out, "    \"v3_load_seconds\": %.6f\n",
               quant.v3_load_seconds);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"kmeans_2000x48_k16\": {\n");
  std::fprintf(out, "    \"seconds_scalar_1t\": %.6f,\n",
               scalar_1t.kmeans.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n", kmeans_speedup);
  std::fprintf(out, "    \"identical_results\": %s,\n",
               kmeans_identical ? "true" : "false");
  std::fprintf(out, "    \"identical_across_levels\": %s,\n",
               kmeans_level_identical ? "true" : "false");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"seconds_1t\": %.6f,\n",
               active_1t.kmeans.seconds);
  std::fprintf(out, "      \"seconds_2t\": %.6f,\n",
               active_2t.kmeans.seconds);
  std::fprintf(out, "      \"seconds_4t\": %.6f\n",
               active_4t.kmeans.seconds);
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"osp_end_to_end\": {\n");
  std::fprintf(out, "    \"seconds_scalar_1t\": %.3f,\n", osp_s1.seconds);
  std::fprintf(out, "    \"speedup\": %.4f,\n", osp_speedup);
  std::fprintf(out, "    \"models_trained\": %zu,\n", osp_a4.models);
  std::fprintf(out, "    \"identical_results\": %s,\n",
               osp_identical ? "true" : "false");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"seconds_1t\": %.3f,\n", osp_a1.seconds);
  std::fprintf(out, "      \"seconds_2t\": %.3f,\n", osp_a2.seconds);
  std::fprintf(out, "      \"seconds_4t\": %.3f\n", osp_a4.seconds);
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"engine_batch\": {\n");
  std::fprintf(out, "    \"frames\": %zu,\n", eng_a4.frames);
  std::fprintf(out, "    \"seconds_scalar_1t\": %.4f,\n", eng_s1.seconds);
  std::fprintf(out, "    \"fps_4t\": %.2f,\n", eng_a4.fps);
  std::fprintf(out, "    \"speedup\": %.4f,\n", engine_speedup);
  std::fprintf(out, "    \"identical_results\": %s,\n",
               engine_identical ? "true" : "false");
  std::fprintf(out, "    \"thread_scaling\": {\n");
  std::fprintf(out, "      \"seconds_1t\": %.4f,\n", eng_a1.seconds);
  std::fprintf(out, "      \"seconds_2t\": %.4f,\n", eng_a2.seconds);
  std::fprintf(out, "      \"seconds_4t\": %.4f\n", eng_a4.seconds);
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);

  const bool all_identical = matmul_identical && qgemm_identical &&
                             kmeans_identical && osp_identical &&
                             engine_identical && qgemm_level_identical &&
                             kmeans_level_identical;
  // A parallel kernel must never lose to its own 1-thread run (the
  // pre-overhaul k-means did): 10% tolerance absorbs timer noise.
  const bool no_thread_regression =
      active_4t.kmeans.seconds <= active_1t.kmeans.seconds * 1.10 &&
      active_4t.qgemm.int8_us <= active_1t.qgemm.int8_us * 1.10;
  // Speedup floors only bind when a vector level is active: on a
  // scalar-only host every ratio is ~1 by construction.
  const bool speedups_ok =
      active == simd::Level::kScalar ||
      (matmul_speedup >= 2.5 && osp_speedup >= 3.0 &&
       engine_speedup >= 3.0 && kmeans_speedup > 1.0);

  std::fprintf(stderr,
               "[bench_micro] simd %s: matmul %.2f -> %.2f GFLOP/s "
               "(%.2fx), qgemm int8 %.1fus -> %.1fus (%.2fx), kmeans "
               "%.3fs -> %.3fs (%.2fx), OSP %.1fs -> %.1fs (%.2fx), "
               "engine batch %.2fs -> %.2fs (%.2fx, %.0f fps), artifact "
               "v2 %zuB/%.3fs vs v3 %zuB/%.3fs\n",
               simd::level_name(active), scalar_1t.matmul.gflops,
               active_4t.matmul.gflops, matmul_speedup,
               scalar_1t.qgemm.int8_us, active_4t.qgemm.int8_us,
               qgemm_speedup, scalar_1t.kmeans.seconds,
               active_4t.kmeans.seconds, kmeans_speedup, osp_s1.seconds,
               osp_a4.seconds, osp_speedup, eng_s1.seconds, eng_a4.seconds,
               engine_speedup, eng_a4.fps, quant.v2_bytes,
               quant.v2_load_seconds, quant.v3_bytes,
               quant.v3_load_seconds);
  std::fprintf(stderr,
               "[bench_micro] determinism %s, thread regression check %s, "
               "speedup floors %s; wrote BENCH_micro.json\n",
               all_identical ? "OK" : "FAILED",
               no_thread_regression ? "OK" : "FAILED",
               speedups_ok ? "OK" : "FAILED");
  return (all_identical && no_thread_regression && speedups_ok) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--gbench") == 0) {
    // Shift out the --gbench flag so google-benchmark sees its own flags.
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return run_json_suite();
}
